//! # hatt — Hamiltonian-Adaptive Ternary Tree fermion-to-qubit mapping
//!
//! Facade crate re-exporting the full HATT workspace (a Rust reproduction
//! of *HATT: Hamiltonian Adaptive Ternary Tree for Optimizing
//! Fermion-to-Qubit Mapping*, HPCA 2025).
//!
//! See the [`prelude`] for the commonly used types.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hatt_circuit as circuit;
pub use hatt_core as core;
pub use hatt_fermion as fermion;
pub use hatt_mappings as mappings;
pub use hatt_pauli as pauli;
pub use hatt_service as service;
pub use hatt_sim as sim;
pub use hatt_trace as trace;

/// Commonly used items, re-exported for `use hatt::prelude::*`.
pub mod prelude {
    pub use hatt_core::{HattError, Mapper};
    pub use hatt_pauli::{Complex64, Pauli, PauliString, PauliSum, Phase};
}
