//! # hatt-store
//!
//! An on-disk, content-addressed record store: the persistence layer
//! under the HATT mapping cache (`hatt-core` keys it by the canonical
//! FNV-1a structure hash and stores `hatt-wire/1` mapping documents as
//! values; this crate knows nothing about either — keys and values are
//! opaque bytes).
//!
//! ## Design
//!
//! * **Append-only log + in-memory index.** One file holds framed
//!   records; an in-memory `BTreeMap` maps each key to the offset of
//!   its latest record. Re-putting a key appends a fresh record and
//!   marks the old one dead — the log is never patched in place, so a
//!   crash can only ever tear the *tail*.
//! * **Corruption detection.** Every record is framed as
//!   `magic | key_len | val_len | fnv64(key ‖ value)`; a record whose
//!   frame or checksum does not verify is skipped on load (the scanner
//!   re-synchronizes on the next magic marker), and [`Store::get`]
//!   re-verifies the checksum on every read, so a bit-flip after open
//!   degrades to a miss, never to a wrong value.
//! * **Crash-safe compaction.** When dead bytes outgrow live bytes
//!   (past a floor), the live records are rewritten to a temp file
//!   which is fsynced and atomically renamed over the log — a crash
//!   mid-compaction leaves either the old log or the new one, never a
//!   mix. A stale temp file found at open is discarded.
//!
//! # Examples
//!
//! ```
//! use hatt_store::Store;
//!
//! let path = std::env::temp_dir().join(format!(
//!     "hatt-store-doc-{}-{}.log",
//!     std::process::id(),
//!     line!()
//! ));
//! # let _ = std::fs::remove_file(&path);
//! let mut store = Store::open(&path)?;
//! store.put(b"key-1", b"value-1")?;
//! assert_eq!(store.get(b"key-1")?, Some(b"value-1".to_vec()));
//! drop(store);
//!
//! // Reopening warm-starts from the log.
//! let mut store = Store::open(&path)?;
//! assert_eq!(store.len(), 1);
//! assert_eq!(store.get(b"key-1")?, Some(b"value-1".to_vec()));
//! # std::fs::remove_file(&path)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Frame marker opening every record.
const MAGIC: [u8; 4] = *b"HATS";
/// Bytes of `magic | key_len(u32) | val_len(u32) | checksum(u64)`.
const HEADER_LEN: usize = 4 + 4 + 4 + 8;
/// Sanity cap on key length (corrupt length fields must not trigger
/// huge allocations).
const MAX_KEY_LEN: u32 = 1 << 20;
/// Sanity cap on value length.
const MAX_VAL_LEN: u32 = 1 << 28;
/// Default floor under which auto-compaction never triggers.
const DEFAULT_COMPACT_MIN_BYTES: u64 = 64 * 1024;

/// FNV-1a over a sequence of byte slices (the same hash family the
/// mapping cache uses for structure keys — deterministic, offline,
/// dependency-free).
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut acc = OFFSET;
    for part in parts {
        for &byte in *part {
            acc ^= u64::from(byte);
            acc = acc.wrapping_mul(PRIME);
        }
    }
    acc
}

/// Index entry: where the latest record of a key lives.
#[derive(Debug, Clone, Copy)]
struct Located {
    /// Offset of the value bytes inside the log file.
    val_offset: u64,
    /// Value length.
    val_len: u32,
    /// Checksum over `key ‖ value`, re-verified on every read.
    checksum: u64,
    /// Whole-record length (header + key + value), for dead-byte
    /// accounting when the record is superseded.
    record_len: u64,
}

/// Counters describing the health of a store (surfaced through the
/// `hattd` stats verb).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live (indexed) records.
    pub entries: usize,
    /// Total log file size in bytes.
    pub file_bytes: u64,
    /// Bytes of superseded or corrupt regions awaiting compaction.
    pub dead_bytes: u64,
    /// Records dropped for failing frame or checksum verification
    /// (at open or on read).
    pub corrupt_records: u64,
    /// Compaction passes run over the lifetime of this handle.
    pub compactions: u64,
}

/// An append-only, checksummed, content-addressed record store.
///
/// Not internally synchronized: methods take `&mut self`. Wrap it in a
/// `Mutex` to share (as `hatt-core`'s store tier does). See the
/// [crate docs](self) for the file format and crash-safety story.
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    file: File,
    index: BTreeMap<Vec<u8>, Located>,
    file_len: u64,
    dead_bytes: u64,
    corrupt_records: u64,
    compactions: u64,
    compact_min_bytes: u64,
}

impl Store {
    /// Opens (creating if absent) the log at `path`, scanning it into
    /// the in-memory index. Records that fail frame or checksum
    /// verification are skipped — the scanner re-synchronizes on the
    /// next magic marker, so a torn tail never hides records appended
    /// after it. A stale compaction temp file is removed.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Store> {
        let path = path.as_ref().to_path_buf();
        // A crash mid-compaction may leave the temp file behind; the
        // rename never happened, so the log itself is intact.
        let _ = std::fs::remove_file(tmp_path(&path));
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let bytes = std::fs::read(&path)?;
        let mut store = Store {
            path,
            file,
            index: BTreeMap::new(),
            file_len: bytes.len() as u64,
            dead_bytes: 0,
            corrupt_records: 0,
            compactions: 0,
            compact_min_bytes: DEFAULT_COMPACT_MIN_BYTES,
        };
        store.scan(&bytes);
        Ok(store)
    }

    /// Scans the raw log into the index (open-time warm start).
    fn scan(&mut self, bytes: &[u8]) {
        let mut offset = 0usize;
        while offset < bytes.len() {
            match parse_record(bytes, offset) {
                Ok(Some((key, located))) => {
                    let next = offset as u64 + located.record_len;
                    if let Some(old) = self.index.insert(key.to_vec(), located) {
                        self.dead_bytes += old.record_len;
                    }
                    offset = next as usize;
                }
                Ok(None) => {
                    // A header or body running past EOF — either a
                    // torn tail, or a corrupt length field inflating
                    // the record over later intact ones. Resync on the
                    // next magic marker before giving up.
                    self.corrupt_records += 1;
                    match find_magic(bytes, offset + 1) {
                        Some(next) => {
                            self.dead_bytes += (next - offset) as u64;
                            offset = next;
                        }
                        None => {
                            self.dead_bytes += (bytes.len() - offset) as u64;
                            break;
                        }
                    }
                }
                Err(skip_to) => {
                    // Bad frame or checksum: drop the region up to the
                    // next magic marker and keep scanning — records
                    // appended after a torn write stay reachable.
                    self.corrupt_records += 1;
                    match skip_to {
                        Some(next) => {
                            self.dead_bytes += (next - offset) as u64;
                            offset = next;
                        }
                        None => {
                            self.dead_bytes += (bytes.len() - offset) as u64;
                            break;
                        }
                    }
                }
            }
        }
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no live records.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether `key` has a live record (no I/O).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.index.contains_key(key)
    }

    /// Health counters for observability.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.index.len(),
            file_bytes: self.file_len,
            dead_bytes: self.dead_bytes,
            corrupt_records: self.corrupt_records,
            compactions: self.compactions,
        }
    }

    /// Sets the dead-byte floor below which auto-compaction does not
    /// trigger (mainly for tests; the default is 64 KiB).
    pub fn set_compact_min_bytes(&mut self, bytes: u64) {
        self.compact_min_bytes = bytes;
    }

    /// Reads the latest value of `key`, re-verifying its checksum. A
    /// record that no longer verifies (the file was damaged after
    /// open) is dropped from the index and reads as a miss.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        let Some(located) = self.index.get(key).copied() else {
            return Ok(None);
        };
        let mut value = vec![0u8; located.val_len as usize];
        self.file.seek(SeekFrom::Start(located.val_offset))?;
        match self.file.read_exact(&mut value) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                // The file shrank under us — treat as corruption.
                self.drop_corrupt(key, located);
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
        if fnv1a64(&[key, &value]) != located.checksum {
            self.drop_corrupt(key, located);
            return Ok(None);
        }
        Ok(Some(value))
    }

    fn drop_corrupt(&mut self, key: &[u8], located: Located) {
        self.index.remove(key);
        self.corrupt_records += 1;
        self.dead_bytes += located.record_len;
    }

    /// Appends (or supersedes) the record for `key`. The write goes to
    /// the end of the log; the previous record of the key, if any,
    /// becomes dead bytes. May trigger a compaction pass when dead
    /// bytes outgrow live bytes (see [`Store::compact`]).
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        if key.len() as u64 > u64::from(MAX_KEY_LEN) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "store key exceeds the 1 MiB cap",
            ));
        }
        if value.len() as u64 > u64::from(MAX_VAL_LEN) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "store value exceeds the 256 MiB cap",
            ));
        }
        let checksum = fnv1a64(&[key, value]);
        let mut record = Vec::with_capacity(HEADER_LEN + key.len() + value.len());
        record.extend_from_slice(&MAGIC);
        record.extend_from_slice(&(key.len() as u32).to_le_bytes());
        record.extend_from_slice(&(value.len() as u32).to_le_bytes());
        record.extend_from_slice(&checksum.to_le_bytes());
        record.extend_from_slice(key);
        record.extend_from_slice(value);
        // One write_all: the OS may still tear it mid-crash, but the
        // checksum makes any tear detectable (and skippable) at open.
        self.file.write_all(&record)?;
        let located = Located {
            val_offset: self.file_len + (HEADER_LEN + key.len()) as u64,
            val_len: value.len() as u32,
            checksum,
            record_len: record.len() as u64,
        };
        self.file_len += record.len() as u64;
        if let Some(old) = self.index.insert(key.to_vec(), located) {
            self.dead_bytes += old.record_len;
        }
        self.maybe_compact()
    }

    /// Flushes the log to stable storage (`fsync`). Appends are
    /// OS-buffered otherwise; the daemon calls this on drain.
    pub fn sync(&self) -> io::Result<()> {
        self.file.sync_all()
    }

    /// Runs a compaction if dead bytes exceed both the floor and the
    /// live bytes — the pass is `O(live)`, so this policy bounds the
    /// file at roughly 2× the live payload while keeping compaction
    /// amortized.
    fn maybe_compact(&mut self) -> io::Result<()> {
        let live = self.file_len.saturating_sub(self.dead_bytes);
        if self.dead_bytes >= self.compact_min_bytes && self.dead_bytes > live {
            self.compact()?;
        }
        Ok(())
    }

    /// Rewrites the log to contain exactly the live records, dropping
    /// dead and corrupt regions. Crash-safe: the new log is written to
    /// a temp file, fsynced, then atomically renamed over the old one —
    /// an interrupted pass leaves the old log untouched.
    pub fn compact(&mut self) -> io::Result<()> {
        let tmp = tmp_path(&self.path);
        let mut out = File::create(&tmp)?;
        let mut new_index = BTreeMap::new();
        let mut new_len = 0u64;
        // BTreeMap order keeps the rewritten log deterministic.
        let keys: Vec<Vec<u8>> = self.index.keys().cloned().collect();
        for key in keys {
            let Some(value) = self.get(&key)? else {
                continue; // verified-corrupt under us; drop it
            };
            let checksum = fnv1a64(&[&key, &value]);
            let mut record = Vec::with_capacity(HEADER_LEN + key.len() + value.len());
            record.extend_from_slice(&MAGIC);
            record.extend_from_slice(&(key.len() as u32).to_le_bytes());
            record.extend_from_slice(&(value.len() as u32).to_le_bytes());
            record.extend_from_slice(&checksum.to_le_bytes());
            record.extend_from_slice(&key);
            record.extend_from_slice(&value);
            out.write_all(&record)?;
            new_index.insert(
                key.clone(),
                Located {
                    val_offset: new_len + (HEADER_LEN + key.len()) as u64,
                    val_len: value.len() as u32,
                    checksum,
                    record_len: record.len() as u64,
                },
            );
            new_len += record.len() as u64;
        }
        out.sync_all()?;
        drop(out);
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        self.index = new_index;
        self.file_len = new_len;
        self.dead_bytes = 0;
        self.compactions += 1;
        Ok(())
    }
}

/// The compaction temp file sitting next to the log.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// Parses the record at `offset`. `Ok(Some(..))` is a verified record;
/// `Ok(None)` means the record runs past EOF (torn tail — nothing after
/// it can be whole); `Err(skip_to)` is a bad frame or checksum with the
/// offset of the next magic marker to resume at (`None`: no marker
/// left).
#[allow(clippy::type_complexity)]
fn parse_record(bytes: &[u8], offset: usize) -> Result<Option<(&[u8], Located)>, Option<usize>> {
    let remaining = &bytes[offset..];
    if remaining.len() < HEADER_LEN {
        return Ok(None);
    }
    if remaining[..4] != MAGIC {
        return Err(find_magic(bytes, offset + 1));
    }
    let key_len = u32::from_le_bytes([remaining[4], remaining[5], remaining[6], remaining[7]]);
    let val_len = u32::from_le_bytes([remaining[8], remaining[9], remaining[10], remaining[11]]);
    let mut checksum = [0u8; 8];
    checksum.copy_from_slice(&remaining[12..20]);
    let checksum = u64::from_le_bytes(checksum);
    if key_len > MAX_KEY_LEN || val_len > MAX_VAL_LEN {
        // A corrupt length field: resync rather than trusting it.
        return Err(find_magic(bytes, offset + 1));
    }
    let record_len = HEADER_LEN + key_len as usize + val_len as usize;
    if remaining.len() < record_len {
        return Ok(None);
    }
    let key = &remaining[HEADER_LEN..HEADER_LEN + key_len as usize];
    let value = &remaining[HEADER_LEN + key_len as usize..record_len];
    if fnv1a64(&[key, value]) != checksum {
        return Err(find_magic(bytes, offset + 1));
    }
    Ok(Some((
        key,
        Located {
            val_offset: (offset + HEADER_LEN + key_len as usize) as u64,
            val_len,
            checksum,
            record_len: record_len as u64,
        },
    )))
}

/// Finds the next magic marker at or after `from`.
fn find_magic(bytes: &[u8], from: usize) -> Option<usize> {
    (from..bytes.len().saturating_sub(MAGIC.len() - 1)).find(|&i| bytes[i..i + 4] == MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique temp path per test (tests run concurrently).
    fn scratch(tag: &str) -> PathBuf {
        let path =
            std::env::temp_dir().join(format!("hatt-store-test-{}-{tag}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(tmp_path(&path));
        path
    }

    #[test]
    fn put_get_roundtrip_and_reopen() {
        let path = scratch("roundtrip");
        let mut store = Store::open(&path).unwrap();
        assert!(store.is_empty());
        store.put(b"a", b"alpha").unwrap();
        store.put(b"b", b"beta").unwrap();
        assert_eq!(store.get(b"a").unwrap(), Some(b"alpha".to_vec()));
        assert_eq!(store.get(b"missing").unwrap(), None);
        drop(store);
        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(b"b").unwrap(), Some(b"beta".to_vec()));
        assert_eq!(store.stats().corrupt_records, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn overwrite_keeps_latest_and_counts_dead_bytes() {
        let path = scratch("overwrite");
        let mut store = Store::open(&path).unwrap();
        store.put(b"k", b"old").unwrap();
        store.put(b"k", b"new").unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.get(b"k").unwrap(), Some(b"new".to_vec()));
        assert!(store.stats().dead_bytes > 0);
        drop(store);
        // The scanner also supersedes on load.
        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.get(b"k").unwrap(), Some(b"new".to_vec()));
        assert!(store.stats().dead_bytes > 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncation_at_every_byte_recovers_the_intact_prefix() {
        let path = scratch("truncate");
        let mut store = Store::open(&path).unwrap();
        store.put(b"first", b"one").unwrap();
        let first_end = store.stats().file_bytes;
        store.put(b"second", b"two").unwrap();
        store.sync().unwrap();
        drop(store);
        let full = std::fs::read(&path).unwrap();
        // Simulate a crash mid-append at every possible tear point of
        // the second record: the first record must always survive.
        for cut in first_end as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let mut store = Store::open(&path).unwrap();
            assert_eq!(
                store.get(b"first").unwrap(),
                Some(b"one".to_vec()),
                "cut at {cut}"
            );
            if cut < full.len() {
                assert_eq!(store.get(b"second").unwrap(), None, "cut at {cut}");
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flips_are_detected_and_skipped() {
        let path = scratch("bitflip");
        let mut store = Store::open(&path).unwrap();
        store.put(b"alpha", b"payload-alpha").unwrap();
        store.put(b"beta", b"payload-beta").unwrap();
        store.sync().unwrap();
        drop(store);
        let clean = std::fs::read(&path).unwrap();
        // Flip every byte of the log in turn: the damaged record must
        // read as absent (or, if the flip is in a key byte, under a
        // different key) and the *other* record must stay readable.
        for i in 0..clean.len() {
            let mut damaged = clean.clone();
            damaged[i] ^= 0x40;
            std::fs::write(&path, &damaged).unwrap();
            let mut store = Store::open(&path).unwrap();
            let a = store.get(b"alpha").unwrap();
            let b = store.get(b"beta").unwrap();
            assert!(
                a == Some(b"payload-alpha".to_vec()) || a.is_none(),
                "byte {i}: corrupt alpha surfaced"
            );
            assert!(
                b == Some(b"payload-beta".to_vec()) || b.is_none(),
                "byte {i}: corrupt beta surfaced"
            );
            assert!(
                a.is_some() || b.is_some(),
                "byte {i}: single flip killed both records"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn appends_after_a_torn_tail_are_recovered() {
        let path = scratch("torn-then-append");
        let mut store = Store::open(&path).unwrap();
        store.put(b"good", b"kept").unwrap();
        let keep = store.stats().file_bytes;
        store.put(b"torn", b"this record will be cut").unwrap();
        drop(store);
        let full = std::fs::read(&path).unwrap();
        // Tear the tail record in half, then append a new record after
        // the garbage — the scanner must resync and find it.
        std::fs::write(&path, &full[..keep as usize + 9]).unwrap();
        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.get(b"torn").unwrap(), None);
        store.put(b"after", b"found-me").unwrap();
        drop(store);
        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.get(b"good").unwrap(), Some(b"kept".to_vec()));
        assert_eq!(store.get(b"after").unwrap(), Some(b"found-me".to_vec()));
        assert!(store.stats().corrupt_records >= 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_drops_dead_bytes_and_preserves_records() {
        let path = scratch("compact");
        let mut store = Store::open(&path).unwrap();
        for round in 0..10u8 {
            store.put(b"churn", &[round; 32]).unwrap();
        }
        store.put(b"stable", b"still-here").unwrap();
        let before = store.stats();
        assert!(before.dead_bytes > 0);
        store.compact().unwrap();
        let after = store.stats();
        assert_eq!(after.dead_bytes, 0);
        assert_eq!(after.entries, 2);
        assert!(after.file_bytes < before.file_bytes);
        assert_eq!(after.compactions, 1);
        assert_eq!(store.get(b"churn").unwrap(), Some(vec![9u8; 32]));
        assert_eq!(store.get(b"stable").unwrap(), Some(b"still-here".to_vec()));
        // The compacted log reopens clean.
        drop(store);
        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.stats().dead_bytes, 0);
        assert_eq!(store.get(b"churn").unwrap(), Some(vec![9u8; 32]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_compaction_triggers_once_dead_outgrows_live() {
        let path = scratch("auto-compact");
        let mut store = Store::open(&path).unwrap();
        store.set_compact_min_bytes(1);
        for round in 0..50u8 {
            store.put(b"hot", &[round; 64]).unwrap();
        }
        let stats = store.stats();
        assert!(stats.compactions >= 1, "auto-compaction never ran");
        assert!(
            stats.file_bytes <= 4 * (HEADER_LEN as u64 + 3 + 64),
            "log kept growing: {stats:?}"
        );
        assert_eq!(store.get(b"hot").unwrap(), Some(vec![49u8; 64]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stale_compaction_tmp_is_ignored_and_removed() {
        let path = scratch("stale-tmp");
        let mut store = Store::open(&path).unwrap();
        store.put(b"k", b"v").unwrap();
        drop(store);
        // A crash between writing the temp file and the rename.
        std::fs::write(tmp_path(&path), b"half-written garbage").unwrap();
        let mut store = Store::open(&path).unwrap();
        assert_eq!(store.get(b"k").unwrap(), Some(b"v".to_vec()));
        assert!(!tmp_path(&path).exists(), "stale tmp must be removed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversize_keys_and_values_are_rejected() {
        let path = scratch("oversize");
        let mut store = Store::open(&path).unwrap();
        let big_key = vec![0u8; MAX_KEY_LEN as usize + 1];
        assert!(store.put(&big_key, b"v").is_err());
        assert_eq!(store.len(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn get_detects_damage_introduced_after_open() {
        let path = scratch("late-damage");
        let mut store = Store::open(&path).unwrap();
        store.put(b"k", b"value-bytes").unwrap();
        store.sync().unwrap();
        // Damage the value region behind the open handle's back.
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 3] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        // The open handle still re-verifies the checksum per read.
        let fresh = Store::open(&path).unwrap();
        assert_eq!(fresh.len(), 0, "scanner rejects the damaged record");
        assert_eq!(store.get(b"k").unwrap(), None, "read-time verification");
        assert!(store.stats().corrupt_records >= 1);
        let _ = std::fs::remove_file(&path);
    }
}
