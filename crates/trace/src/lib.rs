//! # hatt-trace — structured tracing for the HATT service stack
//!
//! A dependency-free, std-only tracing subsystem. The pieces:
//!
//! - [`TraceCtx`] — the propagated identity of a request: a 63-bit
//!   trace ID plus the span ID of the caller's active span. It rides
//!   the `hatt-wire/1` protocol as an optional `trace_ctx` field, so a
//!   request traced at the router carries one trace ID through
//!   forwarder → shard → scheduler → construction and back.
//! - [`Tracer`] — a cheap handle (an `Option<Arc<..>>`) shared by every
//!   layer of a daemon. Disabled tracers record nothing and cost a
//!   branch; enabled tracers drain spans into a bounded ring buffer
//!   (oldest spans are evicted, never blocking the hot path).
//! - [`SpanRecord`] — one completed span: `(trace_id, span_id,
//!   parent_span, name, start_ns, dur_ns)`. Timestamps come from a
//!   process-wide monotonic epoch ([`now_ns`]), so spans from one
//!   process order correctly among themselves; cross-process trees are
//!   joined by span *identity*, not by clock.
//! - a thread-local **scope** ([`Tracer::scope`] + the free function
//!   [`span`]) so deep layers (`MappingCache`, the construction kernel)
//!   can be instrumented without threading a context through their
//!   signatures. Inside a scope, `span(name, f)` times `f` and buffers
//!   the record locally — one collector lock per scope, not per span.
//!
//! IDs are minted from `(process id, atomic counter)` and are unique
//! across the daemons of one host without randomness, so span trees
//! merged from a router and its shards never collide. All IDs fit in
//! 63 bits (they survive a JSON `Int` round trip).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Default collector capacity (spans retained) for `--trace` daemons.
pub const DEFAULT_CAPACITY: usize = 16_384;

/// How many buffered spans a thread-local scope holds before draining
/// into the shared collector.
const SCOPE_FLUSH: usize = 64;

// ---------------------------------------------------------------------------
// Clock and identifiers
// ---------------------------------------------------------------------------

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide monotonic epoch (first call).
///
/// Monotonic and cheap; comparable within one process only.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Mints a host-unique 63-bit identifier: the process id in the high
/// bits, a process-local counter in the low 40. Deterministic (no
/// randomness), collision-free across the daemons of one host for any
/// realistic span volume, and always representable as a JSON `Int`.
fn mint_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let seq = NEXT.fetch_add(1, Ordering::Relaxed);
    let pid = u64::from(std::process::id()) & 0x3f_ffff;
    let id = (pid << 40) | (seq & 0xff_ffff_ffff);
    if id == 0 {
        1
    } else {
        id
    }
}

/// The propagated identity of a traced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Identifies the whole request tree, across processes.
    pub trace_id: u64,
    /// Span ID of the caller's active span (`0` = root of the trace).
    pub parent_span: u64,
}

impl TraceCtx {
    /// A context rooted at `parent_span` within the same trace.
    pub fn child_of(self, parent_span: u64) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent_span,
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique span identifier (host-unique, see [`TraceCtx`]).
    pub span_id: u64,
    /// Parent span ID (`0` = root span of the trace).
    pub parent_span: u64,
    /// Static stage name (e.g. `"queue.wait"`, `"construct"`).
    pub name: &'static str,
    /// Start time, nanoseconds since this process's monotonic epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

// ---------------------------------------------------------------------------
// Collector
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct Collector {
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Collector {
    fn push_all(&self, spans: &[SpanRecord]) {
        if spans.is_empty() {
            return;
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        for span in spans {
            if ring.len() == self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(*span);
        }
        self.recorded
            .fetch_add(spans.len() as u64, Ordering::Relaxed);
    }
}

/// A cheap, clonable tracing handle. Disabled by default; an enabled
/// tracer shares one bounded ring-buffer collector among its clones.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Collector>>,
}

impl Tracer {
    /// A tracer that records nothing (every call is a cheap branch).
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// An enabled tracer retaining up to `capacity` recent spans
    /// (capacity is clamped to at least 16).
    pub fn enabled(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Collector {
                capacity: capacity.max(16),
                ring: Mutex::new(VecDeque::new()),
                recorded: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether this tracer records spans.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Retained-span capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |c| c.capacity)
    }

    /// Total spans recorded since creation (including later-evicted).
    pub fn spans_recorded(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |c| c.recorded.load(Ordering::Relaxed))
    }

    /// Spans evicted from the ring because it was full.
    pub fn spans_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |c| c.dropped.load(Ordering::Relaxed))
    }

    /// Mints a fresh root context, or `None` when disabled.
    pub fn new_trace(&self) -> Option<TraceCtx> {
        self.inner.as_ref()?;
        Some(TraceCtx {
            trace_id: mint_id(),
            parent_span: 0,
        })
    }

    /// Allocates a span ID without recording anything yet. Use when
    /// children must reference the span before it completes (e.g. a
    /// request's root span, or a router forward hop whose sub-request
    /// parents the shard-side tree).
    pub fn alloc_span_id(&self) -> u64 {
        if self.inner.is_some() {
            mint_id()
        } else {
            0
        }
    }

    /// Records a completed span with explicit timestamps under a
    /// pre-allocated ID (see [`Tracer::alloc_span_id`]).
    pub fn record_span_id(
        &self,
        span_id: u64,
        ctx: TraceCtx,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) {
        if let Some(collector) = &self.inner {
            collector.push_all(&[SpanRecord {
                trace_id: ctx.trace_id,
                span_id,
                parent_span: ctx.parent_span,
                name,
                start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
            }]);
        }
    }

    /// Records a completed span with explicit timestamps, returning its
    /// freshly allocated ID (0 when disabled). This is the API for
    /// stages measured retroactively — e.g. the reactor's accept,
    /// frame-parse and queue-wait phases, which finish before or
    /// without a thread-local scope.
    pub fn record_span(
        &self,
        ctx: TraceCtx,
        name: &'static str,
        start_ns: u64,
        end_ns: u64,
    ) -> u64 {
        if self.inner.is_none() {
            return 0;
        }
        let span_id = mint_id();
        self.record_span_id(span_id, ctx, name, start_ns, end_ns);
        span_id
    }

    /// Runs `f` inside a thread-local tracing scope: a span named
    /// `name` is opened as a child of `ctx`, and every [`span`] call
    /// made by `f` (however deep) nests beneath it, buffered locally
    /// and drained into the collector when the scope ends. Disabled
    /// tracers run `f` with no scope installed.
    pub fn scope<T>(&self, ctx: TraceCtx, name: &'static str, f: impl FnOnce() -> T) -> T {
        let Some(collector) = self.inner.clone() else {
            return f();
        };
        let scope_span = mint_id();
        let previous = SCOPE.with(|slot| {
            slot.borrow_mut().replace(ScopeState {
                collector,
                trace_id: ctx.trace_id,
                current_parent: scope_span,
                buf: Vec::new(),
            })
        });
        // The guard restores the previous scope and flushes the buffer
        // on drop, so a panic unwinding through `f` cannot leave a
        // stale scope installed on this thread.
        let _guard = ScopeGuard {
            previous: Some(previous),
            ctx,
            name,
            scope_span,
            start_ns: now_ns(),
        };
        f()
    }

    /// Most-recent retained spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(collector) => {
                let ring = collector.ring.lock().unwrap_or_else(|e| e.into_inner());
                ring.iter().copied().collect()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Thread-local scope
// ---------------------------------------------------------------------------

struct ScopeState {
    collector: Arc<Collector>,
    trace_id: u64,
    current_parent: u64,
    buf: Vec<SpanRecord>,
}

thread_local! {
    static SCOPE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

struct ScopeGuard {
    previous: Option<Option<ScopeState>>,
    ctx: TraceCtx,
    name: &'static str,
    scope_span: u64,
    start_ns: u64,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let state = SCOPE.with(|slot| {
            let mut slot = slot.borrow_mut();
            let state = slot.take();
            *slot = self.previous.take().unwrap_or(None);
            state
        });
        if let Some(mut state) = state {
            state.buf.push(SpanRecord {
                trace_id: self.ctx.trace_id,
                span_id: self.scope_span,
                parent_span: self.ctx.parent_span,
                name: self.name,
                start_ns: self.start_ns,
                dur_ns: now_ns().saturating_sub(self.start_ns),
            });
            state.collector.push_all(&state.buf);
        }
    }
}

/// Times `f` as a span named `name` nested under the innermost active
/// [`Tracer::scope`] on this thread. Without an active scope this is a
/// no-op wrapper (one thread-local read), which is what makes it safe
/// to leave in hot library code such as the construction kernel.
pub fn span<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    // Reserve our place in the tree (and check for a scope) first…
    let opened = SCOPE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let state = slot.as_mut()?;
        let span_id = mint_id();
        let parent = state.current_parent;
        state.current_parent = span_id;
        Some((span_id, parent, now_ns()))
    });
    let Some((span_id, parent, start)) = opened else {
        return f();
    };
    // …then run `f` with the borrow released so nested spans work.
    let out = f();
    SCOPE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(state) = slot.as_mut() {
            state.current_parent = parent;
            state.buf.push(SpanRecord {
                trace_id: state.trace_id,
                span_id,
                parent_span: parent,
                name,
                start_ns: start,
                dur_ns: now_ns().saturating_sub(start),
            });
            if state.buf.len() >= SCOPE_FLUSH {
                let drained: Vec<SpanRecord> = state.buf.drain(..).collect();
                state.collector.push_all(&drained);
            }
        }
    });
    out
}

/// The span ID that a [`span`] call would currently nest under on this
/// thread (`None` outside any scope). Lets mid-layer code parent an
/// explicitly recorded span onto the implicit tree.
pub fn current_ctx() -> Option<TraceCtx> {
    SCOPE.with(|slot| {
        slot.borrow().as_ref().map(|state| TraceCtx {
            trace_id: state.trace_id,
            parent_span: state.current_parent,
        })
    })
}

/// A captured snapshot of the calling thread's active scope — the
/// send-across-threads form of the thread-local tree. Scoped worker
/// threads (a batch fan-out) do not inherit thread-locals; capturing a
/// handle before the fan-out and [`ScopeHandle::scope`]-ing inside each
/// worker keeps their spans in the originating request's trace.
#[derive(Debug, Clone)]
pub struct ScopeHandle {
    tracer: Tracer,
    ctx: TraceCtx,
}

impl ScopeHandle {
    /// Re-enters the captured trace on the current thread: runs `f`
    /// inside a scope named `name`, parented where the capturing
    /// thread's next [`span`] would have nested.
    pub fn scope<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        self.tracer.scope(self.ctx, name, f)
    }
}

/// Captures the calling thread's active scope as a sendable
/// [`ScopeHandle`] (`None` outside any scope).
pub fn capture() -> Option<ScopeHandle> {
    SCOPE.with(|slot| {
        slot.borrow().as_ref().map(|state| ScopeHandle {
            tracer: Tracer {
                inner: Some(Arc::clone(&state.collector)),
            },
            ctx: TraceCtx {
                trace_id: state.trace_id,
                parent_span: state.current_parent,
            },
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(t.new_trace().is_none());
        let ctx = TraceCtx {
            trace_id: 7,
            parent_span: 0,
        };
        assert_eq!(t.record_span(ctx, "x", 0, 10), 0);
        let ran = t.scope(ctx, "outer", || span("inner", || 42));
        assert_eq!(ran, 42);
        assert!(t.snapshot().is_empty());
        assert_eq!(t.spans_recorded(), 0);
    }

    #[test]
    fn scope_nests_spans_under_one_trace() {
        let t = Tracer::enabled(64);
        let ctx = t.new_trace().expect("enabled");
        assert_ne!(ctx.trace_id, 0);
        let out = t.scope(ctx, "outer", || {
            span("mid", || span("leaf", || 5)) + span("sibling", || 1)
        });
        assert_eq!(out, 6);
        let spans = t.snapshot();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().all(|s| s.trace_id == ctx.trace_id));
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        let mid = spans.iter().find(|s| s.name == "mid").expect("mid");
        let leaf = spans.iter().find(|s| s.name == "leaf").expect("leaf");
        let sibling = spans.iter().find(|s| s.name == "sibling").expect("sib");
        assert_eq!(outer.parent_span, ctx.parent_span);
        assert_eq!(mid.parent_span, outer.span_id);
        assert_eq!(leaf.parent_span, mid.span_id);
        assert_eq!(sibling.parent_span, outer.span_id);
        // Children complete (and are buffered) before their parent.
        assert!(
            spans.iter().position(|s| s.name == "leaf")
                < spans.iter().position(|s| s.name == "outer")
        );
    }

    #[test]
    fn span_outside_any_scope_is_a_no_op() {
        assert_eq!(span("orphan", || 3), 3);
        assert!(current_ctx().is_none());
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let t = Tracer::enabled(16);
        let ctx = t.new_trace().expect("enabled");
        for _ in 0..40 {
            t.record_span(ctx, "tick", 0, 1);
        }
        let spans = t.snapshot();
        assert_eq!(spans.len(), 16);
        assert_eq!(t.spans_recorded(), 40);
        assert_eq!(t.spans_dropped(), 24);
    }

    #[test]
    fn explicit_spans_saturate_instead_of_underflowing() {
        let t = Tracer::enabled(16);
        let ctx = t.new_trace().expect("enabled");
        let id = t.record_span(ctx, "clock-skew", 100, 50);
        assert_ne!(id, 0);
        let spans = t.snapshot();
        assert_eq!(spans[0].dur_ns, 0);
        assert_eq!(spans[0].span_id, id);
    }

    #[test]
    fn ids_fit_in_63_bits_and_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1000 {
            let id = mint_id();
            assert!(id <= i64::MAX as u64);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn captured_handle_carries_the_trace_across_threads() {
        let t = Tracer::enabled(64);
        let ctx = t.new_trace().expect("enabled");
        t.scope(ctx, "outer", || {
            let handle = capture().expect("inside a scope");
            std::thread::spawn(move || handle.scope("worker", || span("leaf", || ())))
                .join()
                .expect("worker thread");
        });
        let spans = t.snapshot();
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer");
        let worker = spans.iter().find(|s| s.name == "worker").expect("worker");
        let leaf = spans.iter().find(|s| s.name == "leaf").expect("leaf");
        assert_eq!(worker.trace_id, ctx.trace_id);
        assert_eq!(worker.parent_span, outer.span_id);
        assert_eq!(leaf.parent_span, worker.span_id);
        assert!(capture().is_none(), "no scope outside");
    }

    #[test]
    fn nested_scopes_restore_the_outer_scope() {
        let t = Tracer::enabled(64);
        let outer_ctx = t.new_trace().expect("enabled");
        let inner_ctx = t.new_trace().expect("enabled");
        t.scope(outer_ctx, "outer", || {
            t.scope(inner_ctx, "inner", || span("deep", || ()));
            span("after", || ());
        });
        let spans = t.snapshot();
        let deep = spans.iter().find(|s| s.name == "deep").expect("deep");
        let after = spans.iter().find(|s| s.name == "after").expect("after");
        assert_eq!(deep.trace_id, inner_ctx.trace_id);
        assert_eq!(after.trace_id, outer_ctx.trace_id);
    }
}
