//! Wire-format property tests for complete mappings: a constructed
//! `HattMapping` must survive `encode → render → parse → decode` with
//! tree, stats and options intact, under every selection policy.

use hatt_core::wire::{decode_hatt_mapping, encode_hatt_mapping};
use hatt_core::Mapper;
use hatt_fermion::models::random_hermitian;
use hatt_fermion::MajoranaSum;
use hatt_mappings::{FermionMapping, SelectionPolicy};
use hatt_pauli::json::Json;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn constructed_mappings_roundtrip(
        n in 2usize..6,
        seed in 0u64..300,
        policy_idx in 0usize..3,
    ) {
        let policy = [
            SelectionPolicy::Greedy,
            SelectionPolicy::Vanilla,
            SelectionPolicy::Beam { width: 3 },
        ][policy_idx];
        let mut h = MajoranaSum::from_fermion(&random_hermitian(n, 4, 3, seed));
        let _ = h.take_identity();
        let mapper = Mapper::builder().policy(policy).build().unwrap();
        let m = mapper.map(&h).unwrap();
        let text = encode_hatt_mapping(&m).render();
        let back = decode_hatt_mapping(&Json::parse(&text).unwrap()).expect("decode");
        prop_assert_eq!(back.tree(), m.tree());
        prop_assert_eq!(back.stats(), m.stats());
        prop_assert_eq!(back.options().policy, m.options().policy);
        prop_assert_eq!(back.options().variant, m.options().variant);
        for k in 0..2 * h.n_modes() {
            prop_assert_eq!(back.majorana(k), m.majorana(k), "M{} drifted", k);
        }
        // The decoded mapping maps the original Hamiltonian to the same
        // qubit operator.
        prop_assert_eq!(
            back.map_majorana_sum(&h).weight(),
            m.map_majorana_sum(&h).weight()
        );
    }
}
