//! Property tests for selection-policy determinism and input-permutation
//! invariance.
//!
//! Two different invariances are asserted, matching what the
//! construction actually guarantees:
//!
//! * **Term-order invariance (strict).** The tree and every per-step
//!   weight are identical no matter in which order the Hamiltonian's
//!   terms were added: `MajoranaSum` canonicalizes term storage, and the
//!   engine's tie-breaking depends only on the canonical term set. This
//!   guards any future refactor that would make the greedy sensitive to
//!   insertion order.
//! * **Mode-relabeling robustness (weaker, by design).** Relabeling
//!   modes permutes node indices, and the deterministic final tie-break
//!   *is* the node index — so the constructed tree (and, on tie-heavy
//!   inputs, even the total weight) may legitimately differ between
//!   labelings. What must survive any relabeling: validity, vacuum
//!   preservation, and the quality portfolio's never-worse-than-JW
//!   guarantee (JW is evaluated in the *same* labeling).

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt_core::{HattOptions, Mapper};
/// One construction through the `Mapper` handle (fresh handle per
/// call, so every construction is cold — same results and stats as
/// the old `hatt_with` free function).
fn hatt_with(h: &hatt_fermion::MajoranaSum, opts: &HattOptions) -> hatt_core::HattMapping {
    Mapper::with_options(*opts)
        .map(h)
        .expect("valid Hamiltonian")
}

use hatt_fermion::models::random_hermitian;
use hatt_fermion::MajoranaSum;
use hatt_mappings::{jordan_wigner, validate, FermionMapping, SelectionPolicy};
use proptest::prelude::*;

/// Every public selection policy, small widths to keep the suite fast.
fn policies() -> Vec<SelectionPolicy> {
    vec![
        SelectionPolicy::Greedy,
        SelectionPolicy::Vanilla,
        SelectionPolicy::Lookahead { width: 4 },
        SelectionPolicy::Beam { width: 4 },
        SelectionPolicy::Restarts,
    ]
}

fn random_majorana_sum(n: usize, seed: u64) -> MajoranaSum {
    let mut h = MajoranaSum::from_fermion(&random_hermitian(n, 5, 4, seed));
    let _ = h.take_identity();
    h
}

/// Re-adds the terms of `h` in an order driven by `rot` (a rotation of
/// the canonical order — enough to exercise insertion-order dependence).
fn reinsert_rotated(h: &MajoranaSum, rot: usize) -> MajoranaSum {
    let terms: Vec<(Vec<u32>, _)> = h.iter().map(|(i, c)| (i.to_vec(), c)).collect();
    let mut out = MajoranaSum::new(h.n_modes());
    let k = terms.len().max(1);
    for j in 0..terms.len() {
        let (idx, c) = &terms[(j + rot) % k];
        out.add(*c, idx);
    }
    out
}

/// Relabels mode `m` to `perm[m]` (Majorana `2m + b → 2·perm[m] + b`).
fn permute_modes(h: &MajoranaSum, perm: &[usize]) -> MajoranaSum {
    let mut out = MajoranaSum::new(h.n_modes());
    for (idx, c) in h.iter() {
        let mapped: Vec<u32> = idx
            .iter()
            .map(|&k| 2 * perm[(k / 2) as usize] as u32 + k % 2)
            .collect();
        out.add(c, &mapped);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn construction_is_invariant_under_term_insertion_order(
        n in 2usize..7,
        seed in 0u64..200,
        rot in 1usize..13,
    ) {
        let h = random_majorana_sum(n, seed);
        let h_rot = reinsert_rotated(&h, rot);
        for policy in policies() {
            let a = hatt_with(&h, &HattOptions::with_policy(policy));
            let b = hatt_with(&h_rot, &HattOptions::with_policy(policy));
            prop_assert_eq!(a.tree(), b.tree(), "{} tree changed", policy);
            prop_assert_eq!(
                a.stats().total_weight(),
                b.stats().total_weight(),
                "{} weight changed", policy
            );
        }
    }

    #[test]
    fn construction_is_deterministic_per_policy(
        n in 2usize..7,
        seed in 0u64..200,
    ) {
        let h = random_majorana_sum(n, seed);
        for policy in policies() {
            let a = hatt_with(&h, &HattOptions::with_policy(policy));
            let b = hatt_with(&h, &HattOptions::with_policy(policy));
            prop_assert_eq!(a.tree(), b.tree(), "{} non-deterministic", policy);
        }
    }

    #[test]
    fn mode_relabeling_preserves_validity_and_jw_dominance(
        n in 2usize..7,
        seed in 0u64..200,
        shift in 1usize..6,
    ) {
        let h = random_majorana_sum(n, seed);
        let perm: Vec<usize> = (0..n).map(|m| (m + shift) % n).collect();
        let hp = permute_modes(&h, &perm);
        let w_jw = jordan_wigner(n).map_majorana_sum(&hp).weight();
        for policy in policies() {
            let m = hatt_with(&hp, &HattOptions::with_policy(policy));
            let report = validate(&m);
            prop_assert!(report.is_valid(), "{}: invalid after relabeling", policy);
            prop_assert!(
                report.vacuum_preserving,
                "{}: vacuum broken after relabeling", policy
            );
            prop_assert_eq!(
                m.stats().total_weight(),
                m.map_majorana_sum(&hp).weight(),
                "{}: objective drifted", policy
            );
            if policy == SelectionPolicy::Restarts {
                prop_assert!(
                    m.stats().total_weight() <= w_jw,
                    "restarts lost to JW ({} > {w_jw}) under relabeling",
                    m.stats().total_weight()
                );
            }
        }
    }
}
