//! Integration tests at the N = 32 scale: on a synthetic molecule and a
//! collective-neutrino model, Algorithm 2 (`Paired`) and Algorithm 3
//! (`Cached`) must produce *identical* trees — the mdown/mup caches are a
//! pure speedup — and every variant must pass the full validator
//! (Majorana algebra ⇒ isospectral mapped Hamiltonian, plus vacuum
//! preservation for the paired variants).

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt_core::{HattOptions, Mapper, Variant};
/// One construction through the `Mapper` handle (fresh handle per
/// call, so every construction is cold — same results and stats as
/// the old `hatt_with` free function).
fn hatt_with(h: &hatt_fermion::MajoranaSum, opts: &HattOptions) -> hatt_core::HattMapping {
    Mapper::with_options(*opts)
        .map(h)
        .expect("valid Hamiltonian")
}

use hatt_fermion::models::{MolecularIntegrals, NeutrinoModel};
use hatt_fermion::MajoranaSum;
use hatt_mappings::{validate, FermionMapping};

fn preprocess(op: &hatt_fermion::FermionOperator) -> MajoranaSum {
    let mut m = MajoranaSum::from_fermion(op);
    let _ = m.take_identity();
    m.prune(1e-10);
    m
}

/// The two 32-mode workloads: a synthetic 16-orbital molecule (Table I
/// family) and the 8×2F neutrino model (Table III family).
fn workloads() -> Vec<(&'static str, MajoranaSum)> {
    vec![
        (
            "molecule synthetic-16",
            preprocess(&MolecularIntegrals::synthetic(16, 11).to_fermion_operator()),
        ),
        (
            "neutrino 8x2F",
            preprocess(&NeutrinoModel::new(8, 2).hamiltonian()),
        ),
    ]
}

fn build(h: &MajoranaSum, variant: Variant) -> hatt_core::HattMapping {
    hatt_with(
        h,
        &HattOptions {
            variant,
            naive_weight: false,
            ..Default::default()
        },
    )
}

#[test]
fn paired_and_cached_agree_exactly_at_n32() {
    for (name, h) in workloads() {
        assert_eq!(h.n_modes(), 32, "{name} must have 32 modes");
        let paired = build(&h, Variant::Paired);
        let cached = build(&h, Variant::Cached);
        // Same tree, node for node.
        assert_eq!(
            paired.tree(),
            cached.tree(),
            "{name}: Algorithm 3 cache changed the constructed tree"
        );
        // Same Majorana strings (the mapping itself).
        for k in 0..2 * h.n_modes() {
            assert_eq!(paired.majorana(k), cached.majorana(k), "{name}, M{k}");
        }
        // Same objective trajectory, iteration by iteration.
        let weights = |m: &hatt_core::HattMapping| -> Vec<usize> {
            m.stats()
                .iterations
                .iter()
                .map(|it| it.settled_weight)
                .collect()
        };
        assert_eq!(weights(&paired), weights(&cached), "{name}: weights");
        // The cache is a pure speedup: it removes every traversal step.
        assert_eq!(cached.stats().total_traversal_steps(), 0, "{name}");
        assert!(paired.stats().total_traversal_steps() > 0, "{name}");
        // The memoized selection kernel must be doing the heavy lifting.
        assert!(
            cached.stats().memo_hits > cached.stats().memo_misses,
            "{name}: memo should mostly hit ({} hits / {} misses)",
            cached.stats().memo_hits,
            cached.stats().memo_misses
        );
    }
}

#[test]
fn hatt_savings_vs_jw_are_non_negative_at_n32() {
    // The tentpole guarantee at scale: on the 32-mode neutrino model both
    // the default greedy (amortized objective) and the quality portfolio
    // save Pauli weight over Jordan-Wigner — `neutrino_scaling` reports
    // the same quantity as a signed percentage.
    use hatt_mappings::{jordan_wigner, SelectionPolicy};
    let h = preprocess(&NeutrinoModel::new(8, 2).hamiltonian());
    assert_eq!(h.n_modes(), 32);
    let w_jw = jordan_wigner(32).map_majorana_sum(&h).weight();
    for policy in [SelectionPolicy::Greedy, SelectionPolicy::quality()] {
        let m = hatt_with(&h, &HattOptions::with_policy(policy));
        let w = m.map_majorana_sum(&h).weight();
        assert!(
            w <= w_jw,
            "neutrino 8x2F/{policy}: HATT ({w}) must not lose to JW ({w_jw})"
        );
    }
}

#[test]
fn all_variants_validate_at_n32() {
    for (name, h) in workloads() {
        for variant in [Variant::Unopt, Variant::Paired, Variant::Cached] {
            let m = build(&h, variant);
            let report = validate(&m);
            assert!(
                report.is_valid(),
                "{name}/{variant:?}: invalid mapping: {report:?}"
            );
            if variant != Variant::Unopt {
                assert!(
                    report.vacuum_preserving,
                    "{name}/{variant:?} must preserve the vacuum"
                );
            }
            // The settled-weight objective equals the mapped weight.
            let hq = m.map_majorana_sum(&h);
            assert_eq!(
                m.stats().total_weight(),
                hq.weight(),
                "{name}/{variant:?}: objective drifted from mapped weight"
            );
            assert_eq!(hq.n_qubits(), 32, "{name}/{variant:?}: qubit count");
        }
    }
}
