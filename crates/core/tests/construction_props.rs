//! Property tests for the HATT construction: structural tree invariants,
//! pairing guarantees, and greedy-objective consistency on random
//! Hamiltonians.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt_core::{HattOptions, Mapper, Variant};
/// One construction through the `Mapper` handle (fresh handle per
/// call, so every construction is cold — same results and stats as
/// the old `hatt_with` free function).
fn hatt_with(h: &hatt_fermion::MajoranaSum, opts: &HattOptions) -> hatt_core::HattMapping {
    Mapper::with_options(*opts)
        .map(h)
        .expect("valid Hamiltonian")
}

use hatt_fermion::models::random_hermitian;
use hatt_fermion::MajoranaSum;
use hatt_mappings::{validate, Branch, FermionMapping};
use proptest::prelude::*;

fn random_majorana_sum(n: usize, one: usize, two: usize, seed: u64) -> MajoranaSum {
    let mut h = MajoranaSum::from_fermion(&random_hermitian(n, one, two, seed));
    let _ = h.take_identity();
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trees_are_complete_and_correctly_sized(
        n in 2usize..9,
        seed in 0u64..300,
    ) {
        let h = random_majorana_sum(n, 4, 3, seed);
        let m = hatt_with(&h, &HattOptions::default());
        let tree = m.tree();
        prop_assert_eq!(tree.n_modes(), n);
        prop_assert_eq!(tree.n_leaves(), 2 * n + 1);
        // Every internal node has exactly three children, every non-root
        // node has a parent consistent with its parent's child table.
        for node in 0..tree.n_nodes() {
            if tree.is_leaf(node) {
                prop_assert!(tree.children(node).is_none());
            } else {
                let ch = tree.children(node).expect("internal children");
                for (slot, &c) in ch.iter().enumerate() {
                    let (p, b) = tree.parent(c).expect("child has parent");
                    prop_assert_eq!(p, node);
                    prop_assert_eq!(b, Branch::ALL[slot]);
                }
            }
        }
        prop_assert!(tree.parent(tree.root()).is_none());
    }

    #[test]
    fn discarded_leaf_is_z_descendant_of_root(
        n in 2usize..9,
        seed in 0u64..300,
    ) {
        // Algorithm 2 discards S_2N; the construction must leave leaf 2N
        // as the unpaired Z-descendant of the root.
        let h = random_majorana_sum(n, 4, 3, seed);
        let m = hatt_with(&h, &HattOptions { variant: Variant::Cached, naive_weight: false, ..Default::default() });
        let tree = m.tree();
        prop_assert_eq!(tree.desc_z(tree.root()), 2 * n);
    }

    #[test]
    fn per_iteration_weights_are_monotone_in_information(
        n in 2usize..8,
        seed in 0u64..200,
    ) {
        // Each iteration settles a nonnegative weight bounded by the term
        // count, and the total equals the sum of the iterations.
        let h = random_majorana_sum(n, 5, 3, seed);
        let m = hatt_with(&h, &HattOptions::default());
        let stats = m.stats();
        prop_assert_eq!(stats.iterations.len(), n);
        for it in &stats.iterations {
            prop_assert!(it.settled_weight <= stats.n_terms);
        }
        let total: usize = stats.iterations.iter().map(|i| i.settled_weight).sum();
        prop_assert_eq!(total, stats.total_weight());
    }

    #[test]
    fn unopt_objective_never_exceeds_btt_weight_by_much(
        n in 2usize..7,
        seed in 0u64..100,
    ) {
        // Greedy adaptivity should not catastrophically lose to the
        // non-adaptive balanced tree (sanity envelope: within 2×).
        use hatt_mappings::balanced_ternary_tree;
        let h = random_majorana_sum(n, 5, 3, seed);
        let hatt_w = hatt_with(&h, &HattOptions::default())
            .map_majorana_sum(&h)
            .weight();
        let btt_w = balanced_ternary_tree(n).map_majorana_sum(&h).weight();
        prop_assert!(
            hatt_w <= 2 * btt_w.max(1),
            "HATT {hatt_w} vs BTT {btt_w}"
        );
    }

    #[test]
    fn mapped_hamiltonians_are_hermitian(
        n in 2usize..8,
        seed in 0u64..200,
    ) {
        let h = random_majorana_sum(n, 5, 4, seed);
        for variant in [Variant::Unopt, Variant::Paired, Variant::Cached] {
            let m = hatt_with(&h, &HattOptions { variant, naive_weight: false, ..Default::default() });
            let hq = m.map_majorana_sum(&h);
            prop_assert!(hq.is_hermitian(1e-8), "{variant:?} broke Hermiticity");
        }
    }

    #[test]
    fn construction_is_deterministic(
        n in 2usize..7,
        seed in 0u64..100,
    ) {
        let h = random_majorana_sum(n, 4, 3, seed);
        let a = hatt_with(&h, &HattOptions::default());
        let b = hatt_with(&h, &HattOptions::default());
        for k in 0..2 * n {
            prop_assert_eq!(a.majorana(k), b.majorana(k));
        }
    }

    #[test]
    fn all_variants_remain_valid_under_duplicate_heavy_hamiltonians(
        n in 2usize..6,
        seed in 0u64..50,
    ) {
        // Hamiltonians with very few distinct terms create massive ties in
        // the greedy selection; validity must survive arbitrary tie-breaks.
        let mut h = MajoranaSum::new(n);
        h.add(hatt_pauli::Complex64::ONE, &[0, 1]);
        if seed % 2 == 0 {
            h.add(hatt_pauli::Complex64::ONE, &[0, (2 * n - 1) as u32]);
        }
        for variant in [Variant::Unopt, Variant::Cached] {
            let m = hatt_with(&h, &HattOptions { variant, naive_weight: false, ..Default::default() });
            prop_assert!(validate(&m).is_valid(), "{variant:?} invalid");
        }
    }
}
