//! Property tests for the structure-keyed mapping cache
//! (`hatt_core::batch`): the canonical key must be a pure function of
//! the term *structure* (never of insertion order, duplicate inserts or
//! coefficients), and a cache hit must be indistinguishable from a
//! fresh construction on the new operator.

use hatt_core::{structure_key, HattOptions, Mapper, MappingCache};
use hatt_fermion::models::random_hermitian;
use hatt_fermion::MajoranaSum;
use hatt_mappings::{validate, FermionMapping};
use hatt_pauli::Complex64;
use proptest::prelude::*;

fn random_majorana_sum(n: usize, seed: u64) -> MajoranaSum {
    let mut h = MajoranaSum::from_fermion(&random_hermitian(n, 5, 4, seed));
    let _ = h.take_identity();
    h
}

/// Re-adds the terms of `h` rotated by `rot`, splitting every
/// coefficient into two duplicate inserts (`c/2 + c/2`) — the two
/// canonicalization paths the key must be blind to.
fn reinsert_rotated_with_duplicates(h: &MajoranaSum, rot: usize) -> MajoranaSum {
    let terms: Vec<(Vec<u32>, Complex64)> = h.iter().map(|(i, c)| (i.to_vec(), c)).collect();
    let mut out = MajoranaSum::new(h.n_modes());
    let k = terms.len().max(1);
    for j in 0..terms.len() {
        let (idx, c) = &terms[(j + rot) % k];
        let half = *c * 0.5;
        out.add(half, idx);
        out.add(half, idx);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn key_is_invariant_under_reordering_and_duplicate_insertion(
        n in 2usize..7,
        seed in 0u64..200,
        rot in 1usize..13,
    ) {
        let h = random_majorana_sum(n, seed);
        let rebuilt = reinsert_rotated_with_duplicates(&h, rot);
        prop_assert_eq!(rebuilt.n_terms(), h.n_terms(), "structure drifted");
        prop_assert_eq!(structure_key(&rebuilt), structure_key(&h));
        // Coefficients are not part of the key either.
        prop_assert_eq!(structure_key(&h.scaled(3.25)), structure_key(&h));
    }

    #[test]
    fn keys_of_distinct_structures_differ(
        n in 2usize..7,
        seed in 0u64..200,
    ) {
        // Not a collision-freeness proof (64-bit hashes collide
        // somewhere), but random distinct structures must not collide in
        // practice — and the cache would survive even if they did, via
        // the full-key comparison exercised below and unit-tested with a
        // forced collision in `batch::tests`.
        let h = random_majorana_sum(n, seed);
        let other = random_majorana_sum(n, seed + 1000);
        let distinct = {
            let a: Vec<Vec<u32>> = h.iter().map(|(i, _)| i.to_vec()).collect();
            let b: Vec<Vec<u32>> = other.iter().map(|(i, _)| i.to_vec()).collect();
            a != b
        };
        if distinct {
            prop_assert_ne!(structure_key(&h), structure_key(&other));
        }
    }

    #[test]
    fn cache_hit_matches_fresh_construction_on_the_new_operator(
        n in 2usize..7,
        seed in 0u64..200,
        factor in 1u32..9,
    ) {
        let warm = random_majorana_sum(n, seed);
        // Same structure, different coefficients: the service case.
        let query = warm.scaled(f64::from(factor) * 0.5);
        let opts = HattOptions::default();
        let cache = MappingCache::new();
        let _ = cache.get_or_build(&warm, &opts);
        let hit = cache.get_or_build(&query, &opts);
        prop_assert_eq!(cache.hits(), 1, "second lookup must hit");

        let fresh = Mapper::with_options(opts).map(&query).unwrap();
        prop_assert_eq!(hit.tree(), fresh.tree(), "hit tree drifted");
        prop_assert_eq!(
            hit.stats().total_weight(),
            fresh.stats().total_weight(),
            "hit weight drifted"
        );
        prop_assert_eq!(
            hit.stats().total_weight(),
            hit.map_majorana_sum(&query).weight(),
            "hit stats disagree with the mapped operator"
        );
        let report = validate(&hit);
        prop_assert!(report.is_valid(), "hit mapping invalid: {:?}", report);
        prop_assert!(report.vacuum_preserving, "hit mapping broke vacuum");
    }

    #[test]
    fn map_many_is_order_preserving_and_cache_oblivious(
        n in 2usize..6,
        seed in 0u64..100,
        workers in 1usize..5,
    ) {
        // A batch with deliberate structure repeats, mapped with and
        // without cache sharing: outputs must equal the element-wise
        // sequential constructions, in input order.
        let a = random_majorana_sum(n, seed);
        let b = random_majorana_sum(n, seed + 500);
        let batch = vec![a.clone(), b.clone(), a.scaled(2.0), b.scaled(0.25), a.clone()];
        let opts = HattOptions { threads: Some(workers), ..Default::default() };
        let maps = Mapper::with_options(opts).map_batch(&batch).unwrap();
        prop_assert_eq!(maps.len(), batch.len());
        for (i, (h, m)) in batch.iter().zip(&maps).enumerate() {
            let solo = Mapper::new().map(h).unwrap();
            prop_assert_eq!(m.tree(), solo.tree(), "slot {} tree drifted", i);
            prop_assert_eq!(
                m.stats().total_weight(),
                solo.stats().total_weight(),
                "slot {} weight drifted", i
            );
        }
    }
}
