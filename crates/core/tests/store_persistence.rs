//! Persistence-tier integration: a `Mapper` built with
//! `MapperBuilder::store_path` must warm-start from disk — a fresh
//! process (modelled by a fresh handle) serving a previously mapped
//! structure out of the store with **zero** constructions and a tree
//! bit-identical to in-memory construction — and a damaged store file
//! must degrade to cache misses, never to errors. The same holds under
//! incremental remapping: a damaged or torn **parent** record costs the
//! ancestor fast path, never correctness.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

use hatt_core::Mapper;
use hatt_fermion::models::random_hermitian;
use hatt_fermion::{HamiltonianDelta, MajoranaSum};
use hatt_mappings::SelectionPolicy;
use hatt_pauli::Complex64;

/// A unique throwaway store path (the container has no tempfile crate).
fn store_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "hatt-store-test-{}-{}.store",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn workload() -> Vec<MajoranaSum> {
    let mut hams: Vec<MajoranaSum> = (2..6).map(MajoranaSum::uniform_singles).collect();
    for seed in [11, 17] {
        let mut h = MajoranaSum::from_fermion(&random_hermitian(4, 5, 4, seed));
        let _ = h.take_identity();
        hams.push(h);
    }
    hams
}

#[test]
fn warm_start_is_bit_identical_and_construction_free() {
    let path = store_path("warm");
    let hams = workload();

    // Pass 1: cold — everything constructs and writes through.
    let cold = Mapper::builder().store_path(&path).build().unwrap();
    let cold_maps: Vec<_> = hams.iter().map(|h| cold.map(h).unwrap()).collect();
    assert_eq!(cold.cache().constructions(), hams.len() as u64);
    let stats = cold.store_stats().unwrap();
    assert_eq!(stats.writes, hams.len() as u64);
    assert_eq!(stats.write_errors, 0);
    drop(cold);

    // Pass 2: a fresh handle on the same file — all store hits, no
    // selection work, trees bit-identical. Coefficients are rescaled to
    // prove the store keys on structure alone.
    let warm = Mapper::builder().store_path(&path).build().unwrap();
    for (h, cold_mapping) in hams.iter().zip(&cold_maps) {
        let warm_mapping = warm.map(&h.scaled(1.75)).unwrap();
        assert_eq!(warm_mapping.tree(), cold_mapping.tree());
    }
    assert_eq!(warm.cache().constructions(), 0, "store replay only");
    let stats = warm.store_stats().unwrap();
    assert_eq!(stats.hits, hams.len() as u64);
    assert_eq!(stats.misses, 0);

    // And the store never changed what gets computed: a store-less
    // mapper agrees bit for bit.
    let reference = Mapper::new();
    for (h, cold_mapping) in hams.iter().zip(&cold_maps) {
        assert_eq!(reference.map(h).unwrap().tree(), cold_mapping.tree());
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_damaged_store_degrades_to_misses_not_errors() {
    let path = store_path("damage");
    let hams = workload();
    {
        let mapper = Mapper::builder().store_path(&path).build().unwrap();
        for h in &hams {
            mapper.map(h).unwrap();
        }
        mapper.sync_store().unwrap();
    }

    // Vandalize the middle of the file: flip a byte well inside the
    // record stream.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    std::fs::write(&path, &bytes).unwrap();

    // The damaged records are skipped on load; every mapping still
    // succeeds (reconstructed where the store lost it) and matches the
    // store-less reference.
    let mapper = Mapper::builder().store_path(&path).build().unwrap();
    let reference = Mapper::new();
    for h in &hams {
        assert_eq!(
            mapper.map(h).unwrap().tree(),
            reference.map(h).unwrap().tree()
        );
    }
    let stats = mapper.store_stats().unwrap();
    assert!(
        stats.misses > 0,
        "the flipped byte should have cost at least one record"
    );
    let _ = std::fs::remove_file(&path);
}

/// A single-term insertion on a structure whose terms are all Majorana
/// pairs — always applicable, always remap-eligible under defaults.
fn quad_delta(n_modes: usize) -> HamiltonianDelta {
    let mut delta = HamiltonianDelta::new(n_modes);
    delta.push_add(Complex64::real(0.5), &[0, 1, 2, 3]).unwrap();
    delta
}

#[test]
fn remap_warm_starts_from_a_parent_record_on_disk() {
    let path = store_path("remap-warm");
    let base = MajoranaSum::uniform_singles(4);
    let delta = quad_delta(4);
    let next = delta.apply(&base).unwrap();

    // Process 1 maps the base and exits; only the parent record is on
    // disk.
    {
        let mapper = Mapper::builder().store_path(&path).build().unwrap();
        mapper.map(&base).unwrap();
        mapper.sync_store().unwrap();
    }

    // Process 2 remaps straight off the stored parent: no cold
    // construction at all, and the result is bit-identical to a fresh
    // build of the edited Hamiltonian.
    let mapper = Mapper::builder().store_path(&path).build().unwrap();
    let incremental = mapper.remap(&base, &delta).unwrap();
    assert_eq!(mapper.cache().remaps(), 1);
    assert_eq!(mapper.cache().constructions(), 0, "ancestor replay only");
    let fresh = Mapper::new().map(&next).unwrap();
    assert_eq!(incremental.tree(), fresh.tree());
    assert_eq!(
        incremental.stats().total_weight(),
        fresh.stats().total_weight()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_damaged_parent_record_degrades_remap_to_a_cold_construct() {
    let path = store_path("remap-damage");
    let base = MajoranaSum::uniform_singles(4);
    let delta = quad_delta(4);
    let next = delta.apply(&base).unwrap();
    {
        let mapper = Mapper::builder().store_path(&path).build().unwrap();
        mapper.map(&base).unwrap();
        mapper.sync_store().unwrap();
    }

    // Vandalize the lone parent record.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5a;
    std::fs::write(&path, &bytes).unwrap();

    // The remap request still succeeds — it silently loses the fast
    // path (no usable ancestor → cold construct, no remap counted) and
    // the output is bit-identical to a store-less fresh build.
    let mapper = Mapper::builder().store_path(&path).build().unwrap();
    let incremental = mapper.remap(&base, &delta).unwrap();
    assert_eq!(mapper.cache().remaps(), 0, "no ancestor to remap from");
    assert_eq!(mapper.cache().constructions(), 1, "degraded to cold");
    let fresh = Mapper::new().map(&next).unwrap();
    assert_eq!(incremental.tree(), fresh.tree());
    assert_eq!(
        incremental.stats().total_weight(),
        fresh.stats().total_weight()
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn a_torn_parent_record_degrades_remap_to_a_cold_construct() {
    let path = store_path("remap-torn");
    let base = MajoranaSum::uniform_singles(4);
    let delta = quad_delta(4);
    let next = delta.apply(&base).unwrap();
    {
        let mapper = Mapper::builder().store_path(&path).build().unwrap();
        mapper.map(&base).unwrap();
        mapper.sync_store().unwrap();
    }

    // A torn write: the process died mid-append, leaving a truncated
    // tail.
    let bytes = std::fs::read(&path).unwrap();
    assert!(bytes.len() > 16);
    std::fs::write(&path, &bytes[..bytes.len() - 16]).unwrap();

    let mapper = Mapper::builder().store_path(&path).build().unwrap();
    let incremental = mapper.remap(&base, &delta).unwrap();
    assert_eq!(mapper.cache().remaps(), 0);
    assert_eq!(mapper.cache().constructions(), 1);
    let fresh = Mapper::new().map(&next).unwrap();
    assert_eq!(incremental.tree(), fresh.tree());

    // The degraded construct wrote through, so a fresh handle serving
    // the same edit hits the store — it self-heals on the first cold
    // build.
    mapper.sync_store().unwrap();
    drop(mapper);
    let healed = Mapper::builder().store_path(&path).build().unwrap();
    let again = healed.remap(&base, &quad_delta(4)).unwrap();
    assert_eq!(again.tree(), fresh.tree());
    let _ = std::fs::remove_file(&path);
}

#[test]
fn the_store_keys_on_options_not_just_structure() {
    let path = store_path("options");
    let h = MajoranaSum::uniform_singles(4);

    let greedy = Mapper::builder().store_path(&path).build().unwrap();
    let greedy_map = greedy.map(&h).unwrap();
    drop(greedy);

    // Same structure, different selection policy: must be a store miss
    // and a fresh construction under the new policy.
    let restarts = Mapper::builder()
        .policy(SelectionPolicy::Restarts)
        .store_path(&path)
        .build()
        .unwrap();
    let restarts_map = restarts.map(&h).unwrap();
    assert_eq!(restarts.cache().constructions(), 1);
    let stats = restarts.store_stats().unwrap();
    assert_eq!((stats.hits, stats.misses), (0, 1));

    let reference = Mapper::builder()
        .policy(SelectionPolicy::Restarts)
        .build()
        .unwrap();
    assert_eq!(restarts_map.tree(), reference.map(&h).unwrap().tree());
    // Both entries coexist now: each policy warm-starts independently.
    drop(restarts);
    let warm = Mapper::builder().store_path(&path).build().unwrap();
    assert_eq!(warm.map(&h).unwrap().tree(), greedy_map.tree());
    assert_eq!(warm.cache().constructions(), 0);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn the_store_serves_repeats_even_with_the_memory_cache_disabled() {
    let path = store_path("nocache");
    let h = MajoranaSum::uniform_singles(5);

    let mapper = Mapper::builder()
        .cache_capacity(0)
        .store_path(&path)
        .build()
        .unwrap();
    let first = mapper.map(&h).unwrap();
    let second = mapper.map(&h.scaled(0.5)).unwrap();
    assert_eq!(first.tree(), second.tree());
    assert_eq!(
        mapper.cache().constructions(),
        1,
        "second map must replay from the store despite cache_capacity(0)"
    );
    let stats = mapper.store_stats().unwrap();
    assert_eq!((stats.hits, stats.writes), (1, 1));
    let _ = std::fs::remove_file(&path);
}
