//! The typed error taxonomy of the public mapping API.
//!
//! Every fallible entry point ([`Mapper`](crate::Mapper) methods, the
//! wire codecs, the batch layer) returns [`HattError`]; the legacy free
//! functions (`hatt`, `hatt_with`, …) are deprecated wrappers that
//! `panic!` with the same messages they always did. No `panic!`/`expect`
//! is reachable from malformed user input on the `Result` path — the
//! service layer relies on this to map untrusted requests safely.

use std::fmt;

use hatt_fermion::DeltaError;
use hatt_mappings::ParsePolicyError;
use hatt_pauli::wire::WireError;

/// Everything the mapping engine can report instead of panicking.
///
/// # Examples
///
/// ```
/// use hatt_core::{HattError, Mapper};
/// use hatt_fermion::MajoranaSum;
///
/// let mapper = Mapper::new();
/// // A zero-mode Hamiltonian is a typed error, not a panic.
/// let err = mapper.map(&MajoranaSum::new(0)).unwrap_err();
/// assert_eq!(err, HattError::EmptyHamiltonian);
///
/// // Policy strings fail with the parse error attached.
/// let err = Mapper::builder().policy_str("anneal:3").build().unwrap_err();
/// assert!(matches!(err, HattError::InvalidPolicy(_)));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HattError {
    /// The Hamiltonian has zero fermionic modes — there is nothing to
    /// map.
    EmptyHamiltonian,
    /// A value refers to a different mode/qubit count than expected
    /// (e.g. a request pinned to `n_modes` carrying a differently-sized
    /// Hamiltonian).
    ModeMismatch {
        /// The mode count the caller expected.
        expected: usize,
        /// The mode count actually found.
        got: usize,
    },
    /// A selection-policy string failed to parse.
    InvalidPolicy(ParsePolicyError),
    /// An explicit worker-thread cap of zero was requested.
    InvalidThreads,
    /// One element of a batch failed; `index` is its position in the
    /// input slice.
    BatchItem {
        /// Position of the failing Hamiltonian in the batch.
        index: usize,
        /// What went wrong with it.
        source: Box<HattError>,
    },
    /// A structural delta could not be applied to its base Hamiltonian
    /// (a removed term was absent, an added term already present, an
    /// index out of range, …) — see [`Mapper::remap`](crate::Mapper::remap).
    Delta(DeltaError),
    /// A `hatt-wire/1` document failed to encode or decode.
    Wire(WireError),
    /// The persistent mapping store failed to open or flush. (Read and
    /// write failures *during* mapping never surface here — they
    /// degrade to cache misses and dropped write-throughs.)
    Store(String),
    /// An internal invariant did not hold. Documented infallible for
    /// valid inputs (and guarded by `debug_assert!` in tests); surfacing
    /// it as an error keeps the invariant out of reach of `panic!` on
    /// the user-facing path.
    Internal(&'static str),
}

impl HattError {
    /// Short machine-readable code, used by the service protocol's error
    /// objects.
    pub fn code(&self) -> &'static str {
        match self {
            HattError::EmptyHamiltonian => "empty_hamiltonian",
            HattError::ModeMismatch { .. } => "mode_mismatch",
            HattError::InvalidPolicy(_) => "invalid_policy",
            HattError::InvalidThreads => "invalid_threads",
            HattError::BatchItem { .. } => "batch_item",
            HattError::Delta(_) => "delta",
            HattError::Wire(_) => "wire",
            HattError::Store(_) => "store",
            HattError::Internal(_) => "internal",
        }
    }

    /// Wraps this error as the failure of batch element `index`.
    pub fn at_index(self, index: usize) -> HattError {
        HattError::BatchItem {
            index,
            source: Box::new(self),
        }
    }
}

impl fmt::Display for HattError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Keep the historical panic wording: the deprecated shims
            // re-panic with this text and `#[should_panic(expected =
            // "at least one mode")]` tests pin it.
            HattError::EmptyHamiltonian => {
                write!(f, "empty Hamiltonian: need at least one mode")
            }
            HattError::ModeMismatch { expected, got } => {
                write!(f, "mode mismatch: expected {expected} modes, got {got}")
            }
            HattError::InvalidPolicy(e) => write!(f, "{e}"),
            HattError::InvalidThreads => {
                write!(f, "invalid worker count: threads must be at least 1")
            }
            HattError::BatchItem { index, source } => {
                write!(f, "batch element {index}: {source}")
            }
            HattError::Delta(e) => write!(f, "cannot apply delta: {e}"),
            HattError::Wire(e) => write!(f, "wire format error: {e}"),
            HattError::Store(msg) => write!(f, "mapping store error: {msg}"),
            HattError::Internal(what) => {
                write!(f, "internal invariant violated: {what} (please report)")
            }
        }
    }
}

impl std::error::Error for HattError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HattError::InvalidPolicy(e) => Some(e),
            HattError::Delta(e) => Some(e),
            HattError::Wire(e) => Some(e),
            HattError::BatchItem { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<WireError> for HattError {
    fn from(e: WireError) -> Self {
        HattError::Wire(e)
    }
}

impl From<ParsePolicyError> for HattError {
    fn from(e: ParsePolicyError) -> Self {
        HattError::InvalidPolicy(e)
    }
}

impl From<DeltaError> for HattError {
    fn from(e: DeltaError) -> Self {
        HattError::Delta(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_the_historic_panic_wording() {
        assert!(HattError::EmptyHamiltonian
            .to_string()
            .contains("at least one mode"));
    }

    #[test]
    fn codes_are_stable() {
        let wire = HattError::Wire(WireError::Format { found: "x".into() });
        assert_eq!(wire.code(), "wire");
        assert_eq!(HattError::EmptyHamiltonian.code(), "empty_hamiltonian");
        assert_eq!(HattError::EmptyHamiltonian.at_index(3).code(), "batch_item");
    }

    #[test]
    fn batch_wrapping_carries_index_and_source() {
        let e = HattError::EmptyHamiltonian.at_index(2);
        assert!(e.to_string().contains("batch element 2"));
        assert!(e.to_string().contains("at least one mode"));
        match e {
            HattError::BatchItem { index, source } => {
                assert_eq!(index, 2);
                assert_eq!(*source, HattError::EmptyHamiltonian);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn conversions_from_lower_layers() {
        let e: HattError = WireError::Format { found: "".into() }.into();
        assert!(matches!(e, HattError::Wire(_)));
        let parse = "bogus"
            .parse::<hatt_mappings::SelectionPolicy>()
            .unwrap_err();
        let e: HattError = parse.into();
        assert!(matches!(e, HattError::InvalidPolicy(_)));
    }
}
