//! Batched construction: [`map_many`] maps a slice of Hamiltonians
//! concurrently, consulting a structure-keyed [`MappingCache`] so
//! repeated structures skip the `O(N³)` selection work entirely.
//!
//! ## Why structure, not value
//!
//! The HATT construction never looks at a coefficient: the
//! [`TermEngine`](hatt_mappings::TermEngine) is built from each term's
//! Majorana *support* (its canonical index set), and every selection,
//! tie-break and reduce is a pure function of those supports. Two
//! Hamiltonians with the same term supports therefore build the *same
//! tree*, whatever their coefficients — which is exactly the common case
//! for a service sweeping molecular geometries or coupling constants:
//! the integrals change every query, the term structure almost never.
//!
//! The cache key is the canonical hash ([`structure_key`]) of the term
//! multiset `(n_modes, {sorted index sets})`. [`MajoranaSum`] already
//! canonicalizes on insert (terms are sorted, squares cancelled,
//! duplicates merged, stored in a `BTreeMap`), so the key is invariant
//! under term reordering and duplicate-term insertion by construction —
//! `crates/core/tests/cache_props.rs` pins both. The hash is only the
//! fast path: every hit is confirmed by comparing the **full** structure
//! (and the construction options), so distinct structures can never
//! alias through a 64-bit collision.
//!
//! ## What a hit returns
//!
//! A hit replays the cached merge sequence against the *new* operator
//! (no candidate selection — the `O(N³)` part — just `N` reduces), so
//! the returned [`HattMapping`] carries exact per-step settled weights
//! for the new Hamiltonian and the tree is re-validated against it in
//! the process: replay re-attaches every internal node and re-reduces
//! the new engine, which would panic on any structural mismatch.
//!
//! Probes also dedupe **in flight**: a structure is claimed at first
//! probe, so when a concurrent batch contains the same structure many
//! times, exactly one worker constructs it and the rest block briefly
//! on its slot and replay — the cache never does the same `O(N³)` work
//! twice, even within one [`map_many`] call.
//!
//! ## Eviction
//!
//! A cache built with [`MappingCache::with_capacity`] bounds the number
//! of stored constructions with LRU eviction (probing an entry marks it
//! used; the least-recently-used *resolved* entry is evicted first —
//! in-flight constructions are never evicted). The default
//! [`MappingCache::new`] stays unbounded, preserving the pre-eviction
//! behaviour; capacity `0` disables caching (and with it the in-flight
//! dedup) entirely, which the perf harness uses to keep timing loops
//! honest. Evicting never changes results: a re-probed structure simply
//! reconstructs, and construction is a pure function of structure.
//!
//! # Examples
//!
//! ```
//! use hatt_core::Mapper;
//! use hatt_fermion::MajoranaSum;
//! use hatt_mappings::FermionMapping;
//! use hatt_pauli::Complex64;
//!
//! // Two Hamiltonians with identical structure, different coefficients.
//! let mut a = MajoranaSum::new(2);
//! a.add(Complex64::ONE, &[0, 1]);
//! a.add(Complex64::ONE, &[2, 3]);
//! let mut b = MajoranaSum::new(2);
//! b.add(Complex64::real(0.25), &[0, 1]);
//! b.add(Complex64::real(4.0), &[2, 3]);
//!
//! let mapper = Mapper::new(); // owns an unbounded MappingCache
//! let maps = mapper.map_batch(&[a, b])?;
//! assert_eq!(maps.len(), 2);
//! // Output order matches input order; same structure → same tree.
//! assert_eq!(maps[0].tree(), maps[1].tree());
//! assert_eq!(mapper.cache().hits(), 1);
//! assert_eq!(mapper.cache().misses(), 1);
//! # Ok::<(), hatt_core::HattError>(())
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

// Under `--cfg interleave` (the model-checking CI job) the slot and
// cache locks come from the instrumented `vendor/interleave` shims, so
// the explorer can enumerate every schedule of the in-flight-dedup
// protocol (`interleave_models` below). The shims pass through to
// `std` when no model is active, so ordinary tests are unaffected even
// in an interleave build.
#[cfg(interleave)]
use interleave::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(interleave))]
use std::sync::{Condvar, Mutex, MutexGuard};

use hatt_fermion::{HamiltonianDelta, MajoranaSum};
use hatt_mappings::{NodeId, TernaryTree};
// A free no-op unless the calling thread is inside a `Tracer::scope`
// (the service's dispatch loop installs one per traced request): the
// cache tiers report where a request's time went without any plumbing
// through these signatures.
use hatt_trace::span;

use crate::algorithm::{
    hatt_remap, hatt_replay, hatt_with_impl, remap_supported, HattMapping, HattOptions,
};
use crate::error::HattError;
use crate::store::{StoreTier, StoreTierStats};

/// The canonical structure of a Hamiltonian: mode count plus every
/// term's support, in the deterministic (sorted) order [`MajoranaSum`]
/// stores them. Coefficients are deliberately excluded — see the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Structure {
    pub(crate) n_modes: usize,
    pub(crate) terms: Vec<Vec<u32>>,
}

impl Structure {
    pub(crate) fn of(h: &MajoranaSum) -> Self {
        Structure {
            n_modes: h.n_modes(),
            terms: h.iter().map(|(support, _)| support.to_vec()).collect(),
        }
    }

    /// FNV-1a over the structure, with per-term length prefixes so term
    /// boundaries cannot alias (`{0,1},{2}` vs `{0},{1,2}`).
    pub(crate) fn hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut acc = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                acc ^= u64::from(byte);
                acc = acc.wrapping_mul(PRIME);
            }
        };
        eat(self.n_modes as u64);
        eat(self.terms.len() as u64);
        for term in &self.terms {
            eat(term.len() as u64);
            for &idx in term {
                eat(u64::from(idx));
            }
        }
        acc
    }
}

/// The canonical structure hash of a Hamiltonian — the [`MappingCache`]
/// fast-path key. Invariant under term reordering and duplicate-term
/// insertion (both are canonicalized away by [`MajoranaSum::add`]);
/// independent of coefficients and of process/run (plain FNV-1a, no
/// randomized state).
///
/// # Examples
///
/// ```
/// use hatt_core::structure_key;
/// use hatt_fermion::MajoranaSum;
/// use hatt_pauli::Complex64;
///
/// let mut a = MajoranaSum::new(2);
/// a.add(Complex64::ONE, &[0, 1]);
/// a.add(Complex64::ONE, &[2, 3]);
/// let mut b = MajoranaSum::new(2);
/// b.add(Complex64::real(2.0), &[2, 3]); // different order, coefficients
/// b.add(Complex64::real(0.5), &[1, 0]); // and index permutation
/// assert_eq!(structure_key(&a), structure_key(&b));
/// ```
pub fn structure_key(h: &MajoranaSum) -> u64 {
    Structure::of(h).hash()
}

/// The merge sequence that rebuilds `tree` bottom-up: each internal
/// node's `[X, Y, Z]` children in qubit (attach) order. Children always
/// have smaller node ids than their parent, so replaying in this order
/// is valid.
#[allow(clippy::expect_used)]
pub(crate) fn merge_sequence(tree: &TernaryTree) -> Vec<[NodeId; 3]> {
    (0..tree.n_modes())
        .map(|q| {
            tree.children(tree.internal_of(q))
                // hatt-lint: allow(panic) -- internal_of(q) returns an internal node, which always has children
                .expect("internal nodes have children")
        })
        .collect()
}

/// The lifecycle of one cached construction. A structure is *claimed*
/// at first probe (state `Pending`), so concurrent workers mapping the
/// same structure dedupe the work: one owner constructs, followers
/// block on the slot and replay — "repeated structures skip
/// construction" holds even inside a single concurrent batch.
#[derive(Debug)]
enum SlotState {
    /// The claiming worker is still constructing.
    Pending,
    /// The winning merge sequence is available.
    Ready(Vec<[NodeId; 3]>),
    /// The owner unwound without filling the slot; followers fall back
    /// to their own construction (and presumably hit the same panic).
    Failed,
}

#[derive(Debug)]
struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fill(&self, seq: Vec<[NodeId; 3]>) {
        *self.lock() = SlotState::Ready(seq);
        self.ready.notify_all();
    }

    /// Marks the slot failed — but only while still pending, so the
    /// owner's unwind guard cannot clobber a filled slot.
    fn fail(&self) {
        let mut state = self.lock();
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Failed;
            self.ready.notify_all();
        }
    }

    /// Blocks until the owner resolves the slot; `None` means the owner
    /// failed and the caller should construct for itself.
    fn wait(&self) -> Option<Vec<[NodeId; 3]>> {
        let mut state = self.lock();
        loop {
            match &*state {
                SlotState::Pending => {
                    state = self.ready.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                SlotState::Ready(seq) => return Some(seq.clone()),
                SlotState::Failed => return None,
            }
        }
    }
}

/// One cache entry: the full structure + options (collision guard), the
/// shared construction slot, and the LRU clock stamp of its last probe.
#[derive(Debug)]
struct CacheEntry {
    options: HattOptions,
    structure: Structure,
    slot: Arc<Slot>,
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// Hash buckets; every probe compares the full structure + options.
    /// A `BTreeMap` so eviction scans the buckets in a deterministic
    /// (ascending-hash) order — no `HashMap` iteration anywhere on the
    /// result path (`hatt-lint`'s determinism rule pins this).
    buckets: BTreeMap<u64, Vec<CacheEntry>>,
    /// LRU bound: `None` = unbounded, `Some(0)` = caching disabled.
    capacity: Option<usize>,
    /// Monotonic probe clock stamping `CacheEntry::last_used`.
    tick: u64,
    entries: usize,
    hits: u64,
    misses: u64,
}

impl CacheInner {
    /// Finds or claims the entry for `(structure, options)`: returns the
    /// slot plus whether the caller just became its owner (and must
    /// construct and fill it). Runs under the cache lock, so exactly one
    /// prober per structure ever owns. A bounded cache evicts its
    /// least-recently-used resolved entry when the insert overflows.
    fn probe(
        &mut self,
        hash: u64,
        structure: &Structure,
        options: &HattOptions,
    ) -> (Arc<Slot>, bool) {
        let tick = self.tick;
        self.tick += 1;
        let bucket = self.buckets.entry(hash).or_default();
        if let Some(entry) = bucket
            .iter_mut()
            .find(|e| e.options == *options && e.structure == *structure)
        {
            entry.last_used = tick;
            self.hits += 1;
            return (Arc::clone(&entry.slot), false);
        }
        self.misses += 1;
        let slot = Slot::new();
        bucket.push(CacheEntry {
            options: *options,
            structure: structure.clone(),
            slot: Arc::clone(&slot),
            last_used: tick,
        });
        self.entries += 1;
        self.evict_to_capacity();
        (slot, true)
    }

    /// Read-only lookup of a *resolved* entry's merge sequence. Unlike
    /// [`CacheInner::probe`] this never claims, never blocks on a
    /// pending slot, and moves no counters or LRU clocks — it is the
    /// remap path asking "do we happen to still know the ancestor's
    /// tree?", and a miss there is not a cache miss of the requested
    /// structure. (Locking a slot under the cache lock is fine; eviction
    /// already does it.)
    fn peek(
        &self,
        hash: u64,
        structure: &Structure,
        options: &HattOptions,
    ) -> Option<Vec<[NodeId; 3]>> {
        let entry = self
            .buckets
            .get(&hash)?
            .iter()
            .find(|e| e.options == *options && e.structure == *structure)?;
        match &*entry.slot.lock() {
            SlotState::Ready(seq) => Some(seq.clone()),
            _ => None,
        }
    }

    /// Evicts least-recently-used *resolved* entries until the bound
    /// holds. Pending entries (a worker is constructing; followers may
    /// be blocked on the slot) are never evicted, so the cache can
    /// transiently exceed its bound by the number of in-flight
    /// constructions.
    fn evict_to_capacity(&mut self) {
        let Some(cap) = self.capacity else { return };
        while self.entries > cap {
            let mut victim: Option<(u64, u64)> = None; // (last_used, hash)
            for (&hash, bucket) in &self.buckets {
                for e in bucket {
                    if matches!(*e.slot.lock(), SlotState::Pending) {
                        continue;
                    }
                    if victim.is_none_or(|(lu, _)| e.last_used < lu) {
                        victim = Some((e.last_used, hash));
                    }
                }
            }
            let Some((lu, hash)) = victim else {
                break; // everything in flight; nothing evictable yet
            };
            if let Some(bucket) = self.buckets.get_mut(&hash) {
                let before = bucket.len();
                bucket.retain(|e| e.last_used != lu);
                self.entries -= before - bucket.len();
                // Drop emptied buckets too: a bounded cache in a
                // long-running service must not leak one map key per
                // structure ever seen.
                if bucket.is_empty() {
                    self.buckets.remove(&hash);
                }
            }
        }
    }
}

/// Cleans up after an owner that unwinds before filling its slot: the
/// slot is marked `Failed` so blocked followers never deadlock, and the
/// entry is **removed** from the cache so the *next* probe of that
/// structure claims a fresh slot and retries the construction — a
/// one-off panic must not poison the structure forever (nor inflate the
/// hit counter with probes that then do full uncached work).
struct FailOnUnwind<'a> {
    cache: &'a MappingCache,
    hash: u64,
    slot: &'a Arc<Slot>,
}

impl Drop for FailOnUnwind<'_> {
    fn drop(&mut self) {
        self.slot.fail();
        let inner = &mut *self.cache.lock();
        if let Some(bucket) = inner.buckets.get_mut(&self.hash) {
            let before = bucket.len();
            bucket.retain(|e| !Arc::ptr_eq(&e.slot, self.slot));
            inner.entries -= before - bucket.len();
            if bucket.is_empty() {
                inner.buckets.remove(&self.hash);
            }
        }
    }
}

/// A thread-safe cache of HATT constructions keyed by Hamiltonian
/// *structure* (see the [module docs](self)). A
/// [`Mapper`](crate::Mapper) owns one; share the mapper across batches
/// to carry warm entries between calls.
///
/// [`MappingCache::new`] is unbounded (each entry is just a merge
/// sequence, `24·N` bytes); [`MappingCache::with_capacity`] bounds the
/// entry count with LRU eviction — the service configuration.
///
/// A cache may additionally carry a **persistent second tier** (see
/// [`MapperBuilder::store_path`](crate::MapperBuilder::store_path)): an
/// in-memory miss then consults the on-disk store before constructing,
/// and every fresh construction is written through — so a structure
/// computed once is never computed again, across restarts. Store hits
/// replay exactly like in-memory hits (bit-identical, zero selection
/// work) and count toward [`MappingCache::hits`] *of the store tier*,
/// reported separately via the mapper's store stats.
#[derive(Debug, Default)]
pub struct MappingCache {
    inner: Mutex<CacheInner>,
    /// The optional on-disk tier. Store I/O happens *outside* the cache
    /// lock (only the slot owner for a structure touches the store, so
    /// disk latency never blocks probes of other structures).
    store: Option<StoreTier>,
    /// Real constructions run (selection work actually done): misses of
    /// *both* tiers. The persistence smoke test pins this at zero for a
    /// fully warm-started daemon.
    constructions: AtomicU64,
    /// Incremental rebuilds run by the remap fast path
    /// ([`MappingCache::try_remap_or_build`]): the ancestor's merge
    /// sequence was found and replay-with-reselection replaced a cold
    /// construction. Deliberately *not* counted in `constructions` —
    /// the differential harness pins remapped workloads at strictly
    /// fewer constructions than fresh ones.
    remaps: AtomicU64,
}

impl MappingCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to `capacity` entries with LRU eviction.
    /// `capacity == 0` disables caching (and in-flight dedup) entirely:
    /// every map is a fresh construction.
    ///
    /// # Examples
    ///
    /// ```
    /// use hatt_core::{HattOptions, MappingCache};
    /// use hatt_fermion::MajoranaSum;
    ///
    /// let cache = MappingCache::with_capacity(1);
    /// let opts = HattOptions::default();
    /// let a = MajoranaSum::uniform_singles(2);
    /// let b = MajoranaSum::uniform_singles(3);
    /// let first = cache.try_get_or_build(&a, &opts)?;
    /// cache.try_get_or_build(&b, &opts)?; // evicts `a`'s entry
    /// assert_eq!(cache.len(), 1);
    /// // Evict-then-recompute is invisible in the results.
    /// let again = cache.try_get_or_build(&a, &opts)?;
    /// assert_eq!(again.tree(), first.tree());
    /// # Ok::<(), hatt_core::HattError>(())
    /// ```
    pub fn with_capacity(capacity: usize) -> Self {
        MappingCache {
            inner: Mutex::new(CacheInner {
                capacity: Some(capacity),
                ..Default::default()
            }),
            store: None,
            constructions: AtomicU64::new(0),
            remaps: AtomicU64::new(0),
        }
    }

    /// Attaches the persistent tier (build-time only: the cache is not
    /// yet shared).
    pub(crate) fn set_store(&mut self, tier: StoreTier) {
        self.store = Some(tier);
    }

    /// The persistent tier, when one is attached.
    pub(crate) fn store(&self) -> Option<&StoreTier> {
        self.store.as_ref()
    }

    /// Counters and sizes of the persistent tier (`None` when the cache
    /// is memory-only).
    pub fn store_stats(&self) -> Option<StoreTierStats> {
        self.store.as_ref().map(StoreTier::stats)
    }

    /// Real constructions run — probes that missed *every* tier and did
    /// the full selection work. `misses() - constructions()` (plus
    /// store-tier hits) is the work the tiers saved.
    pub fn constructions(&self) -> u64 {
        self.constructions.load(Ordering::Relaxed)
    }

    /// Incremental rebuilds run by [`MappingCache::try_remap_or_build`]
    /// — probes that missed both tiers for the *requested* structure but
    /// found the ancestor's tree and re-selected only the delta's
    /// frontier instead of constructing cold.
    pub fn remaps(&self) -> u64 {
        self.remaps.load(Ordering::Relaxed)
    }

    /// Runs a real construction (both tiers missed), counting it.
    fn construct(&self, h: &MajoranaSum, options: &HattOptions) -> Result<HattMapping, HattError> {
        self.constructions.fetch_add(1, Ordering::Relaxed);
        span("construct", || hatt_with_impl(h, options))
    }

    /// The configured entry bound (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.lock().capacity
    }

    /// Number of cached constructions.
    pub fn len(&self) -> usize {
        self.lock().entries
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes that found the structure already claimed or built (their
    /// construction work was skipped or deduplicated).
    pub fn hits(&self) -> u64 {
        self.lock().hits
    }

    /// Probes that claimed a fresh structure (and ran a construction).
    pub fn misses(&self) -> u64 {
        self.lock().misses
    }

    /// Maps one Hamiltonian through the cache: on a structure hit the
    /// cached merge sequence is replayed against `h` (no selection
    /// work); on a miss a full construction runs and fills the entry.
    /// Concurrent probes of the *same* structure dedupe — the first
    /// claims and constructs, the rest block until the sequence is
    /// ready, then replay. Either way the result is bit-identical to an
    /// uncached construction — construction is a pure function of
    /// structure, which is what makes the cache sound.
    ///
    /// Invalid input (zero modes) comes back as a typed [`HattError`];
    /// the claimed entry is removed again so the structure is not
    /// poisoned.
    pub fn try_get_or_build(
        &self,
        h: &MajoranaSum,
        options: &HattOptions,
    ) -> Result<HattMapping, HattError> {
        self.resolve(h, options, None)
    }

    /// Maps the Hamiltonian obtained by applying `delta` to `prev`,
    /// reusing `prev`'s construction wherever possible:
    ///
    /// 1. If the *post-delta* structure hits either tier, the cached
    ///    merge sequence is replayed — the delta turned out to land on
    ///    a structure already known.
    /// 2. Otherwise, if `prev`'s merge sequence is still available
    ///    (in memory or on disk) and the options admit it
    ///    (single-pass greedy policies, paired variants), the tree is
    ///    rebuilt *incrementally*: only candidate triples whose
    ///    subtrees the delta touches are re-scored, the rest of the
    ///    previous selection is replayed. The result is bit-identical
    ///    to a fresh construction (`tests/remap_differential.rs`), and
    ///    the write-through record carries `prev`'s structure hash as
    ///    its `lineage`.
    /// 3. Otherwise it degrades to an ordinary cold construction.
    ///
    /// A delta that does not apply cleanly to `prev` (removing an
    /// absent term, adding a present one, mode mismatch) is
    /// [`HattError::Delta`].
    pub fn try_remap_or_build(
        &self,
        prev: &MajoranaSum,
        delta: &HamiltonianDelta,
        options: &HattOptions,
    ) -> Result<HattMapping, HattError> {
        let next = delta.apply(prev)?;
        let prev_structure = Structure::of(prev);
        let touched = delta.support_touched();
        self.resolve(&next, options, Some((&prev_structure, &touched)))
    }

    /// The shared probe/own/follow flow behind
    /// [`MappingCache::try_get_or_build`] (no ancestor) and
    /// [`MappingCache::try_remap_or_build`] (ancestor = the pre-delta
    /// structure plus the touched Majorana indices). The ancestor is
    /// consulted only where a cold construction would otherwise run, so
    /// it can change how fast a result is produced but never which one.
    fn resolve(
        &self,
        h: &MajoranaSum,
        options: &HattOptions,
        ancestor: Option<(&Structure, &[u32])>,
    ) -> Result<HattMapping, HattError> {
        // The worker cap changes scheduling, never results: normalize it
        // out of the cache identity.
        let norm = HattOptions {
            threads: None,
            ..*options
        };
        if self.capacity() == Some(0) {
            // In-memory caching disabled: still counted as a miss for
            // observability, and the persistent tier (if any) still
            // works — it is a separate knob.
            self.lock().misses += 1;
            let structure = Structure::of(h);
            if let Some(tier) = &self.store {
                if let Some(seq) = span("store.load", || tier.load(&structure, &norm)) {
                    return Ok(span("cache.replay", || hatt_replay(h, options, &seq)));
                }
            }
            if let Some(mapping) = self.remap_from_ancestor(h, options, &norm, ancestor)? {
                if let Some(tier) = &self.store {
                    span("store.save", || {
                        tier.save(&structure, &norm, &mapping, ancestor.map(|(s, _)| s.hash()));
                    });
                }
                return Ok(mapping);
            }
            let mapping = self.construct(h, options)?;
            if let Some(tier) = &self.store {
                span("store.save", || {
                    tier.save(&structure, &norm, &mapping, None)
                });
            }
            return Ok(mapping);
        }
        let structure = Structure::of(h);
        let hash = structure.hash();
        let (slot, owner) = span("cache.probe", || self.lock().probe(hash, &structure, &norm));
        if owner {
            let guard = FailOnUnwind {
                cache: self,
                hash,
                slot: &slot,
            };
            // Second tier: a record on disk skips the construction.
            // Only the slot owner reaches the store, so concurrent
            // probes of one structure cost one disk read — and store
            // I/O runs outside the cache lock.
            if let Some(seq) = self
                .store
                .as_ref()
                .and_then(|tier| span("store.load", || tier.load(&structure, &norm)))
            {
                let mapping = span("cache.replay", || hatt_replay(h, options, &seq));
                slot.fill(seq);
                std::mem::forget(guard);
                return Ok(mapping);
            }
            if let Some(mapping) = self.remap_from_ancestor(h, options, &norm, ancestor)? {
                // Same write-through-then-publish order as a cold
                // construction, with the ancestor recorded as lineage.
                if let Some(tier) = &self.store {
                    span("store.save", || {
                        tier.save(&structure, &norm, &mapping, ancestor.map(|(s, _)| s.hash()));
                    });
                }
                slot.fill(merge_sequence(mapping.tree()));
                std::mem::forget(guard);
                return Ok(mapping);
            }
            match self.construct(h, options) {
                Ok(mapping) => {
                    // Write-through before publishing the slot, so a
                    // follower observing `Ready` implies the record is
                    // (best-effort) on its way to disk.
                    if let Some(tier) = &self.store {
                        span("store.save", || {
                            tier.save(&structure, &norm, &mapping, None)
                        });
                    }
                    slot.fill(merge_sequence(mapping.tree()));
                    // fill() resolved the slot, so the guard's cleanup
                    // must not run — the entry stays cached.
                    std::mem::forget(guard);
                    Ok(mapping)
                }
                // Dropping the guard fails the slot and removes the
                // entry, exactly as an unwind would.
                Err(e) => Err(e),
            }
        } else {
            match slot.wait() {
                Some(seq) => Ok(span("cache.replay", || hatt_replay(h, options, &seq))),
                // The owner failed; reproduce its outcome independently.
                None => self.construct(h, options),
            }
        }
    }

    /// The incremental fast path: looks the ancestor's merge sequence up
    /// (memory first — read-only peek, no counters — then the
    /// persistent tier) and rebuilds from it when the options admit the
    /// remap kernel. `Ok(None)` means "no usable ancestor, construct
    /// cold"; any damaged, missing or mismatched ancestor record lands
    /// there, so remap lineage faults degrade gracefully
    /// (`tests/store_persistence.rs`).
    fn remap_from_ancestor(
        &self,
        h: &MajoranaSum,
        options: &HattOptions,
        norm: &HattOptions,
        ancestor: Option<(&Structure, &[u32])>,
    ) -> Result<Option<HattMapping>, HattError> {
        let Some((prev_structure, touched)) = ancestor else {
            return Ok(None);
        };
        let n = h.n_modes();
        if n == 0 || prev_structure.n_modes != n || !remap_supported(norm) {
            return Ok(None);
        }
        let prev_hash = prev_structure.hash();
        let seq = self
            .lock()
            .peek(prev_hash, prev_structure, norm)
            .or_else(|| {
                self.store
                    .as_ref()
                    .and_then(|tier| tier.load(prev_structure, norm))
            });
        let Some(seq) = seq else {
            return Ok(None);
        };
        if seq.len() != n {
            return Ok(None);
        }
        self.remaps.fetch_add(1, Ordering::Relaxed);
        span("remap", || hatt_remap(h, options, &seq, touched)).map(Some)
    }

    /// Panicking convenience over [`MappingCache::try_get_or_build`].
    ///
    /// # Panics
    ///
    /// Panics when `h` has zero modes.
    pub fn get_or_build(&self, h: &MajoranaSum, options: &HattOptions) -> HattMapping {
        self.try_get_or_build(h, options)
            // hatt-lint: allow(panic) -- documented `# Panics` convenience; try_get_or_build is the typed path
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The batch engine behind [`crate::Mapper::map_batch`] and the
/// deprecated `map_many*` shims: maps every Hamiltonian in `hs`,
/// fanning out over scoped worker threads (worker count from
/// [`HattOptions::workers`]) and deduplicating construction work
/// through `cache`. Results come back **in input order**, bit-identical
/// to mapping each element sequentially
/// (`tests/parallel_determinism.rs` pins this).
///
/// The batch level owns the fan-out and splits the worker budget by the
/// number of **distinct structures** (duplicates dedupe onto one
/// in-flight construction, so only distinct structures can make
/// progress concurrently): a batch of `D ≥ workers` distinct structures
/// runs its per-element constructions with `threads = 1` (the batch
/// uses `workers` threads total, not `workers × portfolio members`),
/// while a duplicate-heavy or small batch hands the surplus down — a
/// batch of 24 copies of one Hamiltonian at 8 workers gives its single
/// real construction all 8 threads, never silently running it
/// sequentially.
///
/// A failing element aborts the batch with
/// [`HattError::BatchItem`] naming the first failing input index.
pub(crate) fn map_many_impl(
    hs: &[MajoranaSum],
    options: &HattOptions,
    cache: &MappingCache,
) -> Result<Vec<HattMapping>, HattError> {
    let workers = options.workers();
    // Only distinct structures can construct concurrently (duplicates
    // block on the in-flight slot), so surplus budget is divided by the
    // distinct count, not the batch size, and flows down into the
    // element constructions. Thread counts never affect results, so a
    // hash collision under-counting `distinct` is a scheduling nit, not
    // a correctness issue.
    let distinct = {
        let mut keys: Vec<u64> = hs.iter().map(structure_key).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.len()
    };
    let inner = HattOptions {
        threads: Some((workers / distinct.max(1)).max(1)),
        ..*options
    };
    // Scoped fan-out workers do not inherit the caller's thread-local
    // trace scope; a captured handle re-enters it per item so tier
    // spans (cache.probe, construct, …) stay in the request's trace.
    let scope = hatt_trace::capture();
    let results = parallel::par_map_with(workers, hs, |h| match &scope {
        Some(handle) => handle.scope("batch.item", || cache.try_get_or_build(h, &inner)),
        None => cache.try_get_or_build(h, &inner),
    });
    results
        .into_iter()
        .enumerate()
        .map(|(index, r)| r.map_err(|e| e.at_index(index)))
        .collect()
}

/// Maps every Hamiltonian in `hs` through a fresh per-call cache.
///
/// Deprecated shim; see [`crate::Mapper::map_batch`].
///
/// # Panics
///
/// Panics when any Hamiltonian has zero modes.
#[deprecated(note = "use `Mapper::with_options(opts).map_batch(&hs)` instead")]
pub fn map_many(hs: &[MajoranaSum], options: &HattOptions) -> Vec<HattMapping> {
    // hatt-lint: allow(panic) -- the deprecated shim's documented `# Panics` contract; new code uses Mapper
    map_many_impl(hs, options, &MappingCache::new()).unwrap_or_else(|e| panic!("{e}"))
}

/// `map_many` against a caller-owned cache (hits survive across
/// batches).
///
/// Deprecated shim; see [`crate::Mapper::map_batch`], whose `Mapper`
/// owns the long-lived cache.
///
/// # Panics
///
/// Panics when any Hamiltonian has zero modes.
#[deprecated(note = "use `Mapper::with_options(opts).map_batch(&hs)` instead")]
pub fn map_many_cached(
    hs: &[MajoranaSum],
    options: &HattOptions,
    cache: &MappingCache,
) -> Vec<HattMapping> {
    // hatt-lint: allow(panic) -- the deprecated shim's documented `# Panics` contract; new code uses Mapper
    map_many_impl(hs, options, cache).unwrap_or_else(|e| panic!("{e}"))
}

// The unit tests exercise the deprecated `map_many*` shims on purpose —
// they are the behaviour contract the shims must keep.
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::hatt_with;
    use hatt_mappings::{validate, FermionMapping, SelectionPolicy};
    use hatt_pauli::Complex64;

    fn ham(terms: &[&[u32]]) -> MajoranaSum {
        let modes = terms
            .iter()
            .flat_map(|t| t.iter())
            .max()
            .map_or(1, |&m| m as usize / 2 + 1);
        let mut h = MajoranaSum::new(modes);
        for (i, t) in terms.iter().enumerate() {
            h.add(Complex64::real(1.0 + i as f64), t);
        }
        h
    }

    #[test]
    fn structure_hash_separates_term_boundaries() {
        // Same flattened index stream, different term split.
        let a = ham(&[&[0, 1], &[2]]);
        let b = ham(&[&[0], &[1, 2]]);
        assert_ne!(structure_key(&a), structure_key(&b));
        // Same supports, different n_modes.
        let mut wide = MajoranaSum::new(4);
        wide.add(Complex64::ONE, &[0, 1]);
        let narrow = ham(&[&[0, 1]]);
        assert_ne!(structure_key(&wide), structure_key(&narrow));
    }

    #[test]
    fn full_key_comparison_disambiguates_forced_hash_collisions() {
        // Force two *different* structures into the same bucket: the
        // full-key comparison, not the hash, must decide hits.
        let a = Structure::of(&ham(&[&[0, 1]]));
        let b = Structure::of(&ham(&[&[2, 3]]));
        let opts = HattOptions::default();
        let mut inner = CacheInner::default();
        let (slot_a, owner_a) = inner.probe(42, &a, &opts);
        assert!(owner_a);
        slot_a.fill(vec![[0, 1, 2]]);
        let (slot_b, owner_b) = inner.probe(42, &b, &opts);
        assert!(owner_b, "same hash, different structure → distinct entry");
        slot_b.fill(vec![[2, 3, 4]]);
        assert_eq!(inner.entries, 2);
        let (again, owner) = inner.probe(42, &a, &opts);
        assert!(!owner);
        assert_eq!(again.wait(), Some(vec![[0, 1, 2]]));
        let (again, owner) = inner.probe(42, &b, &opts);
        assert!(!owner);
        assert_eq!(again.wait(), Some(vec![[2, 3, 4]]));
        let c = Structure::of(&ham(&[&[4, 5]]));
        let (_, owner_c) = inner.probe(42, &c, &opts);
        assert!(owner_c, "third structure must not alias the bucket");
        assert_eq!((inner.hits, inner.misses), (2, 3));
    }

    #[test]
    fn failed_owner_does_not_wedge_followers() {
        // A construction that panics (zero modes) must mark its slot
        // failed so later probes re-raise instead of deadlocking.
        let h = MajoranaSum::new(0);
        let cache = MappingCache::new();
        let opts = HattOptions::default();
        for attempt in 0..2 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cache.get_or_build(&h, &opts)
            }));
            assert!(r.is_err(), "attempt {attempt}: must panic, not hang");
        }
        // The failed entry is removed each time, so the structure is not
        // poisoned: both attempts were fresh claims, nothing is cached.
        assert_eq!(cache.len(), 0, "failed entries must be evicted");
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn cache_identity_includes_options_but_not_threads() {
        let h = ham(&[&[0, 1], &[2, 3], &[0, 1, 2, 3]]);
        let cache = MappingCache::new();
        let greedy = HattOptions::default();
        let _ = cache.get_or_build(&h, &greedy);
        // Different policy → different entry (a beam tree may differ).
        let beam = HattOptions::with_policy(SelectionPolicy::Beam { width: 4 });
        let _ = cache.get_or_build(&h, &beam);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        // Same policy, different worker cap → hit (threads normalized).
        let greedy_4t = HattOptions {
            threads: Some(4),
            ..greedy
        };
        let m = cache.get_or_build(&h, &greedy_4t);
        assert_eq!(cache.hits(), 1);
        assert_eq!(m.tree(), hatt_with(&h, &greedy).tree());
    }

    #[test]
    fn hit_replays_exact_stats_for_the_new_operator() {
        let a = ham(&[&[0, 1], &[2, 3], &[4, 5], &[2, 3, 4, 5]]);
        let mut b = a.clone();
        // Same structure, different coefficients.
        b.add(Complex64::real(0.125), &[2, 3]);
        let cache = MappingCache::new();
        let opts = HattOptions::default();
        let _ = cache.get_or_build(&a, &opts);
        let hit = cache.get_or_build(&b, &opts);
        let fresh = hatt_with(&b, &opts);
        assert_eq!(cache.hits(), 1);
        assert_eq!(hit.tree(), fresh.tree());
        assert_eq!(hit.stats().total_weight(), fresh.stats().total_weight());
        // The replay evaluates no candidates — selection was skipped.
        assert_eq!(hit.stats().total_candidates(), 0);
        assert!(validate(&hit).is_valid());
    }

    #[test]
    fn map_many_matches_sequential_in_input_order() {
        let hs: Vec<MajoranaSum> = vec![
            ham(&[&[0, 1], &[2, 3]]),
            ham(&[&[0, 3], &[1, 2], &[0, 1, 2, 3]]),
            ham(&[&[0, 1], &[2, 3]]), // repeat of the first structure
        ];
        for workers in [1, 2, 4] {
            let opts = HattOptions {
                threads: Some(workers),
                ..Default::default()
            };
            let maps = map_many(&hs, &opts);
            assert_eq!(maps.len(), hs.len());
            for (h, m) in hs.iter().zip(&maps) {
                let solo = hatt_with(h, &HattOptions::default());
                assert_eq!(m.tree(), solo.tree(), "workers = {workers}");
                assert_eq!(m.majorana(0), solo.majorana(0));
            }
        }
    }

    #[test]
    fn lru_eviction_bounds_entries_and_preserves_results() {
        let cache = MappingCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        let opts = HattOptions::default();
        let hams: Vec<MajoranaSum> = vec![
            ham(&[&[0, 1], &[2, 3]]),
            ham(&[&[0, 2], &[1, 3]]),
            ham(&[&[0, 3], &[1, 2]]),
        ];
        let fresh: Vec<_> = hams
            .iter()
            .map(|h| cache.try_get_or_build(h, &opts).unwrap())
            .collect();
        // Three distinct structures through a 2-entry cache: the first
        // (least recently used) was evicted.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 3);
        // Re-probing the evicted structure recomputes — identically.
        let again = cache.try_get_or_build(&hams[0], &opts).unwrap();
        assert_eq!(again.tree(), fresh[0].tree());
        assert_eq!(
            again.stats().total_weight(),
            fresh[0].stats().total_weight()
        );
        assert_eq!(cache.misses(), 4, "evicted entry is a fresh miss");
        assert_eq!(cache.len(), 2, "bound still holds");
        // The survivors are still warm.
        let warm = cache.try_get_or_build(&hams[2], &opts).unwrap();
        assert_eq!(warm.tree(), fresh[2].tree());
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn lru_eviction_respects_recency_of_probes() {
        let cache = MappingCache::with_capacity(2);
        let opts = HattOptions::default();
        let a = ham(&[&[0, 1], &[2, 3]]);
        let b = ham(&[&[0, 2], &[1, 3]]);
        let c = ham(&[&[0, 3], &[1, 2]]);
        let _ = cache.try_get_or_build(&a, &opts).unwrap();
        let _ = cache.try_get_or_build(&b, &opts).unwrap();
        // Touch `a` so `b` becomes the LRU entry, then insert `c`.
        let _ = cache.try_get_or_build(&a, &opts).unwrap();
        let _ = cache.try_get_or_build(&c, &opts).unwrap();
        assert_eq!(cache.len(), 2);
        // `a` must still be warm (hit), `b` must be gone (miss).
        let before = cache.hits();
        let _ = cache.try_get_or_build(&a, &opts).unwrap();
        assert_eq!(cache.hits(), before + 1, "recently-used entry survived");
        let misses = cache.misses();
        let _ = cache.try_get_or_build(&b, &opts).unwrap();
        assert_eq!(cache.misses(), misses + 1, "LRU entry was evicted");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = MappingCache::new();
        assert_eq!(cache.capacity(), None);
        let opts = HattOptions::default();
        for k in 0..6u32 {
            let mut h = MajoranaSum::new(4);
            h.add(Complex64::ONE, &[0, 1]);
            h.add(Complex64::ONE, &[k % 8, (k + 1) % 8]);
            let _ = cache.try_get_or_build(&h, &opts);
        }
        assert!(cache.len() >= 5, "distinct structures all retained");
    }

    #[test]
    fn shared_cache_carries_hits_across_batches() {
        let hs = vec![ham(&[&[0, 1], &[2, 3]]); 3];
        let cache = MappingCache::new();
        let opts = HattOptions::with_threads(2);
        let _ = map_many_cached(&hs, &opts, &cache);
        assert_eq!(cache.len(), 1);
        // In-flight dedup makes this deterministic even concurrently:
        // exactly one probe claims the structure, the other two follow.
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        let _ = map_many_cached(&hs, &opts, &cache);
        assert_eq!(cache.hits(), 2 + 3, "second batch is all hits");
        assert_eq!(cache.len(), 1);
    }
}

/// Exhaustive interleaving models of the slot protocol, compiled only
/// under `RUSTFLAGS="--cfg interleave"` (the CI `interleave` job).
/// Each [`interleave::model`] re-runs its body under *every* schedule
/// of the instrumented lock/condvar operations, so the invariants here
/// hold against the full schedule tree of 2–3 threads, not one run.
#[cfg(all(test, interleave))]
mod interleave_models {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    use hatt_mappings::FermionMapping;
    use interleave::thread;

    use super::*;

    fn tiny() -> MajoranaSum {
        MajoranaSum::uniform_singles(2)
    }

    /// `threads: Some(1)` keeps each construction inline on its model
    /// thread — the schedule space stays the protocol's, not the
    /// engine's.
    fn seq() -> HattOptions {
        HattOptions {
            threads: Some(1),
            ..Default::default()
        }
    }

    #[test]
    fn owner_constructs_and_followers_replay_under_every_schedule() {
        let report = interleave::model(|| {
            let cache = Arc::new(MappingCache::new());
            let expect = hatt_with_impl(&tiny(), &seq()).unwrap();
            let other = {
                let cache = Arc::clone(&cache);
                thread::spawn(move || cache.try_get_or_build(&tiny(), &seq()).unwrap())
            };
            let mine = cache.try_get_or_build(&tiny(), &seq()).unwrap();
            let theirs = other.join().unwrap();
            assert_eq!(mine.tree(), expect.tree());
            assert_eq!(theirs.tree(), expect.tree());
            // Whichever thread probed first owns; the other deduped
            // onto its slot — in every schedule.
            assert_eq!(cache.len(), 1);
            assert_eq!((cache.hits(), cache.misses()), (1, 1));
        });
        assert!(report.iterations > 1, "explored {}", report.iterations);
    }

    #[test]
    fn fail_guard_unblocks_followers_and_removes_the_entry() {
        interleave::model(|| {
            let cache = MappingCache::new();
            let structure = Structure::of(&tiny());
            let hash = structure.hash();
            let norm = HattOptions {
                threads: None,
                ..seq()
            };
            let (slot, owner) = cache.lock().probe(hash, &structure, &norm);
            assert!(owner);
            let follower = {
                let slot = Arc::clone(&slot);
                thread::spawn(move || slot.wait())
            };
            // The owner unwinds before filling: the guard must fail
            // the slot (so the follower never deadlocks) and remove
            // the claimed entry (so the structure is not poisoned).
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                let _guard = FailOnUnwind {
                    cache: &cache,
                    hash,
                    slot: &slot,
                };
                panic!("construction blew up");
            }));
            assert!(unwound.is_err());
            let observed = follower.join().unwrap();
            assert!(observed.is_none(), "follower observes the failure");
            assert_eq!(cache.len(), 0, "failed entry is removed");
            let (_fresh, owner_again) = cache.lock().probe(hash, &structure, &norm);
            assert!(owner_again, "the next probe re-claims and retries");
        });
    }

    #[test]
    fn lru_eviction_under_contention_stays_bounded_and_correct() {
        interleave::model(|| {
            let cache = Arc::new(MappingCache::with_capacity(1));
            let big = MajoranaSum::uniform_singles(3);
            let other = {
                let (cache, big) = (Arc::clone(&cache), big.clone());
                thread::spawn(move || cache.try_get_or_build(&big, &seq()).unwrap())
            };
            let a = cache.try_get_or_build(&tiny(), &seq()).unwrap();
            let b = other.join().unwrap();
            assert_eq!(a.tree(), hatt_with_impl(&tiny(), &seq()).unwrap().tree());
            assert_eq!(b.tree(), hatt_with_impl(&big, &seq()).unwrap().tree());
            // In-flight entries are never evicted, so the bound may be
            // exceeded by the number of concurrent constructions...
            assert!(cache.len() <= 2, "overshoot is bounded by in-flight count");
            // ...but the next insert, with everything resolved, evicts
            // back down to capacity.
            let c = cache
                .try_get_or_build(&MajoranaSum::uniform_singles(4), &seq())
                .unwrap();
            assert_eq!(c.n_modes(), 4);
            assert_eq!(cache.len(), 1, "resolved entries evict to the bound");
        });
    }

    #[test]
    fn map_many_dedupes_in_flight_under_every_schedule() {
        // Two duplicate items on two workers keeps the exhaustive
        // schedule tree tractable (three threads × the full
        // queue/cache/slot protocol blows past the iteration bound)
        // while still covering the full stack: fan-out, probe race,
        // owner construct, follower wait/replay.
        let report = interleave::model(|| {
            let cache = MappingCache::new();
            let hs = vec![tiny(), tiny()];
            let opts = HattOptions {
                threads: Some(2),
                ..Default::default()
            };
            let got = map_many_impl(&hs, &opts, &cache).unwrap();
            assert_eq!(got.len(), 2);
            assert_eq!(got[0].tree(), got[1].tree());
            // However the two workers interleave, exactly one probe
            // claims the structure and constructs; the other follows
            // its slot (in flight or after the fill).
            assert_eq!((cache.hits(), cache.misses()), (1, 1));
            assert_eq!(cache.len(), 1);
        });
        assert!(report.iterations > 1, "explored {}", report.iterations);
    }
}
