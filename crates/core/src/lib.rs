//! # hatt-core
//!
//! The paper's primary contribution: the **Hamiltonian-Adaptive Ternary
//! Tree** (HATT) fermion-to-qubit mapping construction — a Rust
//! reproduction of *HATT: Hamiltonian Adaptive Ternary Tree for Optimizing
//! Fermion-to-Qubit Mapping* (HPCA 2025).
//!
//! Three variants are implemented (see [`Variant`]):
//!
//! * **Algorithm 1** (`Unopt`): bottom-up greedy triple selection,
//!   `O(N⁴)`;
//! * **Algorithm 2** (`Paired`): vacuum-state-preserving operator pairing
//!   with literal tree traversals;
//! * **Algorithm 3** (`Cached`, default): the `mdown`/`mup` maps reduce
//!   pairing traversals to O(1), for `O(N³)` total.
//!
//! Orthogonally, a [`hatt_mappings::SelectionPolicy`] (field
//! `HattOptions::policy`) decides *which* candidate triple wins each
//! step — the default amortized greedy, a shortlist lookahead, a beam,
//! or the `restarts` portfolio that never loses to Jordan-Wigner; see
//! the [`algorithm`-module docs](crate::hatt_with) and
//! `docs/ARCHITECTURE.md`.
//!
//! The construction engine is parallel where the work is independent —
//! the `restarts` portfolio members and the beam's per-state scans fan
//! out over scoped threads (`HATT_THREADS` / `HattOptions::threads`
//! bound the workers) with output bit-identical to sequential — and
//! batched: [`map_many`] maps a slice of Hamiltonians concurrently
//! through a structure-keyed [`MappingCache`], so repeated term
//! structures (a service sweeping geometries) skip construction
//! entirely. See the [`batch`-module docs](crate::map_many).
//!
//! # Quickstart
//!
//! ```
//! use hatt_core::hatt_for_fermion;
//! use hatt_fermion::models::FermiHubbard;
//! use hatt_mappings::{jordan_wigner, validate, FermionMapping};
//!
//! let hf = FermiHubbard::new(2, 2).hamiltonian();
//! let mapping = hatt_for_fermion(&hf);
//! assert!(validate(&mapping).vacuum_preserving);
//!
//! // HATT adapts to the Hamiltonian: its Pauli weight beats Jordan-Wigner.
//! let hatt_weight = mapping.map_fermion(&hf).weight();
//! let jw_weight = jordan_wigner(8).map_fermion(&hf).weight();
//! assert!(hatt_weight < jw_weight);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithm;
pub mod batch;
mod stats;

pub use algorithm::{
    compile, hatt, hatt_for_fermion, hatt_with, HattMapping, HattOptions, Variant,
};
pub use batch::{map_many, map_many_cached, structure_key, MappingCache};
pub use stats::{ConstructionStats, IterationStats};
