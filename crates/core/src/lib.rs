//! # hatt-core
//!
//! The paper's primary contribution: the **Hamiltonian-Adaptive Ternary
//! Tree** (HATT) fermion-to-qubit mapping construction — a Rust
//! reproduction of *HATT: Hamiltonian Adaptive Ternary Tree for Optimizing
//! Fermion-to-Qubit Mapping* (HPCA 2025).
//!
//! ## Public API
//!
//! The entry point is the configured, reusable [`Mapper`] handle:
//!
//! ```
//! use hatt_core::Mapper;
//! use hatt_fermion::models::FermiHubbard;
//! use hatt_mappings::{jordan_wigner, validate, FermionMapping};
//!
//! let mapper = Mapper::builder().build()?;
//! let hf = FermiHubbard::new(2, 2).hamiltonian();
//! let mapping = mapper.map_fermion(&hf)?;
//! assert!(validate(&mapping).vacuum_preserving);
//!
//! // HATT adapts to the Hamiltonian: its Pauli weight beats Jordan-Wigner.
//! let hatt_weight = mapping.map_fermion(&hf).weight();
//! let jw_weight = jordan_wigner(8).map_fermion(&hf).weight();
//! assert!(hatt_weight < jw_weight);
//! # Ok::<(), hatt_core::HattError>(())
//! ```
//!
//! Every fallible call returns a typed [`HattError`]; the pre-handle
//! free functions (`hatt`, `hatt_with`, `compile`, `map_many*`) remain
//! as `#[deprecated]` panicking shims so existing code keeps compiling
//! and producing bit-identical output.
//!
//! ## Algorithms
//!
//! Three variants are implemented (see [`Variant`]):
//!
//! * **Algorithm 1** (`Unopt`): bottom-up greedy triple selection,
//!   `O(N⁴)`;
//! * **Algorithm 2** (`Paired`): vacuum-state-preserving operator pairing
//!   with literal tree traversals;
//! * **Algorithm 3** (`Cached`, default): the `mdown`/`mup` maps reduce
//!   pairing traversals to O(1), for `O(N³)` total.
//!
//! Orthogonally, a [`hatt_mappings::SelectionPolicy`] (set via
//! [`Mapper::builder`]) decides *which* candidate triple wins each
//! step — the default amortized greedy, a shortlist lookahead, a beam,
//! or the `restarts` portfolio that never loses to Jordan-Wigner; see
//! the `algorithm`-module docs and `docs/ARCHITECTURE.md`.
//!
//! The construction engine is parallel where the work is independent —
//! the `restarts` portfolio members and the beam's per-state scans fan
//! out over scoped threads (`HATT_THREADS` / `MapperBuilder::threads`
//! bound the workers) with output bit-identical to sequential — and
//! batched: [`Mapper::map_batch`] maps a slice of Hamiltonians
//! concurrently through the handle's structure-keyed [`MappingCache`]
//! (optionally LRU-bounded), so repeated term structures (a service
//! sweeping geometries) skip construction entirely. See the
//! [`batch`-module docs](crate::batch).
//!
//! ## Wire format
//!
//! [`wire`] implements the `hatt-wire/1` JSON codec for mappings
//! (tree + options + stats), composing the `hatt_pauli::wire` /
//! `hatt_fermion::wire` / `hatt_mappings::wire` codecs — the payloads
//! the `hatt-service` request/response layer streams over TCP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod algorithm;
pub mod batch;
mod error;
mod mapper;
mod stats;
mod store;
pub mod wire;

#[allow(deprecated)]
pub use algorithm::{compile, hatt, hatt_for_fermion, hatt_with};
pub use algorithm::{HattMapping, HattOptions, Variant};
#[allow(deprecated)]
pub use batch::{map_many, map_many_cached};
pub use batch::{structure_key, MappingCache};
pub use error::HattError;
pub use mapper::{Mapper, MapperBuilder};
pub use stats::{ConstructionStats, IterationStats};
pub use store::StoreTierStats;
