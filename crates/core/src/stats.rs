//! Construction instrumentation: per-iteration candidate counts, settled
//! weights and timings, powering the paper's Figure 12 scalability study
//! and Table VI weight comparison.
//!
//! # Examples
//!
//! Every HATT construction carries its stats; the per-step settled
//! weights sum to the mapped Hamiltonian's Pauli weight:
//!
//! ```
//! use hatt_core::hatt;
//! use hatt_fermion::MajoranaSum;
//! use hatt_mappings::FermionMapping;
//! use hatt_pauli::Complex64;
//!
//! let mut h = MajoranaSum::new(2);
//! h.add(Complex64::ONE, &[0, 3]);
//! let m = hatt(&h);
//! assert_eq!(m.stats().iterations.len(), 2);
//! assert_eq!(m.stats().total_weight(), m.map_majorana_sum(&h).weight());
//! ```

use std::time::Duration;

/// Statistics of one construction iteration (one qubit settled).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IterationStats {
    /// The qubit settled in this iteration.
    pub qubit: usize,
    /// Number of candidate selections whose weight was evaluated.
    pub candidates: u64,
    /// Number of tree-traversal steps performed while pairing (walking
    /// `descZ` / `traverse_up`); 0 for the cached variant, which replaces
    /// them with O(1) map lookups.
    pub traversal_steps: u64,
    /// Hamiltonian Pauli weight settled on this qubit by the chosen
    /// selection.
    pub settled_weight: usize,
}

/// Statistics of a complete HATT construction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstructionStats {
    /// Per-iteration records, in construction order (qubit 0 first).
    pub iterations: Vec<IterationStats>,
    /// Number of (non-constant) Hamiltonian terms seen by the algorithm.
    pub n_terms: usize,
    /// Total wall-clock construction time.
    pub elapsed: Duration,
    /// Pairwise-intersection memo hits inside the selection kernel
    /// (0 when the naive ablation path was used).
    pub memo_hits: u64,
    /// Pairwise-intersection memo misses (fresh popcounts computed).
    pub memo_misses: u64,
}

impl ConstructionStats {
    /// Total settled weight — the algorithm's objective value
    /// (equals the mapped Hamiltonian's Pauli weight before term merging).
    pub fn total_weight(&self) -> usize {
        self.iterations.iter().map(|it| it.settled_weight).sum()
    }

    /// Total candidate selections evaluated across all iterations.
    pub fn total_candidates(&self) -> u64 {
        self.iterations.iter().map(|it| it.candidates).sum()
    }

    /// Total tree-traversal steps across all iterations.
    pub fn total_traversal_steps(&self) -> u64 {
        self.iterations.iter().map(|it| it.traversal_steps).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_over_iterations() {
        let stats = ConstructionStats {
            iterations: vec![
                IterationStats {
                    qubit: 0,
                    candidates: 10,
                    traversal_steps: 4,
                    settled_weight: 1,
                },
                IterationStats {
                    qubit: 1,
                    candidates: 3,
                    traversal_steps: 0,
                    settled_weight: 2,
                },
            ],
            n_terms: 4,
            elapsed: Duration::from_millis(1),
            memo_hits: 7,
            memo_misses: 2,
        };
        assert_eq!(stats.total_weight(), 3);
        assert_eq!(stats.total_candidates(), 13);
        assert_eq!(stats.total_traversal_steps(), 4);
        assert_eq!(stats.memo_hits, 7);
    }

    #[test]
    fn default_is_empty() {
        let stats = ConstructionStats::default();
        assert_eq!(stats.total_weight(), 0);
        assert_eq!(stats.total_candidates(), 0);
    }
}
