//! `hatt-wire/1` codec for complete HATT mappings (tree + options +
//! construction stats) — the payload a `hatt-service` response line
//! carries per batch item.
//!
//! ```json
//! {"format":"hatt-wire/1","kind":"hatt_mapping","payload":{
//!   "variant": "cached",
//!   "policy": "restarts",
//!   "naive_weight": false,
//!   "tree": {"n_modes": 3, "children": [[0,1,2],[3,4,7],[5,6,8]]},
//!   "stats": {"n_terms": 4, "elapsed_ns": 12345,
//!             "memo_hits": 10, "memo_misses": 2,
//!             "iterations": [{"qubit":0,"candidates":35,
//!                             "traversal_steps":0,"settled_weight":1}]}
//! }}
//! ```
//!
//! Elapsed time travels as integer nanoseconds so the round trip is
//! exact. The decoder validates the tree structure (via
//! `hatt_mappings::wire`) and the stats shape; a decoded mapping always
//! carries `threads: None` (worker caps are a runtime concern, not part
//! of a result).
//!
//! # Examples
//!
//! ```
//! use hatt_core::wire::{decode_hatt_mapping, encode_hatt_mapping};
//! use hatt_core::Mapper;
//! use hatt_fermion::MajoranaSum;
//! use hatt_pauli::json::Json;
//!
//! let h = MajoranaSum::uniform_singles(3);
//! let mapping = Mapper::new().map(&h)?;
//! let text = encode_hatt_mapping(&mapping).render();
//! let back = decode_hatt_mapping(&Json::parse(&text).unwrap())?;
//! assert_eq!(back.tree(), mapping.tree());
//! assert_eq!(back.stats().total_weight(), mapping.stats().total_weight());
//! # Ok::<(), hatt_core::HattError>(())
//! ```

use std::time::Duration;

use hatt_mappings::wire::{decode_ternary_tree_payload, ternary_tree_payload};
use hatt_mappings::{SelectionPolicy, TreeMapping};
use hatt_pauli::json::Json;
use hatt_pauli::wire::{
    as_arr, as_bool, as_obj, as_str, as_u64, as_usize, envelope, field, get, open_envelope,
    WireError,
};

use crate::algorithm::{HattMapping, HattOptions, Variant};
use crate::error::HattError;
use crate::stats::{ConstructionStats, IterationStats};

const KIND: &str = "hatt_mapping";

/// Encodes a [`HattMapping`] as a `hatt-wire/1` envelope.
pub fn encode_hatt_mapping(m: &HattMapping) -> Json {
    envelope(KIND, hatt_mapping_payload(m))
}

/// The bare (un-enveloped) mapping payload — composed into response
/// lines by `hatt-service`.
pub fn hatt_mapping_payload(m: &HattMapping) -> Json {
    let options = m.options();
    let stats = m.stats();
    let iterations = stats
        .iterations
        .iter()
        .map(|it| {
            Json::Obj(vec![
                ("qubit".into(), Json::int(it.qubit as u64)),
                ("candidates".into(), Json::int(it.candidates)),
                ("traversal_steps".into(), Json::int(it.traversal_steps)),
                ("settled_weight".into(), Json::int(it.settled_weight as u64)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("variant".into(), Json::str(options.variant.key())),
        ("policy".into(), Json::str(options.policy.to_string())),
        ("naive_weight".into(), Json::Bool(options.naive_weight)),
        ("tree".into(), ternary_tree_payload(m.tree())),
        (
            "stats".into(),
            Json::Obj(vec![
                ("n_terms".into(), Json::int(stats.n_terms as u64)),
                (
                    "elapsed_ns".into(),
                    // Saturate at i64::MAX (~292 years): Json::int
                    // panics above it, so the clamp must land below.
                    Json::Int(i64::try_from(stats.elapsed.as_nanos()).unwrap_or(i64::MAX)),
                ),
                ("memo_hits".into(), Json::int(stats.memo_hits)),
                ("memo_misses".into(), Json::int(stats.memo_misses)),
                ("iterations".into(), Json::Arr(iterations)),
            ]),
        ),
    ])
}

/// Decodes a [`HattMapping`] envelope.
pub fn decode_hatt_mapping(v: &Json) -> Result<HattMapping, HattError> {
    Ok(decode_hatt_mapping_payload(open_envelope(v, KIND)?)?)
}

/// Decodes a bare mapping payload (see [`hatt_mapping_payload`]).
pub fn decode_hatt_mapping_payload(payload: &Json) -> Result<HattMapping, WireError> {
    const CTX: &str = "hatt_mapping payload";
    let pairs = as_obj(payload, CTX)?;
    let variant_key = as_str(field(pairs, "variant", CTX)?, CTX)?;
    let variant = Variant::from_key(variant_key)
        .ok_or_else(|| WireError::schema(CTX, format!("unknown variant {variant_key:?}")))?;
    let policy_text = as_str(field(pairs, "policy", CTX)?, CTX)?;
    let policy: SelectionPolicy = policy_text
        .parse()
        .map_err(|e| WireError::schema(CTX, format!("{e}")))?;
    let naive_weight = match get(pairs, "naive_weight") {
        Some(v) => as_bool(v, CTX)?,
        None => false,
    };
    let tree = decode_ternary_tree_payload(field(pairs, "tree", CTX)?)?;
    let n = tree.n_modes();

    const SCTX: &str = "hatt_mapping stats";
    let sp = as_obj(field(pairs, "stats", CTX)?, SCTX)?;
    let mut iterations = Vec::new();
    for it in as_arr(field(sp, "iterations", SCTX)?, SCTX)? {
        const ICTX: &str = "hatt_mapping iteration";
        let ip = as_obj(it, ICTX)?;
        iterations.push(IterationStats {
            qubit: as_usize(field(ip, "qubit", ICTX)?, ICTX)?,
            candidates: as_u64(field(ip, "candidates", ICTX)?, ICTX)?,
            traversal_steps: as_u64(field(ip, "traversal_steps", ICTX)?, ICTX)?,
            settled_weight: as_usize(field(ip, "settled_weight", ICTX)?, ICTX)?,
        });
    }
    if iterations.len() != n {
        return Err(WireError::ModeMismatch {
            context: "hatt_mapping stats iterations",
            declared: n,
            required: iterations.len(),
        });
    }
    let stats = ConstructionStats {
        iterations,
        n_terms: as_usize(field(sp, "n_terms", SCTX)?, SCTX)?,
        elapsed: Duration::from_nanos(as_u64(field(sp, "elapsed_ns", SCTX)?, SCTX)?),
        memo_hits: as_u64(field(sp, "memo_hits", SCTX)?, SCTX)?,
        memo_misses: as_u64(field(sp, "memo_misses", SCTX)?, SCTX)?,
    };
    let options = HattOptions {
        variant,
        naive_weight,
        policy,
        threads: None,
    };
    let mapping = TreeMapping::with_identity_assignment(variant.label(), tree);
    Ok(HattMapping::from_parts(mapping, stats, options))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::Mapper;
    use hatt_fermion::models::NeutrinoModel;
    use hatt_fermion::MajoranaSum;
    use hatt_mappings::{validate, FermionMapping};

    #[test]
    fn mapping_round_trips_bit_identically() {
        let mut h = MajoranaSum::from_fermion(&NeutrinoModel::new(3, 2).hamiltonian());
        let _ = h.take_identity();
        for mapper in [
            Mapper::new(),
            Mapper::builder().policy_str("beam:4").build().unwrap(),
        ] {
            let m = mapper.map(&h).unwrap();
            let back = decode_hatt_mapping(&encode_hatt_mapping(&m)).unwrap();
            assert_eq!(back.tree(), m.tree());
            assert_eq!(back.stats(), m.stats());
            assert_eq!(back.options().policy, m.options().policy);
            assert_eq!(back.options().variant, m.options().variant);
            for k in 0..2 * h.n_modes() {
                assert_eq!(back.majorana(k), m.majorana(k));
            }
            assert!(validate(&back).is_valid());
        }
    }

    #[test]
    fn iteration_count_must_match_the_tree() {
        let m = Mapper::new().map(&MajoranaSum::uniform_singles(2)).unwrap();
        let doc = encode_hatt_mapping(&m);
        // Strip one iteration record out of the rendered payload.
        let text = doc.render();
        let truncated = text.replacen(
            r#"{"qubit":0,"candidates""#,
            r#"{"qubit":9,"candidates""#,
            1,
        );
        assert_ne!(text, truncated);
        // Still decodes (qubit index is data, not an invariant)…
        let v = Json::parse(&truncated).unwrap();
        assert!(decode_hatt_mapping(&v).is_ok());
        // …but dropping the whole array breaks the mode invariant.
        let v = Json::parse(
            &text.replace(
                r#""iterations":["#,
                r#""unused":[],"iterations":[{"qubit":0,"candidates":0,"traversal_steps":0,"settled_weight":0},"#,
            ),
        )
        .unwrap();
        match decode_hatt_mapping(&v) {
            Err(HattError::Wire(WireError::ModeMismatch { .. })) => {}
            other => panic!("expected ModeMismatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_mapping_documents_fail_typed() {
        for payload in [
            r#"{"variant":"warp","policy":"greedy","tree":{"n_modes":1,"children":[[0,1,2]]},"stats":{"n_terms":0,"elapsed_ns":0,"memo_hits":0,"memo_misses":0,"iterations":[]}}"#,
            r#"{"variant":"cached","policy":"warp","tree":{"n_modes":1,"children":[[0,1,2]]},"stats":{"n_terms":0,"elapsed_ns":0,"memo_hits":0,"memo_misses":0,"iterations":[]}}"#,
            r#"{"variant":"cached","policy":"greedy","tree":{"n_modes":1,"children":[[0,0,2]]},"stats":{"n_terms":0,"elapsed_ns":0,"memo_hits":0,"memo_misses":0,"iterations":[]}}"#,
            r#"{"variant":"cached","policy":"greedy","tree":{"n_modes":1,"children":[[0,1,2]]}}"#,
        ] {
            let doc = Json::parse(&format!(
                r#"{{"format":"hatt-wire/1","kind":"hatt_mapping","payload":{payload}}}"#
            ))
            .unwrap();
            assert!(decode_hatt_mapping(&doc).is_err(), "{payload}");
        }
    }
}
