//! The persistent second cache tier: HATT constructions stored on disk,
//! content-addressed by Hamiltonian structure.
//!
//! [`StoreTier`] wraps a [`hatt_store::Store`] (append-only
//! checksummed log) with the mapping-specific codec: the record key is
//! the canonical FNV-1a structure hash plus the construction-options
//! discriminant, and the value is a `hatt-wire/1` `store_record`
//! envelope carrying the *full* structure (the 64-bit hash is only the
//! address — a collision is caught by comparing structures, exactly as
//! the in-memory cache does) and the standard `hatt_mapping` payload
//! (no new serialization format).
//!
//! A store hit is replayed against the incoming operator through the
//! same merge-sequence path as an in-memory hit, so warm-starting from
//! disk is bit-identical to a fresh construction and does zero
//! selection work. Store failures never fail a mapping: a read problem
//! degrades to a miss (construct as usual), a write problem is counted
//! and dropped — persistence is an accelerator, not a dependency.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hatt_mappings::NodeId;
use hatt_pauli::json::Json;
use hatt_pauli::wire::{as_arr, as_obj, as_usize, envelope, field, open_envelope, WireError};

use crate::algorithm::{HattMapping, HattOptions};
use crate::batch::{merge_sequence, Structure};
use crate::error::HattError;
use crate::wire::{decode_hatt_mapping_payload, hatt_mapping_payload};

const KIND: &str = "store_record";

/// Counters and sizes of a mapper's persistent store tier, surfaced
/// through [`Mapper::store_stats`](crate::Mapper::store_stats) and the
/// `hattd` `stats` verb.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreTierStats {
    /// Probes answered from disk (each one skipped a construction).
    pub hits: u64,
    /// Probes that found no usable record on disk.
    pub misses: u64,
    /// Records written through after a construction.
    pub writes: u64,
    /// Writes dropped on I/O errors (persistence is best-effort).
    pub write_errors: u64,
    /// Live records in the store.
    pub entries: usize,
    /// On-disk log size in bytes.
    pub file_bytes: u64,
}

/// The disk tier under a [`MappingCache`](crate::MappingCache):
/// consulted after an in-memory miss, written through after a
/// construction.
#[derive(Debug)]
pub(crate) struct StoreTier {
    store: Mutex<hatt_store::Store>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    write_errors: AtomicU64,
}

impl StoreTier {
    /// Opens (creating if absent) the store log at `path`, warm-starting
    /// its index from disk.
    pub(crate) fn open(path: &Path) -> Result<StoreTier, HattError> {
        let store = hatt_store::Store::open(path)
            .map_err(|e| HattError::Store(format!("open {}: {e}", path.display())))?;
        Ok(StoreTier {
            store: Mutex::new(store),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
        })
    }

    /// The record key: 8-byte LE structure hash plus the options
    /// discriminant (a different variant/policy builds a different
    /// tree, so it must address a different record; worker caps are
    /// already normalized out by the caller).
    fn key(structure: &Structure, options: &HattOptions) -> Vec<u8> {
        let mut key = structure.hash().to_le_bytes().to_vec();
        key.extend_from_slice(
            format!(
                "|{}|{}|{}",
                options.variant.key(),
                options.policy,
                options.naive_weight
            )
            .as_bytes(),
        );
        key
    }

    /// Looks up the merge sequence for `(structure, options)`. Any
    /// failure — no record, I/O error, malformed document, structure or
    /// options mismatch — reads as a miss; the caller constructs.
    pub(crate) fn load(
        &self,
        structure: &Structure,
        options: &HattOptions,
    ) -> Option<Vec<[NodeId; 3]>> {
        let key = Self::key(structure, options);
        let bytes = self.lock().get(&key).ok().flatten();
        let seq = bytes.and_then(|b| decode_record(&b, structure, options).ok());
        match &seq {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        seq
    }

    /// Writes a freshly constructed mapping through to disk.
    /// Best-effort: an I/O error is counted and dropped, never
    /// propagated into the mapping result.
    ///
    /// `lineage` is the structure hash of the mapping this record was
    /// incrementally derived from (`None` for cold constructions); it
    /// is recorded for provenance and ignored on load, so records with
    /// and without it interoperate in both directions.
    pub(crate) fn save(
        &self,
        structure: &Structure,
        options: &HattOptions,
        mapping: &HattMapping,
        lineage: Option<u64>,
    ) {
        let key = Self::key(structure, options);
        let value = encode_record(structure, mapping, lineage).render();
        match self.lock().put(&key, value.as_bytes()) {
            Ok(()) => self.writes.fetch_add(1, Ordering::Relaxed),
            Err(_) => self.write_errors.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Flushes the log to stable storage (the daemon calls this on
    /// drain; ordinary writes are OS-buffered).
    pub(crate) fn sync(&self) -> Result<(), HattError> {
        self.lock()
            .sync()
            .map_err(|e| HattError::Store(format!("sync: {e}")))
    }

    /// Current counters and sizes.
    pub(crate) fn stats(&self) -> StoreTierStats {
        let disk = self.lock().stats();
        StoreTierStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            entries: disk.entries,
            file_bytes: disk.file_bytes,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, hatt_store::Store> {
        self.store.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The `store_record` document: the full structure (collision guard)
/// next to the standard `hatt_mapping` payload, plus an optional
/// `lineage` field — the parent structure hash when the mapping came
/// out of the incremental remap path, as a 16-hex-digit string (the
/// JSON integer type here is `i64`-bounded; hashes are full `u64`s).
fn encode_record(structure: &Structure, mapping: &HattMapping, lineage: Option<u64>) -> Json {
    let terms = structure
        .terms
        .iter()
        .map(|t| Json::Arr(t.iter().map(|&i| Json::int(u64::from(i))).collect()))
        .collect();
    let mut payload = vec![
        (
            "structure".into(),
            Json::Obj(vec![
                ("n_modes".into(), Json::int(structure.n_modes as u64)),
                ("terms".into(), Json::Arr(terms)),
            ]),
        ),
        ("mapping".into(), hatt_mapping_payload(mapping)),
    ];
    if let Some(parent) = lineage {
        payload.push(("lineage".into(), Json::str(format!("{parent:016x}"))));
    }
    envelope(KIND, Json::Obj(payload))
}

/// Decodes and *verifies* a stored record: the embedded structure must
/// equal the probe's (so a 64-bit hash collision can never alias two
/// structures through disk) and the mapping's options must match the
/// probe's discriminant. Returns the merge sequence to replay.
fn decode_record(
    bytes: &[u8],
    expect: &Structure,
    options: &HattOptions,
) -> Result<Vec<[NodeId; 3]>, WireError> {
    const CTX: &str = "store_record payload";
    let text = std::str::from_utf8(bytes)
        .map_err(|_| WireError::schema(CTX, "record is not UTF-8 JSON"))?;
    let doc = Json::parse(text).map_err(|e| WireError::schema(CTX, format!("{e}")))?;
    let payload = as_obj(open_envelope(&doc, KIND)?, CTX)?;

    const SCTX: &str = "store_record structure";
    let sp = as_obj(field(payload, "structure", CTX)?, SCTX)?;
    let n_modes = as_usize(field(sp, "n_modes", SCTX)?, SCTX)?;
    let mut terms: Vec<Vec<u32>> = Vec::new();
    for term in as_arr(field(sp, "terms", SCTX)?, SCTX)? {
        let mut support = Vec::new();
        for idx in as_arr(term, SCTX)? {
            let idx = as_usize(idx, SCTX)?;
            support.push(
                u32::try_from(idx)
                    .map_err(|_| WireError::schema(SCTX, "term index out of range"))?,
            );
        }
        terms.push(support);
    }
    if n_modes != expect.n_modes || terms != expect.terms {
        // A different structure landed on this address (hash collision
        // or a damaged record that still checksums): never alias.
        return Err(WireError::schema(SCTX, "stored structure differs"));
    }

    let mapping = decode_hatt_mapping_payload(field(payload, "mapping", CTX)?)?;
    let stored = mapping.options();
    if stored.variant != options.variant
        || stored.policy != options.policy
        || stored.naive_weight != options.naive_weight
    {
        return Err(WireError::schema(CTX, "stored options differ"));
    }
    Ok(merge_sequence(mapping.tree()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::hatt_with_impl;
    use hatt_fermion::MajoranaSum;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!(
            "hatt-core-store-test-{}-{tag}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn record_round_trips_to_the_same_merge_sequence() {
        let h = MajoranaSum::uniform_singles(4);
        let options = HattOptions::default();
        let structure = Structure::of(&h);
        let mapping = hatt_with_impl(&h, &options).unwrap();
        let doc = encode_record(&structure, &mapping, None).render();
        let seq = decode_record(doc.as_bytes(), &structure, &options).unwrap();
        assert_eq!(seq, merge_sequence(mapping.tree()));
    }

    #[test]
    fn lineage_is_recorded_but_never_gates_decoding() {
        let h = MajoranaSum::uniform_singles(4);
        let options = HattOptions::default();
        let structure = Structure::of(&h);
        let mapping = hatt_with_impl(&h, &options).unwrap();
        let with = encode_record(&structure, &mapping, Some(u64::MAX)).render();
        // Full-range u64 survives as a hex string in the document…
        assert!(with.contains(r#""lineage":"ffffffffffffffff""#));
        // …and a lineage-bearing record decodes exactly like a bare one
        // (the field is provenance only).
        let seq = decode_record(with.as_bytes(), &structure, &options).unwrap();
        let bare = encode_record(&structure, &mapping, None).render();
        assert!(!bare.contains("lineage"));
        assert_eq!(
            seq,
            decode_record(bare.as_bytes(), &structure, &options).unwrap()
        );
    }

    #[test]
    fn mismatched_structure_or_options_is_rejected() {
        let h = MajoranaSum::uniform_singles(4);
        let options = HattOptions::default();
        let structure = Structure::of(&h);
        let mapping = hatt_with_impl(&h, &options).unwrap();
        let doc = encode_record(&structure, &mapping, None).render();
        // Same address, different structure: the collision guard.
        let other = Structure::of(&MajoranaSum::uniform_singles(5));
        assert!(decode_record(doc.as_bytes(), &other, &options).is_err());
        // Same structure, different options discriminant.
        let naive = HattOptions {
            naive_weight: true,
            ..options
        };
        assert!(decode_record(doc.as_bytes(), &structure, &naive).is_err());
        // Garbage bytes.
        assert!(decode_record(b"not json", &structure, &options).is_err());
    }

    #[test]
    fn tier_load_save_round_trip_and_counters() {
        let path = scratch("tier");
        let tier = StoreTier::open(&path).unwrap();
        let h = MajoranaSum::uniform_singles(3);
        let options = HattOptions::default();
        let structure = Structure::of(&h);
        assert!(tier.load(&structure, &options).is_none());
        let mapping = hatt_with_impl(&h, &options).unwrap();
        tier.save(&structure, &options, &mapping, None);
        let seq = tier.load(&structure, &options).unwrap();
        assert_eq!(seq, merge_sequence(mapping.tree()));
        let stats = tier.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.file_bytes > 0);
        tier.sync().unwrap();
        // A fresh tier warm-starts from the same log.
        drop(tier);
        let tier = StoreTier::open(&path).unwrap();
        assert_eq!(tier.load(&structure, &options), Some(seq));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn keys_separate_options_discriminants() {
        let h = MajoranaSum::uniform_singles(3);
        let structure = Structure::of(&h);
        let greedy = HattOptions::default();
        let naive = HattOptions {
            naive_weight: true,
            ..greedy
        };
        assert_ne!(
            StoreTier::key(&structure, &greedy),
            StoreTier::key(&structure, &naive)
        );
    }
}
