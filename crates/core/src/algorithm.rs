//! The Hamiltonian-Adaptive Ternary Tree construction — Algorithms 1, 2
//! and 3 of the paper.
//!
//! All three variants share the bottom-up skeleton: start from the
//! `2N + 1` free leaves (the node set `U`), and for `N` iterations pick
//! three current roots, attach a new parent (settling one qubit), and
//! reduce the Hamiltonian. They differ in *how the triple is selected*:
//!
//! * [`Variant::Unopt`] — Algorithm 1: free choice over all `C(|U|, 3)`
//!   triples, minimizing the settled weight. `O(N⁴)` total; does **not**
//!   preserve the vacuum state.
//! * [`Variant::Paired`] — Algorithm 2: only `(O_X, O_Z)` are free; `O_Y`
//!   is derived by walking down to `descZ(O_X)`, picking its partner
//!   leaf, and walking back up to the node set. Preserves the vacuum
//!   state; traversals make it `O(N⁴)` worst case.
//! * [`Variant::Cached`] — Algorithm 3 (the default): Algorithm 2 with
//!   the `mdown : O → descZ(O)` and `mup : descZ(O) → O` maps replacing
//!   both traversals with O(1) lookups, for `O(N³)` total.

use std::time::Instant;

use hatt_fermion::{FermionOperator, MajoranaSum};
use hatt_mappings::{
    FermionMapping, NodeId, TermEngine, TernaryTree, TernaryTreeBuilder, TreeMapping,
};
use hatt_pauli::{PauliString, PauliSum};

use crate::stats::{ConstructionStats, IterationStats};

/// Which of the paper's algorithms to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// Algorithm 1: free triple selection, `O(N⁴)`, no vacuum guarantee.
    Unopt,
    /// Algorithm 2: operator pairing with literal tree traversals.
    Paired,
    /// Algorithm 3: operator pairing with O(1) cached maps (default).
    #[default]
    Cached,
}

impl Variant {
    /// Short display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Unopt => "HATT (unopt)",
            Variant::Paired => "HATT (paired, uncached)",
            Variant::Cached => "HATT",
        }
    }
}

/// Construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HattOptions {
    /// Algorithm variant.
    pub variant: Variant,
    /// Use the paper's per-term weight scan instead of the block-bitset
    /// kernel (ablation; identical results, slower).
    pub naive_weight: bool,
}

/// The result of a HATT construction: a tree-backed fermion-to-qubit
/// mapping plus instrumentation.
///
/// # Examples
///
/// ```
/// use hatt_core::hatt;
/// use hatt_fermion::{FermionOperator, MajoranaSum};
/// use hatt_mappings::{validate, FermionMapping};
/// use hatt_pauli::Complex64;
///
/// // The paper's Equation (3) Hamiltonian.
/// let mut hf = FermionOperator::new(3);
/// hf.add_one_body(Complex64::ONE, 0, 0);
/// hf.add_two_body(Complex64::real(2.0), 1, 2, 1, 2);
/// let h = MajoranaSum::from_fermion(&hf);
///
/// let mapping = hatt(&h);
/// let report = validate(&mapping);
/// assert!(report.is_valid());
/// assert!(report.vacuum_preserving);
/// assert_eq!(mapping.stats().total_weight(), 5); // 1 + 2 + 2, as in §IV-B
/// ```
#[derive(Debug, Clone)]
pub struct HattMapping {
    mapping: TreeMapping,
    stats: ConstructionStats,
    options: HattOptions,
}

impl HattMapping {
    /// The underlying ternary tree.
    pub fn tree(&self) -> &TernaryTree {
        self.mapping.tree()
    }

    /// Construction statistics (Figure 12 / Table VI instrumentation).
    pub fn stats(&self) -> &ConstructionStats {
        &self.stats
    }

    /// The options the mapping was built with.
    pub fn options(&self) -> &HattOptions {
        &self.options
    }

    /// Access to the inner [`TreeMapping`].
    pub fn as_tree_mapping(&self) -> &TreeMapping {
        &self.mapping
    }
}

impl FermionMapping for HattMapping {
    fn n_modes(&self) -> usize {
        self.mapping.n_modes()
    }

    fn majorana(&self, k: usize) -> &PauliString {
        self.mapping.majorana(k)
    }

    fn name(&self) -> &str {
        self.options.variant.label()
    }
}

/// Compiles a HATT mapping with default options (Algorithm 3).
///
/// # Panics
///
/// Panics when the Hamiltonian has zero modes.
pub fn hatt(h: &MajoranaSum) -> HattMapping {
    hatt_with(h, &HattOptions::default())
}

/// Compiles a HATT mapping directly from a second-quantized operator.
pub fn hatt_for_fermion(op: &FermionOperator) -> HattMapping {
    hatt(&MajoranaSum::from_fermion(op))
}

/// Compiles a HATT mapping with explicit options.
///
/// # Panics
///
/// Panics when the Hamiltonian has zero modes.
pub fn hatt_with(h: &MajoranaSum, options: &HattOptions) -> HattMapping {
    let n = h.n_modes();
    assert!(n > 0, "need at least one mode");
    let start = Instant::now();
    let mut engine = TermEngine::new(h);
    let mut builder = TernaryTreeBuilder::new(n);
    let mut state = PairingState::new(n);
    let mut iterations = Vec::with_capacity(n);

    for qubit in 0..n {
        let mut iter_stats = IterationStats {
            qubit,
            ..Default::default()
        };
        let u = builder.roots();
        let selection = match options.variant {
            Variant::Unopt => select_unopt(&mut engine, &u, options, &mut iter_stats),
            Variant::Paired => {
                select_paired(&mut engine, &builder, &u, n, options, &mut iter_stats, None)
            }
            Variant::Cached => select_paired(
                &mut engine,
                &builder,
                &u,
                n,
                options,
                &mut iter_stats,
                Some(&state),
            ),
        };
        let [ox, oy, oz] = selection.children;
        iter_stats.settled_weight = selection.weight;
        let parent = builder.attach([ox, oy, oz]);
        engine.reduce(parent, ox, oy, oz);
        state.record_attach(&builder, parent, ox, oy, oz);
        iterations.push(iter_stats);
    }

    let (memo_hits, memo_misses) = engine.memo_stats();
    let stats = ConstructionStats {
        iterations,
        n_terms: engine.n_terms(),
        elapsed: start.elapsed(),
        memo_hits,
        memo_misses,
    };
    let tree = builder.finish();
    let mapping = TreeMapping::with_identity_assignment(options.variant.label(), tree);
    HattMapping {
        mapping,
        stats,
        options: *options,
    }
}

/// A chosen `[X, Y, Z]` child triple and its settled weight.
struct Selection {
    children: [NodeId; 3],
    weight: usize,
}

fn weight_of(
    engine: &mut TermEngine,
    options: &HattOptions,
    a: NodeId,
    b: NodeId,
    c: NodeId,
) -> usize {
    if options.naive_weight {
        engine.weight_of_triple_naive(a, b, c)
    } else {
        engine.weight_of_triple_memo(a, b, c)
    }
}

/// Algorithm 1 selection: all unordered triples of `U` (branch labels do
/// not affect weight, so combinations suffice — see `hatt-mappings`
/// engine docs).
fn select_unopt(
    engine: &mut TermEngine,
    u: &[NodeId],
    options: &HattOptions,
    stats: &mut IterationStats,
) -> Selection {
    let mut best = Selection {
        children: [u[0], u[1], u[2]],
        weight: usize::MAX,
    };
    for ai in 0..u.len() {
        for bi in (ai + 1)..u.len() {
            for ci in (bi + 1)..u.len() {
                stats.candidates += 1;
                let w = weight_of(engine, options, u[ai], u[bi], u[ci]);
                if w < best.weight {
                    best = Selection {
                        children: [u[ai], u[bi], u[ci]],
                        weight: w,
                    };
                }
            }
        }
    }
    best
}

/// Algorithm 2/3 selection: free `(O_X, O_Z)`, derived `O_Y`.
///
/// When `cache` is `Some`, `descZ` / `traverse_up` are O(1) map lookups
/// (Algorithm 3); otherwise they literally walk the partial tree inside
/// the selection loop, exactly as Algorithm 2's pseudocode does.
#[allow(clippy::too_many_arguments)]
fn select_paired(
    engine: &mut TermEngine,
    builder: &TernaryTreeBuilder,
    u: &[NodeId],
    n: usize,
    options: &HattOptions,
    stats: &mut IterationStats,
    cache: Option<&PairingState>,
) -> Selection {
    let rightmost_leaf: NodeId = 2 * n; // O_2N never pairs (paper §IV-B)
    let mut best: Option<Selection> = None;

    for &ox in u {
        for &oz in u {
            if oz == ox {
                continue;
            }
            // descZ(O_X): the only unpaired leaf of O_X's subtree.
            let x_leaf = match cache {
                Some(state) => state.mdown[ox],
                None => {
                    let (leaf, steps) = walk_desc_z(builder, ox);
                    stats.traversal_steps += steps;
                    leaf
                }
            };
            if x_leaf == rightmost_leaf {
                continue; // discard: S_2N is the dropped string
            }
            // Partner leaf: even x pairs with x+1, odd with x−1.
            let (y_leaf, swapped) = if x_leaf % 2 == 0 {
                (x_leaf + 1, false)
            } else {
                (x_leaf - 1, true)
            };
            // traverse_up(O_y, U).
            let oy = match cache {
                Some(state) => state.mup[y_leaf],
                None => {
                    let (root, steps) = walk_up(builder, y_leaf);
                    stats.traversal_steps += steps;
                    root
                }
            };
            if oy == oz || oy == ox {
                continue; // O_Y collides with the chosen Z child
            }
            debug_assert!(u.contains(&oy), "derived O_Y must be a current root");
            stats.candidates += 1;
            let w = weight_of(engine, options, ox, oy, oz);
            if best.as_ref().is_none_or(|b| w < b.weight) {
                // Ensure the even leaf sits on the X branch so the pair
                // carries (X, Y) and not (Y, X) (Algorithm 2 line 15).
                let children = if swapped { [oy, ox, oz] } else { [ox, oy, oz] };
                best = Some(Selection {
                    children,
                    weight: w,
                });
            }
        }
    }
    best.expect("a valid paired selection always exists for |U| >= 3")
}

fn walk_desc_z(builder: &TernaryTreeBuilder, node: NodeId) -> (NodeId, u64) {
    let mut steps = 0;
    let mut v = node;
    while let Some(c) = builder.child_z(v) {
        v = c;
        steps += 1;
    }
    (v, steps)
}

fn walk_up(builder: &TernaryTreeBuilder, node: NodeId) -> (NodeId, u64) {
    let mut steps = 0;
    let mut v = node;
    while let Some(p) = builder.parent_of(v) {
        v = p;
        steps += 1;
    }
    (v, steps)
}

/// The `mdown` / `mup` maps of Algorithm 3.
#[derive(Debug, Clone)]
struct PairingState {
    /// `O → descZ(O)` for current roots.
    mdown: Vec<NodeId>,
    /// `descZ(O) → O`: the current root owning each unpaired leaf.
    mup: Vec<NodeId>,
}

impl PairingState {
    fn new(n: usize) -> Self {
        let n_nodes = 3 * n + 1;
        let n_leaves = 2 * n + 1;
        PairingState {
            mdown: (0..n_nodes).collect(),
            mup: (0..n_leaves).collect(),
        }
    }

    /// Algorithm 3 lines 8–11: after attaching `parent` over
    /// `(O_X, O_Y, O_Z)`, the parent's Z-descendant is `descZ(O_Z)`.
    fn record_attach(
        &mut self,
        _builder: &TernaryTreeBuilder,
        parent: NodeId,
        _ox: NodeId,
        _oy: NodeId,
        oz: NodeId,
    ) {
        let zdesc = self.mdown[oz];
        self.mdown[parent] = zdesc;
        self.mup[zdesc] = parent;
    }
}

/// Convenience: compiles HATT and applies it to the same Hamiltonian,
/// returning the mapped qubit Hamiltonian alongside the mapping.
pub fn compile(h: &MajoranaSum) -> (HattMapping, PauliSum) {
    let mapping = hatt(h);
    let hq = mapping.map_majorana_sum(h);
    (mapping, hq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_mappings::validate;
    use hatt_pauli::Complex64;

    fn paper_example() -> MajoranaSum {
        let mut hf = FermionOperator::new(3);
        hf.add_one_body(Complex64::ONE, 0, 0);
        hf.add_two_body(Complex64::real(2.0), 1, 2, 1, 2);
        let mut m = MajoranaSum::from_fermion(&hf);
        let _ = m.take_identity();
        m
    }

    #[test]
    fn paper_walkthrough_weights() {
        // §III-C / §IV-B: step weights 1, 2, 2.
        let mapping = hatt(&paper_example());
        let weights: Vec<usize> = mapping
            .stats()
            .iterations
            .iter()
            .map(|it| it.settled_weight)
            .collect();
        assert_eq!(weights[0], 1, "first step should settle weight 1");
        assert_eq!(mapping.stats().total_weight(), 5);
    }

    #[test]
    fn paper_first_step_picks_o0_o1_o6() {
        // The paper's first iteration groups O0, O1, O6 under qubit 0.
        let mapping = hatt(&paper_example());
        let tree = mapping.tree();
        let q0 = tree.internal_of(0);
        let mut ch = tree.children(q0).unwrap().to_vec();
        ch.sort_unstable();
        assert_eq!(ch, vec![0, 1, 6]);
    }

    #[test]
    fn all_variants_are_valid() {
        let h = paper_example();
        for variant in [Variant::Unopt, Variant::Paired, Variant::Cached] {
            let m = hatt_with(
                &h,
                &HattOptions {
                    variant,
                    naive_weight: false,
                },
            );
            let report = validate(&m);
            assert!(report.is_valid(), "{variant:?} invalid: {report:?}");
            if variant != Variant::Unopt {
                assert!(
                    report.vacuum_preserving,
                    "{variant:?} must preserve the vacuum"
                );
            }
        }
    }

    #[test]
    fn cached_and_paired_agree_exactly() {
        for seed in 0..4 {
            let op = hatt_fermion::models::random_hermitian(5, 6, 5, seed);
            let h = MajoranaSum::from_fermion(&op);
            let a = hatt_with(
                &h,
                &HattOptions {
                    variant: Variant::Paired,
                    naive_weight: false,
                },
            );
            let b = hatt_with(
                &h,
                &HattOptions {
                    variant: Variant::Cached,
                    naive_weight: false,
                },
            );
            for k in 0..2 * h.n_modes() {
                assert_eq!(a.majorana(k), b.majorana(k), "seed {seed}, M{k}");
            }
            // The cache removes all traversal work.
            assert_eq!(b.stats().total_traversal_steps(), 0);
            assert!(a.stats().total_traversal_steps() > 0);
        }
    }

    #[test]
    fn naive_weight_ablation_matches() {
        let h = paper_example();
        let fast = hatt_with(
            &h,
            &HattOptions {
                variant: Variant::Cached,
                naive_weight: false,
            },
        );
        let slow = hatt_with(
            &h,
            &HattOptions {
                variant: Variant::Cached,
                naive_weight: true,
            },
        );
        for k in 0..6 {
            assert_eq!(fast.majorana(k), slow.majorana(k));
        }
    }

    #[test]
    fn objective_equals_mapped_weight() {
        let h = paper_example();
        let (mapping, hq) = compile(&h);
        assert_eq!(hq.weight(), mapping.stats().total_weight());
        assert!(hq.is_hermitian(1e-10));
    }

    #[test]
    fn single_mode_gives_xy() {
        let h = MajoranaSum::uniform_singles(1);
        let m = hatt(&h);
        assert_eq!(m.majorana(0).to_string(), "X");
        assert_eq!(m.majorana(1).to_string(), "Y");
        assert!(validate(&m).vacuum_preserving);
    }

    #[test]
    fn vacuum_preserved_on_random_hamiltonians() {
        for seed in 0..6 {
            let op = hatt_fermion::models::random_hermitian(6, 8, 6, seed);
            let h = MajoranaSum::from_fermion(&op);
            let m = hatt(&h);
            let report = validate(&m);
            assert!(report.is_valid(), "seed {seed}: {report:?}");
            assert!(report.vacuum_preserving, "seed {seed} breaks vacuum");
        }
    }

    #[test]
    fn unopt_candidate_counts_are_cubic_per_step() {
        // Step 0 of an N-mode system evaluates C(2N+1, 3) triples.
        let h = MajoranaSum::uniform_singles(4);
        let m = hatt_with(
            &h,
            &HattOptions {
                variant: Variant::Unopt,
                naive_weight: false,
            },
        );
        let first = &m.stats().iterations[0];
        assert_eq!(first.candidates, 9 * 8 * 7 / 6);
    }

    #[test]
    fn cached_candidate_counts_are_quadratic_per_step() {
        let h = MajoranaSum::uniform_singles(4);
        let m = hatt(&h);
        let first = &m.stats().iterations[0];
        // ≤ |U|·(|U|−1) ordered pairs, minus skips.
        assert!(first.candidates <= 72, "got {}", first.candidates);
        assert!(first.candidates >= 36, "got {}", first.candidates);
    }

    #[test]
    fn beats_or_matches_balanced_tree_on_benchmarks() {
        use hatt_fermion::models::FermiHubbard;
        use hatt_mappings::balanced_ternary_tree;
        let op = FermiHubbard::new(2, 2).hamiltonian();
        let h = MajoranaSum::from_fermion(&op);
        let hatt_w = hatt(&h).map_majorana_sum(&h).weight();
        let btt_w = balanced_ternary_tree(8).map_majorana_sum(&h).weight();
        assert!(
            hatt_w <= btt_w,
            "HATT ({hatt_w}) should not lose to BTT ({btt_w}) on Hubbard 2x2"
        );
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn zero_modes_rejected() {
        let h = MajoranaSum::new(0);
        let _ = hatt(&h);
    }
}
