//! The Hamiltonian-Adaptive Ternary Tree construction — Algorithms 1, 2
//! and 3 of the paper.
//!
//! All three variants share the bottom-up skeleton: start from the
//! `2N + 1` free leaves (the node set `U`), and for `N` iterations pick
//! three current roots, attach a new parent (settling one qubit), and
//! reduce the Hamiltonian. They differ in *how the triple is selected*:
//!
//! * [`Variant::Unopt`] — Algorithm 1: free choice over all `C(|U|, 3)`
//!   triples, minimizing the settled weight. `O(N⁴)` total; does **not**
//!   preserve the vacuum state.
//! * [`Variant::Paired`] — Algorithm 2: only `(O_X, O_Z)` are free; `O_Y`
//!   is derived by walking down to `descZ(O_X)`, picking its partner
//!   leaf, and walking back up to the node set. Preserves the vacuum
//!   state; traversals make it `O(N⁴)` worst case.
//! * [`Variant::Cached`] — Algorithm 3 (the default): Algorithm 2 with
//!   the `mdown : O → descZ(O)` and `mup : descZ(O) → O` maps replacing
//!   both traversals with O(1) lookups, for `O(N³)` total.
//!
//! Orthogonally to the variant, a [`SelectionPolicy`] decides *which* of
//! the candidate triples wins each step:
//!
//! * [`SelectionPolicy::Greedy`] (default) — minimum [`TripleScore`]
//!   (amortized key, then post-reduce residual, then node index); one
//!   pass, O(1) amortized per candidate via the memoized kernel.
//! * [`SelectionPolicy::Lookahead`] — the best-`width` shortlist is
//!   re-ranked by simulating each candidate and adding the best
//!   amortized key the next step could then achieve.
//! * [`SelectionPolicy::Beam`] — the `width` best merge-sequence
//!   prefixes survive each step ([`hatt_with`] drives the whole
//!   construction as a beam). `Beam { width: 1 }` coincides with
//!   `Greedy`.
//!
//! The lookahead simulation and the beam always use the Algorithm 3 maps
//! for operator pairing, whatever the variant — pairing is
//! variant-independent (Algorithms 2 and 3 build identical trees), so
//! this changes no result, only bounds the simulation cost.
//!
//! ## Threading
//!
//! Two execution paths fan out over scoped worker threads (worker count
//! from [`HattOptions::workers`], i.e. `HATT_THREADS` or the hardware
//! count): the [`SelectionPolicy::Restarts`] portfolio runs its members
//! concurrently, and a multi-state beam scans its states concurrently.
//! Both reduce their results in a fixed order (member index / state
//! index), so parallel output is **bit-identical** to sequential — see
//! `docs/ARCHITECTURE.md` ("Threading model") and
//! `tests/parallel_determinism.rs`. Batch workloads go through
//! [`crate::map_many`], which additionally caches constructions by
//! Hamiltonian structure.
//!
//! # Examples
//!
//! Stronger policies can only improve the objective; the `Restarts`
//! portfolio additionally never loses to Jordan-Wigner (it contains a
//! JW-structured restart):
//!
//! ```
//! use hatt_core::Mapper;
//! use hatt_fermion::models::FermiHubbard;
//! use hatt_fermion::MajoranaSum;
//! use hatt_mappings::{jordan_wigner, FermionMapping, SelectionPolicy};
//!
//! let h = MajoranaSum::from_fermion(&FermiHubbard::new(2, 2).hamiltonian());
//! let mapper = Mapper::builder()
//!     .policy(SelectionPolicy::quality())
//!     .build()?;
//! let w_hatt = mapper.map(&h)?.map_majorana_sum(&h).weight();
//! let w_jw = jordan_wigner(8).map_majorana_sum(&h).weight();
//! assert!(w_hatt <= w_jw);
//! # Ok::<(), hatt_core::HattError>(())
//! ```

use std::time::Instant;

use hatt_fermion::{FermionOperator, MajoranaSum};
use hatt_mappings::{
    select_free_triple, Blend, FermionMapping, NodeId, PortfolioMember, SelectionPolicy,
    TermEngine, TernaryTree, TernaryTreeBuilder, TreeMapping, TripleScore,
};
use hatt_pauli::{PauliString, PauliSum};

use crate::error::HattError;
use crate::stats::{ConstructionStats, IterationStats};

// The threaded portfolio and `map_many` move these across scoped worker
// threads; keep them plain owned data.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MajoranaSum>();
    assert_send_sync::<HattMapping>();
    assert_send_sync::<HattOptions>();
};

/// Which of the paper's algorithms to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// Algorithm 1: free triple selection, `O(N⁴)`, no vacuum guarantee.
    Unopt,
    /// Algorithm 2: operator pairing with literal tree traversals.
    Paired,
    /// Algorithm 3: operator pairing with O(1) cached maps (default).
    #[default]
    Cached,
}

impl Variant {
    /// Short display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Unopt => "HATT (unopt)",
            Variant::Paired => "HATT (paired, uncached)",
            Variant::Cached => "HATT",
        }
    }

    /// Short machine-readable key (`unopt` / `paired` / `cached`) — the
    /// form the wire format and perf artifacts use.
    pub fn key(self) -> &'static str {
        match self {
            Variant::Unopt => "unopt",
            Variant::Paired => "paired",
            Variant::Cached => "cached",
        }
    }

    /// Parses a [`Variant::key`] back (`None` for anything else).
    pub fn from_key(s: &str) -> Option<Variant> {
        match s {
            "unopt" => Some(Variant::Unopt),
            "paired" => Some(Variant::Paired),
            "cached" => Some(Variant::Cached),
            _ => None,
        }
    }
}

/// Construction options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HattOptions {
    /// Algorithm variant.
    pub variant: Variant,
    /// Use the paper's per-term weight scan instead of the block-bitset
    /// kernel (ablation; identical results, slower).
    pub naive_weight: bool,
    /// How to choose among candidate triples (tie-breaking, lookahead or
    /// beam search). [`SelectionPolicy::Greedy`] preserves the O(1)
    /// memoized fast path.
    pub policy: SelectionPolicy,
    /// Worker-thread cap for the parallel execution paths (the
    /// [`SelectionPolicy::Restarts`] member fan-out and the beam's
    /// per-state candidate scans). `None` defers to the `HATT_THREADS`
    /// environment variable / hardware count via
    /// [`parallel::max_threads`]; `Some(1)` forces the fully sequential
    /// engine. **Never affects results** — parallel output is
    /// bit-identical to sequential (pinned by
    /// `tests/parallel_determinism.rs`), only wall time changes.
    pub threads: Option<usize>,
}

impl HattOptions {
    /// Default options with an explicit selection policy.
    pub fn with_policy(policy: SelectionPolicy) -> Self {
        HattOptions {
            policy,
            ..Default::default()
        }
    }

    /// Default options with an explicit worker-thread cap.
    pub fn with_threads(threads: usize) -> Self {
        HattOptions {
            threads: Some(threads),
            ..Default::default()
        }
    }

    /// The resolved worker count this construction may use
    /// (`threads`, else `HATT_THREADS`, else the hardware count).
    pub fn workers(&self) -> usize {
        self.threads
            .map(|t| t.max(1))
            .unwrap_or_else(parallel::max_threads)
    }
}

/// The result of a HATT construction: a tree-backed fermion-to-qubit
/// mapping plus instrumentation.
///
/// # Examples
///
/// ```
/// use hatt_core::Mapper;
/// use hatt_fermion::{FermionOperator, MajoranaSum};
/// use hatt_mappings::{validate, FermionMapping};
/// use hatt_pauli::Complex64;
///
/// // The paper's Equation (3) Hamiltonian.
/// let mut hf = FermionOperator::new(3);
/// hf.add_one_body(Complex64::ONE, 0, 0);
/// hf.add_two_body(Complex64::real(2.0), 1, 2, 1, 2);
/// let h = MajoranaSum::from_fermion(&hf);
///
/// let mapping = Mapper::new().map(&h)?;
/// let report = validate(&mapping);
/// assert!(report.is_valid());
/// assert!(report.vacuum_preserving);
/// assert_eq!(mapping.stats().total_weight(), 5); // 1 + 2 + 2, as in §IV-B
/// # Ok::<(), hatt_core::HattError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HattMapping {
    mapping: TreeMapping,
    stats: ConstructionStats,
    options: HattOptions,
}

impl HattMapping {
    /// Reassembles a mapping from its parts — the wire decoder's
    /// constructor (`crate::wire`).
    pub(crate) fn from_parts(
        mapping: TreeMapping,
        stats: ConstructionStats,
        options: HattOptions,
    ) -> Self {
        HattMapping {
            mapping,
            stats,
            options,
        }
    }

    /// The underlying ternary tree.
    pub fn tree(&self) -> &TernaryTree {
        self.mapping.tree()
    }

    /// Construction statistics (Figure 12 / Table VI instrumentation).
    pub fn stats(&self) -> &ConstructionStats {
        &self.stats
    }

    /// The options the mapping was built with.
    pub fn options(&self) -> &HattOptions {
        &self.options
    }

    /// Access to the inner [`TreeMapping`].
    pub fn as_tree_mapping(&self) -> &TreeMapping {
        &self.mapping
    }
}

impl FermionMapping for HattMapping {
    fn n_modes(&self) -> usize {
        self.mapping.n_modes()
    }

    fn majorana(&self, k: usize) -> &PauliString {
        self.mapping.majorana(k)
    }

    fn name(&self) -> &str {
        self.options.variant.label()
    }
}

/// Compiles a HATT mapping with default options (Algorithm 3).
///
/// Deprecated shim kept so pre-`Mapper` code compiles unchanged; it
/// panics on zero-mode input exactly as it always did.
#[deprecated(note = "use `Mapper::new().map(&h)` and handle the `HattError` instead")]
pub fn hatt(h: &MajoranaSum) -> HattMapping {
    expect_mapping(hatt_with_impl(h, &HattOptions::default()))
}

/// Compiles a HATT mapping directly from a second-quantized operator.
///
/// Deprecated shim; see [`crate::Mapper::map_fermion`].
#[deprecated(note = "use `Mapper::new().map_fermion(&op)` instead")]
pub fn hatt_for_fermion(op: &FermionOperator) -> HattMapping {
    expect_mapping(hatt_with_impl(
        &MajoranaSum::from_fermion(op),
        &HattOptions::default(),
    ))
}

/// Compiles a HATT mapping with explicit options.
///
/// Deprecated shim kept so pre-`Mapper` code compiles unchanged; it
/// panics on zero-mode input exactly as it always did.
#[deprecated(note = "use `Mapper::with_options(opts).map(&h)` instead")]
pub fn hatt_with(h: &MajoranaSum, options: &HattOptions) -> HattMapping {
    expect_mapping(hatt_with_impl(h, options))
}

/// Unwraps a construction result with the historic panic wording — the
/// deprecated shims' behaviour contract.
fn expect_mapping(r: Result<HattMapping, HattError>) -> HattMapping {
    // hatt-lint: allow(panic) -- the deprecated shims' documented `# Panics` contract; new code uses Mapper
    r.unwrap_or_else(|e| panic!("{e}"))
}

/// The fallible construction entry point behind [`crate::Mapper::map`]
/// and the deprecated free functions: validates the input, then runs the
/// selected policy.
pub(crate) fn hatt_with_impl(
    h: &MajoranaSum,
    options: &HattOptions,
) -> Result<HattMapping, HattError> {
    if h.n_modes() == 0 {
        return Err(HattError::EmptyHamiltonian);
    }
    match options.policy {
        SelectionPolicy::Beam { width } => hatt_beam(h, options, width.max(1), Blend::UNIT),
        SelectionPolicy::Restarts => hatt_restarts(h, options),
        _ => hatt_single(h, options, options.policy.blend()),
    }
}

/// One policy-driven greedy/lookahead construction pass under `blend`.
fn hatt_single(
    h: &MajoranaSum,
    options: &HattOptions,
    blend: Blend,
) -> Result<HattMapping, HattError> {
    let n = h.n_modes();
    let start = Instant::now();
    let mut engine = TermEngine::new(h);
    let mut builder = TernaryTreeBuilder::new(n);
    let mut state = PairingState::new(n);
    let mut iterations = Vec::with_capacity(n);

    for qubit in 0..n {
        let mut iter_stats = IterationStats {
            qubit,
            ..Default::default()
        };
        let u = builder.roots();
        let next_parent: NodeId = 2 * n + 1 + qubit;
        // `construct.step` times one qubit's candidate selection — the
        // per-step profiling hook behind the fig12 kernel analysis. A
        // free no-op outside a tracing scope.
        let selection = hatt_trace::span("construct.step", || -> Result<Selection, HattError> {
            Ok(match options.variant {
                Variant::Unopt => {
                    let sel = select_free_triple(
                        &mut engine,
                        &u,
                        options.policy,
                        blend,
                        options.naive_weight,
                        next_parent,
                    );
                    iter_stats.candidates = sel.candidates;
                    Selection {
                        children: sel.children,
                        weight: sel.score.weight,
                    }
                }
                Variant::Paired => select_paired(
                    &mut engine,
                    Some(&builder),
                    &u,
                    n,
                    options,
                    blend,
                    next_parent,
                    &mut iter_stats,
                    &mut state,
                )?,
                Variant::Cached => select_paired(
                    &mut engine,
                    None,
                    &u,
                    n,
                    options,
                    blend,
                    next_parent,
                    &mut iter_stats,
                    &mut state,
                )?,
            })
        })?;
        let [ox, oy, oz] = selection.children;
        iter_stats.settled_weight = selection.weight;
        let parent = builder.attach([ox, oy, oz]);
        debug_assert_eq!(parent, next_parent);
        engine.reduce(parent, ox, oy, oz);
        state.record_attach(parent, oz);
        iterations.push(iter_stats);
    }

    let (memo_hits, memo_misses) = engine.memo_stats();
    let stats = ConstructionStats {
        iterations,
        n_terms: engine.n_terms(),
        elapsed: start.elapsed(),
        memo_hits,
        memo_misses,
    };
    let tree = builder.finish();
    let mapping = TreeMapping::with_identity_assignment(options.variant.label(), tree);
    Ok(HattMapping {
        mapping,
        stats,
        options: *options,
    })
}

/// A chosen `[X, Y, Z]` child triple and its settled weight.
struct Selection {
    children: [NodeId; 3],
    weight: usize,
}

fn score_of(
    engine: &mut TermEngine,
    options: &HattOptions,
    blend: Blend,
    a: NodeId,
    b: NodeId,
    c: NodeId,
) -> TripleScore {
    let counts = if options.naive_weight {
        engine.counts_of_triple_naive(a, b, c)
    } else {
        engine.counts_of_triple_memo(a, b, c)
    };
    counts.score(blend)
}

/// Algorithm 2/3 selection: free `(O_X, O_Z)`, derived `O_Y`.
///
/// When `walk` is `Some`, `descZ` / `traverse_up` literally walk the
/// partial tree inside the selection loop, exactly as Algorithm 2's
/// pseudocode does; otherwise they are O(1) lookups in the Algorithm 3
/// maps. Either way the maps in `state` are kept current, so the
/// lookahead simulation can use them.
#[allow(clippy::too_many_arguments)]
fn select_paired(
    engine: &mut TermEngine,
    walk: Option<&TernaryTreeBuilder>,
    u: &[NodeId],
    n: usize,
    options: &HattOptions,
    blend: Blend,
    next_parent: NodeId,
    stats: &mut IterationStats,
    state: &mut PairingState,
) -> Result<Selection, HattError> {
    let width = match options.policy {
        SelectionPolicy::Lookahead { width } => width,
        _ => 0,
    };
    let mut shortlist: Vec<(TripleScore, [NodeId; 3])> = Vec::new();
    let mut best: Option<(TripleScore, [NodeId; 3])> = None;

    for &ox in u {
        for &oz in u {
            if oz == ox {
                continue;
            }
            // descZ(O_X): the only unpaired leaf of O_X's subtree.
            let x_leaf = match walk {
                None => state.mdown[ox],
                Some(builder) => {
                    let (leaf, steps) = walk_desc_z(builder, ox);
                    stats.traversal_steps += steps;
                    leaf
                }
            };
            if x_leaf == 2 * n {
                continue; // O_2N never pairs (paper §IV-B)
            }
            // Partner leaf: even x pairs with x+1, odd with x−1.
            let (y_leaf, swapped) = if x_leaf % 2 == 0 {
                (x_leaf + 1, false)
            } else {
                (x_leaf - 1, true)
            };
            // traverse_up(O_y, U).
            let oy = match walk {
                None => state.mup[y_leaf],
                Some(builder) => {
                    let (root, steps) = walk_up(builder, y_leaf);
                    stats.traversal_steps += steps;
                    root
                }
            };
            if oy == oz || oy == ox {
                continue; // O_Y collides with the chosen Z child
            }
            debug_assert!(u.contains(&oy), "derived O_Y must be a current root");
            stats.candidates += 1;
            let score = score_of(engine, options, blend, ox, oy, oz);
            // Ensure the even leaf sits on the X branch so the pair
            // carries (X, Y) and not (Y, X) (Algorithm 2 line 15).
            let children = if swapped { [oy, ox, oz] } else { [ox, oy, oz] };
            if best.as_ref().is_none_or(|b| score < b.0) {
                best = Some((score, children));
            }
            if width > 0 {
                offer(&mut shortlist, width, score, children);
            }
        }
    }
    // Infallible for every reachable input: `n >= 1` guarantees `|U| >=
    // 3`, and a node set of three or more current roots always admits a
    // paired candidate (the one leaf that never pairs, `O_2N`, excludes
    // at most one `O_X` choice). Kept on the `Result` path anyway so the
    // invariant can never become a user-facing panic.
    debug_assert!(best.is_some(), "paired selection must find a candidate");
    let (score, children) = best.ok_or(HattError::Internal(
        "paired selection found no candidate although |U| >= 3",
    ))?;
    let (score, children) = if width > 0 && u.len() > 3 {
        rank_paired_by_lookahead(
            engine,
            u,
            n,
            options,
            blend,
            next_parent,
            stats,
            state,
            shortlist,
        )
    } else {
        (score, children)
    };
    Ok(Selection {
        children,
        weight: score.weight,
    })
}

/// Re-ranks the shortlisted paired candidates by
/// `amortized key + best next-step key` (ties: residual, then shortlist
/// order), simulating each candidate's reduce and map update and undoing
/// both before returning.
#[allow(clippy::too_many_arguments)]
fn rank_paired_by_lookahead(
    engine: &mut TermEngine,
    u: &[NodeId],
    n: usize,
    options: &HattOptions,
    blend: Blend,
    next_parent: NodeId,
    stats: &mut IterationStats,
    state: &mut PairingState,
    shortlist: Vec<(TripleScore, [NodeId; 3])>,
) -> (TripleScore, [NodeId; 3]) {
    let saved = engine.incidence(next_parent).clone();
    let mut best_idx = 0usize;
    let mut best_key = (i64::MAX, usize::MAX);
    for (idx, &(score, children)) in shortlist.iter().enumerate() {
        let [ox, oy, oz] = children;
        engine.reduce(next_parent, ox, oy, oz);
        let undo = state.record_attach(next_parent, oz);
        let next_u: Vec<NodeId> = u
            .iter()
            .copied()
            .filter(|v| !children.contains(v))
            .chain(std::iter::once(next_parent))
            .collect();
        let mut next_best = 0i64;
        if next_u.len() >= 3 {
            next_best = i64::MAX;
            for_each_paired_candidate(state, &next_u, n, |cx, cy, cz| {
                stats.candidates += 1;
                let s = score_of(engine, options, blend, cx, cy, cz);
                next_best = next_best.min(s.key);
            });
            debug_assert_ne!(next_best, i64::MAX, "paired candidates must exist");
        }
        state.undo_attach(undo);
        engine.set_incidence(next_parent, saved.clone());
        let key = (score.key + next_best, score.residual);
        if key < best_key {
            best_key = key;
            best_idx = idx;
        }
    }
    shortlist[best_idx]
}

/// Enumerates the valid paired candidates of a node set via the
/// Algorithm 3 maps, yielding ordered `[X, Y, Z]` children.
fn for_each_paired_candidate(
    state: &PairingState,
    u: &[NodeId],
    n: usize,
    mut visit: impl FnMut(NodeId, NodeId, NodeId),
) {
    for &ox in u {
        for &oz in u {
            if oz == ox {
                continue;
            }
            let x_leaf = state.mdown[ox];
            if x_leaf == 2 * n {
                continue;
            }
            let (y_leaf, swapped) = if x_leaf % 2 == 0 {
                (x_leaf + 1, false)
            } else {
                (x_leaf - 1, true)
            };
            let oy = state.mup[y_leaf];
            if oy == oz || oy == ox {
                continue;
            }
            if swapped {
                visit(oy, ox, oz);
            } else {
                visit(ox, oy, oz);
            }
        }
    }
}

/// Bounded best-`k` insert ordered by score then insertion order.
/// Duplicate candidates are dropped: the paired enumeration visits each
/// unordered pair once from each partner (as `O_X`), yielding the same
/// ordered children twice — without the check those duplicates would
/// halve the effective shortlist/beam width and double the lookahead
/// simulation work.
fn offer(
    shortlist: &mut Vec<(TripleScore, [NodeId; 3])>,
    width: usize,
    score: TripleScore,
    children: [NodeId; 3],
) {
    if shortlist.len() == width && score >= shortlist[width - 1].0 {
        return;
    }
    if shortlist.iter().any(|&(_, ch)| ch == children) {
        return;
    }
    let pos = shortlist.partition_point(|&(s, _)| s <= score);
    shortlist.insert(pos, (score, children));
    shortlist.truncate(width);
}

fn walk_desc_z(builder: &TernaryTreeBuilder, node: NodeId) -> (NodeId, u64) {
    let mut steps = 0;
    let mut v = node;
    while let Some(c) = builder.child_z(v) {
        v = c;
        steps += 1;
    }
    (v, steps)
}

fn walk_up(builder: &TernaryTreeBuilder, node: NodeId) -> (NodeId, u64) {
    let mut steps = 0;
    let mut v = node;
    while let Some(p) = builder.parent_of(v) {
        v = p;
        steps += 1;
    }
    (v, steps)
}

/// The `mdown` / `mup` maps of Algorithm 3.
#[derive(Debug, Clone)]
struct PairingState {
    /// `O → descZ(O)` for current roots.
    mdown: Vec<NodeId>,
    /// `descZ(O) → O`: the current root owning each unpaired leaf.
    mup: Vec<NodeId>,
}

/// Saved map entries to reverse one [`PairingState::record_attach`].
struct PairingUndo {
    parent: NodeId,
    zdesc: NodeId,
    old_mdown: NodeId,
    old_mup: NodeId,
}

impl PairingState {
    fn new(n: usize) -> Self {
        let n_nodes = 3 * n + 1;
        let n_leaves = 2 * n + 1;
        PairingState {
            mdown: (0..n_nodes).collect(),
            mup: (0..n_leaves).collect(),
        }
    }

    /// Algorithm 3 lines 8–11: after attaching `parent` over
    /// `(O_X, O_Y, O_Z)`, the parent's Z-descendant is `descZ(O_Z)`.
    /// Returns the overwritten entries so a simulation can undo itself.
    fn record_attach(&mut self, parent: NodeId, oz: NodeId) -> PairingUndo {
        let zdesc = self.mdown[oz];
        let undo = PairingUndo {
            parent,
            zdesc,
            old_mdown: self.mdown[parent],
            old_mup: self.mup[zdesc],
        };
        self.mdown[parent] = zdesc;
        self.mup[zdesc] = parent;
        undo
    }

    /// Reverses a simulated [`PairingState::record_attach`].
    fn undo_attach(&mut self, undo: PairingUndo) {
        self.mdown[undo.parent] = undo.old_mdown;
        self.mup[undo.zdesc] = undo.old_mup;
    }
}

/// One beam-pool entry: `(total key, residual, state idx, local rank,
/// (score, children))`. Local rank preserves candidate-enumeration
/// order among ties, so `Beam { width: 1 }` reproduces the greedy
/// first-wins choice.
type BeamEntry = (i64, usize, usize, usize, (TripleScore, [NodeId; 3]));

/// One surviving merge-sequence prefix of the beam search.
#[derive(Debug, Clone)]
struct BeamState {
    engine: TermEngine,
    u: Vec<NodeId>,
    pairing: PairingState,
    seq: Vec<[NodeId; 3]>,
    step_weights: Vec<usize>,
    /// Accumulated true weight (the objective reported in stats).
    acc_weight: usize,
    /// Accumulated amortized key (what the beam ranks by).
    acc_key: i64,
}

/// One beam state's scan result: its best-`width` local shortlist plus
/// the number of candidates evaluated.
type BeamScan = (Vec<(TripleScore, [NodeId; 3])>, u64);

/// One beam state's candidate scan for the next step. Touches only the
/// state's own engine/memo, so scans of distinct states are
/// embarrassingly parallel (see [`hatt_beam`]).
fn scan_beam_state(
    st: &mut BeamState,
    options: &HattOptions,
    blend: Blend,
    width: usize,
    n: usize,
) -> BeamScan {
    let mut local: Vec<(TripleScore, [NodeId; 3])> = Vec::new();
    let mut candidates = 0u64;
    match options.variant {
        Variant::Unopt => {
            let u = &st.u;
            for ai in 0..u.len() {
                for bi in (ai + 1)..u.len() {
                    for ci in (bi + 1)..u.len() {
                        candidates += 1;
                        let score = score_of(&mut st.engine, options, blend, u[ai], u[bi], u[ci]);
                        offer(&mut local, width, score, [u[ai], u[bi], u[ci]]);
                    }
                }
            }
        }
        Variant::Paired | Variant::Cached => {
            let engine = &mut st.engine;
            let u = st.u.clone();
            for_each_paired_candidate(&st.pairing, &u, n, |cx, cy, cz| {
                candidates += 1;
                let score = score_of(engine, options, blend, cx, cy, cz);
                offer(&mut local, width, score, [cx, cy, cz]);
            });
        }
    }
    (local, candidates)
}

/// Below this many free nodes a beam step's candidate scan stays on the
/// calling thread: the quadratic scan is only microseconds there and the
/// fork/join would cost more than it saves.
const PAR_BEAM_MIN_FREE_NODES: usize = 16;

/// Beam-search construction: keep the `width` best partial merge
/// sequences per step, ranked by accumulated amortized key then the
/// candidate's residual. `width = 1` coincides with the greedy policy.
/// Pairing uses the Algorithm 3 maps for every variant (the pairing
/// constraint itself is variant-independent), so `Paired`/`Cached` beams
/// preserve the vacuum state and `Unopt` beams search the free-triple
/// space.
///
/// With more than one worker available, each step's per-state candidate
/// scans fan out over scoped threads (each state owns its engine, so the
/// scans share nothing); the surviving pool is then merged and ranked on
/// the calling thread in state order, keeping results bit-identical to
/// the sequential schedule.
fn hatt_beam(
    h: &MajoranaSum,
    options: &HattOptions,
    width: usize,
    blend: Blend,
) -> Result<HattMapping, HattError> {
    let n = h.n_modes();
    let start = Instant::now();
    let workers = options.workers();
    let mut states = vec![BeamState {
        engine: TermEngine::new(h),
        u: (0..2 * n + 1).collect(),
        pairing: PairingState::new(n),
        seq: Vec::with_capacity(n),
        step_weights: Vec::with_capacity(n),
        acc_weight: 0,
        acc_key: 0,
    }];
    let mut iterations = Vec::with_capacity(n);

    for qubit in 0..n {
        let next_parent: NodeId = 2 * n + 1 + qubit;
        let mut iter_stats = IterationStats {
            qubit,
            ..Default::default()
        };
        let par_scan =
            workers > 1 && states.len() > 1 && states[0].u.len() >= PAR_BEAM_MIN_FREE_NODES;
        let scans: Vec<BeamScan> = if par_scan {
            parallel::par_map_mut_with(workers, &mut states, |_, st| {
                scan_beam_state(st, options, blend, width, n)
            })
        } else {
            states
                .iter_mut()
                .map(|st| scan_beam_state(st, options, blend, width, n))
                .collect()
        };
        let mut pool: Vec<BeamEntry> = Vec::new();
        for (si, (local, candidates)) in scans.into_iter().enumerate() {
            iter_stats.candidates += candidates;
            for (rank, (score, children)) in local.into_iter().enumerate() {
                pool.push((
                    states[si].acc_key + score.key,
                    score.residual,
                    si,
                    rank,
                    (score, children),
                ));
            }
        }
        pool.sort_unstable_by_key(|&(total, residual, si, rank, _)| (total, residual, si, rank));
        pool.truncate(width);
        // Infallible: every surviving state scans the same non-empty
        // paired candidate space, so the pool can only be empty if the
        // beam itself is — and it starts with one state.
        debug_assert!(!pool.is_empty(), "beam must always have a candidate");
        if pool.is_empty() {
            return Err(HattError::Internal("beam step produced no candidates"));
        }

        let mut next_states = Vec::with_capacity(pool.len());
        for &(total_key, _residual, si, _rank, (score, children)) in &pool {
            let mut st = states[si].clone();
            let [ox, oy, oz] = children;
            st.engine.reduce(next_parent, ox, oy, oz);
            let _ = st.pairing.record_attach(next_parent, oz);
            st.u.retain(|v| !children.contains(v));
            st.u.push(next_parent);
            st.step_weights.push(score.weight);
            st.acc_weight += score.weight;
            st.acc_key = total_key;
            st.seq.push(children);
            next_states.push(st);
        }
        states = next_states;
        iterations.push(iter_stats);
    }

    // The final ranking is by *true* accumulated weight: the amortized
    // key guided the search, the objective decides the winner.
    let best = states
        .into_iter()
        .min_by_key(|st| st.acc_weight)
        // Infallible: the pool-emptiness guard above keeps ≥ 1 state
        // alive through every step.
        .ok_or(HattError::Internal("beam ended with no surviving state"))?;
    for (it, &w) in iterations.iter_mut().zip(&best.step_weights) {
        it.settled_weight = w;
    }
    let mut builder = TernaryTreeBuilder::new(n);
    for &triple in &best.seq {
        builder.attach(triple);
    }
    let (memo_hits, memo_misses) = best.engine.memo_stats();
    let stats = ConstructionStats {
        iterations,
        n_terms: best.engine.n_terms(),
        elapsed: start.elapsed(),
        memo_hits,
        memo_misses,
    };
    let mapping = TreeMapping::with_identity_assignment(options.variant.label(), builder.finish());
    Ok(HattMapping {
        mapping,
        stats,
        options: *options,
    })
}

/// The merge sequence whose tree is the Jordan-Wigner caterpillar
/// (bottom-up: deepest internal node first, leaf pairs `(2m, 2m+1)` on
/// the X/Y branches, the growing chain on Z). Under the identity leaf
/// assignment this reproduces the JW strings up to qubit relabeling, so
/// replaying it scores exactly the Jordan-Wigner Pauli weight.
fn jw_sequence(n: usize) -> Vec<[NodeId; 3]> {
    let mut seq = Vec::with_capacity(n);
    seq.push([2 * n - 2, 2 * n - 1, 2 * n]);
    for j in 1..n {
        let m = n - 1 - j;
        seq.push([2 * m, 2 * m + 1, 2 * n + j]);
    }
    seq
}

/// Replays a fixed merge sequence, recording per-step weights (no
/// candidate evaluations — `stats.candidates` stays 0). Besides the JW
/// portfolio member, this is the mapping-cache hit path (`crate::batch`):
/// replaying a cached sequence against a new same-structure Hamiltonian
/// skips all selection work yet yields exact per-step stats.
pub(crate) fn hatt_replay(
    h: &MajoranaSum,
    options: &HattOptions,
    seq: &[[NodeId; 3]],
) -> HattMapping {
    let n = h.n_modes();
    let start = Instant::now();
    let mut engine = TermEngine::new(h);
    let mut builder = TernaryTreeBuilder::new(n);
    let mut iterations = Vec::with_capacity(n);
    for (qubit, &[a, b, c]) in seq.iter().enumerate() {
        let settled_weight = engine.weight_of_triple(a, b, c);
        let parent = builder.attach([a, b, c]);
        engine.reduce(parent, a, b, c);
        iterations.push(IterationStats {
            qubit,
            settled_weight,
            ..Default::default()
        });
    }
    let (memo_hits, memo_misses) = engine.memo_stats();
    let stats = ConstructionStats {
        iterations,
        n_terms: engine.n_terms(),
        elapsed: start.elapsed(),
        memo_hits,
        memo_misses,
    };
    let mapping = TreeMapping::with_identity_assignment(options.variant.label(), builder.finish());
    HattMapping {
        mapping,
        stats,
        options: *options,
    }
}

/// Whether `options` admit the incremental remap kernel
/// ([`hatt_remap`]). Only the single-pass greedy policies qualify:
/// lookahead re-ranks by simulated next steps and the beam keeps
/// multiple prefixes alive, so neither can reuse a single previous
/// merge sequence; the restarts portfolio would need one sequence *per
/// member*. `Unopt` is out because its free-triple scan has no pairing
/// structure to skip over. Unsupported options simply fall back to a
/// fresh construction — same result, no savings.
pub(crate) fn remap_supported(options: &HattOptions) -> bool {
    matches!(
        options.policy,
        SelectionPolicy::Greedy | SelectionPolicy::Vanilla
    ) && !matches!(options.variant, Variant::Unopt)
}

/// Incremental greedy construction seeded by a previous merge sequence.
///
/// `h` is the *new* (post-delta) Hamiltonian, `prev_seq` the merge
/// sequence of the previous mapping (same mode count, options passing
/// [`remap_supported`]), and `touched` the Majorana indices whose terms
/// the delta added or removed. Produces output **bit-identical** to
/// `hatt_single(h, options, blend)` — tree, merge sequence and per-step
/// settled weights — while re-scoring only the frontier the delta can
/// influence (`tests/remap_differential.rs` pins the equivalence).
///
/// Why this is sound: a candidate triple whose three subtrees contain
/// no touched leaf interacts with no added/removed term, so its
/// [`TripleScore`] — per-triple counts only — is the same in the old
/// and new engines. While the replayed prefix matches the old tree and
/// the previous winner is itself untouched, the old winner therefore
/// still dominates every untouched candidate, and the true new winner
/// can only be the old winner or a *touched* candidate. Scoring just
/// that subset (in enumeration order, under the same strict-`<`
/// first-wins rule) reproduces the full scan's choice exactly. The
/// moment the previous winner is touched, the step falls back to a full
/// scan; the moment the choice diverges from `prev_seq`, the remaining
/// steps are a plain greedy construction ([`select_paired`] with the
/// Algorithm 3 maps — valid for `Paired` too, which differs from
/// `Cached` only in traversal accounting, never in results).
pub(crate) fn hatt_remap(
    h: &MajoranaSum,
    options: &HattOptions,
    prev_seq: &[[NodeId; 3]],
    touched: &[u32],
) -> Result<HattMapping, HattError> {
    let n = h.n_modes();
    debug_assert!(n >= 1, "caller gates on EmptyHamiltonian");
    debug_assert_eq!(prev_seq.len(), n, "caller gates on sequence length");
    debug_assert!(remap_supported(options), "caller gates on remap_supported");
    let blend = options.policy.blend();
    let start = Instant::now();
    let mut engine = TermEngine::new(h);
    let mut builder = TernaryTreeBuilder::new(n);
    let mut state = PairingState::new(n);
    let mut iterations = Vec::with_capacity(n);
    // `touched_node[v]`: v's subtree contains a leaf the delta touched.
    // Seeded at the leaves, propagated to each attached parent below.
    let mut touched_node = vec![false; 3 * n + 1];
    for &i in touched {
        if (i as usize) < 2 * n {
            touched_node[i as usize] = true;
        }
    }
    let mut diverged = false;

    for (qubit, &prev) in prev_seq.iter().enumerate() {
        let mut iter_stats = IterationStats {
            qubit,
            ..Default::default()
        };
        let u = builder.roots();
        let next_parent: NodeId = 2 * n + 1 + qubit;
        let prev_touched = prev.iter().any(|&v| touched_node[v]);
        let selection = if diverged || prev_touched {
            // Full scan. If the tree still matches the old prefix this
            // may well re-elect `prev` (the delta touched it without
            // dethroning it), in which case later steps resume the fast
            // path.
            select_paired(
                &mut engine,
                None,
                &u,
                n,
                options,
                blend,
                next_parent,
                &mut iter_stats,
                &mut state,
            )?
        } else {
            // Fast path: the previous winner is untouched, so only it
            // and the touched candidates can win. Same enumeration
            // order and strict-`<` first-wins rule as the full scan.
            let mut best: Option<(TripleScore, [NodeId; 3])> = None;
            {
                let engine = &mut engine;
                let counted = &mut iter_stats.candidates;
                for_each_paired_candidate(&state, &u, n, |cx, cy, cz| {
                    let children = [cx, cy, cz];
                    if children != prev
                        && !(touched_node[cx] || touched_node[cy] || touched_node[cz])
                    {
                        return;
                    }
                    *counted += 1;
                    let score = score_of(engine, options, blend, cx, cy, cz);
                    if best.as_ref().is_none_or(|b| score < b.0) {
                        best = Some((score, children));
                    }
                });
            }
            // Infallible: `prev` itself is always enumerated — the
            // replayed prefix reproduces the node set and pairing maps
            // under which it was originally selected.
            debug_assert!(best.is_some(), "previous winner must be a candidate");
            let (score, children) = best.ok_or(HattError::Internal(
                "remap step found no candidate although the previous winner is one",
            ))?;
            Selection {
                children,
                weight: score.weight,
            }
        };
        if !diverged && selection.children != prev {
            diverged = true;
        }
        let [ox, oy, oz] = selection.children;
        iter_stats.settled_weight = selection.weight;
        let parent = builder.attach([ox, oy, oz]);
        debug_assert_eq!(parent, next_parent);
        engine.reduce(parent, ox, oy, oz);
        state.record_attach(parent, oz);
        touched_node[parent] = touched_node[ox] || touched_node[oy] || touched_node[oz];
        iterations.push(iter_stats);
    }

    let (memo_hits, memo_misses) = engine.memo_stats();
    let stats = ConstructionStats {
        iterations,
        n_terms: engine.n_terms(),
        elapsed: start.elapsed(),
        memo_hits,
        memo_misses,
    };
    let tree = builder.finish();
    let mapping = TreeMapping::with_identity_assignment(options.variant.label(), tree);
    Ok(HattMapping {
        mapping,
        stats,
        options: *options,
    })
}

/// Runs one [`PortfolioMember`] of the restarts portfolio as a complete,
/// independent construction — the unit of work the threaded portfolio
/// fans out.
fn run_portfolio_member(
    h: &MajoranaSum,
    options: &HattOptions,
    member: PortfolioMember,
) -> Result<HattMapping, HattError> {
    match member {
        PortfolioMember::Greedy(blend) => hatt_single(
            h,
            &HattOptions {
                policy: SelectionPolicy::Greedy,
                ..*options
            },
            blend,
        ),
        PortfolioMember::Beam { width } => hatt_beam(
            h,
            &HattOptions {
                policy: SelectionPolicy::Beam { width },
                ..*options
            },
            width,
            Blend::UNIT,
        ),
        PortfolioMember::JwCaterpillar => Ok(hatt_replay(h, options, &jw_sequence(h.n_modes()))),
    }
}

/// The bounded multi-restart portfolio behind
/// [`SelectionPolicy::Restarts`]: the members named by
/// [`SelectionPolicy::restarts_members`] (greedy passes at
/// `λ ∈ {½, 1, 2}`, one `Beam { width: 8 }` pass at `λ = 1`, and the
/// Jordan-Wigner merge sequence). The best final tree (by total settled
/// weight; earlier member on ties) wins. The JW member makes "HATT never
/// loses to Jordan-Wigner" hold by construction; in practice one of the
/// adaptive members usually beats it outright.
///
/// The members are fully independent constructions, so they run on
/// scoped worker threads (up to [`HattOptions::workers`]). Results come
/// back in member order and the winner rule ties-breaks by member index,
/// so the output is bit-identical to the sequential loop regardless of
/// scheduling — `tests/parallel_determinism.rs` pins exactly this.
///
/// The beam member keeps the *full* thread budget for its own per-state
/// scans, which transiently oversubscribes the host while the greedy
/// members are still running. That is deliberate: each greedy pass is
/// roughly an eighth of the beam's work, so the contention window is
/// short, while capping the beam at `workers − 4` would idle most cores
/// for the long beam-only tail that dominates wall time. (The batch
/// layer is different — concurrent *constructions* are peers there, so
/// `map_many` does divide the budget; see `crate::batch`.)
fn hatt_restarts(h: &MajoranaSum, options: &HattOptions) -> Result<HattMapping, HattError> {
    let start = Instant::now();
    let members = SelectionPolicy::restarts_members();
    let candidates = parallel::par_map_with(options.workers(), &members, |&member| {
        run_portfolio_member(h, options, member)
    });
    let mut best: Option<HattMapping> = None;
    for m in candidates {
        let m = m?;
        let better = best
            .as_ref()
            .is_none_or(|b| m.stats.total_weight() < b.stats.total_weight());
        if better {
            best = Some(m);
        }
    }
    // Infallible: `restarts_members()` is a non-empty const array.
    debug_assert!(best.is_some(), "portfolio is non-empty");
    let mut best = best.ok_or(HattError::Internal("restart portfolio ran no members"))?;
    best.stats.elapsed = start.elapsed();
    best.options = *options;
    Ok(best)
}

/// Convenience: compiles HATT and applies it to the same Hamiltonian,
/// returning the mapped qubit Hamiltonian alongside the mapping.
///
/// Deprecated shim; see [`crate::Mapper::compile`].
#[deprecated(note = "use `Mapper::new().compile(&h)` instead")]
pub fn compile(h: &MajoranaSum) -> (HattMapping, PauliSum) {
    let mapping = expect_mapping(hatt_with_impl(h, &HattOptions::default()));
    let hq = mapping.map_majorana_sum(h);
    (mapping, hq)
}

// The unit tests exercise the deprecated shims on purpose — they are
// the behaviour contract the shims must keep (including panic wording).
#[allow(deprecated)]
#[cfg(test)]
mod tests {
    use super::*;
    use hatt_mappings::validate;
    use hatt_pauli::Complex64;

    fn paper_example() -> MajoranaSum {
        let mut hf = FermionOperator::new(3);
        hf.add_one_body(Complex64::ONE, 0, 0);
        hf.add_two_body(Complex64::real(2.0), 1, 2, 1, 2);
        let mut m = MajoranaSum::from_fermion(&hf);
        let _ = m.take_identity();
        m
    }

    fn opts(variant: Variant) -> HattOptions {
        HattOptions {
            variant,
            ..Default::default()
        }
    }

    #[test]
    fn paper_walkthrough_weights() {
        // §III-C / §IV-B: step weights 1, 2, 2.
        let mapping = hatt(&paper_example());
        let weights: Vec<usize> = mapping
            .stats()
            .iterations
            .iter()
            .map(|it| it.settled_weight)
            .collect();
        assert_eq!(weights[0], 1, "first step should settle weight 1");
        assert_eq!(mapping.stats().total_weight(), 5);
    }

    #[test]
    fn paper_first_step_picks_o0_o1_o6() {
        // The paper's first iteration groups O0, O1, O6 under qubit 0.
        let mapping = hatt(&paper_example());
        let tree = mapping.tree();
        let q0 = tree.internal_of(0);
        let mut ch = tree.children(q0).unwrap().to_vec();
        ch.sort_unstable();
        assert_eq!(ch, vec![0, 1, 6]);
    }

    #[test]
    fn all_variants_are_valid() {
        let h = paper_example();
        for variant in [Variant::Unopt, Variant::Paired, Variant::Cached] {
            let m = hatt_with(&h, &opts(variant));
            let report = validate(&m);
            assert!(report.is_valid(), "{variant:?} invalid: {report:?}");
            if variant != Variant::Unopt {
                assert!(
                    report.vacuum_preserving,
                    "{variant:?} must preserve the vacuum"
                );
            }
        }
    }

    #[test]
    fn all_policies_are_valid_and_vacuum_preserving() {
        for seed in 0..3 {
            let op = hatt_fermion::models::random_hermitian(5, 6, 5, seed);
            let h = MajoranaSum::from_fermion(&op);
            let greedy_w = hatt(&h).stats().total_weight();
            for policy in [
                SelectionPolicy::Greedy,
                SelectionPolicy::Lookahead { width: 6 },
                SelectionPolicy::Beam { width: 4 },
            ] {
                let m = hatt_with(&h, &HattOptions::with_policy(policy));
                let report = validate(&m);
                assert!(report.is_valid(), "{policy}/{seed}: {report:?}");
                assert!(report.vacuum_preserving, "{policy}/{seed}: vacuum");
                // Objective still equals the mapped weight.
                assert_eq!(
                    m.stats().total_weight(),
                    m.map_majorana_sum(&h).weight(),
                    "{policy}/{seed}: objective drift"
                );
                // Smarter policies must not lose to plain greedy.
                assert!(
                    m.stats().total_weight() <= greedy_w,
                    "{policy}/{seed}: worse than greedy"
                );
            }
        }
    }

    #[test]
    fn beam_width_one_matches_greedy() {
        for seed in 0..3 {
            let op = hatt_fermion::models::random_hermitian(5, 6, 5, seed);
            let h = MajoranaSum::from_fermion(&op);
            let greedy = hatt(&h);
            let beam = hatt_with(
                &h,
                &HattOptions::with_policy(SelectionPolicy::Beam { width: 1 }),
            );
            assert_eq!(greedy.tree(), beam.tree(), "seed {seed}");
        }
    }

    #[test]
    fn cached_and_paired_agree_exactly() {
        for seed in 0..4 {
            let op = hatt_fermion::models::random_hermitian(5, 6, 5, seed);
            let h = MajoranaSum::from_fermion(&op);
            let a = hatt_with(&h, &opts(Variant::Paired));
            let b = hatt_with(&h, &opts(Variant::Cached));
            for k in 0..2 * h.n_modes() {
                assert_eq!(a.majorana(k), b.majorana(k), "seed {seed}, M{k}");
            }
            // The cache removes all traversal work.
            assert_eq!(b.stats().total_traversal_steps(), 0);
            assert!(a.stats().total_traversal_steps() > 0);
        }
    }

    #[test]
    fn naive_weight_ablation_matches() {
        let h = paper_example();
        let fast = hatt_with(&h, &opts(Variant::Cached));
        let slow = hatt_with(
            &h,
            &HattOptions {
                variant: Variant::Cached,
                naive_weight: true,
                policy: SelectionPolicy::Greedy,
                ..Default::default()
            },
        );
        for k in 0..6 {
            assert_eq!(fast.majorana(k), slow.majorana(k));
        }
    }

    #[test]
    fn objective_equals_mapped_weight() {
        let h = paper_example();
        let (mapping, hq) = compile(&h);
        assert_eq!(hq.weight(), mapping.stats().total_weight());
        assert!(hq.is_hermitian(1e-10));
    }

    #[test]
    fn single_mode_gives_xy() {
        let h = MajoranaSum::uniform_singles(1);
        let m = hatt(&h);
        assert_eq!(m.majorana(0).to_string(), "X");
        assert_eq!(m.majorana(1).to_string(), "Y");
        assert!(validate(&m).vacuum_preserving);
    }

    #[test]
    fn vacuum_preserved_on_random_hamiltonians() {
        for seed in 0..6 {
            let op = hatt_fermion::models::random_hermitian(6, 8, 6, seed);
            let h = MajoranaSum::from_fermion(&op);
            let m = hatt(&h);
            let report = validate(&m);
            assert!(report.is_valid(), "seed {seed}: {report:?}");
            assert!(report.vacuum_preserving, "seed {seed} breaks vacuum");
        }
    }

    #[test]
    fn unopt_candidate_counts_are_cubic_per_step() {
        // Step 0 of an N-mode system evaluates C(2N+1, 3) triples.
        let h = MajoranaSum::uniform_singles(4);
        let m = hatt_with(&h, &opts(Variant::Unopt));
        let first = &m.stats().iterations[0];
        assert_eq!(first.candidates, 9 * 8 * 7 / 6);
    }

    #[test]
    fn cached_candidate_counts_are_quadratic_per_step() {
        let h = MajoranaSum::uniform_singles(4);
        let m = hatt(&h);
        let first = &m.stats().iterations[0];
        // ≤ |U|·(|U|−1) ordered pairs, minus skips.
        assert!(first.candidates <= 72, "got {}", first.candidates);
        assert!(first.candidates >= 36, "got {}", first.candidates);
    }

    #[test]
    fn beats_or_matches_balanced_tree_on_benchmarks() {
        use hatt_fermion::models::FermiHubbard;
        use hatt_mappings::balanced_ternary_tree;
        let op = FermiHubbard::new(2, 2).hamiltonian();
        let h = MajoranaSum::from_fermion(&op);
        let hatt_w = hatt(&h).map_majorana_sum(&h).weight();
        let btt_w = balanced_ternary_tree(8).map_majorana_sum(&h).weight();
        assert!(
            hatt_w <= btt_w,
            "HATT ({hatt_w}) should not lose to BTT ({btt_w}) on Hubbard 2x2"
        );
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn zero_modes_rejected() {
        let h = MajoranaSum::new(0);
        let _ = hatt(&h);
    }

    /// Direct kernel-level differential check; the full randomized suite
    /// (policies × threads × socket) lives in `tests/remap_differential.rs`.
    #[test]
    fn remap_kernel_matches_fresh_construction_bit_identically() {
        use crate::batch::merge_sequence;
        use hatt_fermion::HamiltonianDelta;
        use hatt_pauli::Complex64;

        for variant in [Variant::Paired, Variant::Cached] {
            for seed in 0..4 {
                let op = hatt_fermion::models::random_hermitian(6, 8, 6, seed);
                let mut h = MajoranaSum::from_fermion(&op);
                let _ = h.take_identity();
                let options = opts(variant);
                let prev = hatt_with_impl(&h, &options).unwrap();
                let prev_seq = merge_sequence(prev.tree());

                // Remove one existing term, add one absent term.
                let (victim, coeff) = h.iter().next().map(|(i, c)| (i.to_vec(), c)).unwrap();
                let mut delta = HamiltonianDelta::new(h.n_modes());
                delta.push_remove(coeff, &victim).unwrap();
                let extra: Vec<u32> = (0..4).map(|k| (2 * k) as u32).collect();
                if h.coefficient_of(&extra).is_zero(1e-12) {
                    delta.push_add(Complex64::real(0.375), &extra).unwrap();
                }
                let next = delta.apply(&h).unwrap();

                let fresh = hatt_with_impl(&next, &options).unwrap();
                let remap =
                    hatt_remap(&next, &options, &prev_seq, &delta.support_touched()).unwrap();
                assert_eq!(remap.tree(), fresh.tree(), "{variant:?}/{seed}");
                for (a, b) in remap
                    .stats()
                    .iterations
                    .iter()
                    .zip(&fresh.stats().iterations)
                {
                    assert_eq!(
                        a.settled_weight, b.settled_weight,
                        "{variant:?}/{seed} step {}",
                        a.qubit
                    );
                }
                assert_eq!(remap.stats().n_terms, fresh.stats().n_terms);
            }
        }
    }
}
