//! The configured, reusable mapping handle — the public API of the
//! HATT engine.
//!
//! A [`Mapper`] bundles construction options (variant, selection
//! policy, worker cap) with an owned structure-keyed
//! [`MappingCache`], behind `Send + Sync` so one handle can serve a
//! whole process (the `hatt-service` daemon shares one `Mapper` across
//! every connection). All methods return `Result<_, HattError>` — no
//! panic is reachable from malformed input.
//!
//! # Examples
//!
//! ```
//! use hatt_core::Mapper;
//! use hatt_fermion::models::FermiHubbard;
//! use hatt_mappings::{validate, FermionMapping, SelectionPolicy};
//!
//! let mapper = Mapper::builder()
//!     .policy(SelectionPolicy::quality())
//!     .cache_capacity(64)
//!     .build()?;
//! let mapping = mapper.map_fermion(&FermiHubbard::new(2, 2).hamiltonian())?;
//! assert!(validate(&mapping).vacuum_preserving);
//! # Ok::<(), hatt_core::HattError>(())
//! ```

use std::path::PathBuf;

use hatt_fermion::{FermionOperator, HamiltonianDelta, MajoranaSum};
use hatt_mappings::SelectionPolicy;
use hatt_pauli::PauliSum;

use crate::algorithm::{HattMapping, HattOptions, Variant};
use crate::batch::{map_many_impl, MappingCache};
use crate::error::HattError;
use crate::store::{StoreTier, StoreTierStats};
use hatt_mappings::FermionMapping as _;

/// A configured, reusable, thread-safe fermion-to-qubit mapping handle.
///
/// Build one with [`Mapper::builder`] (or [`Mapper::new`] for the
/// defaults), then call [`Mapper::map`] / [`Mapper::map_fermion`] /
/// [`Mapper::map_batch`] as often as needed. The handle owns a
/// [`MappingCache`], so repeated term *structures* — the service sweep
/// workload — skip the `O(N³)` selection work after the first call;
/// results are bit-identical either way (a hit replays the cached merge
/// sequence against the new operator).
///
/// # Examples
///
/// ```
/// use hatt_core::Mapper;
/// use hatt_fermion::MajoranaSum;
/// use hatt_pauli::Complex64;
///
/// let mut h = MajoranaSum::new(2);
/// h.add(Complex64::ONE, &[0, 1]);
/// h.add(Complex64::ONE, &[0, 1, 2, 3]);
///
/// let mapper = Mapper::new();
/// let a = mapper.map(&h)?;                  // cold: full construction
/// let b = mapper.map(&h.scaled(2.0))?;      // warm: same structure, replayed
/// assert_eq!(a.tree(), b.tree());
/// assert_eq!(mapper.cache().hits(), 1);
/// # Ok::<(), hatt_core::HattError>(())
/// ```
#[derive(Debug)]
pub struct Mapper {
    options: HattOptions,
    cache: MappingCache,
}

// One handle is shared across service worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Mapper>();
};

impl Default for Mapper {
    fn default() -> Self {
        Mapper::new()
    }
}

impl Mapper {
    /// A mapper with default options (Algorithm 3, greedy policy,
    /// automatic workers) and an unbounded cache.
    pub fn new() -> Mapper {
        Mapper::with_options(HattOptions::default())
    }

    /// Starts a [`MapperBuilder`] with the default configuration.
    pub fn builder() -> MapperBuilder {
        MapperBuilder::default()
    }

    /// A mapper from pre-validated [`HattOptions`] (every `HattOptions`
    /// value is valid by construction, so this cannot fail). Prefer
    /// [`Mapper::builder`] in new code; this constructor mostly serves
    /// code migrating from the deprecated free functions.
    pub fn with_options(options: HattOptions) -> Mapper {
        Mapper {
            options,
            cache: MappingCache::new(),
        }
    }

    /// The options every construction of this handle runs with.
    pub fn options(&self) -> &HattOptions {
        &self.options
    }

    /// The handle's structure-keyed construction cache.
    pub fn cache(&self) -> &MappingCache {
        &self.cache
    }

    /// Counters and sizes of the persistent store tier — `None` unless
    /// the handle was built with
    /// [`MapperBuilder::store_path`].
    pub fn store_stats(&self) -> Option<StoreTierStats> {
        self.cache.store_stats()
    }

    /// Flushes the persistent store tier to stable storage (a no-op for
    /// a memory-only mapper). The daemon calls this on graceful drain;
    /// ordinary write-throughs are OS-buffered.
    pub fn sync_store(&self) -> Result<(), HattError> {
        match self.cache.store() {
            Some(tier) => tier.sync(),
            None => Ok(()),
        }
    }

    /// Maps one Majorana Hamiltonian.
    ///
    /// # Errors
    ///
    /// [`HattError::EmptyHamiltonian`] when `h` has zero modes.
    pub fn map(&self, h: &MajoranaSum) -> Result<HattMapping, HattError> {
        self.cache.try_get_or_build(h, &self.options)
    }

    /// Maps the Hamiltonian obtained by applying `delta` to `prev`,
    /// reusing `prev`'s construction wherever possible instead of
    /// building from scratch — the entry point for workloads that
    /// evolve a Hamiltonian term by term (adaptive ansatz growth,
    /// geometry scans that add/drop interactions).
    ///
    /// The result is **bit-identical** to
    /// `self.map(&delta.apply(prev)?)` — same tree, same per-step
    /// settled weights (`tests/remap_differential.rs` pins this) — the
    /// delta only changes how much selection work runs: when the
    /// previous structure's tree is still cached (either tier) and the
    /// options admit the incremental kernel, only candidate triples the
    /// delta touches are re-scored. [`MappingCache::remaps`] counts the
    /// incremental rebuilds.
    ///
    /// # Errors
    ///
    /// [`HattError::Delta`] when `delta` does not apply cleanly to
    /// `prev` (removing an absent term, adding a present one, mode
    /// mismatch); [`HattError::EmptyHamiltonian`] when `prev` has zero
    /// modes.
    ///
    /// # Examples
    ///
    /// ```
    /// use hatt_core::Mapper;
    /// use hatt_fermion::{HamiltonianDelta, MajoranaSum};
    /// use hatt_pauli::Complex64;
    ///
    /// let mut h = MajoranaSum::new(2);
    /// h.add(Complex64::ONE, &[0, 1]);
    /// h.add(Complex64::ONE, &[2, 3]);
    ///
    /// let mapper = Mapper::new();
    /// let _ = mapper.map(&h)?; // warm the cache
    ///
    /// let mut delta = HamiltonianDelta::new(2);
    /// delta.push_add(Complex64::real(0.5), &[0, 1, 2, 3])?;
    /// let remapped = mapper.remap(&h, &delta)?;
    ///
    /// // Bit-identical to mapping the post-delta Hamiltonian fresh.
    /// let fresh = mapper.map(&delta.apply(&h)?)?;
    /// assert_eq!(remapped.tree(), fresh.tree());
    /// assert_eq!(mapper.cache().remaps(), 1);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn remap(
        &self,
        prev: &MajoranaSum,
        delta: &HamiltonianDelta,
    ) -> Result<HattMapping, HattError> {
        self.cache.try_remap_or_build(prev, delta, &self.options)
    }

    /// Maps a second-quantized operator (preprocesses to Majorana form
    /// first; the constant term is irrelevant to the construction and is
    /// kept in place).
    pub fn map_fermion(&self, op: &FermionOperator) -> Result<HattMapping, HattError> {
        self.map(&MajoranaSum::from_fermion(op))
    }

    /// Maps a whole batch concurrently (scoped worker threads, shared
    /// cache with in-flight dedup). Results come back in input order,
    /// bit-identical to mapping each element on its own.
    ///
    /// # Errors
    ///
    /// [`HattError::BatchItem`] naming the first failing input index.
    pub fn map_batch(&self, hs: &[MajoranaSum]) -> Result<Vec<HattMapping>, HattError> {
        map_many_impl(hs, &self.options, &self.cache)
    }

    /// Maps `h` and applies the mapping to it, returning the mapped
    /// qubit Hamiltonian alongside (the old `compile` entry point).
    pub fn compile(&self, h: &MajoranaSum) -> Result<(HattMapping, PauliSum), HattError> {
        let mapping = self.map(h)?;
        let hq = mapping.map_majorana_sum(h);
        Ok((mapping, hq))
    }
}

/// Builder for [`Mapper`] — the place configuration errors surface as
/// typed [`HattError`]s instead of panics.
///
/// # Examples
///
/// ```
/// use hatt_core::{HattError, Mapper, Variant};
///
/// let mapper = Mapper::builder()
///     .variant(Variant::Cached)
///     .policy_str("beam:8")
///     .threads(2)
///     .cache_capacity(128)
///     .build()?;
/// assert_eq!(mapper.options().workers(), 2);
///
/// assert!(matches!(
///     Mapper::builder().policy_str("warp:9").build(),
///     Err(HattError::InvalidPolicy(_))
/// ));
/// assert!(matches!(
///     Mapper::builder().threads(0).build(),
///     Err(HattError::InvalidThreads)
/// ));
/// # Ok::<(), HattError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MapperBuilder {
    variant: Variant,
    policy: SelectionPolicy,
    policy_str: Option<String>,
    naive_weight: bool,
    threads: Option<usize>,
    cache_capacity: Option<usize>,
    store_path: Option<PathBuf>,
}

impl MapperBuilder {
    /// Selects the algorithm variant (default: [`Variant::Cached`],
    /// Algorithm 3).
    pub fn variant(mut self, variant: Variant) -> Self {
        self.variant = variant;
        self
    }

    /// Selects the triple-selection policy (default:
    /// [`SelectionPolicy::Greedy`]).
    pub fn policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self.policy_str = None;
        self
    }

    /// Selects the policy from its compact string form
    /// (`greedy | vanilla | restarts | lookahead:<w> | beam:<w>`).
    /// Parsing happens at [`MapperBuilder::build`], surfacing
    /// [`HattError::InvalidPolicy`].
    pub fn policy_str(mut self, policy: impl Into<String>) -> Self {
        self.policy_str = Some(policy.into());
        self
    }

    /// Uses the paper's per-term weight scan instead of the block-bitset
    /// kernel (ablation; identical results, slower).
    pub fn naive_weight(mut self, naive: bool) -> Self {
        self.naive_weight = naive;
        self
    }

    /// Caps the worker threads of the parallel execution paths. Zero is
    /// rejected at build time; leaving it unset defers to `HATT_THREADS`
    /// / the hardware count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Bounds the mapper's construction cache to `capacity` entries
    /// (LRU). Unset = unbounded; `0` disables caching.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = Some(capacity);
        self
    }

    /// Attaches a persistent on-disk store tier at `path`: the mapper
    /// warm-starts from any records already there, consults the file
    /// after every in-memory miss, and writes every fresh construction
    /// through — so a structure computed once is never computed again,
    /// across restarts and across processes sharing the file's host.
    /// Results are bit-identical with or without the store (a disk hit
    /// replays the stored merge sequence against the incoming
    /// operator, exactly like an in-memory hit).
    ///
    /// The log is created if absent; opening it fails the build with
    /// [`HattError::Store`]. I/O problems *after* open never fail a
    /// mapping — they degrade to misses and dropped write-throughs,
    /// visible in [`Mapper::store_stats`].
    pub fn store_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.store_path = Some(path.into());
        self
    }

    /// Validates the configuration and builds the handle.
    pub fn build(self) -> Result<Mapper, HattError> {
        let policy = match &self.policy_str {
            Some(s) => s.parse::<SelectionPolicy>()?,
            None => self.policy,
        };
        if self.threads == Some(0) {
            return Err(HattError::InvalidThreads);
        }
        let options = HattOptions {
            variant: self.variant,
            naive_weight: self.naive_weight,
            policy,
            threads: self.threads,
        };
        let mut cache = match self.cache_capacity {
            Some(cap) => MappingCache::with_capacity(cap),
            None => MappingCache::new(),
        };
        if let Some(path) = &self.store_path {
            cache.set_store(StoreTier::open(path)?);
        }
        Ok(Mapper { options, cache })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::hatt_with_impl;
    use hatt_mappings::validate;
    use hatt_pauli::Complex64;

    fn paper_example() -> MajoranaSum {
        let mut hf = FermionOperator::new(3);
        hf.add_one_body(Complex64::ONE, 0, 0);
        hf.add_two_body(Complex64::real(2.0), 1, 2, 1, 2);
        let mut m = MajoranaSum::from_fermion(&hf);
        let _ = m.take_identity();
        m
    }

    #[test]
    fn mapper_matches_direct_construction() {
        let h = paper_example();
        let mapper = Mapper::new();
        let m = mapper.map(&h).unwrap();
        let direct = hatt_with_impl(&h, &HattOptions::default()).unwrap();
        assert_eq!(m.tree(), direct.tree());
        assert_eq!(m.stats().total_weight(), 5);
        assert!(validate(&m).is_valid());
    }

    #[test]
    fn zero_modes_is_a_typed_error_everywhere() {
        let mapper = Mapper::new();
        let empty = MajoranaSum::new(0);
        assert_eq!(mapper.map(&empty).unwrap_err(), HattError::EmptyHamiltonian);
        assert_eq!(
            mapper.compile(&empty).unwrap_err(),
            HattError::EmptyHamiltonian
        );
        let batch = vec![paper_example(), empty];
        match mapper.map_batch(&batch) {
            Err(HattError::BatchItem { index, source }) => {
                assert_eq!(index, 1);
                assert_eq!(*source, HattError::EmptyHamiltonian);
            }
            other => panic!("expected BatchItem, got {other:?}"),
        }
    }

    #[test]
    fn builder_validates_policy_and_threads() {
        assert!(matches!(
            Mapper::builder().policy_str("beam:0").build(),
            Err(HattError::InvalidPolicy(_))
        ));
        assert!(matches!(
            Mapper::builder().threads(0).build(),
            Err(HattError::InvalidThreads)
        ));
        let m = Mapper::builder()
            .policy_str("lookahead:4")
            .threads(1)
            .build()
            .unwrap();
        assert_eq!(m.options().policy, SelectionPolicy::Lookahead { width: 4 });
        assert_eq!(m.options().workers(), 1);
    }

    #[test]
    fn typed_policy_overrides_earlier_string_and_vice_versa() {
        let m = Mapper::builder()
            .policy_str("beam:8")
            .policy(SelectionPolicy::Greedy)
            .build()
            .unwrap();
        assert_eq!(m.options().policy, SelectionPolicy::Greedy);
        let m = Mapper::builder()
            .policy(SelectionPolicy::Greedy)
            .policy_str("beam:8")
            .build()
            .unwrap();
        assert_eq!(m.options().policy, SelectionPolicy::Beam { width: 8 });
    }

    #[test]
    fn handle_caches_across_calls_and_batches() {
        let h = paper_example();
        let mapper = Mapper::new();
        let a = mapper.map(&h).unwrap();
        let b = mapper.map(&h.scaled(3.0)).unwrap();
        assert_eq!(a.tree(), b.tree());
        assert_eq!((mapper.cache().hits(), mapper.cache().misses()), (1, 1));
        let batch = vec![h.clone(), h.scaled(0.5)];
        let maps = mapper.map_batch(&batch).unwrap();
        assert_eq!(maps[0].tree(), a.tree());
        assert_eq!(maps[1].tree(), a.tree());
        assert_eq!(mapper.cache().hits(), 3, "batch reuses the warm entry");
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let h = paper_example();
        let mapper = Mapper::builder().cache_capacity(0).build().unwrap();
        let a = mapper.map(&h).unwrap();
        let b = mapper.map(&h).unwrap();
        assert_eq!(a.tree(), b.tree());
        assert_eq!(mapper.cache().len(), 0);
        assert_eq!(mapper.cache().hits(), 0, "never a hit when disabled");
        assert_eq!(mapper.cache().misses(), 2);
        // Both runs did full selection work (no replay).
        assert!(b.stats().total_candidates() > 0);
    }

    #[test]
    fn map_fermion_and_compile_agree_with_map() {
        let mut hf = FermionOperator::new(2);
        hf.add_hopping(Complex64::real(0.7), 0, 1);
        let mapper = Mapper::new();
        let via_fermion = mapper.map_fermion(&hf).unwrap();
        let h = MajoranaSum::from_fermion(&hf);
        let (via_compile, hq) = mapper.compile(&h).unwrap();
        assert_eq!(via_fermion.tree(), via_compile.tree());
        assert_eq!(hq.weight(), via_compile.stats().total_weight());
    }
}
