//! Property tests for the mapping substrate: Fenwick-tree set identities,
//! ternary-tree structural invariants, engine-weight consistency, and
//! baseline-mapping validity at arbitrary sizes.

use hatt_fermion::MajoranaSum;
use hatt_mappings::{
    balanced_ternary_tree, balanced_tree, bravyi_kitaev, jordan_wigner, parity, validate,
    FenwickTree, FermionMapping, TermEngine, TernaryTreeBuilder, TreeMapping,
};
use hatt_pauli::Complex64;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fenwick_parity_sets_tile_prefixes(n in 1usize..40, j_frac in 0.0f64..1.0) {
        let t = FenwickTree::new(n);
        let j = ((n as f64) * j_frac) as usize % n.max(1);
        // P(j) covers exactly [0, j) via the coverage intervals, which we
        // recover through the flip relation: summing stored parities of
        // P(j) equals the occupation parity of modes < j for any filling.
        let mut rng = StdRng::seed_from_u64((n * 1000 + j) as u64);
        let occupation: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        // Stored value of Fenwick node v = parity of occupations it covers,
        // reconstructed via flip sets: stored(v) = occ(v) ⊕ ⊕_{c∈F(v)} stored(c).
        let mut stored = vec![false; n];
        for v in 0..n {
            // children have smaller indices, so ascending order works.
            let mut s = occupation[v];
            for c in t.flip_set(v) {
                s ^= stored[c];
            }
            stored[v] = s;
        }
        let expected: bool = occupation[..j].iter().fold(false, |a, &b| a ^ b);
        let got: bool = t.parity_set(j).into_iter().fold(false, |a, v| a ^ stored[v]);
        prop_assert_eq!(got, expected, "parity set wrong for j={}, n={}", j, n);
    }

    #[test]
    fn fenwick_update_sets_cover_membership(n in 2usize..40, j_frac in 0.0f64..1.0) {
        let t = FenwickTree::new(n);
        let j = ((n as f64) * j_frac) as usize % n;
        // U(j) = exactly the nodes whose stored parity depends on mode j:
        // flipping occupation j must flip stored(v) iff v ∈ U(j) ∪ {j}.
        let mut rng = StdRng::seed_from_u64((n * 7 + j) as u64);
        let base: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
        let mut flipped = base.clone();
        flipped[j] = !flipped[j];
        let stored = |occ: &[bool]| -> Vec<bool> {
            let mut s = vec![false; n];
            for v in 0..n {
                let mut acc = occ[v];
                for c in t.flip_set(v) {
                    acc ^= s[c];
                }
                s[v] = acc;
            }
            s
        };
        let (a, b) = (stored(&base), stored(&flipped));
        let mut affected: Vec<usize> = (0..n).filter(|&v| a[v] != b[v]).collect();
        let mut expected = t.update_set(j);
        expected.push(j);
        expected.sort_unstable();
        affected.sort_unstable();
        prop_assert_eq!(affected, expected);
    }

    #[test]
    fn balanced_trees_have_log_depth(n in 1usize..50) {
        let tree = balanced_tree(n);
        let max_depth = (0..tree.n_leaves()).map(|l| tree.depth(l)).max().unwrap();
        let bound = ((2 * n + 1) as f64).log(3.0).ceil() as usize + 1;
        prop_assert!(max_depth <= bound, "depth {max_depth} > {bound} for n={n}");
        // Pairing covers 2N leaves + 1 unpaired.
        let (pairs, unpaired) = tree.pair_leaves();
        let mut seen: Vec<usize> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        seen.push(unpaired);
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..2 * n + 1).collect::<Vec<_>>());
    }

    #[test]
    fn random_trees_give_valid_mappings(n in 1usize..12, seed in 0u64..500) {
        // Build a uniformly random merge sequence; identity assignment must
        // always satisfy the Majorana algebra, and paired assignment must
        // additionally preserve the vacuum.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = TernaryTreeBuilder::new(n);
        for _ in 0..n {
            let roots = builder.roots();
            let picks = rand::seq::index::sample(&mut rng, roots.len(), 3).into_vec();
            builder.attach([roots[picks[0]], roots[picks[1]], roots[picks[2]]]);
        }
        let tree = builder.finish();
        let ident = TreeMapping::with_identity_assignment("T", tree.clone());
        prop_assert!(validate(&ident).is_valid());
        let paired = TreeMapping::with_paired_assignment("P", tree);
        let report = validate(&paired);
        prop_assert!(report.is_valid());
        prop_assert!(report.vacuum_preserving, "paired assignment must preserve vacuum");
    }

    #[test]
    fn engine_weight_matches_naive_on_random_terms(
        n in 2usize..7,
        n_terms in 1usize..24,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = MajoranaSum::new(n);
        for t in 0..n_terms {
            let k = rng.gen_range(1..=4.min(2 * n));
            let idx = rand::seq::index::sample(&mut rng, 2 * n, k).into_vec();
            let idx: Vec<u32> = idx.into_iter().map(|i| i as u32).collect();
            h.add(Complex64::real(1.0 + t as f64), &idx);
        }
        let engine = TermEngine::new(&h);
        let nodes = 2 * n + 1;
        for _ in 0..16 {
            let picks = rand::seq::index::sample(&mut rng, nodes, 3).into_vec();
            let (a, b, c) = (picks[0], picks[1], picks[2]);
            prop_assert_eq!(
                engine.weight_of_triple(a, b, c),
                engine.weight_of_triple_naive(a, b, c)
            );
        }
    }

    #[test]
    fn engine_memo_matches_naive_after_reduce_sequences(
        n in 2usize..8,
        n_terms in 1usize..28,
        seed in 0u64..200,
    ) {
        // Drive the engine through a full random bottom-up construction
        // (arbitrary reduce sequences) and, at every intermediate state,
        // require the three weight kernels to agree on random triples of
        // current roots. This guards the incremental per-node counts and
        // the epoch-invalidated pairwise memo behind
        // `weight_of_triple_memo`.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1CE);
        let mut h = MajoranaSum::new(n);
        for t in 0..n_terms {
            let k = rng.gen_range(1..=4.min(2 * n));
            let idx = rand::seq::index::sample(&mut rng, 2 * n, k).into_vec();
            let idx: Vec<u32> = idx.into_iter().map(|i| i as u32).collect();
            h.add(Complex64::real(1.0 + t as f64), &idx);
        }
        let mut engine = TermEngine::new(&h);
        let mut roots: Vec<usize> = (0..2 * n + 1).collect();
        for step in 0..n {
            for _ in 0..12 {
                let picks = rand::seq::index::sample(&mut rng, roots.len(), 3).into_vec();
                let (a, b, c) = (roots[picks[0]], roots[picks[1]], roots[picks[2]]);
                let direct = engine.weight_of_triple(a, b, c);
                prop_assert_eq!(direct, engine.weight_of_triple_naive(a, b, c));
                prop_assert_eq!(direct, engine.weight_of_triple_memo(a, b, c));
                prop_assert_eq!(
                    engine.pair_count(a, b),
                    engine.incidence(a).and_count(engine.incidence(b))
                );
            }
            // Random reduce: attach a parent over three random roots.
            let parent = 2 * n + 1 + step;
            let picks = rand::seq::index::sample(&mut rng, roots.len(), 3).into_vec();
            let mut triple = [roots[picks[0]], roots[picks[1]], roots[picks[2]]];
            triple.sort_unstable();
            engine.reduce(parent, triple[0], triple[1], triple[2]);
            prop_assert_eq!(
                engine.node_count(parent),
                engine.incidence(parent).count_ones()
            );
            roots.retain(|r| !triple.contains(r));
            roots.push(parent);
        }
        let (hits, _misses) = engine.memo_stats();
        prop_assert!(hits > 0, "repeated queries must hit the memo");
    }

    #[test]
    fn engine_memo_survives_set_incidence_backtracking(
        n in 2usize..6,
        seed in 0u64..120,
    ) {
        // The backtracking searches snapshot a node's incidence, reduce
        // over it, then restore it via `set_incidence`. The memoized
        // kernel must stay exact across arbitrary such cycles.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBAC2);
        let mut h = MajoranaSum::new(n);
        for t in 0..2 * n {
            let k = rng.gen_range(1..=3.min(2 * n));
            let idx = rand::seq::index::sample(&mut rng, 2 * n, k).into_vec();
            let idx: Vec<u32> = idx.into_iter().map(|i| i as u32).collect();
            h.add(Complex64::real(1.0 + t as f64), &idx);
        }
        let mut engine = TermEngine::new(&h);
        let nodes = 2 * n + 1;
        for _ in 0..8 {
            let picks = rand::seq::index::sample(&mut rng, nodes, 3).into_vec();
            let (a, b, c) = (picks[0], picks[1], picks[2]);
            let parent = nodes + rng.gen_range(0..n);
            let before = engine.incidence(parent).clone();
            // Warm the memo on the parent's pairs, mutate, check, restore.
            let _ = engine.weight_of_triple_memo(a, b, parent);
            engine.reduce(parent, a, b, c);
            prop_assert_eq!(
                engine.weight_of_triple_memo(a, b, parent),
                engine.weight_of_triple_naive(a, b, parent)
            );
            engine.set_incidence(parent, before);
            prop_assert_eq!(
                engine.weight_of_triple_memo(a, b, parent),
                engine.weight_of_triple_naive(a, b, parent)
            );
            prop_assert_eq!(
                engine.weight_of_triple_memo(a, c, parent),
                engine.weight_of_triple_naive(a, c, parent)
            );
        }
    }

    #[test]
    fn baselines_stay_valid_at_odd_sizes(n in 1usize..34) {
        // Exercises the non-power-of-two Fenwick paths and large trees.
        for m in [
            Box::new(jordan_wigner(n)) as Box<dyn FermionMapping>,
            Box::new(parity(n)),
            Box::new(bravyi_kitaev(n)),
            Box::new(balanced_ternary_tree(n)),
        ] {
            let report = validate(&*m);
            prop_assert!(report.is_valid(), "{} invalid at n={n}", m.name());
            prop_assert!(report.vacuum_preserving);
        }
    }
}
