//! Wire-format property tests: `decode ∘ encode = id` for random
//! ternary trees (random bottom-up merge sequences — the exact space
//! the HATT construction emits).

use hatt_mappings::wire::{decode_ternary_tree, encode_ternary_tree};
use hatt_mappings::{TernaryTree, TernaryTreeBuilder};
use hatt_pauli::json::Json;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a random complete ternary tree over `n` modes by attaching
/// random root triples bottom-up (every tree HATT can produce arises
/// this way).
fn random_tree(n: usize, rng: &mut StdRng) -> TernaryTree {
    let mut b = TernaryTreeBuilder::new(n);
    for _ in 0..n {
        let mut roots = b.roots();
        let mut pick = || {
            let i = rng.gen_range(0usize..roots.len());
            roots.swap_remove(i)
        };
        let ch = [pick(), pick(), pick()];
        b.attach(ch);
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_trees_roundtrip_exactly(
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_tree(n, &mut rng);
        let text = encode_ternary_tree(&tree).render();
        let back = decode_ternary_tree(&Json::parse(&text).unwrap()).expect("decode");
        prop_assert_eq!(&back, &tree);
        // The decoded tree reproduces every leaf string (the physics).
        for leaf in 0..tree.n_leaves() {
            prop_assert_eq!(back.string_for_leaf(leaf), tree.string_for_leaf(leaf));
        }
    }
}
