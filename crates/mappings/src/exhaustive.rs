//! Exhaustive search over ternary-tree mappings — the workspace's
//! substitute for the paper's Fermihedral (`FH`) baseline.
//!
//! Fermihedral encodes the optimal-Pauli-weight mapping problem as SAT and
//! exhibits exponential solve time. We reproduce its *evaluation role*
//! (optimal at small N, absent at large N, exponential wall-clock in the
//! Fig. 12 study) with a provably exhaustive branch-and-bound enumeration
//! of every merge sequence a ternary-tree construction can make. Branch
//! relabelings (which of the three children is X/Y/Z) and qubit
//! relabelings provably do not change the Hamiltonian Pauli weight, so
//! enumerating unordered triples per step covers the full tree-mapping
//! space. See DESIGN.md §3 for the substitution rationale.
//!
//! # Examples
//!
//! On the paper's Figure 4 motivating example the unbalanced tree
//! reaches weight 3; the exhaustive search does even better (weight 2):
//!
//! ```
//! use hatt_fermion::MajoranaSum;
//! use hatt_mappings::{exhaustive_optimal, FermionMapping};
//! use hatt_pauli::Complex64;
//!
//! let mut h = MajoranaSum::new(3);
//! h.add(Complex64::ONE, &[0, 5]);
//! h.add(Complex64::ONE, &[1, 3]);
//! let (mapping, stats) = exhaustive_optimal(&h);
//! assert_eq!(stats.best_weight, 2);
//! assert_eq!(mapping.map_majorana_sum(&h).weight(), 2);
//! ```

use std::time::{Duration, Instant};

use hatt_fermion::MajoranaSum;

use crate::engine::TermEngine;
use crate::policy::SelectionPolicy;
use crate::select::select_free_triple;
use crate::tree::{NodeId, TernaryTreeBuilder, TreeMapping};

/// Hard cap on modes for the exhaustive search: the space is
/// `∏_i C(2N+1−2i, 3)` (≈ 4.9M sequences at N = 5).
pub const EXHAUSTIVE_MODE_LIMIT: usize = 6;

/// Statistics from a tree-mapping search.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Number of candidate triples evaluated.
    pub candidates: u64,
    /// Number of complete merge sequences reached.
    pub completions: u64,
    /// The best accumulated per-qubit weight objective found.
    pub best_weight: usize,
    /// Wall-clock search duration.
    pub elapsed: Duration,
}

/// Exhaustively finds a minimum-Pauli-weight ternary-tree mapping for the
/// given Hamiltonian (identity leaf↔Majorana assignment, like Fermihedral
/// with its default weight-only objective).
///
/// Returns the optimal mapping and the search statistics.
///
/// # Panics
///
/// Panics when `h.n_modes()` exceeds [`EXHAUSTIVE_MODE_LIMIT`] (the space
/// grows as `O(N^(2N))`).
///
/// # Examples
///
/// ```
/// use hatt_fermion::MajoranaSum;
/// use hatt_mappings::{exhaustive_optimal, FermionMapping};
/// use hatt_pauli::Complex64;
///
/// let mut h = MajoranaSum::new(2);
/// h.add(Complex64::ONE, &[0, 3]);
/// let (mapping, stats) = exhaustive_optimal(&h);
/// assert_eq!(mapping.n_modes(), 2);
/// // A single 2-Majorana term can always be settled with weight 1.
/// assert_eq!(stats.best_weight, 1);
/// ```
pub fn exhaustive_optimal(h: &MajoranaSum) -> (TreeMapping, SearchStats) {
    exhaustive_optimal_with(h, None)
}

/// [`exhaustive_optimal`] with the branch-and-bound optionally seeded by
/// a greedy run under `seed_policy`: the greedy solution's weight
/// becomes the initial upper bound, so a stronger policy prunes more of
/// the search space. The optimal *weight* found is identical either way;
/// only `stats.candidates` (and, among equal-weight optima, the returned
/// tree) can differ.
///
/// # Panics
///
/// Panics when `h.n_modes()` exceeds [`EXHAUSTIVE_MODE_LIMIT`] or is 0.
pub fn exhaustive_optimal_with(
    h: &MajoranaSum,
    seed_policy: Option<SelectionPolicy>,
) -> (TreeMapping, SearchStats) {
    let n = h.n_modes();
    assert!(n > 0, "need at least one mode");
    assert!(
        n <= EXHAUSTIVE_MODE_LIMIT,
        "exhaustive search supports at most {EXHAUSTIVE_MODE_LIMIT} modes, got {n}"
    );
    let start = Instant::now();
    let mut engine = TermEngine::new(h);
    let u: Vec<NodeId> = (0..2 * n + 1).collect();
    let mut stats = SearchStats::default();
    let mut best = match seed_policy {
        Some(policy) => greedy_seed(h, policy, &mut stats),
        None => Best {
            weight: usize::MAX,
            sequence: Vec::new(),
        },
    };
    let mut current: Vec<[NodeId; 3]> = Vec::with_capacity(n);
    dfs(
        n,
        0,
        0,
        &u,
        &mut engine,
        &mut current,
        &mut best,
        &mut stats,
    );
    stats.best_weight = best.weight;
    stats.elapsed = start.elapsed();

    let mut builder = TernaryTreeBuilder::new(n);
    for triple in &best.sequence {
        builder.attach(*triple);
    }
    let mapping = TreeMapping::with_identity_assignment("FH", builder.finish());
    (mapping, stats)
}

struct Best {
    weight: usize,
    sequence: Vec<[NodeId; 3]>,
}

/// One policy-greedy construction providing the initial upper bound (and
/// the fallback optimum when no DFS branch improves on it).
fn greedy_seed(h: &MajoranaSum, policy: SelectionPolicy, stats: &mut SearchStats) -> Best {
    let n = h.n_modes();
    let mut engine = TermEngine::new(h);
    let mut u: Vec<NodeId> = (0..2 * n + 1).collect();
    let mut sequence = Vec::with_capacity(n);
    let mut weight = 0usize;
    for step in 0..n {
        let parent = 2 * n + 1 + step;
        let sel = select_free_triple(&mut engine, &u, policy, policy.blend(), false, parent);
        stats.candidates += sel.candidates;
        weight += sel.score.weight;
        engine.reduce(parent, sel.children[0], sel.children[1], sel.children[2]);
        u.retain(|v| !sel.children.contains(v));
        u.push(parent);
        sequence.push(sel.children);
    }
    stats.completions += 1;
    Best { weight, sequence }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    n: usize,
    step: usize,
    acc: usize,
    u: &[NodeId],
    engine: &mut TermEngine,
    current: &mut Vec<[NodeId; 3]>,
    best: &mut Best,
    stats: &mut SearchStats,
) {
    if acc >= best.weight {
        return; // branch & bound: weights only grow
    }
    if step == n {
        stats.completions += 1;
        best.weight = acc;
        best.sequence = current.clone();
        return;
    }
    let parent: NodeId = 2 * n + 1 + step;
    let m = u.len();
    for ai in 0..m {
        for bi in (ai + 1)..m {
            for ci in (bi + 1)..m {
                let (a, b, c) = (u[ai], u[bi], u[ci]);
                stats.candidates += 1;
                let w = engine.weight_of_triple(a, b, c);
                if acc + w >= best.weight {
                    continue;
                }
                engine.reduce(parent, a, b, c);
                // Remove c, b, a (descending indices keep positions valid),
                // push parent.
                let mut next_u: Vec<NodeId> = Vec::with_capacity(m - 2);
                for (i, &v) in u.iter().enumerate() {
                    if i != ai && i != bi && i != ci {
                        next_u.push(v);
                    }
                }
                next_u.push(parent);
                current.push([a, b, c]);
                dfs(n, step + 1, acc + w, &next_u, engine, current, best, stats);
                current.pop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::FermionMapping;
    use crate::validate::validate;
    use hatt_pauli::Complex64;

    fn paper_example() -> MajoranaSum {
        let mut h = MajoranaSum::new(3);
        h.add(Complex64::new(0.0, 0.5), &[0, 1]);
        h.add(Complex64::new(0.0, -0.5), &[2, 3]);
        h.add(Complex64::new(0.0, -0.5), &[4, 5]);
        h.add(Complex64::real(0.5), &[2, 3, 4, 5]);
        h
    }

    #[test]
    fn optimal_on_paper_example() {
        let (mapping, stats) = exhaustive_optimal(&paper_example());
        assert!(validate(&mapping).is_valid());
        // The paper's own walk-through settles weights 1 + 2 + 2 = 5 on
        // this Hamiltonian; the exhaustive optimum matches it.
        assert_eq!(stats.best_weight, 5, "found {}", stats.best_weight);
        assert!(stats.candidates > 0);
        // Verify the objective matches the actual mapped Hamiltonian weight.
        let hq = mapping.map_majorana_sum(&paper_example());
        assert_eq!(hq.weight(), stats.best_weight);
    }

    #[test]
    fn motivating_example_from_figure_4() {
        // H = c1·M0M5 + c2·M1M3: the unbalanced tree reaches weight 3,
        // the balanced tree only 6 (paper §III-B).
        let mut h = MajoranaSum::new(3);
        h.add(Complex64::ONE, &[0, 5]);
        h.add(Complex64::ONE, &[1, 3]);
        let (mapping, stats) = exhaustive_optimal(&h);
        assert!(
            stats.best_weight <= 3,
            "exhaustive found {}",
            stats.best_weight
        );
        let hq = mapping.map_majorana_sum(&h);
        assert_eq!(hq.weight(), stats.best_weight);
        assert!(validate(&mapping).is_valid());
    }

    #[test]
    fn seeded_search_agrees_on_weight_and_prunes_harder() {
        // The greedy seed on the paper example is already optimal
        // (weight 5), so the seeded DFS proves optimality without
        // recording a single new completion, and — net of the seed's own
        // candidate evaluations (C(7,3) + C(5,3) + C(3,3) = 46) — the
        // tighter bound prunes the DFS below the unseeded run.
        let h = paper_example();
        let (_, plain) = exhaustive_optimal(&h);
        let (m, seeded) = exhaustive_optimal_with(&h, Some(SelectionPolicy::Greedy));
        assert_eq!(seeded.best_weight, plain.best_weight);
        let seed_overhead = 46;
        assert!(
            seeded.candidates - seed_overhead < plain.candidates,
            "greedy bound should prune the DFS ({} vs {})",
            seeded.candidates - seed_overhead,
            plain.candidates
        );
        assert!(
            seeded.completions <= plain.completions,
            "an optimal seed must not add completions"
        );
        assert!(validate(&m).is_valid());
        assert_eq!(m.map_majorana_sum(&h).weight(), seeded.best_weight);
    }

    #[test]
    fn single_term_settles_with_weight_one() {
        let mut h = MajoranaSum::new(2);
        h.add(Complex64::ONE, &[0, 3]);
        let (_, stats) = exhaustive_optimal(&h);
        assert_eq!(stats.best_weight, 1);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn large_systems_rejected() {
        let h = MajoranaSum::uniform_singles(10);
        let _ = exhaustive_optimal(&h);
    }

    #[test]
    fn beats_or_matches_balanced_tree() {
        use crate::tree::balanced_ternary_tree;
        let h = paper_example();
        let (fh, _) = exhaustive_optimal(&h);
        let w_fh = fh.map_majorana_sum(&h).weight();
        let w_btt = balanced_ternary_tree(3).map_majorana_sum(&h).weight();
        assert!(w_fh <= w_btt, "exhaustive {w_fh} worse than BTT {w_btt}");
    }
}
