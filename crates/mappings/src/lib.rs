//! # hatt-mappings
//!
//! Baseline fermion-to-qubit mappings and shared ternary-tree machinery
//! for the HATT framework:
//!
//! * [`jordan_wigner`] — the Jordan-Wigner transformation (`JW`);
//! * [`bravyi_kitaev`] — the Bravyi-Kitaev transformation (`BK`) via the
//!   [`FenwickTree`];
//! * [`parity`] — the parity transformation;
//! * [`balanced_ternary_tree`] — the balanced ternary-tree mapping
//!   (`BTT`) with vacuum-preserving pair assignment;
//! * [`exhaustive_optimal`] / [`anneal_search`] — the Fermihedral (`FH`)
//!   substitutes: provably exhaustive and annealed searches over the
//!   tree-mapping space;
//! * [`TernaryTree`] / [`TernaryTreeBuilder`] / [`TermEngine`] — the data
//!   structures the HATT construction (crate `hatt-core`) builds on;
//! * [`SelectionPolicy`] / [`select_free_triple`] — the policy-aware
//!   triple-selection machinery (amortized objective, tie-breaking,
//!   lookahead) shared by the construction and the searches;
//! * [`validate()`] — Majorana-algebra and vacuum-preservation validators.
//!
//! # Example
//!
//! ```
//! use hatt_fermion::models::FermiHubbard;
//! use hatt_mappings::{balanced_ternary_tree, bravyi_kitaev, jordan_wigner, FermionMapping};
//!
//! let h = FermiHubbard::new(2, 2).hamiltonian();
//! let jw = jordan_wigner(8).map_fermion(&h);
//! let bk = bravyi_kitaev(8).map_fermion(&h);
//! let btt = balanced_ternary_tree(8).map_fermion(&h);
//! // All encode the same physics; their Pauli weights differ.
//! assert!(jw.weight() > 0 && bk.weight() > 0 && btt.weight() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod annealing;
mod bk;
mod engine;
mod exhaustive;
mod fenwick;
mod jw;
mod mapping;
mod parity;
pub mod policy;
mod select;
mod tree;
pub mod validate;
pub mod wire;

pub use annealing::{anneal_search, AnnealingOptions};
pub use bk::bravyi_kitaev;
pub use engine::TermEngine;
pub use exhaustive::{
    exhaustive_optimal, exhaustive_optimal_with, SearchStats, EXHAUSTIVE_MODE_LIMIT,
};
pub use fenwick::FenwickTree;
pub use jw::jordan_wigner;
pub use mapping::{FermionMapping, TableMapping};
pub use parity::parity;
pub use policy::{
    Blend, ParsePolicyError, PortfolioMember, SelectionPolicy, TripleCounts, TripleScore,
};
pub use select::{select_free_triple, FreeSelection};
pub use tree::{
    balanced_ternary_tree, balanced_tree, build_with_qubit_children, Branch, NodeId, TernaryTree,
    TernaryTreeBuilder, TreeMapping,
};
pub use validate::{check_vacuum, validate, MappingReport};
