//! Simulated annealing over ternary-tree merge sequences — the
//! workspace's substitute for Fermihedral's *approximately optimal*
//! solutions (the `*`-marked entries of the paper's Tables I and II).
//!
//! The state is a complete merge sequence (the triple chosen at every
//! construction step). A neighbour truncates the sequence at a random
//! step, substitutes a random triple there, and completes the remainder
//! greedily (under the configured [`SelectionPolicy`]). Acceptance
//! follows the Metropolis rule on the accumulated per-qubit weight
//! objective.
//!
//! # Examples
//!
//! The search is deterministic in its seed and returns a valid mapping:
//!
//! ```
//! use hatt_fermion::MajoranaSum;
//! use hatt_mappings::{anneal_search, validate, AnnealingOptions};
//! use hatt_pauli::Complex64;
//!
//! let mut h = MajoranaSum::new(2);
//! h.add(Complex64::ONE, &[0, 1]);
//! let opts = AnnealingOptions { iterations: 25, ..Default::default() };
//! let (mapping, stats) = anneal_search(&h, &opts);
//! assert!(validate(&mapping).is_valid());
//! assert_eq!(stats.best_weight, 1); // M0·M1 settles on one qubit
//! ```

use std::time::Instant;

use hatt_fermion::MajoranaSum;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::TermEngine;
use crate::exhaustive::SearchStats;
use crate::policy::SelectionPolicy;
use crate::select::select_free_triple;
use crate::tree::{NodeId, TernaryTreeBuilder, TreeMapping};

/// Configuration for the annealing search.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealingOptions {
    /// Number of annealing iterations.
    pub iterations: usize,
    /// Initial temperature (in units of the weight objective).
    pub t0: f64,
    /// Geometric cooling factor per iteration.
    pub cooling: f64,
    /// RNG seed (the search is deterministic in this seed).
    pub seed: u64,
    /// Selection policy for the greedy completions (tie-breaking /
    /// lookahead). Whole-construction policies (beam, restarts) degrade
    /// to the tie-broken greedy inside a completion — the annealer
    /// explores sequence space itself, so widening each completion as
    /// well is redundant work.
    pub policy: SelectionPolicy,
}

impl Default for AnnealingOptions {
    fn default() -> Self {
        AnnealingOptions {
            iterations: 400,
            t0: 8.0,
            cooling: 0.99,
            seed: 7,
            policy: SelectionPolicy::Greedy,
        }
    }
}

/// Runs simulated annealing and returns the best tree mapping found plus
/// search statistics.
///
/// # Panics
///
/// Panics when the Hamiltonian has zero modes.
///
/// # Examples
///
/// ```
/// use hatt_fermion::MajoranaSum;
/// use hatt_mappings::{anneal_search, AnnealingOptions};
/// use hatt_pauli::Complex64;
///
/// let mut h = MajoranaSum::new(3);
/// h.add(Complex64::ONE, &[0, 5]);
/// h.add(Complex64::ONE, &[1, 3]);
/// let (mapping, stats) = anneal_search(&h, &AnnealingOptions::default());
/// assert!(stats.best_weight <= 6);
/// # let _ = mapping;
/// ```
pub fn anneal_search(h: &MajoranaSum, opts: &AnnealingOptions) -> (TreeMapping, SearchStats) {
    let n = h.n_modes();
    assert!(n > 0, "need at least one mode");
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut stats = SearchStats::default();

    // Initial state: fully greedy completion from the start.
    let (mut current_seq, mut current_w) =
        complete_greedily(h, &[], &mut rng, 0.0, opts.policy, &mut stats);
    let mut best_seq = current_seq.clone();
    let mut best_w = current_w;

    let mut temp = opts.t0;
    for _ in 0..opts.iterations {
        let cut = rng.gen_range(0..n);
        let (cand_seq, cand_w) = complete_greedily(
            h,
            &current_seq[..cut],
            &mut rng,
            1.0,
            opts.policy,
            &mut stats,
        );
        stats.completions += 1;
        let accept = cand_w <= current_w || {
            let delta = (cand_w - current_w) as f64;
            rng.gen::<f64>() < (-delta / temp.max(1e-9)).exp()
        };
        if accept {
            current_seq = cand_seq;
            current_w = cand_w;
            if current_w < best_w {
                best_w = current_w;
                best_seq = current_seq.clone();
            }
        }
        temp *= opts.cooling;
    }

    stats.best_weight = best_w;
    stats.elapsed = start.elapsed();
    let mut builder = TernaryTreeBuilder::new(n);
    for triple in &best_seq {
        builder.attach(*triple);
    }
    let mapping = TreeMapping::with_identity_assignment("FH*", builder.finish());
    (mapping, stats)
}

/// Replays `prefix`, takes one random step when `randomize_first > 0`
/// (probability of randomizing the first free step), then completes
/// greedily. Returns the full sequence and its accumulated weight.
fn complete_greedily(
    h: &MajoranaSum,
    prefix: &[[NodeId; 3]],
    rng: &mut StdRng,
    randomize_first: f64,
    policy: SelectionPolicy,
    stats: &mut SearchStats,
) -> (Vec<[NodeId; 3]>, usize) {
    let n = h.n_modes();
    let mut engine = TermEngine::new(h);
    let mut u: Vec<NodeId> = (0..2 * n + 1).collect();
    let mut seq: Vec<[NodeId; 3]> = Vec::with_capacity(n);
    let mut acc = 0usize;

    let apply = |engine: &mut TermEngine,
                 u: &mut Vec<NodeId>,
                 seq: &mut Vec<[NodeId; 3]>,
                 step: usize,
                 triple: [NodeId; 3]|
     -> usize {
        let parent = 2 * n + 1 + step;
        let w = engine.weight_of_triple(triple[0], triple[1], triple[2]);
        engine.reduce(parent, triple[0], triple[1], triple[2]);
        u.retain(|v| !triple.contains(v));
        u.push(parent);
        seq.push(triple);
        w
    };

    for (step, triple) in prefix.iter().enumerate() {
        acc += apply(&mut engine, &mut u, &mut seq, step, *triple);
    }
    let mut first_free = true;
    for step in prefix.len()..n {
        let triple = if first_free && rng.gen::<f64>() < randomize_first {
            // Uniform random unordered triple from U.
            let mut picks = rand::seq::index::sample(rng, u.len(), 3).into_vec();
            picks.sort_unstable();
            [u[picks[0]], u[picks[1]], u[picks[2]]]
        } else {
            // Policy-driven greedy step (tie-broken, optional lookahead).
            let sel = select_free_triple(
                &mut engine,
                &u,
                policy,
                policy.blend(),
                false,
                2 * n + 1 + step,
            );
            stats.candidates += sel.candidates;
            sel.children
        };
        first_free = false;
        acc += apply(&mut engine, &mut u, &mut seq, step, triple);
    }
    (seq, acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::exhaustive_optimal;
    use crate::mapping::FermionMapping;
    use crate::validate::validate;
    use hatt_pauli::Complex64;

    fn paper_example() -> MajoranaSum {
        let mut h = MajoranaSum::new(3);
        h.add(Complex64::new(0.0, 0.5), &[0, 1]);
        h.add(Complex64::new(0.0, -0.5), &[2, 3]);
        h.add(Complex64::new(0.0, -0.5), &[4, 5]);
        h.add(Complex64::real(0.5), &[2, 3, 4, 5]);
        h
    }

    #[test]
    fn finds_valid_mapping_close_to_optimal() {
        let h = paper_example();
        let (fh, exact) = exhaustive_optimal(&h);
        let (approx, stats) = anneal_search(&h, &AnnealingOptions::default());
        assert!(validate(&approx).is_valid());
        assert!(
            stats.best_weight <= exact.best_weight + 2,
            "annealing weight {} far from optimum {}",
            stats.best_weight,
            exact.best_weight
        );
        let _ = fh;
    }

    #[test]
    fn deterministic_in_seed() {
        let h = paper_example();
        let opts = AnnealingOptions {
            iterations: 50,
            ..Default::default()
        };
        let (_, a) = anneal_search(&h, &opts);
        let (_, b) = anneal_search(&h, &opts);
        assert_eq!(a.best_weight, b.best_weight);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn objective_matches_mapped_weight() {
        let h = paper_example();
        let (mapping, stats) = anneal_search(&h, &AnnealingOptions::default());
        let hq = mapping.map_majorana_sum(&h);
        assert_eq!(hq.weight(), stats.best_weight);
        assert_eq!(mapping.name(), "FH*");
    }

    #[test]
    fn scales_past_the_exhaustive_limit() {
        // 8 modes is beyond EXHAUSTIVE_MODE_LIMIT but fine for annealing.
        let h = MajoranaSum::uniform_singles(8);
        let opts = AnnealingOptions {
            iterations: 30,
            ..Default::default()
        };
        let (mapping, _) = anneal_search(&h, &opts);
        assert!(validate(&mapping).is_valid());
    }
}
