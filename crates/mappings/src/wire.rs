//! `hatt-wire/1` codec for ternary trees.
//!
//! A [`TernaryTree`] is fully determined by its `qubit → [X, Y, Z]
//! children` table, so that is what goes on the wire:
//!
//! ```json
//! {"format":"hatt-wire/1","kind":"ternary_tree","payload":{
//!   "n_modes": 3,
//!   "children": [[0,1,2],[3,4,7],[5,6,8]]
//! }}
//! ```
//!
//! Decoding rebuilds the tree through [`try_build_with_qubit_children`],
//! a fully validated (panic-free) version of
//! [`build_with_qubit_children`]: out
//! of range ids, duplicate children, doubly-parented nodes, cycles and
//! forests all come back as typed [`WireError`]s.
//!
//! # Examples
//!
//! ```
//! use hatt_mappings::wire::{decode_ternary_tree, encode_ternary_tree};
//! use hatt_mappings::TernaryTreeBuilder;
//! use hatt_pauli::json::Json;
//!
//! let mut b = TernaryTreeBuilder::new(2);
//! let i0 = b.attach([0, 1, 2]);
//! b.attach([3, 4, i0]);
//! let tree = b.finish();
//!
//! let text = encode_ternary_tree(&tree).render();
//! let back = decode_ternary_tree(&Json::parse(&text)?)?;
//! assert_eq!(back, tree);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use hatt_pauli::json::Json;
use hatt_pauli::wire::{
    as_arr, as_obj, as_usize, checked_modes, envelope, field, open_envelope, WireError,
};

use crate::tree::{build_with_qubit_children, NodeId, TernaryTree};

const KIND: &str = "ternary_tree";

/// Encodes a [`TernaryTree`] as a `hatt-wire/1` envelope.
pub fn encode_ternary_tree(tree: &TernaryTree) -> Json {
    envelope(KIND, ternary_tree_payload(tree))
}

/// The bare (un-enveloped) payload of a tree — composed into larger
/// documents by `hatt-core::wire` and `hatt-service`.
pub fn ternary_tree_payload(tree: &TernaryTree) -> Json {
    let children = (0..tree.n_modes())
        .map(|q| {
            let ch = tree.children(tree.internal_of(q)).unwrap_or([0, 0, 0]); // internal nodes always have children
            Json::Arr(ch.iter().map(|&c| Json::int(c as u64)).collect())
        })
        .collect();
    Json::Obj(vec![
        ("n_modes".into(), Json::int(tree.n_modes() as u64)),
        ("children".into(), Json::Arr(children)),
    ])
}

/// Decodes a [`TernaryTree`] envelope.
pub fn decode_ternary_tree(v: &Json) -> Result<TernaryTree, WireError> {
    decode_ternary_tree_payload(open_envelope(v, KIND)?)
}

/// Decodes a bare tree payload (see [`ternary_tree_payload`]).
pub fn decode_ternary_tree_payload(payload: &Json) -> Result<TernaryTree, WireError> {
    const CTX: &str = "ternary_tree payload";
    let pairs = as_obj(payload, CTX)?;
    let n = checked_modes(as_usize(field(pairs, "n_modes", CTX)?, CTX)?, CTX)?;
    let rows = as_arr(field(pairs, "children", CTX)?, CTX)?;
    if rows.len() != n {
        return Err(WireError::schema(
            CTX,
            format!("expected {n} child triples, got {}", rows.len()),
        ));
    }
    let mut table: Vec<[NodeId; 3]> = Vec::with_capacity(n);
    for row in rows {
        const RCTX: &str = "ternary_tree child triple";
        let items = as_arr(row, RCTX)?;
        if items.len() != 3 {
            return Err(WireError::schema(RCTX, "expected exactly three children"));
        }
        let mut ch = [0usize; 3];
        for (slot, item) in items.iter().enumerate() {
            ch[slot] = as_usize(item, RCTX)?;
        }
        table.push(ch);
    }
    try_build_with_qubit_children(n, &table)
}

/// Validated tree reconstruction: the fallible counterpart of
/// [`build_with_qubit_children`],
/// returning a [`WireError`] instead of panicking on malformed tables.
pub fn try_build_with_qubit_children(
    n_modes: usize,
    children_of_qubit: &[[NodeId; 3]],
) -> Result<TernaryTree, WireError> {
    const CTX: &str = "ternary_tree structure";
    if n_modes == 0 {
        return Err(WireError::schema(CTX, "a tree needs at least one mode"));
    }
    if children_of_qubit.len() != n_modes {
        return Err(WireError::schema(CTX, "one child triple per qubit"));
    }
    let n_nodes = 3 * n_modes + 1;
    let mut parent_seen = vec![false; n_nodes];
    for (q, ch) in children_of_qubit.iter().enumerate() {
        if ch[0] == ch[1] || ch[1] == ch[2] || ch[0] == ch[2] {
            return Err(WireError::schema(
                CTX,
                format!("qubit {q} lists duplicate children {ch:?}"),
            ));
        }
        for &c in ch {
            if c >= n_nodes {
                return Err(WireError::schema(
                    CTX,
                    format!("qubit {q} references node {c} outside 0..{n_nodes}"),
                ));
            }
            if c == 2 * n_modes + 1 + q {
                return Err(WireError::schema(
                    CTX,
                    format!("qubit {q} lists itself as a child"),
                ));
            }
            if parent_seen[c] {
                return Err(WireError::schema(
                    CTX,
                    format!("node {c} is assigned two parents"),
                ));
            }
            parent_seen[c] = true;
        }
    }
    // Exactly 3N of the 3N+1 nodes gained a parent ⇔ a single root
    // remains; cycles surface as qubits that never become "ready" in the
    // same topological loop `build_with_qubit_children` runs.
    let n_leaves = 2 * n_modes + 1;
    let mut attached = vec![false; n_modes];
    let mut remaining = n_modes;
    loop {
        let mut progressed = false;
        for q in 0..n_modes {
            if attached[q] {
                continue;
            }
            let ready = children_of_qubit[q]
                .iter()
                .all(|&c| c < n_leaves || attached[c - n_leaves]);
            if ready {
                attached[q] = true;
                remaining -= 1;
                progressed = true;
            }
        }
        if remaining == 0 {
            break;
        }
        if !progressed {
            return Err(WireError::schema(CTX, "cyclic child table"));
        }
    }
    let roots = parent_seen.iter().filter(|&&p| !p).count();
    if roots != 1 {
        return Err(WireError::schema(
            CTX,
            format!("expected a single root, found {roots}"),
        ));
    }
    // All preconditions hold; the panicking builder cannot fire now.
    Ok(build_with_qubit_children(n_modes, children_of_qubit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{balanced_tree, TernaryTreeBuilder};

    #[test]
    fn balanced_trees_round_trip() {
        for n in 1..=9 {
            let tree = balanced_tree(n);
            let back = decode_ternary_tree(&encode_ternary_tree(&tree)).unwrap();
            assert_eq!(back, tree, "n = {n}");
        }
    }

    #[test]
    fn caterpillar_round_trips() {
        let mut b = TernaryTreeBuilder::new(3);
        let i0 = b.attach([0, 1, 2]);
        let i1 = b.attach([3, 4, i0]);
        b.attach([5, 6, i1]);
        let tree = b.finish();
        let back = decode_ternary_tree(&encode_ternary_tree(&tree)).unwrap();
        assert_eq!(back, tree);
        assert_eq!(back.string_for_leaf(0), tree.string_for_leaf(0));
    }

    #[test]
    fn malformed_structures_are_errors_not_panics() {
        // Out-of-range node id.
        assert!(try_build_with_qubit_children(1, &[[0, 1, 9]]).is_err());
        // Duplicate child.
        assert!(try_build_with_qubit_children(2, &[[0, 0, 1], [2, 3, 4]]).is_err());
        // Doubly-parented node.
        assert!(try_build_with_qubit_children(2, &[[0, 1, 2], [0, 3, 4]]).is_err());
        // Self-referential (cyclic) qubit.
        assert!(try_build_with_qubit_children(2, &[[0, 1, 2], [3, 4, 6]]).is_err());
        // A qubit listing its own internal node as a child.
        assert!(try_build_with_qubit_children(1, &[[0, 1, 3]]).is_err());
        // Zero modes.
        assert!(try_build_with_qubit_children(0, &[]).is_err());
        // Wrong table length.
        assert!(try_build_with_qubit_children(2, &[[0, 1, 2]]).is_err());
    }

    #[test]
    fn malformed_wire_documents_are_errors() {
        for payload in [
            r#"{"n_modes":1}"#,
            r#"{"n_modes":1,"children":[[0,1]]}"#,
            r#"{"n_modes":2,"children":[[0,1,2]]}"#,
            r#"{"n_modes":1,"children":[[0,1,"z"]]}"#,
        ] {
            let doc = Json::parse(&format!(
                r#"{{"format":"hatt-wire/1","kind":"ternary_tree","payload":{payload}}}"#
            ))
            .unwrap();
            assert!(decode_ternary_tree(&doc).is_err(), "{payload}");
        }
    }
}
