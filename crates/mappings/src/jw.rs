//! The Jordan-Wigner transformation (paper baseline `JW`, ref [22]).
//!
//! # Examples
//!
//! JW string weight grows linearly with the mode index — the overhead
//! adaptive ternary trees avoid:
//!
//! ```
//! use hatt_mappings::{jordan_wigner, FermionMapping};
//!
//! let jw = jordan_wigner(8);
//! assert_eq!(jw.majorana(0).weight(), 1);  // X_0
//! assert_eq!(jw.majorana(14).weight(), 8); // Z_0…Z_6 X_7
//! ```

use hatt_pauli::{Pauli, PauliString};

use crate::mapping::TableMapping;

/// Builds the Jordan-Wigner mapping on `n_modes` modes:
///
/// ```text
///     M_2j   = Z_0 … Z_{j-1} X_j
///     M_2j+1 = Z_0 … Z_{j-1} Y_j
/// ```
///
/// The weight of each string grows linearly with the mode index, which is
/// the O(N)-per-operator overhead HATT's trees avoid.
///
/// # Examples
///
/// ```
/// use hatt_mappings::{jordan_wigner, FermionMapping};
///
/// let jw = jordan_wigner(2);
/// assert_eq!(jw.majorana(0).to_string(), "IX");
/// assert_eq!(jw.majorana(1).to_string(), "IY");
/// assert_eq!(jw.majorana(2).to_string(), "XZ");
/// assert_eq!(jw.majorana(3).to_string(), "YZ");
/// ```
///
/// # Panics
///
/// Panics when `n_modes` is zero.
pub fn jordan_wigner(n_modes: usize) -> TableMapping {
    assert!(n_modes > 0, "need at least one mode");
    let mut strings = Vec::with_capacity(2 * n_modes);
    for j in 0..n_modes {
        for op in [Pauli::X, Pauli::Y] {
            let mut s = PauliString::single(n_modes, j, op);
            for k in 0..j {
                s.mul_op(k, Pauli::Z);
            }
            strings.push(s);
        }
    }
    TableMapping::new("JW", n_modes, strings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::FermionMapping;
    use crate::validate::validate;

    #[test]
    fn matches_paper_section_2c_example() {
        // Paper §II-C (2 modes): M0 = IX, M1 = IY, M2 = XZ, M3 = YZ.
        let jw = jordan_wigner(2);
        let got: Vec<String> = (0..4).map(|k| jw.majorana(k).to_string()).collect();
        assert_eq!(got, vec!["IX", "IY", "XZ", "YZ"]);
    }

    #[test]
    fn is_valid_and_vacuum_preserving_up_to_8_modes() {
        for n in 1..=8 {
            let report = validate(&jordan_wigner(n));
            assert!(report.is_valid(), "JW({n}) invalid: {report:?}");
            assert!(report.vacuum_preserving, "JW({n}) breaks vacuum");
        }
    }

    #[test]
    fn weights_grow_linearly() {
        let jw = jordan_wigner(5);
        for j in 0..5 {
            assert_eq!(jw.majorana(2 * j).weight(), j + 1);
            assert_eq!(jw.majorana(2 * j + 1).weight(), j + 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn zero_modes_rejected() {
        jordan_wigner(0);
    }
}
