//! Structural validators for fermion-to-qubit mappings.
//!
//! A valid mapping needs `2N` *Hermitian*, *mutually anticommuting* Pauli
//! strings (the Clifford-algebra relations `{M_i, M_j} = 2δ_ij`). The
//! *vacuum-state preservation* property of paper §IV additionally requires
//! `a_j |0…0⟩_F ↦ 0`, i.e. `(S_2j + i·S_2j+1)|0⟩^⊗N = 0` for every mode.
//! Both checks are symbolic and run in `O(N²)` / `O(N)` without any state
//! vectors.
//!
//! # Examples
//!
//! Every baseline in this workspace validates; a deliberately broken
//! "mapping" (two equal strings cannot anticommute) does not:
//!
//! ```
//! use hatt_mappings::{validate, FermionMapping, TableMapping};
//!
//! let good = hatt_mappings::bravyi_kitaev(3);
//! assert!(validate(&good).is_valid());
//!
//! let bad = TableMapping::new(
//!     "broken", 1,
//!     vec!["X".parse()?, "X".parse()?],
//! );
//! assert!(!validate(&bad).is_valid());
//! # Ok::<(), hatt_pauli::ParsePauliStringError>(())
//! ```

use hatt_pauli::Phase;

use crate::mapping::FermionMapping;

/// The outcome of validating a mapping.
///
/// # Examples
///
/// ```
/// use hatt_mappings::{jordan_wigner, validate};
///
/// let report = validate(&jordan_wigner(4));
/// assert!(report.is_valid());
/// assert!(report.vacuum_preserving);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappingReport {
    /// Every Majorana string is Hermitian (squares to `+I`).
    pub hermitian: bool,
    /// Every distinct pair of Majorana strings anticommutes.
    pub anticommuting: bool,
    /// All `2N` strings are distinct operators.
    pub distinct: bool,
    /// The vacuum condition holds for every mode pair `(M_2j, M_2j+1)`.
    pub vacuum_preserving: bool,
    /// Pairs `(i, j)` that failed anticommutation (for diagnostics).
    pub failing_pairs: Vec<(usize, usize)>,
}

impl MappingReport {
    /// `true` when the mapping satisfies the Majorana algebra (vacuum
    /// preservation is reported separately — it is desirable, not
    /// mandatory).
    pub fn is_valid(&self) -> bool {
        self.hermitian && self.anticommuting && self.distinct
    }
}

/// Validates the Majorana algebra and the vacuum condition of a mapping.
pub fn validate<M: FermionMapping + ?Sized>(mapping: &M) -> MappingReport {
    let m = 2 * mapping.n_modes();
    let mut hermitian = true;
    let mut distinct = true;
    let mut failing = Vec::new();
    for i in 0..m {
        if !mapping.majorana(i).is_hermitian() || mapping.majorana(i).is_identity() {
            hermitian = false;
        }
        for j in (i + 1)..m {
            if mapping.majorana(i) == mapping.majorana(j) {
                distinct = false;
            }
            if !mapping.majorana(i).anticommutes_with(mapping.majorana(j)) {
                failing.push((i, j));
            }
        }
    }
    let vacuum = check_vacuum(mapping);
    MappingReport {
        hermitian,
        anticommuting: failing.is_empty(),
        distinct,
        vacuum_preserving: vacuum,
        failing_pairs: failing,
    }
}

/// Checks vacuum-state preservation: for every mode `j`,
/// `(S_2j + i·S_2j+1)|0…0⟩ = 0`.
///
/// Writing `S|0⟩ = amp·|flips⟩`, the condition is that both strings flip
/// the same bits and `amp_2j + i·amp_2j+1 = 0`.
pub fn check_vacuum<M: FermionMapping + ?Sized>(mapping: &M) -> bool {
    for j in 0..mapping.n_modes() {
        let (flips_a, amp_a) = mapping.majorana(2 * j).apply_to_zero_state();
        let (flips_b, amp_b) = mapping.majorana(2 * j + 1).apply_to_zero_state();
        if flips_a != flips_b {
            return false;
        }
        // amp_a + i·amp_b = 0  ⇔  amp_a = i^2 · i · amp_b = i^(3+exp_b)
        if amp_a != Phase::new(amp_b.exponent() + 3) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::TableMapping;
    use hatt_pauli::{Pauli, PauliString};

    fn single_mode(a: Pauli, b: Pauli) -> TableMapping {
        TableMapping::new(
            "test",
            1,
            vec![PauliString::single(1, 0, a), PauliString::single(1, 0, b)],
        )
    }

    #[test]
    fn xy_pair_is_valid_and_vacuum_preserving() {
        let report = validate(&single_mode(Pauli::X, Pauli::Y));
        assert!(report.is_valid());
        assert!(report.vacuum_preserving);
    }

    #[test]
    fn yx_pair_is_valid_but_not_vacuum_preserving() {
        // (Y + iX)|0⟩ = i|1⟩ + i|1⟩ ≠ 0.
        let report = validate(&single_mode(Pauli::Y, Pauli::X));
        assert!(report.is_valid());
        assert!(!report.vacuum_preserving);
    }

    #[test]
    fn commuting_pair_is_invalid() {
        let report = validate(&single_mode(Pauli::X, Pauli::X));
        assert!(!report.anticommuting);
        assert!(!report.distinct);
        assert!(!report.is_valid());
        assert_eq!(report.failing_pairs, vec![(0, 1)]);
    }

    #[test]
    fn xz_flip_mismatch_fails_vacuum() {
        // X flips, Z does not: flip masks differ.
        let report = validate(&single_mode(Pauli::X, Pauli::Z));
        assert!(report.is_valid());
        assert!(!report.vacuum_preserving);
    }

    #[test]
    fn identity_string_is_rejected() {
        let m = TableMapping::new(
            "bad",
            1,
            vec![
                PauliString::identity(1),
                PauliString::single(1, 0, Pauli::Y),
            ],
        );
        let report = validate(&m);
        assert!(!report.hermitian);
        assert!(!report.is_valid());
    }
}
