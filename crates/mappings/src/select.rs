//! Shared greedy triple selection over a free node set — the
//! policy-aware core of Algorithm 1 style selection, reused by the HATT
//! construction (`hatt-core`), the annealing completions and the
//! exhaustive search's initial bound.
//!
//! The *paired* selection of Algorithms 2/3 (free `(O_X, O_Z)`, derived
//! `O_Y`) lives in `hatt-core` next to the `mdown`/`mup` caches; this
//! module handles the unconstrained case where any three current roots
//! may merge.
//!
//! # Examples
//!
//! ```
//! use hatt_fermion::MajoranaSum;
//! use hatt_mappings::{select_free_triple, Blend, SelectionPolicy, TermEngine};
//! use hatt_pauli::Complex64;
//!
//! // H = M0 M1 + M2 M3 on 2 modes: merging (0, 1, x) settles weight 1.
//! let mut h = MajoranaSum::new(2);
//! h.add(Complex64::ONE, &[0, 1]);
//! h.add(Complex64::ONE, &[2, 3]);
//! let mut engine = TermEngine::new(&h);
//! let u: Vec<usize> = (0..5).collect();
//! let sel = select_free_triple(
//!     &mut engine, &u, SelectionPolicy::Greedy, Blend::UNIT, false, 5,
//! );
//! assert_eq!(sel.score.weight, 1);
//! // Tie-breaking prefers the pair that fully cancels (residual 0).
//! assert_eq!(sel.score.residual, 0);
//! ```

use crate::engine::TermEngine;
use crate::policy::{Blend, SelectionPolicy, TripleScore};
use crate::tree::NodeId;

/// The outcome of one free-triple selection step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeSelection {
    /// The chosen children (unordered semantics; stored ascending).
    pub children: [NodeId; 3],
    /// The chosen triple's greedy score.
    pub score: TripleScore,
    /// Number of candidate evaluations performed (instrumentation).
    pub candidates: u64,
}

/// Scores one triple under `blend`, honouring the naive-kernel ablation
/// flag.
#[inline]
pub(crate) fn score_triple(
    engine: &mut TermEngine,
    naive_weight: bool,
    blend: Blend,
    a: NodeId,
    b: NodeId,
    c: NodeId,
) -> TripleScore {
    let counts = if naive_weight {
        engine.counts_of_triple_naive(a, b, c)
    } else {
        engine.counts_of_triple_memo(a, b, c)
    };
    counts.score(blend)
}

/// Picks the best unordered triple from `u` under `policy` / `blend`.
///
/// * [`SelectionPolicy::Greedy`] / [`SelectionPolicy::Vanilla`] — one
///   pass, minimum [`TripleScore`], first (lowest node ids) on full
///   ties. (The blend is taken from the `blend` argument, so `Greedy`
///   with [`Blend::PAPER`] behaves like `Vanilla`.)
/// * [`SelectionPolicy::Lookahead`] — the `width` best-scoring candidates
///   are re-ranked by simulating their reduce into `next_parent` and
///   adding the best score the following step could achieve.
/// * [`SelectionPolicy::Beam`] / [`SelectionPolicy::Restarts`] — whole-
///   construction strategies, not per-step choices; callers drive them
///   themselves (see `hatt-core`). Inside a single step they degrade to
///   `Greedy`.
///
/// `next_parent` is the node id the caller will `reduce` the winner
/// into; lookahead simulation temporarily borrows it and restores its
/// incidence before returning.
///
/// # Panics
///
/// Panics when `u` has fewer than three nodes.
pub fn select_free_triple(
    engine: &mut TermEngine,
    u: &[NodeId],
    policy: SelectionPolicy,
    blend: Blend,
    naive_weight: bool,
    next_parent: NodeId,
) -> FreeSelection {
    assert!(u.len() >= 3, "need at least three free nodes");
    let width = match policy {
        SelectionPolicy::Lookahead { width } => width,
        _ => 0,
    };
    let mut shortlist = Shortlist::new(width);
    let mut best = FreeSelection {
        children: [u[0], u[1], u[2]],
        score: TripleScore::MAX,
        candidates: 0,
    };
    for ai in 0..u.len() {
        for bi in (ai + 1)..u.len() {
            for ci in (bi + 1)..u.len() {
                let (a, b, c) = (u[ai], u[bi], u[ci]);
                best.candidates += 1;
                let score = score_triple(engine, naive_weight, blend, a, b, c);
                if score < best.score {
                    best.score = score;
                    best.children = [a, b, c];
                }
                shortlist.offer(score, [a, b, c]);
            }
        }
    }
    if width > 0 && u.len() > 3 {
        let (children, score, extra) = rank_by_lookahead(
            engine,
            u,
            naive_weight,
            blend,
            next_parent,
            shortlist.into_vec(),
        );
        best.children = children;
        best.score = score;
        best.candidates += extra;
    }
    best
}

/// Re-ranks shortlisted candidates by `key + best next-step key` (ties:
/// residual, then shortlist order). Returns the winner plus the number
/// of extra candidate evaluations spent looking ahead.
fn rank_by_lookahead(
    engine: &mut TermEngine,
    u: &[NodeId],
    naive_weight: bool,
    blend: Blend,
    next_parent: NodeId,
    shortlist: Vec<(TripleScore, [NodeId; 3])>,
) -> ([NodeId; 3], TripleScore, u64) {
    let saved = engine.incidence(next_parent).clone();
    let mut extra = 0u64;
    let mut best_idx = 0usize;
    let mut best_key = (i64::MAX, usize::MAX);
    for (idx, &(score, children)) in shortlist.iter().enumerate() {
        engine.reduce(next_parent, children[0], children[1], children[2]);
        let next_u: Vec<NodeId> = u
            .iter()
            .copied()
            .filter(|v| !children.contains(v))
            .chain(std::iter::once(next_parent))
            .collect();
        let mut next_best = 0i64;
        if next_u.len() >= 3 {
            next_best = i64::MAX;
            for ai in 0..next_u.len() {
                for bi in (ai + 1)..next_u.len() {
                    for ci in (bi + 1)..next_u.len() {
                        extra += 1;
                        let s = score_triple(
                            engine,
                            naive_weight,
                            blend,
                            next_u[ai],
                            next_u[bi],
                            next_u[ci],
                        );
                        next_best = next_best.min(s.key);
                    }
                }
            }
        }
        engine.set_incidence(next_parent, saved.clone());
        let key = (score.key + next_best, score.residual);
        if key < best_key {
            best_key = key;
            best_idx = idx;
        }
    }
    let (score, children) = shortlist[best_idx];
    (children, score, extra)
}

/// A bounded best-`k` accumulator ordered by [`TripleScore`] then
/// insertion order (so equal scores keep ascending node ids).
#[derive(Debug)]
pub(crate) struct Shortlist {
    width: usize,
    entries: Vec<(TripleScore, [NodeId; 3])>,
}

impl Shortlist {
    pub(crate) fn new(width: usize) -> Self {
        Shortlist {
            width,
            entries: Vec::with_capacity(width.saturating_add(1)),
        }
    }

    /// Offers a candidate; keeps only the `width` best.
    pub(crate) fn offer(&mut self, score: TripleScore, children: [NodeId; 3]) {
        if self.width == 0 {
            return;
        }
        #[allow(clippy::expect_used)]
        if self.entries.len() == self.width
            // hatt-lint: allow(panic) -- len == width and width > 0 was checked above, so entries is non-empty
            && score >= self.entries.last().expect("non-empty at capacity").0
        {
            return;
        }
        // Insert before the first strictly-worse entry: stable for ties.
        let pos = self.entries.partition_point(|&(s, _)| s <= score);
        self.entries.insert(pos, (score, children));
        self.entries.truncate(self.width);
    }

    pub(crate) fn into_vec(self) -> Vec<(TripleScore, [NodeId; 3])> {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_fermion::MajoranaSum;
    use hatt_pauli::Complex64;

    fn paper_example() -> MajoranaSum {
        let mut h = MajoranaSum::new(3);
        h.add(Complex64::new(0.0, 0.5), &[0, 1]);
        h.add(Complex64::new(0.0, -0.5), &[2, 3]);
        h.add(Complex64::new(0.0, -0.5), &[4, 5]);
        h.add(Complex64::real(0.5), &[2, 3, 4, 5]);
        h
    }

    #[test]
    fn greedy_picks_minimum_score() {
        let mut engine = TermEngine::new(&paper_example());
        let u: Vec<NodeId> = (0..7).collect();
        let sel = select_free_triple(
            &mut engine,
            &u,
            SelectionPolicy::Greedy,
            Blend::UNIT,
            false,
            7,
        );
        // The paper's first step settles weight 1 (triple 0, 1, 6) — and
        // that triple also has residual 0, so the amortized objective
        // (key = w − n₂ − n₃ = 0) keeps it.
        assert_eq!(sel.score.weight, 1);
        assert_eq!(sel.score.residual, 0);
        assert_eq!(sel.score.key, 0);
        assert_eq!(sel.children, [0, 1, 6]);
        assert_eq!(sel.candidates, 35);
    }

    #[test]
    fn naive_and_memo_scoring_agree() {
        let u: Vec<NodeId> = (0..7).collect();
        let mut fast = TermEngine::new(&paper_example());
        let mut slow = TermEngine::new(&paper_example());
        for blend in [Blend::PAPER, Blend::HALF, Blend::UNIT, Blend::DOUBLE] {
            let a = select_free_triple(&mut fast, &u, SelectionPolicy::Greedy, blend, false, 7);
            let b = select_free_triple(&mut slow, &u, SelectionPolicy::Greedy, blend, true, 7);
            assert_eq!(a, b, "blend {blend:?}");
        }
    }

    #[test]
    fn lookahead_restores_the_parent_node() {
        let mut engine = TermEngine::new(&paper_example());
        let u: Vec<NodeId> = (0..7).collect();
        let before = engine.incidence(7).clone();
        let sel = select_free_triple(
            &mut engine,
            &u,
            SelectionPolicy::Lookahead { width: 4 },
            Blend::UNIT,
            false,
            7,
        );
        assert_eq!(engine.incidence(7), &before, "lookahead must be pure");
        assert!(sel.candidates > 35, "lookahead evaluates extra candidates");
        assert_eq!(sel.score.weight, 1, "lookahead keeps an optimal step here");
    }

    #[test]
    fn shortlist_keeps_best_k_stable() {
        let mut s = Shortlist::new(2);
        let sc = |k: i64, r: usize| TripleScore {
            key: k,
            weight: 0,
            residual: r,
        };
        s.offer(sc(3, 0), [0, 1, 2]);
        s.offer(sc(1, 5), [3, 4, 5]);
        s.offer(sc(1, 5), [6, 7, 8]); // tie → keeps earlier first
        s.offer(sc(0, 9), [9, 10, 11]);
        let v = s.into_vec();
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].1, [9, 10, 11]);
        assert_eq!(v[1].1, [3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "three free nodes")]
    fn rejects_tiny_node_sets() {
        let mut engine = TermEngine::new(&paper_example());
        let _ = select_free_triple(
            &mut engine,
            &[0, 1],
            SelectionPolicy::Greedy,
            Blend::UNIT,
            false,
            7,
        );
    }
}
