//! The parity transformation (paper related work, ref [4]): qubit `j`
//! stores the parity of modes `0..=j`, dual to Jordan-Wigner.
//!
//! # Examples
//!
//! Where JW strings grow toward *high* mode indices, parity strings grow
//! toward *low* ones:
//!
//! ```
//! use hatt_mappings::{parity, FermionMapping};
//!
//! let p = parity(4);
//! assert_eq!(p.majorana(0).weight(), 4); // X_0 X_1 X_2 X_3
//! assert_eq!(p.majorana(7).weight(), 1); // Y_3
//! ```

use hatt_pauli::{Pauli, PauliString};

use crate::mapping::TableMapping;

/// Builds the parity mapping on `n_modes` modes:
///
/// ```text
///     M_2j   = Z_{j-1} X_j X_{j+1} … X_{N-1}
///     M_2j+1 =         Y_j X_{j+1} … X_{N-1}
/// ```
///
/// # Examples
///
/// ```
/// use hatt_mappings::{parity, FermionMapping};
///
/// let p = parity(3);
/// assert_eq!(p.majorana(0).to_string(), "XXX");
/// assert_eq!(p.majorana(1).to_string(), "XXY");
/// assert_eq!(p.majorana(2).to_string(), "XXZ");
/// assert_eq!(p.majorana(3).to_string(), "XYI");
/// ```
///
/// # Panics
///
/// Panics when `n_modes` is zero.
pub fn parity(n_modes: usize) -> TableMapping {
    assert!(n_modes > 0, "need at least one mode");
    let mut strings = Vec::with_capacity(2 * n_modes);
    for j in 0..n_modes {
        for op in [Pauli::X, Pauli::Y] {
            let mut s = PauliString::single(n_modes, j, op);
            if op == Pauli::X && j > 0 {
                s.mul_op(j - 1, Pauli::Z);
            }
            for k in (j + 1)..n_modes {
                s.mul_op(k, Pauli::X);
            }
            strings.push(s);
        }
    }
    TableMapping::new("Parity", n_modes, strings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn is_valid_and_vacuum_preserving_up_to_8_modes() {
        for n in 1..=8 {
            let report = validate(&parity(n));
            assert!(report.is_valid(), "parity({n}) invalid: {report:?}");
            assert!(report.vacuum_preserving, "parity({n}) breaks vacuum");
        }
    }

    #[test]
    fn single_mode_matches_jw() {
        use crate::jw::jordan_wigner;
        use crate::mapping::FermionMapping;
        let p = parity(1);
        let jw = jordan_wigner(1);
        assert_eq!(p.majorana(0), jw.majorana(0));
        assert_eq!(p.majorana(1), jw.majorana(1));
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn zero_modes_rejected() {
        parity(0);
    }
}
