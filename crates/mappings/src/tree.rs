//! The ternary-tree data structure of paper §III-A: a complete ternary
//! tree with `N` internal nodes (qubits) and `2N+1` leaves (Majorana
//! slots), from which Pauli strings are extracted by root-to-leaf walks.
//!
//! Node identifiers follow the paper's `O_i` convention: leaves are
//! `O_0 … O_2N`, internal nodes are `O_{2N+1} … O_{3N}` with internal node
//! `O_{2N+1+q}` carrying qubit `q`.
//!
//! # Examples
//!
//! Build the paper's Figure 4(b) caterpillar bottom-up and read off a
//! leaf string (each ancestor contributes its branch letter):
//!
//! ```
//! use hatt_mappings::TernaryTreeBuilder;
//!
//! let mut b = TernaryTreeBuilder::new(3);
//! let i0 = b.attach([0, 1, 2]);      // qubit 0 over leaves 0, 1, 2
//! let i1 = b.attach([3, 4, i0]);     // qubit 1, chain on the Z branch
//! let _root = b.attach([5, 6, i1]);  // qubit 2
//! let tree = b.finish();
//! assert_eq!(tree.string_for_leaf(0).to_string(), "ZZX");
//! assert_eq!(tree.desc_z(tree.root()), 2);
//! ```

use hatt_pauli::{Pauli, PauliString};

use crate::mapping::{FermionMapping, TableMapping};

/// Identifier of a tree node (leaf or internal).
pub type NodeId = usize;

/// A branch label: the child slot of an internal node, contributing the
/// corresponding Pauli letter to extracted strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Branch {
    /// Left child — contributes `X`.
    X,
    /// Middle child — contributes `Y`.
    Y,
    /// Right child — contributes `Z`.
    Z,
}

impl Branch {
    /// All branches in `X, Y, Z` order.
    pub const ALL: [Branch; 3] = [Branch::X, Branch::Y, Branch::Z];

    /// The Pauli letter this branch contributes.
    pub fn pauli(self) -> Pauli {
        match self {
            Branch::X => Pauli::X,
            Branch::Y => Pauli::Y,
            Branch::Z => Pauli::Z,
        }
    }

    /// Child-slot index (0, 1, 2).
    pub fn index(self) -> usize {
        match self {
            Branch::X => 0,
            Branch::Y => 1,
            Branch::Z => 2,
        }
    }
}

/// A complete ternary tree over `N` internal nodes and `2N+1` leaves.
///
/// # Examples
///
/// Build the 1-mode tree (one internal node, three leaves) and extract its
/// strings:
///
/// ```
/// use hatt_mappings::{TernaryTree, TernaryTreeBuilder};
///
/// let mut b = TernaryTreeBuilder::new(1);
/// b.attach([0, 1, 2]);
/// let tree = b.finish();
/// let strings = tree.leaf_strings();
/// let rendered: Vec<String> = strings.iter().map(|s| s.to_string()).collect();
/// assert_eq!(rendered, vec!["X", "Y", "Z"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TernaryTree {
    n_modes: usize,
    children: Vec<Option<[NodeId; 3]>>,
    parent: Vec<Option<(NodeId, Branch)>>,
    root: NodeId,
}

impl TernaryTree {
    /// Number of fermionic modes `N` (= internal nodes = qubits).
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Number of leaves, `2N + 1`.
    #[inline]
    pub fn n_leaves(&self) -> usize {
        2 * self.n_modes + 1
    }

    /// Total node count, `3N + 1`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        3 * self.n_modes + 1
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Returns `true` when `node` is a leaf (`O_0 … O_2N`).
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        node < self.n_leaves()
    }

    /// The qubit carried by an internal node.
    ///
    /// # Panics
    ///
    /// Panics when `node` is a leaf.
    #[inline]
    pub fn qubit_of(&self, node: NodeId) -> usize {
        assert!(!self.is_leaf(node), "leaf {node} carries no qubit");
        node - self.n_leaves()
    }

    /// The internal node carrying `qubit`.
    #[inline]
    pub fn internal_of(&self, qubit: usize) -> NodeId {
        self.n_leaves() + qubit
    }

    /// The `[X, Y, Z]` children of an internal node (`None` for leaves).
    #[inline]
    pub fn children(&self, node: NodeId) -> Option<[NodeId; 3]> {
        self.children[node]
    }

    /// The parent and incoming branch of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<(NodeId, Branch)> {
        self.parent[node]
    }

    /// The Z-descendant `descZ(node)`: the leaf reached by walking down
    /// `Z` branches (paper §IV-B, Definition I).
    pub fn desc_z(&self, mut node: NodeId) -> NodeId {
        while let Some(ch) = self.children[node] {
            node = ch[Branch::Z.index()];
        }
        node
    }

    /// Extracts the Pauli string of one leaf: each internal node on the
    /// root-to-leaf path contributes its branch letter on its qubit
    /// (paper §III-A.2).
    ///
    /// # Panics
    ///
    /// Panics when `leaf` is not a leaf.
    pub fn string_for_leaf(&self, leaf: NodeId) -> PauliString {
        assert!(self.is_leaf(leaf), "node {leaf} is not a leaf");
        let mut s = PauliString::identity(self.n_modes);
        let mut node = leaf;
        while let Some((p, branch)) = self.parent[node] {
            s.set_op(self.qubit_of(p), branch.pauli());
            node = p;
        }
        s
    }

    /// All `2N + 1` leaf strings in leaf order.
    pub fn leaf_strings(&self) -> Vec<PauliString> {
        (0..self.n_leaves())
            .map(|l| self.string_for_leaf(l))
            .collect()
    }

    /// Depth of a node (root has depth 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut v = node;
        while let Some((p, _)) = self.parent[v] {
            d += 1;
            v = p;
        }
        d
    }

    /// Mean leaf depth — the average string weight of the raw mapping.
    pub fn mean_leaf_depth(&self) -> f64 {
        let total: usize = (0..self.n_leaves()).map(|l| self.depth(l)).sum();
        total as f64 / self.n_leaves() as f64
    }

    /// Renders the tree as indented ASCII, one node per line, with branch
    /// labels — handy for inspecting what HATT built.
    ///
    /// ```text
    /// q0
    /// ├─X─ L0
    /// ├─Y─ L1
    /// └─Z─ q1
    ///      ├─X─ L2 …
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root, "", None, &mut out);
        out
    }

    fn render_node(&self, node: NodeId, indent: &str, branch: Option<Branch>, out: &mut String) {
        let connector = match branch {
            None => String::new(),
            Some(b) => {
                let glyph = if b == Branch::Z { "└" } else { "├" };
                format!("{glyph}─{}─ ", b.pauli().symbol())
            }
        };
        if self.is_leaf(node) {
            out.push_str(&format!("{indent}{connector}L{node}\n"));
            return;
        }
        out.push_str(&format!("{indent}{connector}q{}\n", self.qubit_of(node)));
        let child_indent = if branch.is_none() {
            indent.to_string()
        } else {
            format!("{indent}     ")
        };
        #[allow(clippy::expect_used)]
        // hatt-lint: allow(panic) -- render_node recurses only into internal nodes, which always have children
        let ch = self.children[node].expect("internal node has children");
        for b in Branch::ALL {
            self.render_node(ch[b.index()], &child_indent, Some(b), out);
        }
    }

    /// Pairs the leaves for vacuum-state preservation: for every internal
    /// node `v`, the Z-descendants of its X and Y children form a valid
    /// pair (they share the root→`v` prefix, carry `(X, Y)` on `v`'s
    /// qubit, and their Z-tails act trivially on `|0⟩`). Returns the `N`
    /// pairs ordered by `v`'s qubit and the one unpaired leaf
    /// (`descZ(root)`).
    pub fn pair_leaves(&self) -> (Vec<(NodeId, NodeId)>, NodeId) {
        let mut pairs = Vec::with_capacity(self.n_modes);
        for q in 0..self.n_modes {
            let v = self.internal_of(q);
            #[allow(clippy::expect_used)]
            // hatt-lint: allow(panic) -- internal_of(q) returns an internal node, which always has children
            let ch = self.children[v].expect("internal node has children");
            pairs.push((
                self.desc_z(ch[Branch::X.index()]),
                self.desc_z(ch[Branch::Y.index()]),
            ));
        }
        (pairs, self.desc_z(self.root))
    }
}

/// Incremental bottom-up builder for [`TernaryTree`], mirroring the
/// paper's construction: start from `2N+1` free leaves and repeatedly
/// attach a new internal node to three current roots.
#[derive(Debug, Clone)]
pub struct TernaryTreeBuilder {
    n_modes: usize,
    children: Vec<Option<[NodeId; 3]>>,
    parent: Vec<Option<(NodeId, Branch)>>,
    attached_internals: usize,
}

impl TernaryTreeBuilder {
    /// Starts a build for `n_modes` modes (`2·n_modes + 1` free leaves).
    ///
    /// # Panics
    ///
    /// Panics when `n_modes` is zero.
    pub fn new(n_modes: usize) -> Self {
        assert!(n_modes > 0, "need at least one mode");
        let n_nodes = 3 * n_modes + 1;
        TernaryTreeBuilder {
            n_modes,
            children: vec![None; n_nodes],
            parent: vec![None; n_nodes],
            attached_internals: 0,
        }
    }

    /// Number of modes.
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        2 * self.n_modes + 1
    }

    /// Attaches the next internal node (qubit = number of nodes attached
    /// so far) with the given `[X, Y, Z]` children. Returns the new node's
    /// id, `O_{2N+1+qubit}`.
    ///
    /// # Panics
    ///
    /// Panics when all internal nodes are used, when a child does not
    /// exist or already has a parent, or when children repeat.
    pub fn attach(&mut self, ch: [NodeId; 3]) -> NodeId {
        assert!(
            self.attached_internals < self.n_modes,
            "all {} internal nodes already attached",
            self.n_modes
        );
        assert!(
            ch[0] != ch[1] && ch[1] != ch[2] && ch[0] != ch[2],
            "children must be distinct: {ch:?}"
        );
        let node = self.n_leaves() + self.attached_internals;
        for (slot, &c) in ch.iter().enumerate() {
            assert!(c < node, "child {c} does not exist yet");
            assert!(self.parent[c].is_none(), "child {c} already has a parent");
            self.parent[c] = Some((node, Branch::ALL[slot]));
        }
        self.children[node] = Some(ch);
        self.attached_internals += 1;
        node
    }

    /// Current roots (the paper's node set `U`), in ascending id order.
    pub fn roots(&self) -> Vec<NodeId> {
        let created = self.n_leaves() + self.attached_internals;
        (0..created).filter(|&v| self.parent[v].is_none()).collect()
    }

    /// Z-descendant of a node under the current partial structure
    /// (walks the tree — the `O(N)` version; Algorithm 3's maps make this
    /// `O(1)` inside HATT).
    pub fn desc_z(&self, mut node: NodeId) -> NodeId {
        while let Some(ch) = self.children[node] {
            node = ch[Branch::Z.index()];
        }
        node
    }

    /// One step of the Z-descendant walk: the Z child of `node`, or `None`
    /// when `node` has no children yet.
    pub fn child_z(&self, node: NodeId) -> Option<NodeId> {
        self.children[node].map(|ch| ch[Branch::Z.index()])
    }

    /// The current parent of `node`, or `None` while it is a root.
    pub fn parent_of(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node].map(|(p, _)| p)
    }

    /// Walks up from a node to its current root (the paper's
    /// `traverse_up`).
    pub fn root_of(&self, mut node: NodeId) -> NodeId {
        while let Some((p, _)) = self.parent[node] {
            node = p;
        }
        node
    }

    /// Finalizes the tree.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `n_modes` internal nodes were attached (which
    /// guarantees a single root remains).
    pub fn finish(self) -> TernaryTree {
        assert_eq!(
            self.attached_internals, self.n_modes,
            "expected {} attach() calls, saw {}",
            self.n_modes, self.attached_internals
        );
        let roots = self.roots();
        assert_eq!(roots.len(), 1, "tree must have a single root");
        TernaryTree {
            n_modes: self.n_modes,
            children: self.children,
            parent: self.parent,
            root: roots[0],
        }
    }
}

/// Builds the *balanced* ternary tree of `n_modes` modes (paper baseline
/// `BTT`, paper ref. 20): internal nodes fill level by level in BFS order, so
/// string weights are `⌈log3(2N+1)⌉` on average.
pub fn balanced_tree(n_modes: usize) -> TernaryTree {
    assert!(n_modes > 0, "need at least one mode");
    let n = n_modes;
    // BFS array: positions 0..N are internal nodes (qubit = position),
    // positions N..3N+1 are leaves. Children of position p sit at
    // 3p+1, 3p+2, 3p+3.
    let bfs_node = |pos: usize| -> NodeId {
        if pos < n {
            2 * n + 1 + pos // internal node for qubit `pos`
        } else {
            pos - n // leaf
        }
    };
    let mut children_of_qubit: Vec<[NodeId; 3]> = Vec::with_capacity(n);
    for q in 0..n {
        children_of_qubit.push([
            bfs_node(3 * q + 1),
            bfs_node(3 * q + 2),
            bfs_node(3 * q + 3),
        ]);
    }
    build_with_qubit_children(n, &children_of_qubit)
}

/// Builds a tree from an explicit `qubit → [X, Y, Z] children` table,
/// attaching in dependency order while preserving qubit identities.
///
/// # Panics
///
/// Panics if the table does not describe a valid complete ternary tree.
pub fn build_with_qubit_children(n_modes: usize, children_of_qubit: &[[NodeId; 3]]) -> TernaryTree {
    assert_eq!(
        children_of_qubit.len(),
        n_modes,
        "one child triple per qubit"
    );
    let n_leaves = 2 * n_modes + 1;
    // Topological attach order: a qubit can attach once its internal
    // children are attached.
    let mut attached = vec![false; n_modes];
    let mut tree_children: Vec<Option<[NodeId; 3]>> = vec![None; 3 * n_modes + 1];
    let mut tree_parent: Vec<Option<(NodeId, Branch)>> = vec![None; 3 * n_modes + 1];
    let mut remaining = n_modes;
    while remaining > 0 {
        let mut progressed = false;
        for q in 0..n_modes {
            if attached[q] {
                continue;
            }
            let ch = children_of_qubit[q];
            let ready = ch.iter().all(|&c| c < n_leaves || attached[c - n_leaves]);
            if !ready {
                continue;
            }
            let node = n_leaves + q;
            for (slot, &c) in ch.iter().enumerate() {
                assert!(tree_parent[c].is_none(), "node {c} assigned two parents");
                tree_parent[c] = Some((node, Branch::ALL[slot]));
            }
            tree_children[node] = Some(ch);
            attached[q] = true;
            remaining -= 1;
            progressed = true;
        }
        assert!(progressed, "cyclic child table");
    }
    let roots: Vec<NodeId> = (0..3 * n_modes + 1)
        .filter(|&v| tree_parent[v].is_none())
        .collect();
    assert_eq!(roots.len(), 1, "tree must have a single root");
    TernaryTree {
        n_modes,
        children: tree_children,
        parent: tree_parent,
        root: roots[0],
    }
}

/// A fermion-to-qubit mapping backed by a ternary tree.
///
/// Two Majorana-assignment policies exist:
///
/// * [`TreeMapping::with_identity_assignment`] — leaf `O_k` is Majorana
///   `M_k` (`k < 2N`; leaf `O_2N` is discarded). This is the convention
///   fixed *before* construction in HATT (paper §IV-B): vacuum
///   preservation then depends on how the tree was built.
/// * [`TreeMapping::with_paired_assignment`] — Majorana indices are
///   assigned from the Z-descendant pairing, guaranteeing vacuum
///   preservation for *any* tree (used by the balanced-tree baseline).
#[derive(Debug, Clone, PartialEq)]
pub struct TreeMapping {
    name: String,
    tree: TernaryTree,
    strings: Vec<PauliString>,
    leaf_of_majorana: Vec<NodeId>,
}

impl TreeMapping {
    /// Identity assignment: `M_k ↔` leaf `O_k`.
    pub fn with_identity_assignment(name: impl Into<String>, tree: TernaryTree) -> Self {
        let leaf_of_majorana: Vec<NodeId> = (0..2 * tree.n_modes()).collect();
        Self::from_assignment(name, tree, leaf_of_majorana)
    }

    /// Vacuum-preserving assignment from the Z-descendant pairing: pair
    /// `j` (ordered by internal-node qubit) becomes `(M_2j, M_2j+1)`.
    pub fn with_paired_assignment(name: impl Into<String>, tree: TernaryTree) -> Self {
        let (pairs, _unpaired) = tree.pair_leaves();
        let mut leaf_of_majorana = Vec::with_capacity(2 * tree.n_modes());
        for (x, y) in pairs {
            leaf_of_majorana.push(x);
            leaf_of_majorana.push(y);
        }
        Self::from_assignment(name, tree, leaf_of_majorana)
    }

    /// Explicit assignment of Majorana index → leaf.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `2N` distinct leaves are given.
    pub fn from_assignment(
        name: impl Into<String>,
        tree: TernaryTree,
        leaf_of_majorana: Vec<NodeId>,
    ) -> Self {
        assert_eq!(
            leaf_of_majorana.len(),
            2 * tree.n_modes(),
            "need 2N Majorana leaves"
        );
        let strings = leaf_of_majorana
            .iter()
            .map(|&l| tree.string_for_leaf(l))
            .collect();
        TreeMapping {
            name: name.into(),
            tree,
            strings,
            leaf_of_majorana,
        }
    }

    /// The underlying tree.
    pub fn tree(&self) -> &TernaryTree {
        &self.tree
    }

    /// The leaf assigned to each Majorana index.
    pub fn leaf_of_majorana(&self) -> &[NodeId] {
        &self.leaf_of_majorana
    }

    /// Converts into a plain string-table mapping.
    pub fn to_table(&self) -> TableMapping {
        TableMapping::new(self.name.clone(), self.tree.n_modes(), self.strings.clone())
    }
}

impl FermionMapping for TreeMapping {
    fn n_modes(&self) -> usize {
        self.tree.n_modes()
    }

    fn majorana(&self, k: usize) -> &PauliString {
        &self.strings[k]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Builds the balanced-ternary-tree mapping (paper baseline `BTT`) with
/// the vacuum-preserving pair assignment.
///
/// # Examples
///
/// ```
/// use hatt_mappings::{balanced_ternary_tree, validate, FermionMapping};
///
/// let btt = balanced_ternary_tree(4);
/// let report = validate(&btt);
/// assert!(report.is_valid());
/// assert!(report.vacuum_preserving);
/// ```
pub fn balanced_ternary_tree(n_modes: usize) -> TreeMapping {
    TreeMapping::with_paired_assignment("BTT", balanced_tree(n_modes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    #[test]
    fn one_mode_tree_is_xyz() {
        let mut b = TernaryTreeBuilder::new(1);
        let root = b.attach([0, 1, 2]);
        assert_eq!(root, 3);
        let tree = b.finish();
        assert_eq!(tree.root(), 3);
        assert_eq!(tree.qubit_of(root), 0);
        let s: Vec<String> = tree.leaf_strings().iter().map(|s| s.to_string()).collect();
        assert_eq!(s, vec!["X", "Y", "Z"]);
    }

    #[test]
    fn paper_figure_4b_unbalanced_tree() {
        // 3 modes, the unbalanced tree of Fig. 4(b):
        //   q0 = root, children (leaf, q1, q2)… we reproduce a caterpillar:
        //   q2's children are leaves; q1's children include q2.
        // Build: I2 = (l0, l1, l2); I1 = (l3, l4, I2); I0(root) = (l5, l6, I1).
        let mut b = TernaryTreeBuilder::new(3);
        let i2 = b.attach([0, 1, 2]);
        let i1 = b.attach([3, 4, i2]);
        let _i0 = b.attach([5, 6, i1]);
        let tree = b.finish();
        // Leaf 0 path: root -Z-> q1 -Z-> q0(first attached) ... check string:
        // leaf0 is X child of i2 (qubit 0); i2 is Z child of i1 (qubit 1);
        // i1 is Z child of i0 (qubit 2). String = Z2 Z1 X0 = "ZZX".
        assert_eq!(tree.string_for_leaf(0).to_string(), "ZZX");
        assert_eq!(tree.string_for_leaf(5).to_string(), "XII");
        assert_eq!(tree.desc_z(tree.root()), 2);
        assert_eq!(tree.depth(0), 3);
        assert!(tree.mean_leaf_depth() > 1.0);
    }

    #[test]
    fn builder_rejects_reuse_and_duplicates() {
        let mut b = TernaryTreeBuilder::new(2);
        b.attach([0, 1, 2]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut b2 = b.clone();
            b2.attach([0, 3, 4]) // leaf 0 already has a parent
        }));
        assert!(result.is_err());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut b2 = b.clone();
            b2.attach([3, 3, 4]) // duplicate child
        }));
        assert!(result.is_err());
    }

    #[test]
    fn roots_shrink_by_two_per_attach() {
        let mut b = TernaryTreeBuilder::new(3);
        assert_eq!(b.roots().len(), 7);
        b.attach([0, 1, 2]);
        assert_eq!(b.roots().len(), 5);
        b.attach([3, 4, 7]);
        assert_eq!(b.roots().len(), 3);
        b.attach([5, 6, 8]);
        assert_eq!(b.roots().len(), 1);
    }

    #[test]
    fn desc_z_and_root_of_walk_correctly() {
        let mut b = TernaryTreeBuilder::new(2);
        let i0 = b.attach([0, 1, 2]);
        assert_eq!(b.desc_z(i0), 2);
        assert_eq!(b.root_of(1), i0);
        let i1 = b.attach([3, i0, 4]);
        assert_eq!(b.desc_z(i1), 4);
        assert_eq!(b.root_of(2), i1);
    }

    #[test]
    fn balanced_tree_structure() {
        for n in 1..=9 {
            let tree = balanced_tree(n);
            assert_eq!(tree.n_leaves(), 2 * n + 1);
            // Root is qubit 0 in BFS numbering.
            assert_eq!(tree.qubit_of(tree.root()), 0);
            // Depth is logarithmic.
            let max_depth = (0..tree.n_leaves()).map(|l| tree.depth(l)).max().unwrap();
            let bound = ((2 * n + 1) as f64).log(3.0).ceil() as usize + 1;
            assert!(max_depth <= bound, "depth {max_depth} > {bound} for n={n}");
        }
    }

    #[test]
    fn balanced_mapping_is_valid_and_vacuum_preserving() {
        for n in 1..=10 {
            let btt = balanced_ternary_tree(n);
            let report = validate(&btt);
            assert!(report.is_valid(), "BTT({n}) invalid: {report:?}");
            assert!(report.vacuum_preserving, "BTT({n}) breaks vacuum");
        }
    }

    #[test]
    fn identity_assignment_uses_leaf_order() {
        let mut b = TernaryTreeBuilder::new(1);
        b.attach([0, 1, 2]);
        let m = TreeMapping::with_identity_assignment("T", b.finish());
        assert_eq!(m.majorana(0).to_string(), "X");
        assert_eq!(m.majorana(1).to_string(), "Y");
        assert_eq!(m.leaf_of_majorana(), &[0, 1]);
        let report = validate(&m);
        assert!(report.is_valid());
        assert!(report.vacuum_preserving); // (X, Y) pair on qubit 0
    }

    #[test]
    fn pairing_covers_all_but_desc_z_of_root() {
        let tree = balanced_tree(4);
        let (pairs, unpaired) = tree.pair_leaves();
        assert_eq!(pairs.len(), 4);
        assert_eq!(unpaired, tree.desc_z(tree.root()));
        let mut seen: Vec<NodeId> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        seen.push(unpaired);
        seen.sort_unstable();
        assert_eq!(seen, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn tree_mapping_to_table_roundtrip() {
        let btt = balanced_ternary_tree(3);
        let table = btt.to_table();
        for k in 0..6 {
            assert_eq!(table.majorana(k), btt.majorana(k));
        }
    }

    #[test]
    fn render_shows_structure() {
        let mut b = TernaryTreeBuilder::new(1);
        b.attach([0, 1, 2]);
        let tree = b.finish();
        let art = tree.render();
        assert!(art.contains("q0"));
        assert!(art.contains("├─X─ L0"));
        assert!(art.contains("├─Y─ L1"));
        assert!(art.contains("└─Z─ L2"));
        // Nested case: balanced 2-mode tree renders all 5 leaves.
        let art = balanced_tree(2).render();
        assert_eq!(art.matches('L').count(), 5);
        assert_eq!(art.matches('q').count(), 2);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn self_referential_child_table_rejected() {
        // Qubit 1's node id is 6; listing it among its own children can
        // never become ready.
        build_with_qubit_children(2, &[[0, 1, 2], [3, 4, 6]]);
    }

    #[test]
    #[should_panic(expected = "two parents")]
    fn doubly_parented_child_rejected() {
        build_with_qubit_children(2, &[[0, 1, 2], [0, 3, 4]]);
    }
}
