//! The Fenwick (binary indexed) tree underlying the Bravyi-Kitaev
//! transformation, built for arbitrary (non-power-of-two) sizes via the
//! classic recursive bisection:
//!
//! ```text
//!     FENWICK(L, R):  if L ≠ R:  parent[mid] = R;  FENWICK(L, mid);
//!                                FENWICK(mid+1, R)     (mid = ⌊(L+R)/2⌋)
//! ```
//!
//! Node `mid` *covers* the index interval `[L, mid]`; the root `n-1`
//! covers `[0, n-1]`. The Bravyi-Kitaev update/flip/parity/remainder sets
//! are read off the parent pointers and coverage intervals.

/// A Fenwick tree over `n` indices with parent pointers and coverage
/// intervals.
///
/// # Examples
///
/// ```
/// use hatt_mappings::FenwickTree;
///
/// let t = FenwickTree::new(4);
/// assert_eq!(t.update_set(0), vec![1, 3]);
/// assert_eq!(t.parity_set(2), vec![1]);
/// assert_eq!(t.flip_set(3), vec![1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FenwickTree {
    n: usize,
    parent: Vec<Option<usize>>,
    /// Leftmost index covered by each node (`cover[v]..=v`).
    cover_lo: Vec<usize>,
    children: Vec<Vec<usize>>,
}

impl FenwickTree {
    /// Builds the tree over `n` indices.
    ///
    /// # Panics
    ///
    /// Panics when `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Fenwick tree needs at least one index");
        let mut t = FenwickTree {
            n,
            parent: vec![None; n],
            cover_lo: (0..n).collect(),
            children: vec![Vec::new(); n],
        };
        t.cover_lo[n - 1] = 0;
        t.build(0, n - 1);
        for v in 0..n {
            if let Some(p) = t.parent[v] {
                t.children[p].push(v);
            }
        }
        for c in &mut t.children {
            c.sort_unstable();
        }
        t
    }

    fn build(&mut self, l: usize, r: usize) {
        if l == r {
            return;
        }
        let mid = (l + r) / 2;
        self.parent[mid] = Some(r);
        self.cover_lo[mid] = l;
        self.build(l, mid);
        self.build(mid + 1, r);
    }

    /// Number of indices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always `false`; the tree has at least one index.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The parent of `j`, if any (the root `n-1` has none).
    pub fn parent(&self, j: usize) -> Option<usize> {
        self.parent[j]
    }

    /// **Update set** `U(j)`: all strict ancestors of `j` — the qubits
    /// whose stored partial sums include occupation `j`.
    pub fn update_set(&self, j: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut v = j;
        while let Some(p) = self.parent[v] {
            out.push(p);
            v = p;
        }
        out.sort_unstable();
        out
    }

    /// **Flip set** `F(j)`: the children of `j` — qubits that determine
    /// whether qubit `j`'s stored parity is flipped relative to mode `j`.
    pub fn flip_set(&self, j: usize) -> Vec<usize> {
        self.children[j].clone()
    }

    /// **Parity set** `P(j)`: a minimal set of qubits whose stored sums
    /// add up to the occupation parity of modes `0..j` (the Fenwick
    /// prefix-sum query).
    pub fn parity_set(&self, j: usize) -> Vec<usize> {
        let mut out = Vec::new();
        if j == 0 {
            return out;
        }
        let mut t = j as isize - 1;
        while t >= 0 {
            let v = t as usize;
            out.push(v);
            t = self.cover_lo[v] as isize - 1;
        }
        out.sort_unstable();
        out
    }

    /// **Remainder set** `R(j) = P(j) \ F(j)`.
    pub fn remainder_set(&self, j: usize) -> Vec<usize> {
        let flips = self.flip_set(j);
        self.parity_set(j)
            .into_iter()
            .filter(|v| !flips.contains(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_structure_matches_classic_bit() {
        // n = 8: classic BIT parent chain (0-based): cover(j) = [j-lowbit(j)+1, j]
        let t = FenwickTree::new(8);
        assert_eq!(t.update_set(0), vec![1, 3, 7]);
        assert_eq!(t.update_set(2), vec![3, 7]);
        assert_eq!(t.update_set(4), vec![5, 7]);
        assert_eq!(t.update_set(7), vec![]);
        assert_eq!(t.flip_set(7), vec![3, 5, 6]);
        assert_eq!(t.flip_set(3), vec![1, 2]);
        assert_eq!(t.parity_set(4), vec![3]);
        assert_eq!(t.parity_set(5), vec![3, 4]);
        assert_eq!(t.parity_set(7), vec![3, 5, 6]);
        assert_eq!(t.remainder_set(7), vec![]);
        // P(5) = {3, 4}, F(5) = {4} ⇒ R(5) = {3}.
        assert_eq!(t.remainder_set(5), vec![3]);
    }

    #[test]
    fn parity_sets_cover_prefixes_exactly() {
        // The coverage intervals of P(j) must tile [0, j-1] exactly.
        for n in 1..=17 {
            let t = FenwickTree::new(n);
            for j in 0..n {
                let mut covered: Vec<usize> = Vec::new();
                for v in t.parity_set(j) {
                    covered.extend(t.cover_lo[v]..=v);
                }
                covered.sort_unstable();
                let expected: Vec<usize> = (0..j).collect();
                assert_eq!(covered, expected, "P({j}) wrong for n={n}");
            }
        }
    }

    #[test]
    fn update_sets_are_ancestor_chains() {
        let t = FenwickTree::new(7);
        for j in 0..7 {
            let u = t.update_set(j);
            // Each element's coverage contains j.
            for &v in &u {
                assert!(
                    t.cover_lo[v] <= j && j <= v,
                    "U({j}) element {v} must cover j"
                );
            }
        }
    }

    #[test]
    fn root_has_no_parent() {
        for n in [1, 2, 5, 9, 16] {
            let t = FenwickTree::new(n);
            assert_eq!(t.parent(n - 1), None);
            assert!(t.update_set(n - 1).is_empty());
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_size_rejected() {
        FenwickTree::new(0);
    }
}
