//! Triple-selection policies and scoring for the HATT greedy
//! construction.
//!
//! The paper's Algorithm 1 line "pick the triple minimizing the settled
//! weight" leaves two degrees of freedom that turn out to dominate tree
//! quality on larger Hamiltonians (cf. the Bonsai observation that
//! tie-breaking and leaf-assignment order decide ternary-tree quality):
//! *which* of the many tied minimum-weight triples wins, and whether the
//! objective may account for the future at all. On the dense Table I
//! molecules the literal per-step objective is a greedy trap — it loses
//! to plain Jordan-Wigner — so this module makes the objective explicit
//! and configurable.
//!
//! ## The amortized objective
//!
//! Let `n_k` be the number of Hamiltonian terms containing exactly `k`
//! of a candidate triple's symbols ([`TripleCounts`]). The paper's
//! objective is the settled weight `w = n₁ + n₂`. Define the potential
//! `Φ = ½ Σ_t |inc(t)|` (half the total symbol mass still to be merged
//! away; every costed step removes at most two symbols from a term, so
//! `Φ` lower-bounds the remaining cost). One reduce changes it by
//! `ΔΦ = ½(residual − S) = −(n₂ + n₃)`, giving the amortized step cost
//!
//! ```text
//!     w + λ·ΔΦ = (n₁ + n₂) − λ·(n₂ + n₃)
//! ```
//!
//! [`Blend`] fixes `λ` (as the rational `num/den`); `λ = 0` recovers the
//! paper's myopic objective, `λ = 1` charges each step its weight minus
//! the progress it makes. Empirically `λ = 1` matches or beats the
//! myopic objective almost everywhere, and different Hamiltonian
//! families prefer slightly different `λ` — which is what the
//! [`SelectionPolicy::Restarts`] portfolio exploits.
//!
//! # Examples
//!
//! ```
//! use hatt_mappings::SelectionPolicy;
//!
//! let default = SelectionPolicy::default();
//! assert_eq!(default, SelectionPolicy::Greedy);
//! // Policies parse from the compact CLI/env syntax used by the bench
//! // binaries (`HATT_POLICY=beam:8 cargo run --bin table1`).
//! assert_eq!(
//!     "lookahead:12".parse::<SelectionPolicy>().unwrap(),
//!     SelectionPolicy::Lookahead { width: 12 },
//! );
//! assert_eq!(SelectionPolicy::Beam { width: 8 }.to_string(), "beam:8");
//! ```

use std::fmt;
use std::str::FromStr;

/// How the HATT construction chooses among candidate triples.
///
/// See the [module docs](self) for the scoring rationale. The `Default`
/// policy is [`SelectionPolicy::Greedy`]; [`SelectionPolicy::quality`]
/// names the configuration the benchmark tables use when quality matters
/// more than construction time. Every policy is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SelectionPolicy {
    /// One greedy pass under the amortized objective (`λ = 1`), ties
    /// broken by residual then node index. The default; keeps the O(1)
    /// memoized kernel on the hot path.
    #[default]
    Greedy,
    /// One greedy pass under the paper's literal myopic objective
    /// (`λ = 0`, first-best tie-breaking by residual then node index).
    /// Kept as the reference/ablation point.
    Vanilla,
    /// Greedy shortlist of at most `width` candidates, re-ranked by a
    /// 1-step lookahead (candidate amortized key + best next-step key).
    Lookahead {
        /// Maximum number of shortlisted candidates to simulate.
        width: usize,
    },
    /// Beam search keeping the `width` best merge-sequence prefixes,
    /// ranked by accumulated amortized score. `Beam { width: 1 }`
    /// coincides with `Greedy`.
    Beam {
        /// Number of partial constructions kept per step.
        width: usize,
    },
    /// Bounded multi-restart portfolio: greedy passes at
    /// `λ ∈ {½, 1, 2}`, a `Beam { width: 8 }` pass, and a
    /// Jordan-Wigner-structured merge sequence, returning the best final
    /// tree. This is the quality configuration used by the evaluation
    /// tables — the JW restart guarantees HATT never loses to
    /// Jordan-Wigner.
    Restarts,
}

impl SelectionPolicy {
    /// The quality-first configuration used by the evaluation tables
    /// (Tables I–III): the restart portfolio.
    pub fn quality() -> Self {
        SelectionPolicy::Restarts
    }

    /// The fixed, ordered member list of the [`SelectionPolicy::Restarts`]
    /// portfolio: the λ-ladder greedy passes, one `beam:8` pass, and the
    /// Jordan-Wigner caterpillar replay.
    ///
    /// **The order is part of the portfolio's contract.** The winner rule
    /// is *best final settled weight, earliest member on ties*, so the
    /// result is a pure function of this array — which is what lets the
    /// construction engine run the members on separate threads (they are
    /// fully independent) and still produce output bit-identical to the
    /// sequential loop: workers fill a slot per member and the reduction
    /// walks the slots in this order.
    ///
    /// # Examples
    ///
    /// ```
    /// use hatt_mappings::{Blend, PortfolioMember, SelectionPolicy};
    ///
    /// let members = SelectionPolicy::restarts_members();
    /// assert_eq!(members.len(), 5);
    /// assert_eq!(members[0], PortfolioMember::Greedy(Blend::HALF));
    /// assert_eq!(members[4], PortfolioMember::JwCaterpillar);
    /// ```
    pub fn restarts_members() -> [PortfolioMember; 5] {
        [
            PortfolioMember::Greedy(Blend::HALF),
            PortfolioMember::Greedy(Blend::UNIT),
            PortfolioMember::Greedy(Blend::DOUBLE),
            PortfolioMember::Beam { width: 8 },
            PortfolioMember::JwCaterpillar,
        ]
    }

    /// Short display label for tables and perf artifacts.
    pub fn label(self) -> String {
        self.to_string()
    }

    /// The blend a single-pass run of this policy scores with
    /// ([`Blend::PAPER`] for `Vanilla`, [`Blend::UNIT`] otherwise; the
    /// `Restarts` portfolio iterates over several blends itself).
    pub fn blend(self) -> Blend {
        match self {
            SelectionPolicy::Vanilla => Blend::PAPER,
            _ => Blend::UNIT,
        }
    }
}

impl fmt::Display for SelectionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionPolicy::Greedy => write!(f, "greedy"),
            SelectionPolicy::Vanilla => write!(f, "vanilla"),
            SelectionPolicy::Lookahead { width } => write!(f, "lookahead:{width}"),
            SelectionPolicy::Beam { width } => write!(f, "beam:{width}"),
            SelectionPolicy::Restarts => write!(f, "restarts"),
        }
    }
}

/// One member of the [`SelectionPolicy::Restarts`] portfolio — a whole
/// independent construction, suitable for running on its own thread (see
/// [`SelectionPolicy::restarts_members`] for the order contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortfolioMember {
    /// One greedy pass under the given amortized blend.
    Greedy(Blend),
    /// One beam-search pass at `λ = 1`.
    Beam {
        /// Number of partial constructions kept per step.
        width: usize,
    },
    /// Replay of the Jordan-Wigner caterpillar merge sequence (the
    /// member that guarantees HATT never loses to Jordan-Wigner).
    JwCaterpillar,
}

impl fmt::Display for PortfolioMember {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortfolioMember::Greedy(Blend { num, den: 1 }) => write!(f, "greedy(λ={num})"),
            PortfolioMember::Greedy(Blend { num, den }) => write!(f, "greedy(λ={num}/{den})"),
            PortfolioMember::Beam { width } => write!(f, "beam:{width}"),
            PortfolioMember::JwCaterpillar => write!(f, "jw-caterpillar"),
        }
    }
}

/// Error from parsing a [`SelectionPolicy`] string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid selection policy {:?} (expected greedy | vanilla | restarts | lookahead:<width> | beam:<width>)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for SelectionPolicy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParsePolicyError(s.to_string());
        match s.split_once(':') {
            None => match s {
                "greedy" => Ok(SelectionPolicy::Greedy),
                "vanilla" => Ok(SelectionPolicy::Vanilla),
                "restarts" => Ok(SelectionPolicy::Restarts),
                _ => Err(err()),
            },
            Some((kind, width)) => {
                let width: usize = width.parse().map_err(|_| err())?;
                if width == 0 {
                    return Err(err());
                }
                match kind {
                    "lookahead" => Ok(SelectionPolicy::Lookahead { width }),
                    "beam" => Ok(SelectionPolicy::Beam { width }),
                    _ => Err(err()),
                }
            }
        }
    }
}

/// The `λ = num/den` of the amortized objective (module docs). `λ = 0`
/// is the paper's myopic objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Blend {
    /// Numerator of `λ`.
    pub num: i64,
    /// Denominator of `λ` (> 0).
    pub den: i64,
}

impl Blend {
    /// The paper's literal objective, `λ = 0`.
    pub const PAPER: Blend = Blend { num: 0, den: 1 };
    /// `λ = ½`.
    pub const HALF: Blend = Blend { num: 1, den: 2 };
    /// `λ = 1` — the default amortized objective.
    pub const UNIT: Blend = Blend { num: 1, den: 1 };
    /// `λ = 2`.
    pub const DOUBLE: Blend = Blend { num: 2, den: 1 };
}

impl Default for Blend {
    fn default() -> Self {
        Blend::UNIT
    }
}

/// Per-candidate term-membership counts: `n_k` terms contain exactly
/// `k ∈ {1, 2, 3}` of the triple's symbols.
///
/// # Examples
///
/// ```
/// use hatt_mappings::{Blend, TripleCounts};
///
/// let c = TripleCounts { n1: 2, n2: 1, n3: 1 };
/// assert_eq!(c.weight(), 3);     // n1 + n2
/// assert_eq!(c.residual(), 3);   // n1 + n3
/// // Amortized key at λ = 1: w − (n2 + n3) = 1 (scaled by den = 1).
/// assert_eq!(c.score(Blend::UNIT).key, 1);
/// // λ = 0 reduces to the plain weight.
/// assert_eq!(c.score(Blend::PAPER).key, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TripleCounts {
    /// Terms containing exactly one symbol (cost 1 now, symbol survives).
    pub n1: usize,
    /// Terms containing exactly two (cost 1 now, symbols cancelled).
    pub n2: usize,
    /// Terms containing all three (free; net symbol removal).
    pub n3: usize,
}

impl TripleCounts {
    /// The paper's objective: Pauli weight settled on the new qubit.
    #[inline]
    pub fn weight(&self) -> usize {
        self.n1 + self.n2
    }

    /// Terms keeping the parent symbol after the reduce
    /// (`|A ⊕ B ⊕ C|`) — the future burden.
    #[inline]
    pub fn residual(&self) -> usize {
        self.n1 + self.n3
    }

    /// The full selection score under `blend` (see [`TripleScore`]).
    #[inline]
    pub fn score(&self, blend: Blend) -> TripleScore {
        TripleScore {
            key: blend.den * self.weight() as i64 - blend.num * (self.n2 + self.n3) as i64,
            weight: self.weight(),
            residual: self.residual(),
        }
    }
}

/// The selection score of one candidate triple: candidates are compared
/// by `(key, residual)` lexicographically — `<` means strictly better —
/// with the enumeration (node-index) order as the final implicit
/// tie-break in the selection loops. `weight` rides along for
/// instrumentation and is *not* part of the ordering (two candidates
/// with equal `(key, residual)` but different weight compare equal).
///
/// # Examples
///
/// ```
/// use hatt_mappings::TripleScore;
///
/// let a = TripleScore { key: 2, weight: 2, residual: 1 };
/// let b = TripleScore { key: 2, weight: 2, residual: 3 };
/// assert!(a < b, "equal key → smaller residual wins");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TripleScore {
    /// Amortized objective value `den·w − num·(n₂ + n₃)` (primary).
    pub key: i64,
    /// The settled weight `n₁ + n₂` (reporting only; not ordered).
    pub weight: usize,
    /// The post-reduce residual `n₁ + n₃` (secondary).
    pub residual: usize,
}

impl TripleScore {
    /// The worst possible score — the identity of `min`.
    pub const MAX: TripleScore = TripleScore {
        key: i64::MAX,
        weight: usize::MAX,
        residual: usize::MAX,
    };
}

impl PartialOrd for TripleScore {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TripleScore {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.residual).cmp(&(other.key, other.residual))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        for p in [
            SelectionPolicy::Greedy,
            SelectionPolicy::Vanilla,
            SelectionPolicy::Restarts,
            SelectionPolicy::Lookahead { width: 4 },
            SelectionPolicy::Beam { width: 16 },
        ] {
            assert_eq!(p.to_string().parse::<SelectionPolicy>().unwrap(), p);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "beam", "beam:0", "beam:x", "anneal:3", "greedy:2"] {
            assert!(s.parse::<SelectionPolicy>().is_err(), "{s:?} should fail");
        }
    }

    #[test]
    fn score_orders_by_key_then_residual() {
        let better = TripleScore {
            key: 1,
            weight: 5,
            residual: 9,
        };
        let worse = TripleScore {
            key: 2,
            weight: 2,
            residual: 0,
        };
        assert!(better < worse, "key dominates residual");
        assert!(TripleScore::MAX > worse);
        let tie_a = TripleScore {
            key: 2,
            weight: 2,
            residual: 1,
        };
        assert!(worse < tie_a, "equal key → smaller residual wins");
        // `weight` is reporting-only: equal (key, residual) compare equal.
        let same = TripleScore {
            key: 2,
            weight: 7,
            residual: 0,
        };
        assert_eq!(worse.cmp(&same), std::cmp::Ordering::Equal);
    }

    #[test]
    fn counts_derive_weight_residual_and_keys() {
        let c = TripleCounts {
            n1: 3,
            n2: 2,
            n3: 1,
        };
        assert_eq!(c.weight(), 5);
        assert_eq!(c.residual(), 4);
        assert_eq!(c.score(Blend::PAPER).key, 5);
        assert_eq!(c.score(Blend::UNIT).key, 2);
        assert_eq!(c.score(Blend::HALF).key, 7); // 2·5 − 3
        assert_eq!(c.score(Blend::DOUBLE).key, -1);
        assert_eq!(c.score(Blend::UNIT).weight, 5);
    }

    #[test]
    fn quality_policy_is_the_portfolio() {
        assert_eq!(SelectionPolicy::quality(), SelectionPolicy::Restarts);
    }

    #[test]
    fn portfolio_members_are_fixed_and_ordered() {
        // The member list and its order are golden-pinned: the winner
        // rule ties-breaks by member index, so any change here changes
        // table results (see tests/golden.rs).
        let members = SelectionPolicy::restarts_members();
        assert_eq!(
            members,
            [
                PortfolioMember::Greedy(Blend::HALF),
                PortfolioMember::Greedy(Blend::UNIT),
                PortfolioMember::Greedy(Blend::DOUBLE),
                PortfolioMember::Beam { width: 8 },
                PortfolioMember::JwCaterpillar,
            ]
        );
        let labels: Vec<String> = members.iter().map(|m| m.to_string()).collect();
        assert_eq!(
            labels,
            [
                "greedy(λ=1/2)",
                "greedy(λ=1)",
                "greedy(λ=2)",
                "beam:8",
                "jw-caterpillar"
            ]
        );
    }
}
