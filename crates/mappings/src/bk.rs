//! The Bravyi-Kitaev transformation (paper baseline `BK`, ref [5]),
//! realized through the Fenwick tree of [`crate::FenwickTree`].
//!
//! With update set `U(j)`, parity set `P(j)`, flip set `F(j)` and
//! remainder set `R(j) = P(j) \ F(j)`, the Majorana operators are
//!
//! ```text
//!     M_2j   = X_{U(j)} · X_j · Z_{P(j)}
//!     M_2j+1 = X_{U(j)} · Y_j · Z_{R(j)}
//! ```
//!
//! giving `O(log N)` weight per operator.

use hatt_pauli::{Pauli, PauliString};

use crate::fenwick::FenwickTree;
use crate::mapping::TableMapping;

/// Builds the Bravyi-Kitaev mapping on `n_modes` modes.
///
/// # Examples
///
/// ```
/// use hatt_mappings::{bravyi_kitaev, FermionMapping};
///
/// let bk = bravyi_kitaev(4);
/// // Weights are logarithmic rather than linear.
/// assert!(bk.majorana(7).weight() <= 3);
/// ```
///
/// # Panics
///
/// Panics when `n_modes` is zero.
pub fn bravyi_kitaev(n_modes: usize) -> TableMapping {
    assert!(n_modes > 0, "need at least one mode");
    let tree = FenwickTree::new(n_modes);
    let mut strings = Vec::with_capacity(2 * n_modes);
    for j in 0..n_modes {
        let update = tree.update_set(j);
        // M_2j
        let mut even = PauliString::single(n_modes, j, Pauli::X);
        for &u in &update {
            even.mul_op(u, Pauli::X);
        }
        for p in tree.parity_set(j) {
            even.mul_op(p, Pauli::Z);
        }
        strings.push(even);
        // M_2j+1
        let mut odd = PauliString::single(n_modes, j, Pauli::Y);
        for &u in &update {
            odd.mul_op(u, Pauli::X);
        }
        for r in tree.remainder_set(j) {
            odd.mul_op(r, Pauli::Z);
        }
        strings.push(odd);
    }
    TableMapping::new("BK", n_modes, strings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::FermionMapping;
    use crate::validate::validate;

    #[test]
    fn two_modes_explicit_strings() {
        // U(0)={1}, P(0)={}, U(1)={}, P(1)={0}, F(1)={0}, R(1)={}.
        let bk = bravyi_kitaev(2);
        assert_eq!(bk.majorana(0).to_string(), "XX");
        assert_eq!(bk.majorana(1).to_string(), "XY");
        assert_eq!(bk.majorana(2).to_string(), "XZ");
        assert_eq!(bk.majorana(3).to_string(), "YI");
    }

    #[test]
    fn is_valid_and_vacuum_preserving_up_to_12_modes() {
        for n in 1..=12 {
            let report = validate(&bravyi_kitaev(n));
            assert!(report.is_valid(), "BK({n}) invalid: {report:?}");
            assert!(report.vacuum_preserving, "BK({n}) breaks vacuum");
        }
    }

    #[test]
    fn single_mode_matches_jw() {
        use crate::jw::jordan_wigner;
        let bk = bravyi_kitaev(1);
        let jw = jordan_wigner(1);
        assert_eq!(bk.majorana(0), jw.majorana(0));
        assert_eq!(bk.majorana(1), jw.majorana(1));
    }

    #[test]
    fn weights_are_logarithmic() {
        let n = 16;
        let bk = bravyi_kitaev(n);
        let max_w = (0..2 * n).map(|k| bk.majorana(k).weight()).max().unwrap();
        // U, P sets have size ≤ log2(n) each, plus the diagonal qubit.
        assert!(
            max_w <= 2 * (n as f64).log2().ceil() as usize + 1,
            "BK weight {max_w} too large for n={n}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one mode")]
    fn zero_modes_rejected() {
        bravyi_kitaev(0);
    }
}
