//! The [`FermionMapping`] trait: everything a fermion-to-qubit mapping must
//! provide, plus the application of a mapping to Majorana / fermionic
//! Hamiltonians.
//!
//! # Examples
//!
//! Applying a mapping turns a Majorana Hamiltonian into a qubit
//! Hamiltonian whose Pauli weight is the paper's cost metric:
//!
//! ```
//! use hatt_fermion::MajoranaSum;
//! use hatt_mappings::{jordan_wigner, FermionMapping};
//! use hatt_pauli::Complex64;
//!
//! let mut h = MajoranaSum::new(2);
//! h.add(Complex64::new(0.0, 1.0), &[0, 1]); // i·M0M1 = -Z_0
//! let hq = jordan_wigner(2).map_majorana_sum(&h);
//! assert_eq!(hq.weight(), 1);
//! ```

use hatt_fermion::{FermionOperator, MajoranaSum};
use hatt_pauli::{PauliString, PauliSum};

/// A fermion-to-qubit mapping for an `N`-mode system: an assignment of a
/// Pauli string `S_k` to each of the `2N` Majorana operators `M_k`
/// (paper §II-C).
///
/// Implementations must return Hermitian, mutually anticommuting strings on
/// `n_qubits()` qubits; [`crate::validate()`] can verify both properties.
pub trait FermionMapping: std::fmt::Debug {
    /// Number of fermionic modes `N`.
    fn n_modes(&self) -> usize;

    /// The Pauli string assigned to Majorana operator `M_k`, `k ∈ 0..2N`.
    fn majorana(&self, k: usize) -> &PauliString;

    /// Human-readable mapping name (used in benchmark tables).
    fn name(&self) -> &str;

    /// Number of qubits of the image system (equal to `N` for every
    /// mapping in this workspace).
    fn n_qubits(&self) -> usize {
        self.n_modes()
    }

    /// Maps a preprocessed Majorana Hamiltonian to the qubit Hamiltonian
    /// `H_Q` by substituting `M_k → S_k` and multiplying strings out with
    /// exact phases.
    ///
    /// # Panics
    ///
    /// Panics if the Hamiltonian's mode count differs from the mapping's.
    fn map_majorana_sum(&self, h: &MajoranaSum) -> PauliSum {
        assert_eq!(
            h.n_modes(),
            self.n_modes(),
            "Hamiltonian acts on {} modes but mapping covers {}",
            h.n_modes(),
            self.n_modes()
        );
        let mut sum = PauliSum::new(self.n_qubits());
        for (indices, coeff) in h.iter() {
            let mut prod = PauliString::identity(self.n_qubits());
            for &k in indices {
                prod.mul_assign_right(self.majorana(k as usize));
            }
            sum.add(coeff, prod);
        }
        sum.prune(hatt_pauli::COEFF_EPS);
        sum
    }

    /// Maps a second-quantized operator (preprocesses to Majorana form,
    /// then applies the mapping).
    fn map_fermion(&self, h: &FermionOperator) -> PauliSum {
        self.map_majorana_sum(&MajoranaSum::from_fermion(h))
    }
}

/// A mapping stored as an explicit table of `2N` Majorana strings — the
/// concrete type produced by the constructive baselines (Jordan-Wigner,
/// Bravyi-Kitaev, parity).
///
/// # Examples
///
/// ```
/// use hatt_mappings::{jordan_wigner, FermionMapping};
///
/// let jw = jordan_wigner(3);
/// assert_eq!(jw.n_modes(), 3);
/// assert_eq!(jw.majorana(0).to_string(), "IIX");
/// assert_eq!(jw.majorana(5).to_string(), "YZZ");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TableMapping {
    name: String,
    n_modes: usize,
    strings: Vec<PauliString>,
}

impl TableMapping {
    /// Creates a mapping from an explicit string table.
    ///
    /// # Panics
    ///
    /// Panics unless exactly `2·n_modes` strings on `n_modes` qubits are
    /// supplied.
    pub fn new(name: impl Into<String>, n_modes: usize, strings: Vec<PauliString>) -> Self {
        assert_eq!(
            strings.len(),
            2 * n_modes,
            "a mapping for {n_modes} modes needs {} strings",
            2 * n_modes
        );
        for s in &strings {
            assert_eq!(
                s.n_qubits(),
                n_modes,
                "every Majorana string must act on {n_modes} qubits"
            );
        }
        TableMapping {
            name: name.into(),
            n_modes,
            strings,
        }
    }

    /// All `2N` Majorana strings in index order.
    pub fn strings(&self) -> &[PauliString] {
        &self.strings
    }
}

impl FermionMapping for TableMapping {
    fn n_modes(&self) -> usize {
        self.n_modes
    }

    fn majorana(&self, k: usize) -> &PauliString {
        &self.strings[k]
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_pauli::{Complex64, Pauli};

    fn toy_mapping() -> TableMapping {
        // 1 mode: M0 = X, M1 = Y.
        TableMapping::new(
            "toy",
            1,
            vec![
                PauliString::single(1, 0, Pauli::X),
                PauliString::single(1, 0, Pauli::Y),
            ],
        )
    }

    #[test]
    fn table_mapping_accessors() {
        let m = toy_mapping();
        assert_eq!(m.name(), "toy");
        assert_eq!(m.n_modes(), 1);
        assert_eq!(m.n_qubits(), 1);
        assert_eq!(m.strings().len(), 2);
    }

    #[test]
    #[should_panic(expected = "needs 4 strings")]
    fn wrong_string_count_rejected() {
        TableMapping::new("bad", 2, vec![PauliString::identity(2)]);
    }

    #[test]
    fn number_operator_maps_to_z() {
        // n_0 = a†0 a0 = 1/2 + (i/2)M0M1 ↦ 1/2 (II) + (i/2)(XY) = 1/2 − 1/2·Z.
        let m = toy_mapping();
        let mut h = FermionOperator::new(1);
        h.add_number(Complex64::ONE, 0);
        let q = m.map_fermion(&h);
        assert!(q
            .coefficient_of(&PauliString::identity(1))
            .approx_eq(Complex64::real(0.5), 1e-12));
        assert!(q
            .coefficient_of(&PauliString::single(1, 0, Pauli::Z))
            .approx_eq(Complex64::real(-0.5), 1e-12));
        assert_eq!(q.n_terms(), 2);
        assert!(q.is_hermitian(1e-12));
    }

    #[test]
    #[should_panic(expected = "modes")]
    fn mode_mismatch_rejected() {
        let m = toy_mapping();
        let h = MajoranaSum::new(2);
        let _ = m.map_majorana_sum(&h);
    }
}
