//! The term-incidence engine: the weight-evaluation kernel behind the
//! HATT construction and the exhaustive/annealing tree searches.
//!
//! The paper's Algorithm 1 keeps, for every Hamiltonian term, the multiset
//! of node symbols it currently contains (`S_a S_b …`), and evaluates the
//! Pauli weight a candidate parent triple settles on one qubit. Because a
//! symbol appearing twice cancels (`S² ∝ I`), a term is fully described by
//! the *set* of symbols with odd multiplicity. This engine stores the
//! transpose — for each tree node a bitset over terms in which its symbol
//! appears — so that the weight of a candidate triple `(a, b, c)` on a
//! qubit is three popcounts:
//!
//! * a term gets letter `I` when it contains none of `a, b, c` — or all
//!   three (`X·Y·Z = i·I`, the cancellation the paper exploits);
//! * otherwise exactly 1 or 2 appear, the per-qubit letter is
//!   non-identity, and the term contributes weight 1.
//!
//! ```text
//!     weight(a,b,c) = T − popcount(¬A ∧ ¬B ∧ ¬C) − popcount(A ∧ B ∧ C)
//! ```
//!
//! The reduce step of the paper (`S_X, S_Y, S_Z → S_parent ⊗ {X,Y,Z}`)
//! becomes `incidence(parent) = A ⊕ B ⊕ C` (the parent symbol survives in
//! a term iff an odd number of the children appeared). This is an
//! implementation optimization over the per-term scan described in the
//! paper — same asymptotics in `N`, a ~64× constant-factor win — and the
//! per-term scan is kept as [`TermEngine::weight_of_triple_naive`] for the
//! ablation benchmark.
//!
//! ## The incremental selection kernel
//!
//! By inclusion–exclusion the triple-intersection terms cancel:
//!
//! ```text
//!     weight(a,b,c) = |A ∪ B ∪ C| − |A ∩ B ∩ C|
//!                   = |A| + |B| + |C| − |A∩B| − |A∩C| − |B∩C|
//! ```
//!
//! so a candidate's weight only needs per-node popcounts and *pairwise*
//! intersection counts. The engine maintains the popcounts eagerly and a
//! pairwise-count memo invalidated per node (each `reduce` /
//! [`TermEngine::set_incidence`] bumps that node's epoch, so only pairs
//! touching the mutated node are recomputed). Inside a selection loop
//! evaluating `Ω(|U|²)` candidates over `|U|` stable nodes, every
//! evaluation after the first visit of a pair is O(1) instead of
//! O(T/64) — this is what pushes the Figure 12 sweep to the paper's
//! N≈100 regime. [`TermEngine::weight_of_triple_memo`] is the memoized
//! entry point; the allocation-free one-pass kernel stays available as
//! [`TermEngine::weight_of_triple`].
//!
//! ## Threading
//!
//! A `TermEngine` is plain owned data (bitsets, popcounts, the memo
//! tables), so it is `Send` — asserted below — and the parallel beam
//! search in `hatt-core` relies on that: every surviving beam state owns
//! its engine, and per-step candidate scans run on scoped worker threads
//! with exclusive `&mut` access. Nothing in the engine is shared between
//! threads; cross-thread determinism is inherited from the engine being
//! a pure function of its construction and mutation history.

use hatt_fermion::MajoranaSum;
use hatt_pauli::Bits;

use crate::policy::TripleCounts;
use crate::tree::NodeId;

// The parallel construction engine moves owned engines and trees across
// scoped worker threads (see the module docs' Threading section).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TermEngine>();
    assert_send_sync::<crate::tree::TernaryTree>();
    assert_send_sync::<crate::tree::TreeMapping>();
};

/// Per-node term-incidence bitsets for a Majorana Hamiltonian being
/// compiled onto a ternary tree.
///
/// # Examples
///
/// ```
/// use hatt_fermion::MajoranaSum;
/// use hatt_mappings::TermEngine;
/// use hatt_pauli::Complex64;
///
/// // H = M0 M1 + M2 M3 on 2 modes (leaves 0..=4, internals 5, 6).
/// let mut h = MajoranaSum::new(2);
/// h.add(Complex64::ONE, &[0, 1]);
/// h.add(Complex64::ONE, &[2, 3]);
/// let engine = TermEngine::new(&h);
///
/// // Grouping (0, 1, 4): term M0M1 sees two of the triple (XY = iZ,
/// // weight 1); term M2M3 sees none (I, weight 0).
/// assert_eq!(engine.weight_of_triple(0, 1, 4), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TermEngine {
    n_modes: usize,
    n_terms: usize,
    incidence: Vec<Bits>,
    /// Popcount of each node's incidence, maintained on every mutation.
    count: Vec<u32>,
    /// Per-node mutation epoch; a memo entry is valid only while both of
    /// its nodes' epochs are unchanged. (A stale hit would need 2³²
    /// mutations of one node between two reads of the same pair —
    /// unreachable in practice.)
    epoch: Vec<u32>,
    /// Lazily allocated pairwise-intersection memo.
    memo: Option<PairMemo>,
    /// Scratch buffer for allocation-free `reduce`.
    scratch: Bits,
}

/// Above this node count the pairwise memo (an upper-triangular
/// `n_nodes·(n_nodes+1)/2` table, 12 bytes per entry) is not allocated
/// and the memoized path falls back to the direct kernel. 2048 nodes
/// ≈ 25 MB, covering N ≈ 680 modes.
const PAIR_MEMO_NODE_LIMIT: usize = 2048;

#[derive(Debug, Clone, Copy, Default)]
struct PairEntry {
    /// Epoch of the lower node id at computation time (0 = never valid,
    /// node epochs start at 1).
    epoch_lo: u32,
    /// Epoch of the higher node id at computation time.
    epoch_hi: u32,
    count: u32,
}

#[derive(Debug, Clone)]
struct PairMemo {
    n_nodes: usize,
    entries: Vec<PairEntry>,
    hits: u64,
    misses: u64,
}

impl TermEngine {
    /// Builds the engine from a preprocessed Hamiltonian. Constant terms
    /// (empty monomials) are ignored; every other monomial becomes one
    /// term regardless of coefficient, matching the paper's weight
    /// objective.
    pub fn new(h: &MajoranaSum) -> Self {
        let n_modes = h.n_modes();
        let n_nodes = 3 * n_modes + 1;
        let monomials: Vec<&[u32]> = h
            .iter()
            .map(|(idx, _)| idx)
            .filter(|idx| !idx.is_empty())
            .collect();
        let n_terms = monomials.len();
        assert!(
            u32::try_from(n_terms).is_ok(),
            "term count {n_terms} exceeds the engine's u32 counters"
        );
        let mut incidence = vec![Bits::zeros(n_terms); n_nodes];
        for (t, idx) in monomials.iter().enumerate() {
            for &k in *idx {
                incidence[k as usize].set(t, true);
            }
        }
        let count = incidence.iter().map(|b| b.count_ones() as u32).collect();
        TermEngine {
            n_modes,
            n_terms,
            incidence,
            count,
            epoch: vec![1; n_nodes],
            memo: None,
            scratch: Bits::zeros(n_terms),
        }
    }

    /// Number of modes of the underlying Hamiltonian.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Number of (non-constant) Hamiltonian terms.
    #[inline]
    pub fn n_terms(&self) -> usize {
        self.n_terms
    }

    /// The incidence bitset of a node (terms currently containing its
    /// symbol).
    #[inline]
    pub fn incidence(&self, node: NodeId) -> &Bits {
        &self.incidence[node]
    }

    /// Pauli weight settled on one qubit if `(a, b, c)` become the
    /// `X, Y, Z` children of a new parent (symmetric in the triple).
    ///
    /// One fused word-level pass over the three incidence bitsets; see
    /// [`TermEngine::weight_of_triple_memo`] for the O(1) amortized
    /// variant used by the selection loops.
    pub fn weight_of_triple(&self, a: NodeId, b: NodeId, c: NodeId) -> usize {
        let (none, all) =
            Bits::triple_none_all(&self.incidence[a], &self.incidence[b], &self.incidence[c]);
        self.n_terms - none - all
    }

    /// Memoized weight evaluation via the pairwise identity
    /// `w = |A| + |B| + |C| − |A∩B| − |A∩C| − |B∩C|` (the module docs
    /// derive it). Returns exactly the same value as
    /// [`TermEngine::weight_of_triple`]; after the first visit of each
    /// pair the evaluation is O(1) until one of its nodes is mutated by
    /// [`TermEngine::reduce`] / [`TermEngine::set_incidence`].
    pub fn weight_of_triple_memo(&mut self, a: NodeId, b: NodeId, c: NodeId) -> usize {
        if !self.ensure_memo() {
            return self.weight_of_triple(a, b, c);
        }
        let singles = self.count[a] as usize + self.count[b] as usize + self.count[c] as usize;
        singles - self.pair_count(a, b) - self.pair_count(a, c) - self.pair_count(b, c)
    }

    /// Popcount of `incidence(a) ∩ incidence(b)`, memoized per node-pair
    /// and invalidated when either node mutates.
    pub fn pair_count(&mut self, a: NodeId, b: NodeId) -> usize {
        if !self.ensure_memo() {
            return self.incidence[a].and_count(&self.incidence[b]);
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (elo, ehi) = (self.epoch[lo], self.epoch[hi]);
        #[allow(clippy::expect_used)]
        // hatt-lint: allow(panic) -- ensure_memo() returning true guarantees the memo is populated
        let memo = self.memo.as_mut().expect("memo just ensured");
        // Upper-triangular (diagonal included) row-major slot: row `lo`
        // starts after the Σ_{k<lo}(n_nodes − k) = lo·(2n − lo + 1)/2
        // earlier entries.
        let slot = lo * (2 * memo.n_nodes - lo + 1) / 2 + (hi - lo);
        let entry = &mut memo.entries[slot];
        if entry.epoch_lo == elo && entry.epoch_hi == ehi {
            memo.hits += 1;
            return entry.count as usize;
        }
        let count = self.incidence[lo].and_count(&self.incidence[hi]);
        *entry = PairEntry {
            epoch_lo: elo,
            epoch_hi: ehi,
            count: count as u32,
        };
        memo.misses += 1;
        count
    }

    /// Number of terms with *odd* membership in the triple — the popcount
    /// of the parent's post-reduce incidence `A ⊕ B ⊕ C`, i.e. the terms
    /// that will keep paying weight on ancestor qubits. One fused
    /// word-level pass.
    pub fn residual_of_triple(&self, a: NodeId, b: NodeId, c: NodeId) -> usize {
        Bits::xor3_count(&self.incidence[a], &self.incidence[b], &self.incidence[c])
    }

    /// The per-candidate membership counts `(n₁, n₂, n₃)` of a triple,
    /// sharing the memoized pairwise counts with
    /// [`TermEngine::weight_of_triple_memo`].
    ///
    /// Let `S = |A| + |B| + |C|`, `P = |A∩B| + |A∩C| + |B∩C|` and
    /// `n₃ = |A∩B∩C|`. With `n_k` the number of terms containing exactly
    /// `k` of the triple, `S = n₁ + 2n₂ + 3n₃` and `P = n₂ + 3n₃`, so
    /// `n₂ = P − 3n₃` and `n₁ = S − 2P + 3n₃`. Only `n₃` can need a
    /// bitset pass — and only when every pairwise intersection is
    /// non-empty (`n₃ ≤ min` of the three), so on sparse workloads the
    /// whole evaluation stays O(1) amortized.
    pub fn counts_of_triple_memo(&mut self, a: NodeId, b: NodeId, c: NodeId) -> TripleCounts {
        if self.memo.is_none() && self.incidence.len() > PAIR_MEMO_NODE_LIMIT {
            // Word-level fallback (not the per-bit scan): two fused
            // passes recover all three counts.
            let n3 = Bits::and3_count(&self.incidence[a], &self.incidence[b], &self.incidence[c]);
            let n1 = self.residual_of_triple(a, b, c) - n3;
            let n2 = self.weight_of_triple(a, b, c) - n1;
            return TripleCounts { n1, n2, n3 };
        }
        let s = self.count[a] as usize + self.count[b] as usize + self.count[c] as usize;
        let (pab, pac, pbc) = (
            self.pair_count(a, b),
            self.pair_count(a, c),
            self.pair_count(b, c),
        );
        let p = pab + pac + pbc;
        let n3 = if pab.min(pac).min(pbc) == 0 {
            0
        } else {
            Bits::and3_count(&self.incidence[a], &self.incidence[b], &self.incidence[c])
        };
        TripleCounts {
            n1: s + 3 * n3 - 2 * p,
            n2: p - 3 * n3,
            n3,
        }
    }

    /// [`TermEngine::counts_of_triple_memo`] via the paper's per-term
    /// scan — the ablation path; must agree with the memoized kernel.
    pub fn counts_of_triple_naive(&self, a: NodeId, b: NodeId, c: NodeId) -> TripleCounts {
        let mut counts = TripleCounts::default();
        for t in 0..self.n_terms {
            let k = usize::from(self.incidence[a].get(t))
                + usize::from(self.incidence[b].get(t))
                + usize::from(self.incidence[c].get(t));
            match k {
                1 => counts.n1 += 1,
                2 => counts.n2 += 1,
                3 => counts.n3 += 1,
                _ => {}
            }
        }
        counts
    }

    /// `(hits, misses)` of the pairwise memo so far — instrumentation for
    /// the perf harness; `(0, 0)` before the memo is first used.
    pub fn memo_stats(&self) -> (u64, u64) {
        self.memo.as_ref().map_or((0, 0), |m| (m.hits, m.misses))
    }

    /// Number of terms currently containing `node`'s symbol (maintained
    /// popcount of its incidence bitset).
    #[inline]
    pub fn node_count(&self, node: NodeId) -> usize {
        self.count[node] as usize
    }

    /// Allocates the pairwise memo on first use; `false` when the node
    /// count exceeds [`PAIR_MEMO_NODE_LIMIT`] and memoization is skipped.
    fn ensure_memo(&mut self) -> bool {
        if self.memo.is_some() {
            return true;
        }
        let n_nodes = self.incidence.len();
        if n_nodes > PAIR_MEMO_NODE_LIMIT {
            return false;
        }
        self.memo = Some(PairMemo {
            n_nodes,
            entries: vec![PairEntry::default(); n_nodes * (n_nodes + 1) / 2],
            hits: 0,
            misses: 0,
        });
        true
    }

    /// The paper's per-term weight evaluation (scan every term, count
    /// triple membership). Kept for the ablation benchmark; must agree
    /// with [`Self::weight_of_triple`].
    pub fn weight_of_triple_naive(&self, a: NodeId, b: NodeId, c: NodeId) -> usize {
        let mut w = 0;
        for t in 0..self.n_terms {
            let k = usize::from(self.incidence[a].get(t))
                + usize::from(self.incidence[b].get(t))
                + usize::from(self.incidence[c].get(t));
            if k == 1 || k == 2 {
                w += 1;
            }
        }
        w
    }

    /// Applies the paper's `reduce` step: the parent symbol replaces the
    /// children (`incidence(parent) = A ⊕ B ⊕ C`), settling the parent's
    /// qubit for every term. Allocation-free (scratch buffer + fused
    /// three-way XOR); invalidates only the parent's memoized pairs.
    pub fn reduce(&mut self, parent: NodeId, a: NodeId, b: NodeId, c: NodeId) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.copy_from(&self.incidence[a]);
        scratch.xor3_assign(&self.incidence[b], &self.incidence[c]);
        std::mem::swap(&mut self.incidence[parent], &mut scratch);
        self.scratch = scratch;
        self.touch(parent);
    }

    /// Restores a node's incidence (used by backtracking searches).
    pub fn set_incidence(&mut self, node: NodeId, bits: Bits) {
        self.incidence[node] = bits;
        self.touch(node);
    }

    /// Recomputes a node's maintained popcount and bumps its epoch,
    /// invalidating every memoized pair involving it.
    fn touch(&mut self, node: NodeId) {
        self.count[node] = self.incidence[node].count_ones() as u32;
        self.epoch[node] = self.epoch[node].wrapping_add(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_pauli::Complex64;

    /// The paper's running example, Equation (3):
    /// `H_Q = 0.5i·S0S1 − 0.5i·S2S3 − 0.5i·S4S5 + 0.5·S2S3S4S5`.
    fn paper_example() -> MajoranaSum {
        let mut h = MajoranaSum::new(3);
        h.add(Complex64::new(0.0, 0.5), &[0, 1]);
        h.add(Complex64::new(0.0, -0.5), &[2, 3]);
        h.add(Complex64::new(0.0, -0.5), &[4, 5]);
        h.add(Complex64::real(0.5), &[2, 3, 4, 5]);
        h
    }

    #[test]
    fn paper_first_iteration_weights() {
        let engine = TermEngine::new(&paper_example());
        assert_eq!(engine.n_terms(), 4);
        // The paper picks O0, O1, O6 in the first step: total weight 1.
        assert_eq!(engine.weight_of_triple(0, 1, 6), 1);
        // A bad pick, e.g. (O0, O2, O4): S0S1 has one member (w1),
        // S2S3 has one (w1), S4S5 has one (w1), S2S3S4S5 has two (w1) = 4.
        assert_eq!(engine.weight_of_triple(0, 2, 4), 4);
        // (O2, O3, O4): S2S3 two members (w1), S4S5 one (w1),
        // S2S3S4S5 three members → XYZ = iI, weight 0! Total 2.
        assert_eq!(engine.weight_of_triple(2, 3, 4), 2);
    }

    #[test]
    fn paper_second_iteration_after_reduce() {
        let mut engine = TermEngine::new(&paper_example());
        // Step 0: O7 ← (O0, O1, O6).
        engine.reduce(7, 0, 1, 6);
        // S0S1 reduces to {} (even count of members), so O7 absent;
        // the other terms keep their symbols.
        assert_eq!(engine.incidence(7).count_ones(), 0);
        // Step 1: the paper picks O2, O3, O7 → weight 2
        // (S2'S3' → XY (1), S4'S5' → II (0), S2'S3'S4'S5' → XY (1)).
        assert_eq!(engine.weight_of_triple(2, 3, 7), 2);
    }

    #[test]
    fn naive_and_bitset_weights_agree() {
        let engine = TermEngine::new(&paper_example());
        for a in 0..7 {
            for b in 0..7 {
                for c in 0..7 {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    assert_eq!(
                        engine.weight_of_triple(a, b, c),
                        engine.weight_of_triple_naive(a, b, c),
                        "mismatch at ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn xor_reduce_tracks_odd_membership() {
        let mut h = MajoranaSum::new(2);
        h.add(Complex64::ONE, &[0, 1, 2]);
        let mut engine = TermEngine::new(&h);
        // Parent of (0, 1, 3): term contains 0 and 1 → even → absent.
        engine.reduce(5, 0, 1, 3);
        assert_eq!(engine.incidence(5).count_ones(), 0);
        // Parent of (0, 2, 4): term contains 0 and 2 → even → absent…
        // but reduce(6, 2, 3, 4) with only node 2 present → odd → present.
        engine.reduce(6, 2, 3, 4);
        assert_eq!(engine.incidence(6).count_ones(), 1);
    }

    #[test]
    fn memo_weight_matches_direct_kernel() {
        let mut engine = TermEngine::new(&paper_example());
        for a in 0..7 {
            for b in 0..7 {
                for c in 0..7 {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    assert_eq!(
                        engine.weight_of_triple(a, b, c),
                        engine.weight_of_triple_memo(a, b, c),
                        "memo mismatch at ({a},{b},{c})"
                    );
                }
            }
        }
        let (hits, misses) = engine.memo_stats();
        assert!(hits > 0, "repeated pairs must hit the memo");
        assert!(misses > 0);
    }

    #[test]
    fn memo_invalidates_on_reduce_and_set_incidence() {
        let mut engine = TermEngine::new(&paper_example());
        // Warm the memo on pairs involving node 7 (all-zero incidence):
        // only S0S1 contributes, via its single member O0 or O1.
        assert_eq!(engine.weight_of_triple_memo(0, 1, 7), 1);
        // O7 ← (O2, O3, O4): odd membership in S4S5 (one of the triple)
        // and in S2S3S4S5 (three of the triple), so O7 now sits in those
        // two terms and the same triple gains weight 2.
        engine.reduce(7, 2, 3, 4);
        assert_eq!(engine.node_count(7), 2);
        assert_eq!(engine.weight_of_triple_memo(0, 1, 7), 3);
        assert_eq!(
            engine.weight_of_triple_memo(0, 1, 7),
            engine.weight_of_triple(0, 1, 7)
        );
        // Backtracking path: restore an arbitrary incidence and re-check.
        let restored = Bits::from_indices(engine.n_terms(), &[0, 3]);
        engine.set_incidence(7, restored);
        assert_eq!(engine.node_count(7), 2);
        assert_eq!(
            engine.weight_of_triple_memo(0, 1, 7),
            engine.weight_of_triple(0, 1, 7)
        );
    }

    #[test]
    fn maintained_counts_track_incidence() {
        let mut engine = TermEngine::new(&paper_example());
        for node in 0..7 {
            assert_eq!(engine.node_count(node), engine.incidence(node).count_ones());
        }
        engine.reduce(7, 2, 3, 4);
        assert_eq!(engine.node_count(7), engine.incidence(7).count_ones());
    }

    #[test]
    fn pair_count_matches_and_count() {
        let mut engine = TermEngine::new(&paper_example());
        for a in 0..7 {
            for b in 0..7 {
                let direct = engine.incidence(a).and_count(engine.incidence(b));
                assert_eq!(engine.pair_count(a, b), direct);
                // Second read must hit the memo and agree.
                assert_eq!(engine.pair_count(b, a), direct);
            }
        }
    }

    #[test]
    fn counts_match_direct_kernels() {
        let mut engine = TermEngine::new(&paper_example());
        for a in 0..7 {
            for b in 0..7 {
                for c in 0..7 {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    let counts = engine.counts_of_triple_memo(a, b, c);
                    assert_eq!(
                        counts,
                        engine.counts_of_triple_naive(a, b, c),
                        "memo/naive count mismatch at ({a},{b},{c})"
                    );
                    assert_eq!(
                        counts.weight(),
                        engine.weight_of_triple(a, b, c),
                        "weight mismatch at ({a},{b},{c})"
                    );
                    assert_eq!(
                        counts.residual(),
                        engine.residual_of_triple(a, b, c),
                        "residual mismatch at ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn residual_counts_odd_membership() {
        let engine = TermEngine::new(&paper_example());
        // Triple (2, 3, 4): S2S3 contributes 0 (two members, even),
        // S4S5 contributes 1 (one member), S2S3S4S5 contributes 1
        // (three members) → residual 2.
        assert_eq!(engine.residual_of_triple(2, 3, 4), 2);
        // Triple (0, 1, 6): S0S1 has both members → even → residual 0.
        assert_eq!(engine.residual_of_triple(0, 1, 6), 0);
    }

    #[test]
    fn counts_survive_reduce() {
        let mut engine = TermEngine::new(&paper_example());
        let before = engine.counts_of_triple_memo(2, 3, 7);
        engine.reduce(7, 0, 1, 6);
        let after = engine.counts_of_triple_memo(2, 3, 7);
        // Node 7 stays empty after this reduce, so the counts are stable…
        assert_eq!(before, after);
        // …and still match the direct kernels.
        assert_eq!(after.weight(), engine.weight_of_triple(2, 3, 7));
        assert_eq!(after.residual(), engine.residual_of_triple(2, 3, 7));
    }

    #[test]
    fn constant_terms_are_ignored() {
        let mut h = MajoranaSum::new(1);
        h.add(Complex64::real(2.0), &[]);
        h.add(Complex64::ONE, &[0]);
        let engine = TermEngine::new(&h);
        assert_eq!(engine.n_terms(), 1);
    }

    #[test]
    fn empty_hamiltonian_gives_zero_weights() {
        let h = MajoranaSum::new(2);
        let engine = TermEngine::new(&h);
        assert_eq!(engine.n_terms(), 0);
        assert_eq!(engine.weight_of_triple(0, 1, 2), 0);
    }

    #[test]
    fn many_terms_cross_block_boundaries() {
        // 130 terms × one Majorana each forces multi-block bitsets.
        let mut h = MajoranaSum::new(65);
        for t in 0..130 {
            h.add(Complex64::ONE, &[t as u32]);
        }
        let engine = TermEngine::new(&h);
        assert_eq!(engine.n_terms(), 130);
        // Triple (0, 1, 2): three terms each contain exactly one → 3.
        assert_eq!(engine.weight_of_triple(0, 1, 2), 3);
        assert_eq!(
            engine.weight_of_triple_naive(0, 1, 2),
            engine.weight_of_triple(0, 1, 2)
        );
    }
}
