//! The term-incidence engine: the weight-evaluation kernel behind the
//! HATT construction and the exhaustive/annealing tree searches.
//!
//! The paper's Algorithm 1 keeps, for every Hamiltonian term, the multiset
//! of node symbols it currently contains (`S_a S_b …`), and evaluates the
//! Pauli weight a candidate parent triple settles on one qubit. Because a
//! symbol appearing twice cancels (`S² ∝ I`), a term is fully described by
//! the *set* of symbols with odd multiplicity. This engine stores the
//! transpose — for each tree node a bitset over terms in which its symbol
//! appears — so that the weight of a candidate triple `(a, b, c)` on a
//! qubit is three popcounts:
//!
//! * a term gets letter `I` when it contains none of `a, b, c` — or all
//!   three (`X·Y·Z = i·I`, the cancellation the paper exploits);
//! * otherwise exactly 1 or 2 appear, the per-qubit letter is
//!   non-identity, and the term contributes weight 1.
//!
//! ```text
//!     weight(a,b,c) = T − popcount(¬A ∧ ¬B ∧ ¬C) − popcount(A ∧ B ∧ C)
//! ```
//!
//! The reduce step of the paper (`S_X, S_Y, S_Z → S_parent ⊗ {X,Y,Z}`)
//! becomes `incidence(parent) = A ⊕ B ⊕ C` (the parent symbol survives in
//! a term iff an odd number of the children appeared). This is an
//! implementation optimization over the per-term scan described in the
//! paper — same asymptotics in `N`, a ~64× constant-factor win — and the
//! per-term scan is kept as [`TermEngine::weight_of_triple_naive`] for the
//! ablation benchmark.

use hatt_fermion::MajoranaSum;
use hatt_pauli::Bits;

use crate::tree::NodeId;

/// Per-node term-incidence bitsets for a Majorana Hamiltonian being
/// compiled onto a ternary tree.
///
/// # Examples
///
/// ```
/// use hatt_fermion::MajoranaSum;
/// use hatt_mappings::TermEngine;
/// use hatt_pauli::Complex64;
///
/// // H = M0 M1 + M2 M3 on 2 modes (leaves 0..=4, internals 5, 6).
/// let mut h = MajoranaSum::new(2);
/// h.add(Complex64::ONE, &[0, 1]);
/// h.add(Complex64::ONE, &[2, 3]);
/// let engine = TermEngine::new(&h);
///
/// // Grouping (0, 1, 4): term M0M1 sees two of the triple (XY = iZ,
/// // weight 1); term M2M3 sees none (I, weight 0).
/// assert_eq!(engine.weight_of_triple(0, 1, 4), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TermEngine {
    n_modes: usize,
    n_terms: usize,
    incidence: Vec<Bits>,
}

impl TermEngine {
    /// Builds the engine from a preprocessed Hamiltonian. Constant terms
    /// (empty monomials) are ignored; every other monomial becomes one
    /// term regardless of coefficient, matching the paper's weight
    /// objective.
    pub fn new(h: &MajoranaSum) -> Self {
        let n_modes = h.n_modes();
        let n_nodes = 3 * n_modes + 1;
        let monomials: Vec<&[u32]> = h
            .iter()
            .map(|(idx, _)| idx)
            .filter(|idx| !idx.is_empty())
            .collect();
        let n_terms = monomials.len();
        let mut incidence = vec![Bits::zeros(n_terms); n_nodes];
        for (t, idx) in monomials.iter().enumerate() {
            for &k in *idx {
                incidence[k as usize].set(t, true);
            }
        }
        TermEngine {
            n_modes,
            n_terms,
            incidence,
        }
    }

    /// Number of modes of the underlying Hamiltonian.
    #[inline]
    pub fn n_modes(&self) -> usize {
        self.n_modes
    }

    /// Number of (non-constant) Hamiltonian terms.
    #[inline]
    pub fn n_terms(&self) -> usize {
        self.n_terms
    }

    /// The incidence bitset of a node (terms currently containing its
    /// symbol).
    #[inline]
    pub fn incidence(&self, node: NodeId) -> &Bits {
        &self.incidence[node]
    }

    /// Pauli weight settled on one qubit if `(a, b, c)` become the
    /// `X, Y, Z` children of a new parent (symmetric in the triple).
    pub fn weight_of_triple(&self, a: NodeId, b: NodeId, c: NodeId) -> usize {
        let (ab, bb, cb) = (
            self.incidence[a].blocks(),
            self.incidence[b].blocks(),
            self.incidence[c].blocks(),
        );
        let n_blocks = ab.len();
        if n_blocks == 0 {
            return 0;
        }
        let mut none = 0usize;
        let mut all = 0usize;
        for i in 0..n_blocks {
            let (x, y, z) = (ab[i], bb[i], cb[i]);
            let mask = if i + 1 == n_blocks {
                last_block_mask(self.n_terms)
            } else {
                u64::MAX
            };
            none += (!(x | y | z) & mask).count_ones() as usize;
            all += (x & y & z).count_ones() as usize;
        }
        self.n_terms - none - all
    }

    /// The paper's per-term weight evaluation (scan every term, count
    /// triple membership). Kept for the ablation benchmark; must agree
    /// with [`Self::weight_of_triple`].
    pub fn weight_of_triple_naive(&self, a: NodeId, b: NodeId, c: NodeId) -> usize {
        let mut w = 0;
        for t in 0..self.n_terms {
            let k = usize::from(self.incidence[a].get(t))
                + usize::from(self.incidence[b].get(t))
                + usize::from(self.incidence[c].get(t));
            if k == 1 || k == 2 {
                w += 1;
            }
        }
        w
    }

    /// Applies the paper's `reduce` step: the parent symbol replaces the
    /// children (`incidence(parent) = A ⊕ B ⊕ C`), settling the parent's
    /// qubit for every term.
    pub fn reduce(&mut self, parent: NodeId, a: NodeId, b: NodeId, c: NodeId) {
        let mut acc = self.incidence[a].clone();
        acc.xor_with(&self.incidence[b]);
        acc.xor_with(&self.incidence[c]);
        self.incidence[parent] = acc;
    }

    /// Restores a node's incidence (used by backtracking searches).
    pub fn set_incidence(&mut self, node: NodeId, bits: Bits) {
        self.incidence[node] = bits;
    }
}

#[inline]
fn last_block_mask(n_bits: usize) -> u64 {
    let rem = n_bits % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_pauli::Complex64;

    /// The paper's running example, Equation (3):
    /// `H_Q = 0.5i·S0S1 − 0.5i·S2S3 − 0.5i·S4S5 + 0.5·S2S3S4S5`.
    fn paper_example() -> MajoranaSum {
        let mut h = MajoranaSum::new(3);
        h.add(Complex64::new(0.0, 0.5), &[0, 1]);
        h.add(Complex64::new(0.0, -0.5), &[2, 3]);
        h.add(Complex64::new(0.0, -0.5), &[4, 5]);
        h.add(Complex64::real(0.5), &[2, 3, 4, 5]);
        h
    }

    #[test]
    fn paper_first_iteration_weights() {
        let engine = TermEngine::new(&paper_example());
        assert_eq!(engine.n_terms(), 4);
        // The paper picks O0, O1, O6 in the first step: total weight 1.
        assert_eq!(engine.weight_of_triple(0, 1, 6), 1);
        // A bad pick, e.g. (O0, O2, O4): S0S1 has one member (w1),
        // S2S3 has one (w1), S4S5 has one (w1), S2S3S4S5 has two (w1) = 4.
        assert_eq!(engine.weight_of_triple(0, 2, 4), 4);
        // (O2, O3, O4): S2S3 two members (w1), S4S5 one (w1),
        // S2S3S4S5 three members → XYZ = iI, weight 0! Total 2.
        assert_eq!(engine.weight_of_triple(2, 3, 4), 2);
    }

    #[test]
    fn paper_second_iteration_after_reduce() {
        let mut engine = TermEngine::new(&paper_example());
        // Step 0: O7 ← (O0, O1, O6).
        engine.reduce(7, 0, 1, 6);
        // S0S1 reduces to {} (even count of members), so O7 absent;
        // the other terms keep their symbols.
        assert_eq!(engine.incidence(7).count_ones(), 0);
        // Step 1: the paper picks O2, O3, O7 → weight 2
        // (S2'S3' → XY (1), S4'S5' → II (0), S2'S3'S4'S5' → XY (1)).
        assert_eq!(engine.weight_of_triple(2, 3, 7), 2);
    }

    #[test]
    fn naive_and_bitset_weights_agree() {
        let engine = TermEngine::new(&paper_example());
        for a in 0..7 {
            for b in 0..7 {
                for c in 0..7 {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    assert_eq!(
                        engine.weight_of_triple(a, b, c),
                        engine.weight_of_triple_naive(a, b, c),
                        "mismatch at ({a},{b},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn xor_reduce_tracks_odd_membership() {
        let mut h = MajoranaSum::new(2);
        h.add(Complex64::ONE, &[0, 1, 2]);
        let mut engine = TermEngine::new(&h);
        // Parent of (0, 1, 3): term contains 0 and 1 → even → absent.
        engine.reduce(5, 0, 1, 3);
        assert_eq!(engine.incidence(5).count_ones(), 0);
        // Parent of (0, 2, 4): term contains 0 and 2 → even → absent…
        // but reduce(6, 2, 3, 4) with only node 2 present → odd → present.
        engine.reduce(6, 2, 3, 4);
        assert_eq!(engine.incidence(6).count_ones(), 1);
    }

    #[test]
    fn constant_terms_are_ignored() {
        let mut h = MajoranaSum::new(1);
        h.add(Complex64::real(2.0), &[]);
        h.add(Complex64::ONE, &[0]);
        let engine = TermEngine::new(&h);
        assert_eq!(engine.n_terms(), 1);
    }

    #[test]
    fn empty_hamiltonian_gives_zero_weights() {
        let h = MajoranaSum::new(2);
        let engine = TermEngine::new(&h);
        assert_eq!(engine.n_terms(), 0);
        assert_eq!(engine.weight_of_triple(0, 1, 2), 0);
    }

    #[test]
    fn many_terms_cross_block_boundaries() {
        // 130 terms × one Majorana each forces multi-block bitsets.
        let mut h = MajoranaSum::new(65);
        for t in 0..130 {
            h.add(Complex64::ONE, &[t as u32]);
        }
        let engine = TermEngine::new(&h);
        assert_eq!(engine.n_terms(), 130);
        // Triple (0, 1, 2): three terms each contain exactly one → 3.
        assert_eq!(engine.weight_of_triple(0, 1, 2), 3);
        assert_eq!(
            engine.weight_of_triple_naive(0, 1, 2),
            engine.weight_of_triple(0, 1, 2)
        );
    }
}
