//! Dense complex Hermitian linear algebra: matrix construction from Pauli
//! sums and a Jacobi eigensolver — used for the exact reference energies
//! of the paper's noisy-simulation studies (Figs. 10 and 11) and for the
//! isospectrality tests across mappings.

use hatt_pauli::{Complex64, PauliSum};

use crate::state::StateVector;

/// A dense square complex matrix (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    dim: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// The zero matrix of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        CMatrix {
            dim,
            data: vec![Complex64::ZERO; dim * dim],
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> Complex64 {
        self.data[r * self.dim + c]
    }

    /// Mutable element access.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut Complex64 {
        &mut self.data[r * self.dim + c]
    }

    /// Builds the dense matrix of a Pauli sum on `n` qubits
    /// (`dim = 2^n`; practical for `n ≤ 12`).
    ///
    /// # Panics
    ///
    /// Panics when `n > 12` (the dense representation would be too big).
    pub fn from_pauli_sum(h: &PauliSum) -> Self {
        let n = h.n_qubits();
        assert!(n <= 12, "dense matrices limited to 12 qubits, got {n}");
        let dim = 1usize << n;
        let mut m = CMatrix::zeros(dim);
        for (coeff, p) in h.iter() {
            let x_mask = mask_of(p.x_bits());
            let z_mask = mask_of(p.z_bits());
            let phase = p.raw_phase();
            for j in 0..dim {
                let sign = (j & z_mask).count_ones() % 2;
                let mut v = coeff.mul_i_pow(phase.exponent());
                if sign == 1 {
                    v = -v;
                }
                *m.at_mut(j ^ x_mask, j) += v;
            }
        }
        m
    }

    /// Returns `true` when the matrix is Hermitian within `eps`.
    pub fn is_hermitian(&self, eps: f64) -> bool {
        for r in 0..self.dim {
            for c in r..self.dim {
                if !self.at(r, c).approx_eq(self.at(c, r).conj(), eps) {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm of the off-diagonal part.
    pub fn offdiagonal_norm(&self) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.dim {
            for c in 0..self.dim {
                if r != c {
                    acc += self.at(r, c).norm_sqr();
                }
            }
        }
        acc.sqrt()
    }

    /// Jacobi eigendecomposition of a Hermitian matrix: returns the
    /// eigenvalues in ascending order and the matching eigenvectors (as
    /// columns of the returned matrix).
    ///
    /// # Panics
    ///
    /// Panics when the matrix is not Hermitian.
    pub fn eigh(&self) -> (Vec<f64>, CMatrix) {
        assert!(self.is_hermitian(1e-8), "eigh requires a Hermitian matrix");
        let dim = self.dim;
        let mut a = self.clone();
        let mut v = CMatrix::zeros(dim);
        for i in 0..dim {
            *v.at_mut(i, i) = Complex64::ONE;
        }
        let tol = 1e-13 * (1.0 + self.frobenius_norm());
        for _sweep in 0..200 {
            if a.offdiagonal_norm() < tol {
                break;
            }
            for p in 0..dim {
                for q in (p + 1)..dim {
                    let beta = a.at(p, q);
                    let b = beta.abs();
                    if b < 1e-15 {
                        continue;
                    }
                    let alpha = a.at(p, p).re;
                    let gamma = a.at(q, q).re;
                    // Absorb the phase so the 2×2 block becomes real
                    // symmetric, then rotate.
                    let u = beta / b;
                    let tau = (gamma - alpha) / (2.0 * b);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // U = diag(1, ū)·R(θ) = [[c, s],[−ū·s, ū·c]] acting on
                    // columns (p, q): the ū phase makes the (p, q) block
                    // real so the real rotation annihilates it.
                    let (upp, upq) = (Complex64::real(c), Complex64::real(s));
                    let (uqp, uqq) = (-u.conj() * s, u.conj() * c);
                    // A ← U† A U.
                    for k in 0..dim {
                        let (akp, akq) = (a.at(k, p), a.at(k, q));
                        *a.at_mut(k, p) = akp * upp + akq * uqp;
                        *a.at_mut(k, q) = akp * upq + akq * uqq;
                    }
                    for k in 0..dim {
                        let (apk, aqk) = (a.at(p, k), a.at(q, k));
                        *a.at_mut(p, k) = upp.conj() * apk + uqp.conj() * aqk;
                        *a.at_mut(q, k) = upq.conj() * apk + uqq.conj() * aqk;
                    }
                    // V ← V U.
                    for k in 0..dim {
                        let (vkp, vkq) = (v.at(k, p), v.at(k, q));
                        *v.at_mut(k, p) = vkp * upp + vkq * uqp;
                        *v.at_mut(k, q) = vkp * upq + vkq * uqq;
                    }
                }
            }
        }
        // Extract and sort.
        let mut pairs: Vec<(f64, usize)> = (0..dim).map(|i| (a.at(i, i).re, i)).collect();
        pairs.sort_by(|x, y| x.0.total_cmp(&y.0));
        let eigenvalues: Vec<f64> = pairs.iter().map(|&(e, _)| e).collect();
        let mut vectors = CMatrix::zeros(dim);
        for (new_col, &(_, old_col)) in pairs.iter().enumerate() {
            for r in 0..dim {
                *vectors.at_mut(r, new_col) = v.at(r, old_col);
            }
        }
        (eigenvalues, vectors)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        (0..self.dim)
            .map(|r| {
                x.iter()
                    .enumerate()
                    .fold(Complex64::ZERO, |acc, (c, &xc)| acc + self.at(r, c) * xc)
            })
            .collect()
    }
}

fn mask_of(b: &hatt_pauli::Bits) -> usize {
    let mut out = 0usize;
    for i in b.iter_ones() {
        out |= 1 << i;
    }
    out
}

/// The exact ground-state energy and state of a Hermitian Pauli sum — the
/// "theoretical" reference line of the paper's Figs. 10 and 11.
pub fn ground_state(h: &PauliSum) -> (f64, StateVector) {
    let m = CMatrix::from_pauli_sum(h);
    let (eigs, vecs) = m.eigh();
    let dim = m.dim();
    let amps: Vec<Complex64> = (0..dim).map(|r| vecs.at(r, 0)).collect();
    (eigs[0], StateVector::from_amplitudes(amps))
}

/// All eigenvalues of a Hermitian Pauli sum in ascending order
/// (isospectrality checks across mappings).
pub fn spectrum(h: &PauliSum) -> Vec<f64> {
    CMatrix::from_pauli_sum(h).eigh().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_pauli::PauliString;

    fn ps(s: &str) -> PauliString {
        s.parse().expect("valid string")
    }

    #[test]
    fn pauli_x_matrix() {
        let mut h = PauliSum::new(1);
        h.add(Complex64::real(1.0), ps("X"));
        let m = CMatrix::from_pauli_sum(&h);
        assert!(m.at(0, 1).approx_eq(Complex64::ONE, 1e-14));
        assert!(m.at(1, 0).approx_eq(Complex64::ONE, 1e-14));
        assert!(m.at(0, 0).approx_eq(Complex64::ZERO, 1e-14));
        assert!(m.is_hermitian(1e-12));
    }

    #[test]
    fn pauli_y_matrix_has_correct_phases() {
        let mut h = PauliSum::new(1);
        h.add(Complex64::real(1.0), ps("Y"));
        let m = CMatrix::from_pauli_sum(&h);
        assert!(m.at(0, 1).approx_eq(-Complex64::I, 1e-14));
        assert!(m.at(1, 0).approx_eq(Complex64::I, 1e-14));
    }

    #[test]
    fn eigenvalues_of_single_paulis() {
        for s in ["X", "Y", "Z"] {
            let mut h = PauliSum::new(1);
            h.add(Complex64::real(1.0), ps(s));
            let (eigs, _) = CMatrix::from_pauli_sum(&h).eigh();
            assert!((eigs[0] + 1.0).abs() < 1e-10, "{s}: {eigs:?}");
            assert!((eigs[1] - 1.0).abs() < 1e-10, "{s}: {eigs:?}");
        }
    }

    #[test]
    fn eigenvalues_of_tensor_sum() {
        // H = Z0 + 2·Z1: eigenvalues {−3, −1, 1, 3}.
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(1.0), ps("IZ"));
        h.add(Complex64::real(2.0), ps("ZI"));
        let (eigs, _) = CMatrix::from_pauli_sum(&h).eigh();
        let expected = [-3.0, -1.0, 1.0, 3.0];
        for (e, x) in eigs.iter().zip(expected) {
            assert!((e - x).abs() < 1e-10, "got {eigs:?}");
        }
    }

    #[test]
    fn eigenvectors_satisfy_eigen_equation() {
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(0.7), ps("XZ"));
        h.add(Complex64::real(-0.3), ps("YY"));
        h.add(Complex64::real(0.5), ps("ZI"));
        h.add(Complex64::real(0.2), ps("IX"));
        let m = CMatrix::from_pauli_sum(&h);
        let (eigs, vecs) = m.eigh();
        for (col, &lambda) in eigs.iter().enumerate() {
            let x: Vec<Complex64> = (0..m.dim()).map(|r| vecs.at(r, col)).collect();
            let ax = m.matvec(&x);
            for (a, v) in ax.iter().zip(&x) {
                assert!(
                    a.approx_eq(*v * lambda, 1e-8),
                    "eigenpair {col} residual too large"
                );
            }
        }
    }

    #[test]
    fn ground_state_minimizes_expectation() {
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(1.0), ps("ZZ"));
        h.add(Complex64::real(0.5), ps("XI"));
        let (e0, psi) = ground_state(&h);
        let exp = psi.expectation(&h);
        assert!((exp - e0).abs() < 1e-8, "⟨H⟩ = {exp}, e0 = {e0}");
        // Ground energy of ZZ + 0.5·XI is −√(1+0.25).
        assert!((e0 + (1.25f64).sqrt()).abs() < 1e-8, "e0 = {e0}");
    }

    #[test]
    fn spectrum_is_sorted() {
        let mut h = PauliSum::new(3);
        h.add(Complex64::real(1.0), ps("ZZI"));
        h.add(Complex64::real(0.4), ps("IXX"));
        h.add(Complex64::real(-0.2), ps("YIY"));
        let eigs = spectrum(&h);
        for w in eigs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // Traceless Hamiltonian: eigenvalues sum to ~0.
        let sum: f64 = eigs.iter().sum();
        assert!(sum.abs() < 1e-8);
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn eigh_rejects_non_hermitian() {
        let mut m = CMatrix::zeros(2);
        *m.at_mut(0, 1) = Complex64::ONE;
        let _ = m.eigh();
    }

    #[test]
    fn eigh_conserves_frobenius_mass_on_large_complex_matrices() {
        // A dense 64-dim Hermitian matrix with many complex (Y-laden)
        // terms: Σλ² must equal tr(A²) and every eigenpair must satisfy
        // its equation. This guards the complex-phase handling of the
        // Jacobi rotation (a wrong conjugation converges on small real
        // matrices but stalls here).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut h = PauliSum::new(6);
        for _ in 0..40 {
            let mut s = PauliString::identity(6);
            for q in 0..6 {
                s.set_op(q, hatt_pauli::Pauli::ALL[rng.gen_range(0..4)]);
            }
            h.add(Complex64::real(rng.gen_range(-1.0..1.0)), s);
        }
        let m = CMatrix::from_pauli_sum(&h);
        let (eigs, vecs) = m.eigh();
        let sum_sq: f64 = eigs.iter().map(|e| e * e).sum();
        let frob_sq = m.frobenius_norm().powi(2);
        assert!(
            (sum_sq - frob_sq).abs() < 1e-6 * frob_sq.max(1.0),
            "Σλ² = {sum_sq} vs tr(A²) = {frob_sq}"
        );
        for col in [0usize, 31, 63] {
            let x: Vec<Complex64> = (0..64).map(|r| vecs.at(r, col)).collect();
            let ax = m.matvec(&x);
            let res: f64 = ax
                .iter()
                .zip(&x)
                .map(|(a, v)| (*a - *v * eigs[col]).norm_sqr())
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-7, "residual {res} for eigenpair {col}");
        }
    }
}
