//! Shot-based energy estimation: qubit-wise-commuting (QWC) grouping,
//! measurement-basis rotations, and the bias/variance statistics of the
//! paper's noisy-simulation studies (Figs. 10 and 11).

use hatt_circuit::Circuit;
use hatt_pauli::{Complex64, Pauli, PauliString, PauliSum};
use rand::Rng;

use crate::noise::NoiseModel;
use crate::state::StateVector;

/// A group of qubit-wise commuting Hamiltonian terms, measurable with one
/// basis-rotation setting.
#[derive(Debug, Clone, PartialEq)]
pub struct QwcGroup {
    /// The terms `(coefficient, string)` of the group.
    pub terms: Vec<(Complex64, PauliString)>,
    /// The per-qubit measurement basis (`I` where no term acts).
    pub basis: Vec<Pauli>,
}

impl QwcGroup {
    /// The basis-rotation circuit mapping every group letter to `Z`.
    pub fn rotation_circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.basis.len());
        for (q, p) in self.basis.iter().enumerate() {
            match p {
                Pauli::X => {
                    c.h(q);
                }
                Pauli::Y => {
                    c.sdg(q);
                    c.h(q);
                }
                _ => {}
            }
        }
        c
    }

    /// Evaluates every term on a measured bitstring (after rotation, each
    /// letter reads `(−1)^bit`), returning `Σ c·value`.
    pub fn energy_of_bits(&self, bits: usize) -> f64 {
        self.terms
            .iter()
            .map(|(c, p)| {
                let mut v = 1.0;
                for (q, _) in p.iter_ops() {
                    if bits >> q & 1 == 1 {
                        v = -v;
                    }
                }
                c.re * v
            })
            .sum()
    }
}

/// Greedily partitions a Hamiltonian into QWC groups; the identity term
/// (if any) is returned separately as a constant offset.
///
/// # Examples
///
/// ```
/// use hatt_pauli::{Complex64, PauliSum};
/// use hatt_sim::qwc_groups;
///
/// let mut h = PauliSum::new(2);
/// h.add(Complex64::real(1.0), "ZI".parse()?);
/// h.add(Complex64::real(1.0), "ZZ".parse()?); // QWC with ZI
/// h.add(Complex64::real(1.0), "XX".parse()?); // needs its own basis
/// let (offset, groups) = qwc_groups(&h);
/// assert_eq!(offset.re, 0.0);
/// assert_eq!(groups.len(), 2);
/// # Ok::<(), hatt_pauli::ParsePauliStringError>(())
/// ```
pub fn qwc_groups(h: &PauliSum) -> (Complex64, Vec<QwcGroup>) {
    let n = h.n_qubits();
    let mut offset = Complex64::ZERO;
    let mut groups: Vec<QwcGroup> = Vec::new();
    for (c, p) in h.iter() {
        if p.is_identity() {
            offset += c;
            continue;
        }
        let mut placed = false;
        for g in &mut groups {
            let compatible = (0..n).all(|q| {
                let (a, b) = (g.basis[q], p.op(q));
                a == Pauli::I || b == Pauli::I || a == b
            });
            if compatible {
                for q in 0..n {
                    if g.basis[q] == Pauli::I {
                        g.basis[q] = p.op(q);
                    }
                }
                g.terms.push((c, p.clone()));
                placed = true;
                break;
            }
        }
        if !placed {
            let basis: Vec<Pauli> = (0..n).map(|q| p.op(q)).collect();
            groups.push(QwcGroup {
                terms: vec![(c, p)],
                basis,
            });
        }
    }
    (offset, groups)
}

/// Per-shot energy samples (the paper's 1000-shot protocol): the total
/// shot budget is split evenly over the QWC groups; sample `k` combines
/// the `k`-th measured bitstring of every group plus the constant offset,
/// so the mean of the samples is the energy estimate and their spread is
/// the paper's "variance across shots".
pub fn energy_samples<R: Rng>(
    prep: &StateVector,
    evolution: &Circuit,
    h: &PauliSum,
    noise: &NoiseModel,
    shots: usize,
    rng: &mut R,
) -> Vec<f64> {
    assert!(shots > 0, "need at least one shot");
    let (offset, groups) = qwc_groups(h);
    if groups.is_empty() {
        return vec![offset.re];
    }
    let shots_per_group = (shots / groups.len()).max(1);
    let mut samples = vec![offset.re; shots_per_group];
    for g in &groups {
        let mut full = evolution.clone();
        full.append(&g.rotation_circuit());
        for sample in samples.iter_mut() {
            let bits = crate::noise::run_shot(noise, prep, &full, rng);
            *sample += g.energy_of_bits(bits);
        }
    }
    samples
}

/// One complete shot-based energy estimation: the mean of
/// [`energy_samples`].
pub fn estimate_energy<R: Rng>(
    prep: &StateVector,
    evolution: &Circuit,
    h: &PauliSum,
    noise: &NoiseModel,
    shots: usize,
    rng: &mut R,
) -> f64 {
    let samples = energy_samples(prep, evolution, h, noise, shots, rng);
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Repeats the estimation `repetitions` times, returning all estimates
/// (bias/variance statistics are computed by [`bias_variance`]).
#[allow(clippy::too_many_arguments)]
pub fn repeated_estimates<R: Rng>(
    prep: &StateVector,
    evolution: &Circuit,
    h: &PauliSum,
    noise: &NoiseModel,
    shots: usize,
    repetitions: usize,
    rng: &mut R,
) -> Vec<f64> {
    (0..repetitions)
        .map(|_| estimate_energy(prep, evolution, h, noise, shots, rng))
        .collect()
}

/// Bias (mean deviation from `reference`) and variance of a set of
/// estimates.
pub fn bias_variance(estimates: &[f64], reference: f64) -> (f64, f64) {
    assert!(!estimates.is_empty(), "no estimates");
    let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
    let var = estimates
        .iter()
        .map(|e| (e - mean) * (e - mean))
        .sum::<f64>()
        / estimates.len() as f64;
    (mean - reference, var)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ps(s: &str) -> PauliString {
        s.parse().expect("valid string")
    }

    #[test]
    fn grouping_separates_incompatible_bases() {
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(1.0), ps("ZI"));
        h.add(Complex64::real(1.0), ps("IZ"));
        h.add(Complex64::real(1.0), ps("XX"));
        h.add(Complex64::real(1.0), ps("XI"));
        let (_, groups) = qwc_groups(&h);
        assert_eq!(groups.len(), 2);
        // ZI, IZ together; XX, XI together.
        assert_eq!(groups[0].terms.len() + groups[1].terms.len(), 4);
    }

    #[test]
    fn identity_becomes_offset() {
        let mut h = PauliSum::new(1);
        h.add(Complex64::real(2.5), PauliString::identity(1));
        h.add(Complex64::real(1.0), ps("Z"));
        let (offset, groups) = qwc_groups(&h);
        assert!((offset.re - 2.5).abs() < 1e-12);
        assert_eq!(groups.len(), 1);
    }

    #[test]
    fn energy_of_bits_evaluates_parities() {
        let g = QwcGroup {
            terms: vec![
                (Complex64::real(1.0), ps("ZZ")),
                (Complex64::real(0.5), ps("IZ")),
            ],
            basis: vec![Pauli::Z, Pauli::Z],
        };
        // bits 0b00: ZZ=+1, IZ=+1 → 1.5; bits 0b01: ZZ=−1, IZ=−1 → −1.5.
        assert!((g.energy_of_bits(0b00) - 1.5).abs() < 1e-12);
        assert!((g.energy_of_bits(0b01) + 1.5).abs() < 1e-12);
        // bits 0b11: ZZ=+1, IZ=−1 → 0.5.
        assert!((g.energy_of_bits(0b11) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noiseless_estimation_converges_to_expectation() {
        // H = Z on |+⟩ has ⟨H⟩ = 0; H = Z on |0⟩ has ⟨H⟩ = 1.
        let mut h = PauliSum::new(1);
        h.add(Complex64::real(1.0), ps("Z"));
        let prep = StateVector::zero_state(1);
        let id_circuit = Circuit::new(1);
        let mut rng = StdRng::seed_from_u64(1);
        let e = estimate_energy(
            &prep,
            &id_circuit,
            &h,
            &NoiseModel::noiseless(),
            500,
            &mut rng,
        );
        assert!((e - 1.0).abs() < 1e-12, "Z on |0⟩ must read exactly 1");
    }

    #[test]
    fn x_basis_measurement_uses_rotation() {
        // H = X on |+⟩: exact value 1 even shot-by-shot.
        let mut h = PauliSum::new(1);
        h.add(Complex64::real(1.0), ps("X"));
        let mut plus_prep = Circuit::new(1);
        plus_prep.h(0);
        let mut prep = StateVector::zero_state(1);
        prep.apply_circuit(&plus_prep);
        let mut rng = StdRng::seed_from_u64(2);
        let e = estimate_energy(
            &prep,
            &Circuit::new(1),
            &h,
            &NoiseModel::noiseless(),
            200,
            &mut rng,
        );
        assert!((e - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_noise_shrinks_with_shots() {
        // H = Z on |+⟩: each shot is ±1; variance across estimates falls
        // roughly as 1/shots.
        let mut h = PauliSum::new(1);
        h.add(Complex64::real(1.0), ps("Z"));
        let mut prep = StateVector::zero_state(1);
        let mut pc = Circuit::new(1);
        pc.h(0);
        prep.apply_circuit(&pc);
        let mut rng = StdRng::seed_from_u64(3);
        let small = repeated_estimates(
            &prep,
            &Circuit::new(1),
            &h,
            &NoiseModel::noiseless(),
            16,
            40,
            &mut rng,
        );
        let large = repeated_estimates(
            &prep,
            &Circuit::new(1),
            &h,
            &NoiseModel::noiseless(),
            1024,
            40,
            &mut rng,
        );
        let (_, var_small) = bias_variance(&small, 0.0);
        let (_, var_large) = bias_variance(&large, 0.0);
        assert!(
            var_large < var_small / 4.0,
            "variance did not shrink: {var_small} vs {var_large}"
        );
    }

    #[test]
    fn bias_variance_formulas() {
        let (bias, var) = bias_variance(&[1.0, 3.0], 1.0);
        assert!((bias - 1.0).abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn zero_shots_rejected() {
        let h = PauliSum::new(1);
        let prep = StateVector::zero_state(1);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = estimate_energy(
            &prep,
            &Circuit::new(1),
            &h,
            &NoiseModel::noiseless(),
            0,
            &mut rng,
        );
    }
}
