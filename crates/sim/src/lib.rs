//! # hatt-sim
//!
//! Simulation substrate for the HATT framework: a dense state-vector
//! simulator for the circuit IR, Monte-Carlo depolarizing noise (the
//! Qiskit Aer stand-in, §V-B.4), shot-based energy estimation with
//! qubit-wise-commuting grouping, and dense Hermitian linear algebra
//! (Jacobi eigensolver) for exact reference energies.
//!
//! # Example: exact ground energy and a noisy measurement of it
//!
//! ```
//! use hatt_circuit::Circuit;
//! use hatt_pauli::{Complex64, PauliSum};
//! use hatt_sim::{estimate_energy, ground_state, NoiseModel};
//! use rand::SeedableRng;
//!
//! let mut h = PauliSum::new(2);
//! h.add(Complex64::real(1.0), "ZZ".parse()?);
//! h.add(Complex64::real(0.5), "XI".parse()?);
//!
//! let (e0, psi0) = ground_state(&h);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let e = estimate_energy(&psi0, &Circuit::new(2), &h,
//!                         &NoiseModel::noiseless(), 4000, &mut rng);
//! assert!((e - e0).abs() < 0.15);
//! # Ok::<(), hatt_pauli::ParsePauliStringError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod linalg;
mod measure;
mod noise;
mod state;

pub use linalg::{ground_state, spectrum, CMatrix};
pub use measure::{
    bias_variance, energy_samples, estimate_energy, qwc_groups, repeated_estimates, QwcGroup,
};
pub use noise::{run_shot, NoiseModel};
pub use state::StateVector;
