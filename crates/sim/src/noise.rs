//! Depolarizing-noise trajectory simulation (the Qiskit Aer stand-in of
//! paper §V-B.4) and the IonQ Forte 1 calibration point of §V-B.5.

use hatt_circuit::Circuit;
use hatt_pauli::{Pauli, PauliString};
use rand::Rng;

use crate::state::StateVector;

/// A depolarizing noise model: after every single-qubit gate a uniform
/// non-identity Pauli strikes the qubit with probability `p1`; after every
/// CNOT a uniform non-identity two-qubit Pauli strikes the pair with
/// probability `p2`; measured bits flip with probability `readout`.
///
/// # Examples
///
/// ```
/// use hatt_sim::NoiseModel;
///
/// let ionq = NoiseModel::ionq_forte1();
/// assert!(ionq.p2 > ionq.p1);
/// assert!(NoiseModel::noiseless().is_noiseless());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Depolarizing probability after single-qubit gates.
    pub p1: f64,
    /// Depolarizing probability after two-qubit gates.
    pub p2: f64,
    /// Readout bit-flip probability.
    pub readout: f64,
}

impl NoiseModel {
    /// No noise at all.
    pub fn noiseless() -> Self {
        NoiseModel {
            p1: 0.0,
            p2: 0.0,
            readout: 0.0,
        }
    }

    /// A pure depolarizing model without readout error.
    pub fn depolarizing(p1: f64, p2: f64) -> Self {
        NoiseModel {
            p1,
            p2,
            readout: 0.0,
        }
    }

    /// The IonQ Forte 1 calibration quoted in the paper (§V-B.5):
    /// 99.98% single-qubit fidelity, 98.99% two-qubit fidelity, 99.02%
    /// readout fidelity.
    pub fn ionq_forte1() -> Self {
        NoiseModel {
            p1: 2.0e-4,
            p2: 1.01e-2,
            readout: 9.8e-3,
        }
    }

    /// Returns `true` when every error probability is zero.
    pub fn is_noiseless(&self) -> bool {
        self.p1 == 0.0 && self.p2 == 0.0 && self.readout == 0.0
    }

    /// Runs one noisy trajectory of `circuit` on `state`: each gate is
    /// applied, then a random Pauli error strikes with the corresponding
    /// probability (Monte-Carlo unravelling of the depolarizing channel).
    pub fn apply_trajectory<R: Rng>(
        &self,
        circuit: &Circuit,
        state: &mut StateVector,
        rng: &mut R,
    ) {
        for g in circuit.gates() {
            state.apply_gate(g);
            if g.is_two_qubit() {
                if self.p2 > 0.0 && rng.gen::<f64>() < self.p2 {
                    let qs = g.qubits();
                    let k = rng.gen_range(1..16); // 15 non-identity 2q Paulis
                    let (a, b) = (k / 4, k % 4);
                    let mut err = PauliString::identity(state.n_qubits());
                    if a > 0 {
                        err.set_op(qs[0], Pauli::ALL[a]);
                    }
                    if b > 0 {
                        err.set_op(qs[1], Pauli::ALL[b]);
                    }
                    state.apply_pauli(&err);
                }
            } else if self.p1 > 0.0 && rng.gen::<f64>() < self.p1 {
                let q = g.qubits()[0];
                let k = rng.gen_range(1..4);
                state.apply_pauli(&PauliString::single(state.n_qubits(), q, Pauli::ALL[k]));
            }
        }
    }

    /// Samples one measured bitstring from a state, applying readout
    /// errors.
    pub fn sample_readout<R: Rng>(&self, state: &StateVector, rng: &mut R) -> usize {
        let mut outcome = state.sample(rng);
        if self.readout > 0.0 {
            for q in 0..state.n_qubits() {
                if rng.gen::<f64>() < self.readout {
                    outcome ^= 1 << q;
                }
            }
        }
        outcome
    }
}

/// A noisy gate applied mid-circuit never changes the qubit count; this
/// free function runs a complete shot: trajectory + readout sample.
pub fn run_shot<R: Rng>(
    noise: &NoiseModel,
    prep: &StateVector,
    circuit: &Circuit,
    rng: &mut R,
) -> usize {
    let mut state = prep.clone();
    noise.apply_trajectory(circuit, &mut state, rng);
    noise.sample_readout(&state, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_trajectory_matches_ideal() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let noise = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = StateVector::zero_state(2);
        noise.apply_trajectory(&c, &mut s, &mut rng);
        let mut ideal = StateVector::zero_state(2);
        ideal.apply_circuit(&c);
        assert!(s.fidelity(&ideal) > 1.0 - 1e-12);
    }

    #[test]
    fn heavy_noise_decoheres() {
        // With p2 = 1 every CNOT is followed by a random error; fidelity
        // to the ideal Bell state should drop for most seeds.
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let noise = NoiseModel::depolarizing(0.0, 1.0);
        let mut ideal = StateVector::zero_state(2);
        ideal.apply_circuit(&c);
        let mut rng = StdRng::seed_from_u64(5);
        let mut degraded = 0;
        for _ in 0..50 {
            let mut s = StateVector::zero_state(2);
            noise.apply_trajectory(&c, &mut s, &mut rng);
            if s.fidelity(&ideal) < 0.99 {
                degraded += 1;
            }
        }
        assert!(degraded > 25, "only {degraded}/50 trajectories degraded");
    }

    #[test]
    fn readout_flips_bits() {
        let noise = NoiseModel {
            p1: 0.0,
            p2: 0.0,
            readout: 1.0,
        };
        let s = StateVector::zero_state(3);
        let mut rng = StdRng::seed_from_u64(2);
        // Readout error 1.0 flips every bit: |000⟩ reads as 111.
        assert_eq!(noise.sample_readout(&s, &mut rng), 0b111);
    }

    #[test]
    fn run_shot_returns_basis_index() {
        let mut c = Circuit::new(2);
        c.x(0);
        let noise = NoiseModel::noiseless();
        let mut rng = StdRng::seed_from_u64(3);
        let prep = StateVector::zero_state(2);
        assert_eq!(run_shot(&noise, &prep, &c, &mut rng), 0b01);
    }

    #[test]
    fn ionq_calibration_values() {
        let m = NoiseModel::ionq_forte1();
        assert!((m.p1 - 2.0e-4).abs() < 1e-12);
        assert!((m.p2 - 1.01e-2).abs() < 1e-12);
        assert!((m.readout - 9.8e-3).abs() < 1e-12);
        assert!(!m.is_noiseless());
    }
}
