//! Dense state-vector simulation of the circuit IR.

use hatt_circuit::{Circuit, Gate};
use hatt_pauli::{Bits, Complex64, PauliString, PauliSum};
use rand::Rng;

/// A pure quantum state on `n` qubits (`2^n` amplitudes, little-endian:
/// bit `q` of the index is qubit `q`).
///
/// # Examples
///
/// ```
/// use hatt_circuit::Circuit;
/// use hatt_sim::StateVector;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cnot(0, 1);
/// let mut psi = StateVector::zero_state(2);
/// psi.apply_circuit(&bell);
/// assert!((psi.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((psi.probability(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zero computational basis state `|0…0⟩`.
    pub fn zero_state(n: usize) -> Self {
        assert!(n <= 26, "state vector limited to 26 qubits ({n} requested)");
        let mut amps = vec![Complex64::ZERO; 1 << n];
        amps[0] = Complex64::ONE;
        StateVector { n, amps }
    }

    /// A computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn basis_state(n: usize, index: usize) -> Self {
        let mut s = StateVector::zero_state(n);
        assert!(index < s.amps.len(), "basis index out of range");
        s.amps[0] = Complex64::ZERO;
        s.amps[index] = Complex64::ONE;
        s
    }

    /// Builds a state from raw amplitudes (normalizing them).
    ///
    /// # Panics
    ///
    /// Panics unless the length is a power of two matching some qubit
    /// count, or if the vector has zero norm.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two() && len > 0, "length must be 2^n");
        let n = len.trailing_zeros() as usize;
        let mut s = StateVector { n, amps };
        s.normalize();
        s
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n
    }

    /// Raw amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// ⟨ψ|ψ⟩.
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }

    /// Rescales to unit norm.
    ///
    /// # Panics
    ///
    /// Panics on a zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm_sqr().sqrt();
        assert!(n > 0.0, "cannot normalize the zero vector");
        for a in &mut self.amps {
            *a = *a / n;
        }
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Inner product ⟨self|other⟩.
    ///
    /// # Panics
    ///
    /// Panics on qubit-count mismatch.
    pub fn inner_product(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Applies a single-qubit matrix to `q`.
    pub fn apply_1q(&mut self, q: usize, m: &hatt_circuit::Mat2) {
        let mask = 1usize << q;
        for j in 0..self.amps.len() {
            if j & mask == 0 {
                let (a, b) = (self.amps[j], self.amps[j | mask]);
                self.amps[j] = m[0][0] * a + m[0][1] * b;
                self.amps[j | mask] = m[1][0] * a + m[1][1] * b;
            }
        }
    }

    /// Applies a CNOT.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        let (cm, tm) = (1usize << control, 1usize << target);
        for j in 0..self.amps.len() {
            if j & cm != 0 && j & tm == 0 {
                self.amps.swap(j, j | tm);
            }
        }
    }

    /// Applies one gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate exceeds the register.
    pub fn apply_gate(&mut self, g: &Gate) {
        match *g {
            Gate::Cnot { control, target } => self.apply_cnot(control, target),
            Gate::Swap(a, b) => {
                self.apply_cnot(a, b);
                self.apply_cnot(b, a);
                self.apply_cnot(a, b);
            }
            _ => {
                #[allow(clippy::expect_used)]
                // hatt-lint: allow(panic) -- every Gate other than Cnot/Swap is single-qubit and has a matrix
                let m = g.matrix1q().expect("1q gate");
                self.apply_1q(g.qubits()[0], &m);
            }
        }
    }

    /// Applies every gate of a circuit.
    pub fn apply_circuit(&mut self, c: &Circuit) {
        for g in c.gates() {
            self.apply_gate(g);
        }
    }

    /// Applies a Pauli string exactly: `|ψ⟩ ← P|ψ⟩` with
    /// `P|j⟩ = i^k (−1)^{|z∧j|} |j⊕x⟩`.
    pub fn apply_pauli(&mut self, p: &PauliString) {
        assert_eq!(p.n_qubits(), self.n, "qubit count mismatch");
        let x_mask = bits_to_usize(p.x_bits());
        let z_mask = bits_to_usize(p.z_bits());
        let phase = p.raw_phase();
        let mut out = vec![Complex64::ZERO; self.amps.len()];
        for (j, &a) in self.amps.iter().enumerate() {
            let sign = (j & z_mask).count_ones() % 2;
            let mut v = a.mul_i_pow(phase.exponent());
            if sign == 1 {
                v = -v;
            }
            out[j ^ x_mask] = v;
        }
        self.amps = out;
    }

    /// Expectation ⟨ψ|P|ψ⟩ of a Pauli string (complex in general; real for
    /// Hermitian strings).
    pub fn expectation_pauli(&self, p: &PauliString) -> Complex64 {
        assert_eq!(p.n_qubits(), self.n, "qubit count mismatch");
        let x_mask = bits_to_usize(p.x_bits());
        let z_mask = bits_to_usize(p.z_bits());
        let phase = p.raw_phase();
        let mut acc = Complex64::ZERO;
        for (j, &a) in self.amps.iter().enumerate() {
            let sign = (j & z_mask).count_ones() % 2;
            let mut v = a.mul_i_pow(phase.exponent());
            if sign == 1 {
                v = -v;
            }
            acc += self.amps[j ^ x_mask].conj() * v;
        }
        acc
    }

    /// Expectation ⟨ψ|H|ψ⟩ of a Hermitian Pauli sum.
    pub fn expectation(&self, h: &PauliSum) -> f64 {
        h.iter()
            .map(|(c, p)| (c * self.expectation_pauli(&p)).re)
            .sum()
    }

    /// Samples one measurement outcome (a basis-state index) in the
    /// computational basis.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let r: f64 = rng.gen::<f64>() * self.norm_sqr();
        let mut acc = 0.0;
        for (j, a) in self.amps.iter().enumerate() {
            acc += a.norm_sqr();
            if r < acc {
                return j;
            }
        }
        self.amps.len() - 1
    }
}

fn bits_to_usize(b: &Bits) -> usize {
    let mut out = 0usize;
    for i in b.iter_ones() {
        out |= 1 << i;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_pauli::Pauli;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_state_is_normalized() {
        let s = StateVector::zero_state(3);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
        assert_eq!(s.probability(0), 1.0);
    }

    #[test]
    fn bell_state_probabilities() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let mut s = StateVector::zero_state(2);
        s.apply_circuit(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(3) - 0.5).abs() < 1e-12);
        assert!(s.probability(1) < 1e-12);
    }

    #[test]
    fn pauli_application_matches_gates() {
        // X on qubit 1 of |00⟩ → |10⟩ (index 2).
        let mut s = StateVector::zero_state(2);
        s.apply_pauli(&PauliString::single(2, 1, Pauli::X));
        assert_eq!(s.probability(2), 1.0);
        // Y|0⟩ = i|1⟩.
        let mut s = StateVector::zero_state(1);
        s.apply_pauli(&PauliString::single(1, 0, Pauli::Y));
        assert!(s.amplitudes()[1].approx_eq(Complex64::I, 1e-12));
    }

    #[test]
    fn pauli_squares_to_identity_on_states() {
        let mut rng = StdRng::seed_from_u64(3);
        let amps: Vec<Complex64> = (0..8)
            .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let s0 = StateVector::from_amplitudes(amps);
        let p: PauliString = "XYZ".parse().unwrap();
        let mut s = s0.clone();
        s.apply_pauli(&p);
        s.apply_pauli(&p);
        assert!(s.fidelity(&s0) > 1.0 - 1e-10);
    }

    #[test]
    fn expectations_of_basis_states() {
        let s = StateVector::zero_state(1);
        let z = PauliString::single(1, 0, Pauli::Z);
        let x = PauliString::single(1, 0, Pauli::X);
        assert!((s.expectation_pauli(&z).re - 1.0).abs() < 1e-12);
        assert!(s.expectation_pauli(&x).re.abs() < 1e-12);
        let one = StateVector::basis_state(1, 1);
        assert!((one.expectation_pauli(&z).re + 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectation_of_sum() {
        let mut h = PauliSum::new(2);
        h.add(Complex64::real(0.5), "ZI".parse().unwrap());
        h.add(Complex64::real(0.25), "IZ".parse().unwrap());
        h.add(Complex64::real(2.0), "XX".parse().unwrap());
        let s = StateVector::zero_state(2);
        assert!((s.expectation(&h) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sampling_follows_distribution() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut s = StateVector::zero_state(1);
        s.apply_circuit(&c);
        let mut rng = StdRng::seed_from_u64(11);
        let ones: usize = (0..2000).map(|_| s.sample(&mut rng)).sum();
        assert!(
            (800..1200).contains(&ones),
            "biased sampling: {ones}/2000 ones"
        );
    }

    #[test]
    fn swap_gate_exchanges_qubits() {
        let mut s = StateVector::basis_state(2, 0b01);
        s.apply_gate(&Gate::Swap(0, 1));
        assert_eq!(s.probability(0b10), 1.0);
    }

    #[test]
    fn u3_gate_acts_like_its_matrix() {
        let g = Gate::U3 {
            q: 0,
            theta: 0.7,
            phi: 0.3,
            lambda: -0.2,
        };
        let mut s = StateVector::zero_state(1);
        s.apply_gate(&g);
        let m = g.matrix1q().unwrap();
        assert!(s.amplitudes()[0].approx_eq(m[0][0], 1e-12));
        assert!(s.amplitudes()[1].approx_eq(m[1][0], 1e-12));
    }

    #[test]
    #[should_panic(expected = "basis index out of range")]
    fn bad_basis_index_rejected() {
        StateVector::basis_state(2, 4);
    }
}
