//! Cross-substrate equivalence tests: every circuit-synthesis path must
//! agree with the closed-form algebra `exp(-i(θ/2)P) = cos(θ/2)·I −
//! i·sin(θ/2)·P`, and every optimization/routing pass must preserve
//! circuit semantics.

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt_circuit::{
    optimize, pauli_evolution, route_sabre, synthesize_pauli_network, trotter_circuit, CouplingMap,
    RouterOptions, RustiqOptions, TermOrder,
};
use hatt_pauli::{Complex64, PauliString, PauliSum};
use hatt_sim::StateVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ps(s: &str) -> PauliString {
    s.parse().expect("valid string")
}

fn random_state(n: usize, seed: u64) -> StateVector {
    let mut rng = StdRng::seed_from_u64(seed);
    let amps: Vec<Complex64> = (0..1usize << n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    StateVector::from_amplitudes(amps)
}

/// Applies the closed form `exp(-i(θ/2)P)|ψ⟩` exactly.
fn closed_form_evolution(psi: &StateVector, p: &PauliString, theta: f64) -> StateVector {
    let mut p_psi = psi.clone();
    p_psi.apply_pauli(p);
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    let amps: Vec<Complex64> = psi
        .amplitudes()
        .iter()
        .zip(p_psi.amplitudes())
        .map(|(&a, &pa)| a * c - pa.mul_i() * s)
        .collect();
    StateVector::from_amplitudes(amps)
}

fn fidelity_after(
    circuit: &hatt_circuit::Circuit,
    reference: &StateVector,
    start: &StateVector,
) -> f64 {
    let mut out = start.clone();
    out.apply_circuit(circuit);
    out.fidelity(reference)
}

#[test]
fn pauli_evolution_matches_closed_form() {
    let cases = ["ZZ", "XI", "XY", "YZ", "XYZ", "ZIZ", "YYX"];
    for (i, s) in cases.iter().enumerate() {
        let p = ps(s);
        let n = p.n_qubits();
        let theta = 0.3 + 0.2 * i as f64;
        let psi = random_state(n, 42 + i as u64);
        let expect = closed_form_evolution(&psi, &p, theta);
        let circuit = pauli_evolution(&p, theta);
        let f = fidelity_after(&circuit, &expect, &psi);
        assert!(f > 1.0 - 1e-10, "{s}: fidelity {f}");
    }
}

#[test]
fn trotter_circuit_matches_sequential_closed_form() {
    let mut h = PauliSum::new(3);
    h.add(Complex64::real(0.5), ps("ZZI"));
    h.add(Complex64::real(-0.3), ps("IXX"));
    h.add(Complex64::real(0.2), ps("YIY"));
    let t = 0.7;
    let circuit = trotter_circuit(&h, t, 1, TermOrder::Given);
    // Closed form, same (deterministic) term order.
    let psi = random_state(3, 9);
    let mut expect = psi.clone();
    for (c, p) in h.iter() {
        expect = closed_form_evolution(&expect, &p, 2.0 * c.re * t);
    }
    let f = fidelity_after(&circuit, &expect, &psi);
    assert!(f > 1.0 - 1e-10, "fidelity {f}");
}

#[test]
fn term_order_does_not_change_commuting_evolutions() {
    // All-Z terms commute: any ordering gives the same unitary.
    let mut h = PauliSum::new(3);
    h.add(Complex64::real(0.4), ps("ZZI"));
    h.add(Complex64::real(0.3), ps("IZZ"));
    h.add(Complex64::real(0.2), ps("ZIZ"));
    let psi = random_state(3, 4);
    let a = trotter_circuit(&h, 1.0, 1, TermOrder::Given);
    let b = trotter_circuit(&h, 1.0, 1, TermOrder::Lexicographic);
    let c = trotter_circuit(&h, 1.0, 1, TermOrder::GreedyOverlap);
    let mut sa = psi.clone();
    sa.apply_circuit(&a);
    let mut sb = psi.clone();
    sb.apply_circuit(&b);
    let mut sc = psi.clone();
    sc.apply_circuit(&c);
    assert!(sa.fidelity(&sb) > 1.0 - 1e-10);
    assert!(sa.fidelity(&sc) > 1.0 - 1e-10);
}

#[test]
fn optimizer_preserves_semantics() {
    let mut h = PauliSum::new(4);
    h.add(Complex64::real(0.5), ps("ZZII"));
    h.add(Complex64::real(0.4), ps("IZZI"));
    h.add(Complex64::real(0.3), ps("IIZZ"));
    h.add(Complex64::real(0.2), ps("XXII"));
    h.add(Complex64::real(0.1), ps("IYYI"));
    let raw = trotter_circuit(&h, 0.9, 1, TermOrder::Lexicographic);
    let opt = optimize(&raw);
    assert!(opt.metrics().total <= raw.metrics().total);
    let psi = random_state(4, 17);
    let mut a = psi.clone();
    a.apply_circuit(&raw);
    let mut b = psi.clone();
    b.apply_circuit(&opt);
    assert!(a.fidelity(&b) > 1.0 - 1e-9, "optimizer broke the circuit");
}

#[test]
fn pauli_network_matches_naive_synthesis() {
    let rotations = vec![
        (ps("ZZI"), 0.3),
        (ps("IXX"), -0.4),
        (ps("YIY"), 0.5),
        (ps("ZZZ"), 0.2),
        (ps("XYZ"), -0.1),
    ];
    let psi = random_state(3, 23);
    let mut expect = psi.clone();
    for (p, theta) in &rotations {
        expect = closed_form_evolution(&expect, p, *theta);
    }
    let net = synthesize_pauli_network(3, &rotations, &RustiqOptions::default());
    let f = fidelity_after(&net, &expect, &psi);
    assert!(f > 1.0 - 1e-9, "network fidelity {f}");
}

#[test]
fn pauli_network_handles_long_sequences() {
    let mut rng = StdRng::seed_from_u64(31);
    let letters = ["I", "X", "Y", "Z"];
    let mut rotations = Vec::new();
    for _ in 0..25 {
        let s: String = (0..3).map(|_| letters[rng.gen_range(0..4)]).collect();
        let p = ps(&s);
        if p.is_identity() {
            continue;
        }
        rotations.push((p, rng.gen_range(-1.0..1.0)));
    }
    let psi = random_state(3, 37);
    let mut expect = psi.clone();
    for (p, theta) in &rotations {
        expect = closed_form_evolution(&expect, p, *theta);
    }
    let net = synthesize_pauli_network(3, &rotations, &RustiqOptions::default());
    let f = fidelity_after(&net, &expect, &psi);
    assert!(f > 1.0 - 1e-8, "long-sequence fidelity {f}");
}

#[test]
fn routing_preserves_semantics_up_to_layout() {
    // A 4-qubit Trotter circuit routed onto a 6-qubit line.
    let mut h = PauliSum::new(4);
    h.add(Complex64::real(0.5), ps("ZIIZ"));
    h.add(Complex64::real(0.4), ps("IXXI"));
    h.add(Complex64::real(0.3), ps("YIIY"));
    let circuit = trotter_circuit(&h, 0.8, 1, TermOrder::Given);
    let arch = CouplingMap::line(6);
    let routed = route_sabre(&circuit, &arch, &RouterOptions::default());

    // Reference: logical state, embedded at the final layout.
    let psi_l = random_state(4, 5);
    let mut evolved = psi_l.clone();
    evolved.apply_circuit(&circuit);

    // Physical start: logical qubit q at initial_layout[q] (trivial), rest |0⟩.
    let n_phys = arch.n_qubits();
    let mut start_amps = vec![Complex64::ZERO; 1 << n_phys];
    for (j, &a) in psi_l.amplitudes().iter().enumerate() {
        let mut phys = 0usize;
        for q in 0..4 {
            if j >> q & 1 == 1 {
                phys |= 1 << routed.initial_layout[q];
            }
        }
        start_amps[phys] = a;
    }
    let mut phys_state = StateVector::from_amplitudes(start_amps);
    phys_state.apply_circuit(&routed.circuit);

    // Expected: evolved amplitudes at the *final* layout.
    let mut expect_amps = vec![Complex64::ZERO; 1 << n_phys];
    for (j, &a) in evolved.amplitudes().iter().enumerate() {
        let mut phys = 0usize;
        for q in 0..4 {
            if j >> q & 1 == 1 {
                phys |= 1 << routed.final_layout[q];
            }
        }
        expect_amps[phys] = a;
    }
    let expect = StateVector::from_amplitudes(expect_amps);
    let f = phys_state.fidelity(&expect);
    assert!(f > 1.0 - 1e-9, "routing broke the circuit: fidelity {f}");
}

#[test]
fn optimizing_routed_circuits_is_still_correct() {
    let mut h = PauliSum::new(3);
    h.add(Complex64::real(0.5), ps("ZIZ"));
    h.add(Complex64::real(0.4), ps("XXI"));
    let circuit = trotter_circuit(&h, 1.0, 2, TermOrder::Lexicographic);
    let arch = CouplingMap::line(3);
    let routed = route_sabre(&circuit, &arch, &RouterOptions::default());
    let opt = optimize(&routed.circuit);
    let psi = random_state(3, 77);
    let mut a = psi.clone();
    a.apply_circuit(&routed.circuit);
    let mut b = psi.clone();
    b.apply_circuit(&opt);
    assert!(a.fidelity(&b) > 1.0 - 1e-9);
}
