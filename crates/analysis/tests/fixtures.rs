//! Golden-fixture tests: each seeded-bad fixture under
//! `tests/fixtures/` must produce exactly the findings its markers
//! promise, and the clean fixture none. The fixtures are data, not
//! compiled test targets — the walker never visits `tests/`, so they
//! cannot pollute the self-lint of the real workspace.

use std::path::Path;

use hatt_analysis::rules::{lint_source, FileChecks};
use hatt_analysis::Finding;

fn lint_fixture(name: &str, src: &str) -> Vec<Finding> {
    lint_source(Path::new(name), src, &FileChecks::all())
}

fn count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn bad_panic_fixture_flags_every_site() {
    let findings = lint_fixture("bad_panic.rs", include_str!("fixtures/bad_panic.rs"));
    assert_eq!(count(&findings, "panic"), 6, "findings: {findings:#?}");
    assert_eq!(findings.len(), 6, "no other rule may fire: {findings:#?}");
}

#[test]
fn bad_determinism_fixture_flags_every_hash_token() {
    let findings = lint_fixture(
        "bad_determinism.rs",
        include_str!("fixtures/bad_determinism.rs"),
    );
    assert_eq!(
        count(&findings, "determinism"),
        6,
        "findings: {findings:#?}"
    );
    assert_eq!(
        findings.len(),
        6,
        "test module tokens are exempt: {findings:#?}"
    );
}

#[test]
fn bad_allow_fixture_reports_syntax_and_keeps_the_panics() {
    let findings = lint_fixture("bad_allow.rs", include_str!("fixtures/bad_allow.rs"));
    assert_eq!(
        count(&findings, "allow-syntax"),
        2,
        "findings: {findings:#?}"
    );
    assert_eq!(
        count(&findings, "panic"),
        2,
        "broken directives must not suppress: {findings:#?}"
    );
    assert_eq!(findings.len(), 4);
}

#[test]
fn bad_unsafe_fixture_flags_only_the_undocumented_block() {
    let findings = lint_fixture("bad_unsafe.rs", include_str!("fixtures/bad_unsafe.rs"));
    assert_eq!(count(&findings, "unsafe"), 1, "findings: {findings:#?}");
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].line, 5, "the `// SAFETY:` block must pass");
}

#[test]
fn good_fixture_is_finding_free() {
    let findings = lint_fixture("good.rs", include_str!("fixtures/good.rs"));
    assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
}

#[test]
fn every_bad_fixture_finding_is_position_addressable() {
    for (name, src) in [
        ("bad_panic.rs", include_str!("fixtures/bad_panic.rs")),
        (
            "bad_determinism.rs",
            include_str!("fixtures/bad_determinism.rs"),
        ),
        ("bad_allow.rs", include_str!("fixtures/bad_allow.rs")),
        ("bad_unsafe.rs", include_str!("fixtures/bad_unsafe.rs")),
    ] {
        for f in lint_fixture(name, src) {
            assert!(f.line >= 1 && f.col >= 1, "{name}: {f}");
            let line = src
                .lines()
                .nth(f.line as usize - 1)
                .unwrap_or_else(|| panic!("{name}: finding line {} out of range", f.line));
            assert!(
                f.col as usize <= line.len() + 1,
                "{name}: col {} beyond line {:?}",
                f.col,
                line
            );
        }
    }
}
