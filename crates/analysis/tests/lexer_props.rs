//! Lexer property tests: randomized interleavings of "literal soup"
//! (marker words buried in strings, raw strings, byte strings, chars
//! and comments) with real panic sites. The panic rule must flag
//! exactly the real sites — zero false positives from literals or
//! comments, zero false negatives — and every directive-suppressed
//! mix must lint clean.

use std::path::Path;

use hatt_analysis::lexer::lex;
use hatt_analysis::rules::{lint_source, FileChecks};
use proptest::prelude::*;

/// Fragments that must never produce a finding: every panic/hash
/// marker is inside a literal or a comment.
const SAFE: &[&str] = &[
    r#"let a = "call .unwrap() inside";"#,
    r#"let b = "escaped \" .expect(\"x\") quote";"#,
    r#"let c = r"raw panic!(now)";"#,
    r##"let d = r#"raw # "quoted" .unwrap() "#;"##,
    r#"let e = b"bytes .expect(1)";"#,
    "// line comment with .unwrap() and panic!",
    "/* block with todo!() */",
    "/* nested /* unreachable!() */ still comment .expect( */",
    "let f = 'x';",
    r#"let g: &'static str = "lifetime then .unwrap() in string";"#,
    "let h = x.0;",
    r##"let i = br#"raw bytes .unwrap()"#;"##,
];

/// Fragments with real panic sites, paired with how many findings
/// each must produce.
const HOT: &[(&str, usize)] = &[
    ("maybe.unwrap();", 1),
    (r#"maybe.expect("reason");"#, 1),
    (r#"panic!("boom");"#, 1),
    ("todo!();", 1),
    (r#"unreachable!("state");"#, 1),
    (r#"opt.unwrap().field.expect("two");"#, 2),
];

/// Assembles a source file by picking `picks` fragments via an LCG
/// from `seed`; returns the source and the expected finding count.
fn assemble(seed: u64, picks: usize, suppress: bool) -> (String, usize) {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    let mut next = move |n: usize| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as usize) % n
    };
    let mut src = String::from("fn soup() {\n");
    let mut expected = 0;
    for _ in 0..picks {
        if next(2) == 0 {
            src.push_str("    ");
            src.push_str(SAFE[next(SAFE.len())]);
            src.push('\n');
        } else {
            let (frag, hits) = HOT[next(HOT.len())];
            if suppress {
                src.push_str("    // hatt-lint: allow(panic) -- proptest: suppressed on purpose\n");
            } else {
                expected += hits;
            }
            src.push_str("    ");
            src.push_str(frag);
            src.push('\n');
        }
    }
    src.push_str("}\n");
    (src, expected)
}

fn panic_findings(src: &str) -> usize {
    let checks = FileChecks {
        panic: true,
        determinism: false,
        unsafe_code: false,
    };
    let findings = lint_source(Path::new("soup.rs"), src, &checks);
    for f in &findings {
        assert_eq!(f.rule, "panic", "unexpected rule: {f}");
    }
    findings.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exactly the real call sites are flagged — literals and comments
    /// contribute nothing, real sites are never missed.
    #[test]
    fn literal_soup_yields_exactly_the_real_sites(seed in 0u64..10_000, picks in 1usize..24) {
        let (src, expected) = assemble(seed, picks, false);
        prop_assert_eq!(panic_findings(&src), expected, "source:\n{}", src);
    }

    /// A well-formed directive above every hot line suppresses all of
    /// them, regardless of the surrounding soup.
    #[test]
    fn directives_suppress_every_hot_line(seed in 0u64..10_000, picks in 1usize..24) {
        let (src, expected) = assemble(seed, picks, true);
        prop_assert_eq!(expected, 0);
        prop_assert_eq!(panic_findings(&src), 0, "source:\n{}", src);
    }

    /// Token spans tile the source: in-bounds, non-overlapping,
    /// strictly ordered — no matter how the fragments interleave.
    #[test]
    fn token_spans_are_ordered_and_in_bounds(seed in 0u64..10_000, picks in 1usize..24) {
        let (src, _) = assemble(seed, picks, false);
        let lx = lex(&src);
        let mut prev_end = 0usize;
        for t in &lx.tokens {
            prop_assert!(t.start >= prev_end, "overlap at {}..{}", t.start, t.end);
            prop_assert!(t.end > t.start, "empty token at {}", t.start);
            prop_assert!(t.end <= src.len(), "token past EOF");
            prev_end = t.end;
        }
    }
}
