//! Seeded-bad fixture: every marked line must produce one `panic`
//! finding — `tests/fixtures.rs` pins the exact count (6).

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap() // finding 1
}

pub fn second(v: Option<u32>) -> u32 {
    v.expect("present") // finding 2
}

pub fn third() {
    panic!("boom"); // finding 3
}

pub fn fourth(n: u32) -> u32 {
    match n {
        0 => todo!(),          // finding 4
        1 => unimplemented!(), // finding 5
        _ => unreachable!(),   // finding 6
    }
}
