//! Seeded-bad fixture: each `HashMap` / `HashSet` token outside tests
//! is one `determinism` finding — 6 in total here.

use std::collections::HashMap;
use std::collections::HashSet;

pub fn build() -> HashMap<u32, u32> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    let _s: HashSet<u32> = HashSet::new();
    m
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_containers_are_fine_in_tests() {
        let _m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    }
}
