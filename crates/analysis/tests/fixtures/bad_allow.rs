//! Seeded-bad fixture: malformed allow directives. Each broken
//! directive is one `allow-syntax` finding AND fails to suppress the
//! site it sits above, so the panic findings surface too.

pub fn missing_reason(v: Option<u32>) -> u32 {
    // hatt-lint: allow(panic)
    v.unwrap()
}

pub fn unknown_rule() {
    // hatt-lint: allow(everything) -- not a rule hatt-lint knows
    panic!("x");
}
