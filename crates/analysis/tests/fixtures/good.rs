//! Clean fixture: zero findings expected under every rule. Exercises
//! the suppression and exemption paths — annotated allows, test
//! modules, and marker words buried in literals and comments.

use std::collections::BTreeMap;

/// Library code with an annotated, justified panic.
pub fn checked(v: Option<u32>) -> u32 {
    // hatt-lint: allow(panic) -- fixture: the invariant is documented right here
    v.expect("fixture invariant")
}

pub fn literals() -> &'static str {
    // Marker words inside comments must not trip the rules:
    // .unwrap() panic!() HashMap todo!() unsafe
    let _raw = r#"call .unwrap() then panic!("x") on a HashMap"#;
    let _cooked = "escaped \" .expect(\"y\") quote";
    let _bytes = b"bytes with .unwrap() and a HashSet";
    let _char = 'u';
    let _lifetime: &'static str = "lifetime then .unwrap() in a string";
    let _map: BTreeMap<u32, u32> = BTreeMap::new();
    /* block comment: unreachable!() inside /* a nested block */ stays a comment .expect( */
    "r#unwrap"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic_and_hash() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let _m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        if v.is_none() {
            panic!("asserting in tests is fine");
        }
    }
}
