//! Seeded-bad fixture: one `unsafe` block without a `// SAFETY:`
//! comment (1 finding) and one properly documented block (clean).

pub fn undocumented(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() }
}

pub fn documented(v: &[u32]) -> u32 {
    // SAFETY: the caller guarantees `v` is non-empty.
    unsafe { *v.as_ptr() }
}
