//! End-to-end tests for the `hatt-lint` binary: the real workspace
//! must pass `--deny all` clean, and a seeded-bad workspace must fail
//! it with every rule represented — the CI acceptance pair.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("../.."))
}

fn run_lint(root: &Path, deny_all: bool) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hatt-lint"));
    cmd.arg("--root").arg(root);
    if deny_all {
        cmd.arg("--deny").arg("all");
    }
    cmd.output()
        .unwrap_or_else(|e| panic!("spawn hatt-lint: {e}"))
}

#[test]
fn the_workspace_passes_deny_all() {
    let out = run_lint(&repo_root(), true);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "workspace lint failed:\n{stdout}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains(" 0 errors"), "summary missing: {stdout}");
}

#[test]
fn a_seeded_bad_workspace_fails_deny_all_with_every_rule() {
    let dir = std::env::temp_dir().join(format!("hatt-lint-seeded-bad-{}", std::process::id()));
    let core_src = dir.join("crates/core/src");
    std::fs::create_dir_all(&core_src).expect("mkdir");
    std::fs::create_dir_all(dir.join("crates/analysis")).expect("mkdir");
    std::fs::create_dir_all(dir.join("src")).expect("mkdir");

    // The facade root stays clean so failures are attributable.
    std::fs::write(
        dir.join("src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn ok() {}\n",
    )
    .expect("write facade");

    // One library file violating every token rule at once. The missing
    // `#![forbid(unsafe_code)]` also trips the crate-root check.
    std::fs::write(
        core_src.join("lib.rs"),
        r#"use std::collections::HashMap;

pub fn bad(v: Option<u32>) -> u32 {
    let _m: HashMap<u32, u32> = HashMap::new();
    // hatt-lint: allow(panic)
    v.unwrap()
}

pub fn raw(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() }
}

pub fn code(&self) -> &'static str {
    "duplicated_code"
}

pub fn other() -> &'static str {
    "duplicated_code"
}
"#,
    )
    .expect("write bad lib");

    // A registry whose literal appears twice in the file above — the
    // exactly-once stability contract must flag it.
    std::fs::write(
        dir.join("crates/analysis/wire_registry.txt"),
        "error_code duplicated_code crates/core/src/lib.rs\n",
    )
    .expect("write registry");

    let out = run_lint(&dir, true);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "seeded-bad lint passed:\n{stdout}");
    assert_eq!(out.status.code(), Some(1), "wrong exit code:\n{stdout}");
    for rule in [
        "[panic]",
        "[determinism]",
        "[unsafe]",
        "[forbid-unsafe]",
        "[allow-syntax]",
        "[registry]",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in:\n{stdout}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_hatt-lint"))
        .arg("--deny")
        .arg("some")
        .output()
        .unwrap_or_else(|e| panic!("spawn hatt-lint: {e}"));
    assert_eq!(out.status.code(), Some(2));
}
