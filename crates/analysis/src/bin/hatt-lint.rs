//! `hatt-lint` — run the workspace invariant rules and report.
//!
//! ```text
//! hatt-lint [--root <dir>] [--deny all] [--quiet]
//! ```
//!
//! Default severities: structural rules (`registry`, `unsafe`,
//! `forbid-unsafe`, `allow-syntax`) are errors; `panic` and
//! `determinism` are warnings. `--deny all` promotes every finding to
//! an error — the CI configuration. Exit code 1 when any error is
//! found, 2 on usage or I/O failure.

use std::path::PathBuf;
use std::process::ExitCode;

use hatt_analysis::walk::{run, Options};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny_all = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--deny" => match args.next().as_deref() {
                Some("all") => deny_all = true,
                _ => return usage("--deny only supports `all`"),
            },
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: hatt-lint [--root <dir>] [--deny all] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let outcome = match run(&Options { root }) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("hatt-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for f in &outcome.findings {
        let denied = deny_all || f.denied_by_default();
        let severity = if denied { "error" } else { "warning" };
        if denied {
            errors += 1;
        } else {
            warnings += 1;
        }
        if !quiet {
            println!("{severity}{f}");
        }
    }
    println!(
        "hatt-lint: {} files, {errors} errors, {warnings} warnings{}",
        outcome.files_checked,
        if deny_all { " (--deny all)" } else { "" }
    );
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("hatt-lint: {msg}\nusage: hatt-lint [--root <dir>] [--deny all] [--quiet]");
    ExitCode::from(2)
}
