//! `hatt-analysis` — the workspace invariant linter behind the
//! `hatt-lint` binary.
//!
//! The HATT workspace makes promises no general-purpose tool checks
//! for it: library code returns typed [`HattError`]s instead of
//! panicking, result paths iterate deterministically, `unsafe` is
//! forbidden outright, and the wire/service protocol tags are stable
//! registered strings. This crate enforces those promises with a
//! hand-rolled Rust [`lexer`] (the container has no crates-io access,
//! so `syn` is out of reach — and token-level rules are all these
//! invariants need) and a small [`rules`] engine:
//!
//! | rule | what it forbids | where |
//! |------|-----------------|-------|
//! | `panic` | `.unwrap()` / `.expect(…)` / `panic!` / `unreachable!` / `todo!` / `unimplemented!` in non-test code | library crates (not `bench`, not `src/bin`) |
//! | `determinism` | `HashMap` / `HashSet` | `core`, `mappings`, `pauli`, `circuit` |
//! | `unsafe` | `unsafe` without `// SAFETY:` | everywhere walked |
//! | `forbid-unsafe` | `lib.rs` missing `#![forbid(unsafe_code)]` | every `crates/*` + the facade |
//! | `registry` | wire/error tag drift vs `wire_registry.txt` | registered files |
//! | `allow-syntax` | malformed `hatt-lint:` directives | everywhere walked |
//!
//! Suppression is per-site and must carry a reason:
//! `// hatt-lint: allow(panic) -- <why>`. See `docs/ANALYSIS.md` for
//! the full catalogue and CLI usage.
//!
//! [`HattError`]: https://docs.rs/hatt-core
//!
//! # Examples
//!
//! ```
//! use std::path::Path;
//! use hatt_analysis::rules::{lint_source, FileChecks};
//!
//! let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
//! let findings = lint_source(Path::new("demo.rs"), src, &FileChecks::all());
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "panic");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;

pub mod lexer;
pub mod registry;
pub mod rules;
pub mod walk;

/// One lint finding: a rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (`panic`, `determinism`, `unsafe`,
    /// `forbid-unsafe`, `registry`, `allow-syntax`).
    pub rule: &'static str,
    /// Human-readable description with the suggested fix.
    pub message: String,
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// 1-based (byte) column.
    pub col: u32,
}

impl Finding {
    /// Whether this rule fails the lint run even without `--deny all`.
    /// Structural rules (hygiene, registry, directive syntax) are
    /// always errors; `panic`/`determinism` findings are warnings by
    /// default so the burn-down can land incrementally, and CI runs
    /// with `--deny all`.
    pub fn denied_by_default(&self) -> bool {
        matches!(
            self.rule,
            "registry" | "allow-syntax" | "unsafe" | "forbid-unsafe"
        )
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {}\n  --> {}:{}:{}",
            self.rule,
            self.message,
            self.file.display(),
            self.line,
            self.col
        )
    }
}
