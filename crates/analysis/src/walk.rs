//! The workspace walker: decides which rules apply to which files
//! (the scoping table in the [crate docs](crate)), runs them, and
//! aggregates findings.
//!
//! Scoping rationale:
//!
//! * `crates/bench` and every `src/bin/**` file are fail-fast CLI /
//!   harness code where `panic!` on bad input is the intended
//!   contract — the panic rule skips them.
//! * `vendor/*` crates emulate external APIs (`proptest`'s macros
//!   must panic to fail a test, `parallel` re-raises worker panics),
//!   so only the unsafe-hygiene rule applies there.
//! * `tests/`, `benches/` and `examples/` trees are test code.

use std::io;
use std::path::{Path, PathBuf};

use crate::registry;
use crate::rules::{has_forbid_unsafe, lint_source, FileChecks};
use crate::Finding;

/// Crates whose result paths must iterate deterministically.
const DETERMINISM_CRATES: [&str; 4] = ["core", "mappings", "pauli", "circuit"];

/// Lint run configuration.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workspace root (the directory holding `Cargo.toml`, `crates/`,
    /// `vendor/`).
    pub root: PathBuf,
}

/// Result of a lint run.
#[derive(Debug)]
pub struct Outcome {
    /// All findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files linted.
    pub files_checked: usize,
}

/// Runs every rule over the workspace at `opts.root`.
pub fn run(opts: &Options) -> io::Result<Outcome> {
    let root = &opts.root;
    let mut findings = Vec::new();
    let mut files_checked = 0usize;

    for (crate_dir, crate_name, is_vendor) in workspace_crates(root)? {
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src_dir, &mut files)?;
        files.sort();
        for file in files {
            let in_bin = file
                .strip_prefix(&src_dir)
                .ok()
                .is_some_and(|rel| rel.starts_with("bin"));
            let checks = FileChecks {
                panic: !is_vendor && crate_name != "bench" && !in_bin,
                determinism: !is_vendor && DETERMINISM_CRATES.contains(&crate_name.as_str()),
                unsafe_code: true,
            };
            let src = std::fs::read_to_string(&file)?;
            let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
            findings.extend(lint_source(&rel, &src, &checks));
            files_checked += 1;
        }
        // Unsafe hygiene: every first-party crate root forbids unsafe.
        if !is_vendor {
            let lib = src_dir.join("lib.rs");
            if let Ok(src) = std::fs::read_to_string(&lib) {
                if !has_forbid_unsafe(&src) {
                    findings.push(Finding {
                        rule: "forbid-unsafe",
                        message: "library crate root is missing `#![forbid(unsafe_code)]`"
                            .to_string(),
                        file: lib.strip_prefix(root).unwrap_or(&lib).to_path_buf(),
                        line: 1,
                        col: 1,
                    });
                }
            }
        }
    }

    findings.extend(registry::check(root));
    findings.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(Outcome {
        findings,
        files_checked,
    })
}

/// Enumerates `(dir, name, is_vendor)` for every workspace crate: the
/// root facade, `crates/*` and `vendor/*`.
fn workspace_crates(root: &Path) -> io::Result<Vec<(PathBuf, String, bool)>> {
    let mut out = vec![(root.to_path_buf(), "hatt".to_string(), false)];
    for (sub, vendor) in [("crates", false), ("vendor", true)] {
        let dir = root.join(sub);
        if !dir.is_dir() {
            continue;
        }
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            out.push((path, name, vendor));
        }
    }
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
