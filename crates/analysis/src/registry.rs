//! Wire-code stability: every stable identifier the wire format and
//! service protocol expose — `HattError` codes, `hatt-wire/1` envelope
//! kind tags and the format tag itself — is listed in
//! `crates/analysis/wire_registry.txt`, and this checker enforces that
//! the registry and the code agree:
//!
//! * each registered literal appears **exactly once** as a non-test
//!   string literal in its defining file (a second occurrence means a
//!   tag was re-typed instead of referencing the const — the classic
//!   way codes drift apart);
//! * the set of literals returned by `HattError::code` equals the
//!   registered `error_code` set (nothing unregistered, nothing stale);
//! * every `const KIND*`/`WIRE_FORMAT` string constant in a registered
//!   wire file is itself registered.
//!
//! Renaming a wire code therefore forces a matching registry edit — a
//! loud, reviewable diff — and accidental duplication or drift fails CI.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, str_content, Lexed, Token, TokenKind};
use crate::Finding;

/// Registry path relative to the workspace root.
pub const REGISTRY_PATH: &str = "crates/analysis/wire_registry.txt";

/// One parsed registry line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// `error_code`, `wire_kind` or `wire_format`.
    pub kind: String,
    /// The stable literal.
    pub literal: String,
    /// Defining file, relative to the workspace root.
    pub file: PathBuf,
}

/// Runs every registry check against the workspace at `root`.
pub fn check(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let reg_path = root.join(REGISTRY_PATH);
    let text = match std::fs::read_to_string(&reg_path) {
        Ok(t) => t,
        Err(e) => {
            findings.push(Finding {
                rule: "registry",
                message: format!("cannot read {REGISTRY_PATH}: {e}"),
                file: reg_path,
                line: 1,
                col: 1,
            });
            return findings;
        }
    };
    let entries = parse(&text, &reg_path, &mut findings);
    check_entries(root, &entries, &mut findings);
    findings
}

/// Parses the registry text; malformed lines become findings.
pub fn parse(text: &str, reg_path: &Path, findings: &mut Vec<Finding>) -> Vec<Entry> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(kind), Some(literal), Some(file), None)
                if matches!(kind, "error_code" | "wire_kind" | "wire_format") =>
            {
                entries.push(Entry {
                    kind: kind.to_string(),
                    literal: literal.to_string(),
                    file: PathBuf::from(file),
                });
            }
            _ => findings.push(Finding {
                rule: "registry",
                message: format!(
                    "malformed registry line `{line}`; expected \
                     `<error_code|wire_kind|wire_format> <literal> <file>`"
                ),
                file: reg_path.to_path_buf(),
                line: idx as u32 + 1,
                col: 1,
            }),
        }
    }
    entries
}

/// Verifies `entries` against the source files under `root`.
pub fn check_entries(root: &Path, entries: &[Entry], findings: &mut Vec<Finding>) {
    // Group by file so each file is read and lexed once.
    let mut by_file: BTreeMap<&Path, Vec<&Entry>> = BTreeMap::new();
    for e in entries {
        by_file.entry(&e.file).or_default().push(e);
    }
    for (rel, file_entries) in by_file {
        let path = root.join(rel);
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                findings.push(Finding {
                    rule: "registry",
                    message: format!("registry references unreadable file: {e}"),
                    file: path,
                    line: 1,
                    col: 1,
                });
                continue;
            }
        };
        let lx = lex(&src);
        let strings = non_test_strings(&lx);
        for entry in &file_entries {
            let n = strings.iter().filter(|(s, _)| *s == entry.literal).count();
            if n != 1 {
                findings.push(Finding {
                    rule: "registry",
                    message: format!(
                        "registered {} `{}` appears {n} times as a non-test string \
                         literal (must be exactly once — reference the const instead \
                         of re-typing the tag)",
                        entry.kind, entry.literal
                    ),
                    file: path.clone(),
                    line: 1,
                    col: 1,
                });
            }
        }
        if rel.ends_with("error.rs") {
            check_error_codes(&lx, &path, file_entries.as_slice(), findings);
        } else {
            check_wire_consts(&lx, &path, file_entries.as_slice(), findings);
        }
    }
}

/// All non-test string literals in the file, with their byte offsets.
fn non_test_strings(lx: &Lexed) -> Vec<(String, usize)> {
    let tests = super::rules::test_ranges(lx);
    lx.tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Str)
        .filter(|t| !tests.iter().any(|&(s, e)| t.start >= s && t.start < e))
        .filter_map(|t| str_content(lx.text(t)).map(|s| (s, t.start)))
        .collect()
}

/// Set-compares the literals inside `fn code(…) { … }` with the
/// registered `error_code` entries.
fn check_error_codes(lx: &Lexed, path: &Path, entries: &[&Entry], findings: &mut Vec<Finding>) {
    let registered: Vec<&str> = entries
        .iter()
        .filter(|e| e.kind == "error_code")
        .map(|e| e.literal.as_str())
        .collect();
    let Some(body) = fn_body(lx, "code") else {
        findings.push(Finding {
            rule: "registry",
            message: "no `fn code` found to check error codes against".to_string(),
            file: path.to_path_buf(),
            line: 1,
            col: 1,
        });
        return;
    };
    let returned: Vec<(String, usize)> = lx
        .tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Str && t.start >= body.0 && t.start < body.1)
        .filter_map(|t| str_content(lx.text(t)).map(|s| (s, t.start)))
        .collect();
    for (code, offset) in &returned {
        if !registered.contains(&code.as_str()) {
            let (line, col) = lx.line_col(*offset);
            findings.push(Finding {
                rule: "registry",
                message: format!(
                    "error code `{code}` is returned by `HattError::code` but not \
                     listed in {REGISTRY_PATH}"
                ),
                file: path.to_path_buf(),
                line,
                col,
            });
        }
    }
    for code in &registered {
        if !returned.iter().any(|(c, _)| c == code) {
            findings.push(Finding {
                rule: "registry",
                message: format!(
                    "registered error code `{code}` is not returned by `HattError::code` \
                     (stale registry entry?)"
                ),
                file: path.to_path_buf(),
                line: 1,
                col: 1,
            });
        }
    }
}

/// Every `const KIND*` / `const WIRE_FORMAT` string constant in a wire
/// file must be a registered literal.
fn check_wire_consts(lx: &Lexed, path: &Path, entries: &[&Entry], findings: &mut Vec<Finding>) {
    let registered: Vec<&str> = entries.iter().map(|e| e.literal.as_str()).collect();
    let code: Vec<&Token> = lx
        .tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || lx.text(tok) != "const" {
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else {
            continue;
        };
        let name = lx.text(name_tok);
        if !(name == "KIND" || name.starts_with("KIND_") || name == "WIRE_FORMAT") {
            continue;
        }
        // Scan to the terminating `;`, collecting string literals.
        for t in &code[i + 2..] {
            if t.kind == TokenKind::Punct && lx.text(t) == ";" {
                break;
            }
            if t.kind != TokenKind::Str {
                continue;
            }
            if let Some(content) = str_content(lx.text(t)) {
                if !registered.contains(&content.as_str()) {
                    let (line, col) = lx.line_col(t.start);
                    findings.push(Finding {
                        rule: "registry",
                        message: format!(
                            "wire constant `{name}` defines unregistered tag \
                             `{content}`; add it to {REGISTRY_PATH}"
                        ),
                        file: path.to_path_buf(),
                        line,
                        col,
                    });
                }
            }
        }
    }
}

/// Byte range of the brace body of the first `fn <name>` in the file.
fn fn_body(lx: &Lexed, name: &str) -> Option<(usize, usize)> {
    let code: Vec<&Token> = lx
        .tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokenKind::Ident
            && lx.text(t) == "fn"
            && code.get(i + 1).is_some_and(|n| lx.text(n) == name)
        {
            let mut j = i + 2;
            while j < code.len() {
                let tx = lx.text(code[j]);
                if code[j].kind == TokenKind::Punct && tx == "{" {
                    let mut depth = 0usize;
                    for k in &code[j..] {
                        let kx = lx.text(k);
                        if k.kind == TokenKind::Punct && kx == "{" {
                            depth += 1;
                        } else if k.kind == TokenKind::Punct && kx == "}" {
                            depth -= 1;
                            if depth == 0 {
                                return Some((code[j].end, k.start));
                            }
                        }
                    }
                    return Some((code[j].end, lx.src.len()));
                }
                if code[j].kind == TokenKind::Punct && tx == ";" {
                    break;
                }
                j += 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_comments_and_blanks_and_rejects_junk() {
        let mut findings = Vec::new();
        let entries = parse(
            "# header\n\nerror_code wire crates/core/src/error.rs\nbogus line here extra word\n",
            &PathBuf::from("reg.txt"),
            &mut findings,
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].literal, "wire");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "registry");
    }

    #[test]
    fn fn_body_finds_the_match_block() {
        let src = "impl E { pub fn code(&self) -> &str { match self { _ => \"x\" } } }";
        let lx = lex(src);
        let (s, e) = fn_body(&lx, "code").expect("body found");
        assert!(src[s..e].contains("\"x\""));
    }
}
