//! A minimal hand-rolled Rust lexer — just enough token structure for
//! the lint rules, with exact handling of the places naive text search
//! goes wrong: comments (line, block, nested block, doc), string
//! literals (cooked, raw with any `#` depth, byte), char literals vs
//! lifetimes, and raw identifiers (`r#ident`).
//!
//! The lexer never fails: unterminated comments/strings consume to end
//! of input (the compiler will reject such a file anyway; the linter
//! still classifies the prefix correctly). Tokens carry byte spans into
//! the source; [`Lexed`] resolves spans to 1-based line/column.

/// Classification of one source token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, `r#match`).
    Ident,
    /// Single punctuation character.
    Punct,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`.
    Str,
    /// Char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime: `'a`, `'static`, `'_`.
    Lifetime,
    /// Numeric literal (loosely scanned; rules never inspect these).
    Number,
    /// Comment of any flavour, doc comments included.
    Comment,
}

/// One token: a [`TokenKind`] plus its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// A lexed source file: the token stream plus a line table.
#[derive(Debug)]
pub struct Lexed<'a> {
    /// The source the spans index into.
    pub src: &'a str,
    /// All tokens in source order (whitespace dropped).
    pub tokens: Vec<Token>,
    line_starts: Vec<usize>,
}

impl Lexed<'_> {
    /// The source text of `token`.
    pub fn text(&self, token: &Token) -> &str {
        &self.src[token.start..token.end]
    }

    /// 1-based `(line, column)` of a byte offset (column counts bytes).
    pub fn line_col(&self, offset: usize) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.line_starts[line] + 1;
        (line as u32 + 1, col as u32)
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> u32 {
        self.line_col(offset).0
    }
}

/// Lexes `src` into a token stream. Infallible; see the [module
/// docs](self) for how malformed input degrades.
pub fn lex(src: &str) -> Lexed<'_> {
    let mut line_starts = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let mut tokens = Vec::new();
    let b = src.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        let start = i;
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'/' if b.get(i + 1) == Some(&b'/') => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    start,
                    end: i,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    start,
                    end: i,
                });
            }
            b'"' => {
                i = scan_cooked_string(b, i);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    start,
                    end: i,
                });
            }
            b'\'' => {
                let (end, kind) = scan_quote(src, b, i);
                i = end;
                tokens.push(Token {
                    kind,
                    start,
                    end: i,
                });
            }
            b'r' | b'b' => {
                if let Some((end, kind)) = scan_prefixed(b, i) {
                    i = end;
                    tokens.push(Token {
                        kind,
                        start,
                        end: i,
                    });
                } else {
                    i = scan_ident(src, i);
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        start,
                        end: i,
                    });
                }
            }
            _ if is_ident_start(src, i) => {
                i = scan_ident(src, i);
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    start,
                    end: i,
                });
            }
            b'0'..=b'9' => {
                i = scan_number(b, i);
                tokens.push(Token {
                    kind: TokenKind::Number,
                    start,
                    end: i,
                });
            }
            _ => {
                // One punctuation character (or one non-ASCII char that
                // can only legally appear inside literals/comments —
                // classified as punct, which no rule matches on).
                i += char_width(src, i);
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    start,
                    end: i,
                });
            }
        }
    }
    Lexed {
        src,
        tokens,
        line_starts,
    }
}

/// Scans a cooked (escape-processing) string starting at the opening
/// quote `b[i]`; returns the offset one past the closing quote.
fn scan_cooked_string(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    b.len()
}

/// Scans from a `'`: char literal or lifetime (see the disambiguation
/// note in the module docs).
fn scan_quote(src: &str, b: &[u8], i: usize) -> (usize, TokenKind) {
    // Escape ⇒ always a char literal: '\n', '\'', '\\', '\u{..}'.
    if b.get(i + 1) == Some(&b'\\') {
        let mut j = i + 2;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return (j + 1, TokenKind::Char),
                _ => j += 1,
            }
        }
        return (b.len(), TokenKind::Char);
    }
    // `'x'` (x may be any single char) is a char literal; `'ident` not
    // followed by a closing quote is a lifetime.
    if i + 1 < b.len() {
        let w = char_width(src, i + 1);
        if b.get(i + 1 + w) == Some(&b'\'') {
            return (i + 2 + w, TokenKind::Char);
        }
        if is_ident_start(src, i + 1) {
            let mut j = i + 1;
            while j < b.len() && is_ident_continue(src, j) {
                j += char_width(src, j);
            }
            return (j, TokenKind::Lifetime);
        }
    }
    // Stray quote (invalid Rust): classify as punct and move on.
    (i + 1, TokenKind::Punct)
}

/// Scans the `r`/`b`/`br` literal prefixes: raw strings (any `#`
/// depth), byte strings, byte chars and raw identifiers. Returns `None`
/// when position `i` starts a plain identifier instead (including raw
/// identifiers like `r#match`, which [`scan_ident`] handles).
fn scan_prefixed(b: &[u8], i: usize) -> Option<(usize, TokenKind)> {
    match (b[i], b.get(i + 1).copied()) {
        (b'b', Some(b'\'')) => {
            // Byte char b'x' / b'\n'.
            let mut k = i + 2;
            while k < b.len() {
                match b[k] {
                    b'\\' => k += 2,
                    b'\'' => return Some((k + 1, TokenKind::Char)),
                    _ => k += 1,
                }
            }
            Some((b.len(), TokenKind::Char))
        }
        // b"…" processes escapes like a cooked string.
        (b'b', Some(b'"')) => Some((scan_cooked_string(b, i + 1), TokenKind::Str)),
        (b'b', Some(b'r')) => scan_raw_string(b, i + 2),
        (b'r', _) => scan_raw_string(b, i + 1),
        _ => None,
    }
}

/// Scans a raw-string body starting at the `#`s/quote after the
/// `r`/`br` prefix: `#`* then `"`, ending at `"` followed by the same
/// number of `#`s. `None` when this is not a raw string after all.
fn scan_raw_string(b: &[u8], mut j: usize) -> Option<(usize, TokenKind)> {
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        return None;
    }
    j += 1;
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut h = 0usize;
            while h < hashes && b.get(k) == Some(&b'#') {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return Some((k, TokenKind::Str));
            }
        }
        j += 1;
    }
    Some((b.len(), TokenKind::Str))
}

/// Scans an identifier (including a leading `r#`).
fn scan_ident(src: &str, mut i: usize) -> usize {
    let b = src.as_bytes();
    if b[i] == b'r' && b.get(i + 1) == Some(&b'#') {
        i += 2;
    }
    while i < b.len() && is_ident_continue(src, i) {
        i += char_width(src, i);
    }
    i
}

/// Scans a numeric literal loosely: digits, `_`, alphanumeric suffixes
/// and `.` when followed by a digit (so `x.0.unwrap()` keeps `.unwrap`
/// as separate tokens while `1.25` stays one number).
fn scan_number(b: &[u8], mut i: usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => i += 1,
            b'.' if matches!(b.get(i + 1), Some(b'0'..=b'9')) => i += 2,
            _ => break,
        }
    }
    i
}

fn is_ident_start(src: &str, i: usize) -> bool {
    matches!(src.as_bytes()[i], b'a'..=b'z' | b'A'..=b'Z' | b'_')
}

fn is_ident_continue(src: &str, i: usize) -> bool {
    matches!(src.as_bytes()[i], b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')
}

fn char_width(src: &str, i: usize) -> usize {
    let b = src.as_bytes()[i];
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

/// The unquoted content of a string-literal token's text, or `None`
/// when `text` is not a string literal. Simple escapes (`\"`, `\\`,
/// `\n`, `\t`, `\r`, `\0`, `\'`) are processed in cooked strings; raw
/// strings are returned verbatim.
pub fn str_content(text: &str) -> Option<String> {
    let t = text.strip_prefix('b').unwrap_or(text);
    if let Some(rest) = t.strip_prefix('r') {
        let depth = rest.len() - rest.trim_start_matches('#').len();
        let body = rest[depth..]
            .strip_prefix('"')?
            .strip_suffix(&"#".repeat(depth))?
            .strip_suffix('"')?;
        return Some(body.to_string());
    }
    let body = t.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(body.len());
    let mut chars = body.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('0') => out.push('\0'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        let lx = lex(src);
        lx.tokens
            .iter()
            .map(|t| (t.kind, lx.text(t).to_string()))
            .collect()
    }

    #[test]
    fn comments_strings_and_chars_are_single_tokens() {
        let got = kinds("a.unwrap(); // .unwrap() in comment\n\"x.unwrap()\" '\"' 'a'");
        let texts: Vec<&str> = got.iter().map(|(_, t)| t.as_str()).collect();
        assert!(texts.contains(&"// .unwrap() in comment"));
        assert!(texts.contains(&"\"x.unwrap()\""));
        let unwraps = got
            .iter()
            .filter(|(k, t)| *k == TokenKind::Ident && t == "unwrap")
            .count();
        assert_eq!(unwraps, 1, "only the real call site lexes as an ident");
    }

    #[test]
    fn nested_block_comments_close_at_the_matching_depth() {
        let got = kinds("/* a /* b */ c */ after");
        assert_eq!(got[0].0, TokenKind::Comment);
        assert_eq!(got[0].1, "/* a /* b */ c */");
        assert_eq!(got[1], (TokenKind::Ident, "after".to_string()));
    }

    #[test]
    fn raw_strings_at_any_hash_depth() {
        let got = kinds(r####"r#"inner "quote" panic!()"# tail"####);
        assert_eq!(got[0].0, TokenKind::Str);
        assert_eq!(got[1], (TokenKind::Ident, "tail".to_string()));
        let two = kinds("r##\"has \"# inside\"## x");
        assert_eq!(two[0].0, TokenKind::Str);
        assert_eq!(two[1], (TokenKind::Ident, "x".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let got = kinds("fn f<'a>(x: &'a str) -> &'static str { 'x'; '\\n'; x }");
        let lifetimes: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let got = kinds("let r#match = r#fn; r#\"raw str\"#;");
        assert_eq!(got[1], (TokenKind::Ident, "r#match".to_string()));
        assert_eq!(got[3], (TokenKind::Ident, "r#fn".to_string()));
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("r#\"")));
    }

    #[test]
    fn tuple_field_access_keeps_method_idents_separate() {
        let got = kinds("x.0.unwrap()");
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unwrap"));
    }

    #[test]
    fn line_col_resolution() {
        let lx = lex("ab\ncde\nf");
        assert_eq!(lx.line_col(0), (1, 1));
        assert_eq!(lx.line_col(3), (2, 1));
        assert_eq!(lx.line_col(5), (2, 3));
        assert_eq!(lx.line_col(7), (3, 1));
    }

    #[test]
    fn str_content_unquotes_every_flavour() {
        assert_eq!(str_content("\"abc\""), Some("abc".to_string()));
        assert_eq!(str_content("\"a\\\"b\""), Some("a\"b".to_string()));
        assert_eq!(str_content("r\"abc\""), Some("abc".to_string()));
        assert_eq!(str_content("r#\"a\"b\"#"), Some("a\"b".to_string()));
        assert_eq!(str_content("b\"abc\""), Some("abc".to_string()));
        assert_eq!(str_content("not a string"), None);
    }
}
