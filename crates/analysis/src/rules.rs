//! The token-level lint rules: panic surface, determinism and unsafe
//! hygiene, plus the `hatt-lint: allow(...)` directive machinery they
//! share. Rules operate on the [`lexer`](crate::lexer) token stream, so
//! occurrences inside strings, comments and doc text never count, and
//! code inside `#[cfg(test)]` / `#[test]` / `#[should_panic]` items is
//! exempt (tests are *supposed* to assert on panics).

use std::path::Path;

use crate::lexer::{lex, Lexed, Token, TokenKind};
use crate::Finding;

/// Which rules apply to one file (the walker decides per path; see
/// `docs/ANALYSIS.md` for the scoping table).
#[derive(Debug, Clone, Copy)]
pub struct FileChecks {
    /// Forbid `.unwrap()`, `.expect(…)`, `panic!`, `unreachable!`,
    /// `todo!`, `unimplemented!` outside tests.
    pub panic: bool,
    /// Forbid `HashMap`/`HashSet` (iteration order leaks into results).
    pub determinism: bool,
    /// Require a `// SAFETY:` comment above any `unsafe`.
    pub unsafe_code: bool,
}

impl FileChecks {
    /// Every token rule enabled (the fixture-test configuration).
    pub fn all() -> Self {
        FileChecks {
            panic: true,
            determinism: true,
            unsafe_code: true,
        }
    }
}

/// The macro names the panic rule forbids (each match requires a
/// following `!`).
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
/// The method names the panic rule forbids (each match requires a
/// preceding `.`).
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
/// The nondeterministically-iterating collections the determinism rule
/// forbids in result-path crates.
const NONDET_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Lints one file's source under `checks`, returning all findings.
/// Never touches the filesystem; the walker hands in the content.
pub fn lint_source(file: &Path, src: &str, checks: &FileChecks) -> Vec<Finding> {
    let lx = lex(src);
    let tests = test_ranges(&lx);
    let mut allows = collect_allows(&lx, file);
    let mut findings = std::mem::take(&mut allows.malformed);
    let in_test = |offset: usize| tests.iter().any(|&(s, e)| offset >= s && offset < e);

    let code: Vec<&Token> = lx
        .tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || in_test(tok.start) {
            continue;
        }
        let name = lx.text(tok).trim_start_matches("r#");
        let line = lx.line_of(tok.start);
        if checks.panic {
            let method = PANIC_METHODS.contains(&name) && i > 0 && is_punct(&lx, code[i - 1], '.');
            let mac = PANIC_MACROS.contains(&name)
                && code.get(i + 1).is_some_and(|n| is_punct(&lx, n, '!'));
            if (method || mac) && !allows.covers("panic", line) {
                let what = if method {
                    format!(".{name}()")
                } else {
                    format!("{name}!")
                };
                findings.push(finding(
                    "panic",
                    file,
                    &lx,
                    tok,
                    format!(
                        "`{what}` in non-test library code; return a typed error or \
                         annotate `// hatt-lint: allow(panic) -- <why>`"
                    ),
                ));
            }
        }
        if checks.determinism && NONDET_TYPES.contains(&name) && !allows.covers("determinism", line)
        {
            findings.push(finding(
                "determinism",
                file,
                &lx,
                tok,
                format!(
                    "`{name}` in a result-path crate: iteration order is \
                     nondeterministic; use BTreeMap/BTreeSet or a sorted \
                     traversal (or annotate \
                     `// hatt-lint: allow(determinism) -- <why>`)"
                ),
            ));
        }
        if checks.unsafe_code && name == "unsafe" && !has_safety_comment(&lx, line) {
            findings.push(finding(
                "unsafe",
                file,
                &lx,
                tok,
                "`unsafe` without a `// SAFETY:` comment on the same or the \
                 preceding two lines"
                    .to_string(),
            ));
        }
    }
    findings
}

/// Whether the token-sequence `#![forbid(unsafe_code)]` appears in
/// `src` (comment- and string-proof; used by the walker's per-crate
/// hygiene check on `lib.rs`).
pub fn has_forbid_unsafe(src: &str) -> bool {
    let lx = lex(src);
    let code: Vec<&Token> = lx
        .tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    code.windows(8).any(|w| {
        is_punct(&lx, w[0], '#')
            && is_punct(&lx, w[1], '!')
            && is_punct(&lx, w[2], '[')
            && lx.text(w[3]) == "forbid"
            && is_punct(&lx, w[4], '(')
            && lx.text(w[5]) == "unsafe_code"
            && is_punct(&lx, w[6], ')')
            && is_punct(&lx, w[7], ']')
    })
}

fn finding(rule: &'static str, file: &Path, lx: &Lexed, tok: &Token, message: String) -> Finding {
    let (line, col) = lx.line_col(tok.start);
    Finding {
        rule,
        message,
        file: file.to_path_buf(),
        line,
        col,
    }
}

fn is_punct(lx: &Lexed, tok: &Token, c: char) -> bool {
    tok.kind == TokenKind::Punct && lx.text(tok).starts_with(c)
}

/// Allow directives found in one file: for each rule, the set of lines
/// a directive covers (its own line and the next — a trailing comment
/// annotates its own line, a standalone comment annotates the line
/// below).
struct Allows {
    covered: Vec<(String, u32)>,
    malformed: Vec<Finding>,
}

impl Allows {
    fn covers(&self, rule: &str, line: u32) -> bool {
        self.covered
            .iter()
            .any(|(r, l)| r == rule && (line == *l || line == *l + 1))
    }
}

/// Rules an allow directive may name. `unsafe` is deliberately absent:
/// its annotation is the `// SAFETY:` comment itself.
const ALLOWABLE: [&str; 2] = ["panic", "determinism"];

fn collect_allows(lx: &Lexed, file: &Path) -> Allows {
    let mut covered = Vec::new();
    let mut malformed = Vec::new();
    for tok in lx.tokens.iter().filter(|t| t.kind == TokenKind::Comment) {
        let text = lx.text(tok);
        // A directive is a plain (non-doc) comment whose content
        // *starts* with the marker — prose that merely mentions
        // `hatt-lint:` (docs, this very file) is not a directive.
        let body = text
            .strip_prefix("//")
            .or_else(|| text.strip_prefix("/*"))
            .unwrap_or(text);
        if body.starts_with('/') || body.starts_with('!') || body.starts_with('*') {
            continue; // doc comment
        }
        let Some(directive) = body.trim().strip_prefix("hatt-lint:") else {
            continue;
        };
        let line = lx.line_of(tok.start);
        let directive = directive.trim();
        match parse_allow(directive) {
            Ok(rule) => covered.push((rule.to_string(), line)),
            Err(why) => {
                let (line, col) = lx.line_col(tok.start);
                malformed.push(Finding {
                    rule: "allow-syntax",
                    message: format!(
                        "malformed hatt-lint directive ({why}); expected \
                         `hatt-lint: allow(<rule>) -- <reason>`"
                    ),
                    file: file.to_path_buf(),
                    line,
                    col,
                });
            }
        }
    }
    Allows { covered, malformed }
}

/// Parses `allow(<rule>) -- <reason>`, returning the rule name.
fn parse_allow(directive: &str) -> Result<&str, String> {
    let rest = directive
        .strip_prefix("allow(")
        .ok_or_else(|| "missing `allow(`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "missing closing `)`".to_string())?;
    let rule = rest[..close].trim();
    if !ALLOWABLE.contains(&rule) {
        return Err(format!(
            "unknown rule `{rule}` (allowed: {})",
            ALLOWABLE.join(", ")
        ));
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail.strip_prefix("--").map(str::trim).unwrap_or_default();
    if reason.is_empty() {
        return Err("missing ` -- <reason>`".to_string());
    }
    Ok(rule)
}

/// Whether a comment containing `SAFETY:` sits on `line` or the two
/// lines above it.
fn has_safety_comment(lx: &Lexed, line: u32) -> bool {
    lx.tokens.iter().any(|t| {
        t.kind == TokenKind::Comment && lx.text(t).contains("SAFETY:") && {
            let l = lx.line_of(t.start);
            l <= line && line <= l + 2
        }
    })
}

/// Byte ranges of test-only items: any item annotated `#[test]`,
/// `#[should_panic]` or `#[cfg(test)]` (the whole following
/// brace-delimited body). `#[cfg(not(test))]` and `#[cfg_attr(test,
/// …)]` do **not** exempt — that code is compiled into the library.
pub(crate) fn test_ranges(lx: &Lexed) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = lx
        .tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(is_punct(lx, code[i], '#') && code.get(i + 1).is_some_and(|t| is_punct(lx, t, '['))) {
            i += 1;
            continue;
        }
        let attr_start = code[i].start;
        let Some(after) = skip_attr(lx, &code, i) else {
            break;
        };
        if !attr_is_test(lx, &code[i..after]) {
            i = after;
            continue;
        }
        // Skip any further attributes between the test marker and the
        // item (e.g. `#[test] #[ignore] fn …`).
        let mut j = after;
        while code.get(j).is_some_and(|t| is_punct(lx, t, '#'))
            && code.get(j + 1).is_some_and(|t| is_punct(lx, t, '['))
        {
            match skip_attr(lx, &code, j) {
                Some(next) => j = next,
                None => return ranges,
            }
        }
        // The item body is the next `{ … }` before any `;` (a `;`
        // first means a bodyless item — nothing to exempt).
        while j < code.len() && !is_punct(lx, code[j], '{') && !is_punct(lx, code[j], ';') {
            j += 1;
        }
        if j < code.len() && is_punct(lx, code[j], '{') {
            let end = match_brace(lx, &code, j);
            ranges.push((attr_start, end));
            // Resume after the body: nested test attrs are already
            // covered by this range.
            while i < code.len() && code[i].start < end {
                i += 1;
            }
            continue;
        }
        i = j;
    }
    ranges
}

/// Skips the attribute starting at `code[i] == '#'`; returns the index
/// after the matching `]`, or `None` at end of input.
fn skip_attr(lx: &Lexed, code: &[&Token], i: usize) -> Option<usize> {
    let mut j = i + 1; // at '['
    let mut depth = 0usize;
    while j < code.len() {
        if is_punct(lx, code[j], '[') {
            depth += 1;
        } else if is_punct(lx, code[j], ']') {
            depth -= 1;
            if depth == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// Whether the attribute tokens (from `#` through `]`) mark a test-only
/// item.
fn attr_is_test(lx: &Lexed, attr: &[&Token]) -> bool {
    let idents: Vec<&str> = attr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| lx.text(t))
        .collect();
    match idents.first() {
        Some(&"test") | Some(&"should_panic") => true,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// Byte offset one past the `}` matching the `{` at `code[open]` (or
/// end of input when unbalanced).
fn match_brace(lx: &Lexed, code: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    for t in &code[open..] {
        if is_punct(lx, t, '{') {
            depth += 1;
        } else if is_punct(lx, t, '}') {
            depth -= 1;
            if depth == 0 {
                return t.end;
            }
        }
    }
    lx.src.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn check(src: &str) -> Vec<Finding> {
        lint_source(&PathBuf::from("x.rs"), src, &FileChecks::all())
    }

    fn rules(src: &str) -> Vec<&'static str> {
        check(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn flags_the_whole_panic_family() {
        assert_eq!(rules("fn f(x: Option<u8>) -> u8 { x.unwrap() }"), ["panic"]);
        assert_eq!(rules("fn f() { q.expect(\"msg\"); }"), ["panic"]);
        assert_eq!(rules("fn f() { panic!(\"boom\"); }"), ["panic"]);
        assert_eq!(rules("fn f() { unreachable!() }"), ["panic"]);
        assert_eq!(rules("fn f() { todo!() }"), ["panic"]);
        assert_eq!(rules("fn f() { unimplemented!() }"), ["panic"]);
    }

    #[test]
    fn ignores_lookalikes() {
        // unwrap_or_else is one identifier, not `.unwrap`.
        assert!(rules("fn f() { x.unwrap_or_else(|| 1); }").is_empty());
        assert!(rules("fn f() { x.unwrap_or(1).unwrap_or_default(); }").is_empty());
        // A fn named panic without `!`, an expect without `.`.
        assert!(rules("fn panic_free() { let expect = 1; }").is_empty());
        // Inside strings and comments: never flagged.
        assert!(rules("fn f() { \"x.unwrap()\"; } // .unwrap() panic!()").is_empty());
        assert!(rules("/* panic!() */ fn f() {}").is_empty());
        assert!(rules("fn f() { r#\"panic!() .unwrap()\"#; }").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        assert!(rules("#[test]\nfn t() { x.unwrap(); }").is_empty());
        assert!(rules("#[should_panic]\nfn t() { panic!(); }").is_empty());
        assert!(rules("#[cfg(test)]\nmod tests { fn helper() { x.unwrap(); } }").is_empty());
        // #[cfg(not(test))] is library code and stays linted.
        assert_eq!(
            rules("#[cfg(not(test))]\nfn f() { x.unwrap(); }"),
            ["panic"]
        );
        // Code after a test item is linted again.
        assert_eq!(
            rules("#[test]\nfn t() { x.unwrap(); }\nfn f() { y.unwrap(); }"),
            ["panic"]
        );
    }

    #[test]
    fn allow_directive_with_reason_suppresses() {
        assert!(rules(
            "fn f() {\n    // hatt-lint: allow(panic) -- invariant: never empty\n    x.unwrap();\n}"
        )
        .is_empty());
        assert!(rules(
            "fn f() { x.unwrap(); // hatt-lint: allow(panic) -- documented invariant\n}"
        )
        .is_empty());
        // The directive is line-scoped: two lines below is too far.
        assert_eq!(
            rules("// hatt-lint: allow(panic) -- reason\n\nfn f() { x.unwrap(); }"),
            ["panic"]
        );
    }

    #[test]
    fn prose_mentions_of_the_marker_are_not_directives() {
        // Doc comments and mid-comment mentions never parse as
        // directives (so they cannot be malformed either).
        assert!(rules("/// the `hatt-lint: allow(...)` directive\nfn f() {}").is_empty());
        assert!(rules("//! see hatt-lint: allow rules table\nfn f() {}").is_empty());
        assert!(rules("// about hatt-lint: allow(panic) semantics\nfn f() {}").is_empty());
        // And a doc comment cannot suppress a real finding.
        assert_eq!(
            rules("/// hatt-lint: allow(panic) -- nope\nfn f() { x.unwrap() }"),
            ["panic"]
        );
    }

    #[test]
    fn allow_directive_without_reason_is_itself_a_finding() {
        assert_eq!(
            rules("// hatt-lint: allow(panic)\nfn f() { x.unwrap(); }"),
            ["allow-syntax", "panic"]
        );
        assert_eq!(
            rules("// hatt-lint: allow(nonsense) -- why\nfn f() {}"),
            ["allow-syntax"]
        );
    }

    #[test]
    fn determinism_rule_flags_hash_collections() {
        assert_eq!(
            rules("use std::collections::HashMap;\nfn f(m: HashMap<u8, u8>) {}"),
            ["determinism", "determinism"]
        );
        assert!(rules("use std::collections::BTreeMap;").is_empty());
        assert!(rules(
            "// hatt-lint: allow(determinism) -- keyed output is re-sorted\nuse std::collections::HashSet;"
        )
        .is_empty());
    }

    #[test]
    fn unsafe_requires_a_safety_comment() {
        assert_eq!(rules("fn f() { unsafe { g() } }"), ["unsafe"]);
        assert!(
            rules("fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g() }\n}")
                .is_empty()
        );
    }

    #[test]
    fn forbid_unsafe_detection_is_token_exact() {
        assert!(has_forbid_unsafe("#![forbid(unsafe_code)]\nfn f() {}"));
        assert!(has_forbid_unsafe("#! [ forbid ( unsafe_code ) ]"));
        assert!(!has_forbid_unsafe("// #![forbid(unsafe_code)]"));
        assert!(!has_forbid_unsafe(
            "const X: &str = \"#![forbid(unsafe_code)]\";"
        ));
        assert!(!has_forbid_unsafe("#![deny(unsafe_code)]"));
    }

    #[test]
    fn findings_carry_position() {
        let f = check("fn f() {\n    x.unwrap();\n}");
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].col), (2, 7));
    }
}
