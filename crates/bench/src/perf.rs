//! The scalability/perf sweep behind `fig12` and the `perf` harness:
//! timed HATT constructions on the paper's `H_F = Σ_i M_i` workload
//! (§V-E) across N, with summary statistics per point and least-squares
//! log-log slope fits against the paper's complexity claims
//! (Algorithm 1 `O(N⁴)`, Algorithm 3 `O(N³)`) — plus the
//! quality-vs-time study of the [`SelectionPolicy`] ladder
//! ([`policy_tradeoff`]), so `BENCH_perf.json` records both how fast the
//! kernel is *and* what each extra millisecond of search buys.

use std::time::Instant;

use criterion::{summarize, Stats};
use hatt_core::{hatt_with, HattMapping, HattOptions, Variant};
use hatt_fermion::models::NeutrinoModel;
use hatt_fermion::MajoranaSum;
use hatt_mappings::{jordan_wigner, FermionMapping, SelectionPolicy};

use crate::json::Json;

/// Sweep configuration shared by `fig12` and `perf`.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Mode counts to visit, ascending.
    pub ns: Vec<usize>,
    /// Timed construction samples per (variant, N) point.
    pub samples: usize,
    /// Per-point wall-clock budget in seconds: once a point's *first*
    /// sample exceeds it, the variant stops at that N (the point is
    /// still recorded from that single sample).
    pub budget_per_point: f64,
    /// Smallest N included in the slope fit (asymptotics need the tail).
    pub slope_min_n: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            ns: vec![8, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96, 100],
            samples: 3,
            budget_per_point: 10.0,
            slope_min_n: 32,
        }
    }
}

impl SweepConfig {
    /// The quick configuration used by `perf --smoke` and CI.
    pub fn smoke() -> Self {
        SweepConfig {
            ns: vec![8, 12, 16, 20, 24],
            samples: 3,
            budget_per_point: 2.0,
            slope_min_n: 12,
        }
    }
}

/// One timed (variant, N) sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Mode count.
    pub n: usize,
    /// Wall-clock statistics over the samples, in seconds.
    pub stats: Stats,
    /// Total settled Pauli weight (the construction objective) —
    /// golden-checked so perf work cannot silently change results.
    pub pauli_weight: usize,
    /// Candidate triples evaluated across the construction.
    pub candidates: u64,
    /// Pairwise-memo hits inside the selection kernel.
    pub memo_hits: u64,
    /// Pairwise-memo misses.
    pub memo_misses: u64,
}

/// A completed per-variant sweep.
#[derive(Debug, Clone)]
pub struct VariantSweep {
    /// The algorithm variant swept.
    pub variant: Variant,
    /// Points actually completed (the budget may truncate the tail).
    pub points: Vec<SweepPoint>,
    /// Fitted log-log slope over points with `n ≥ slope_min_n`
    /// (`None` with fewer than two such points).
    pub slope: Option<f64>,
}

/// The paper's complexity claim for a variant, for reports.
pub fn paper_complexity(variant: Variant) -> &'static str {
    match variant {
        Variant::Unopt => "O(N^4)",
        Variant::Paired => "O(N^4) worst-case traversals",
        Variant::Cached => "O(N^3)",
    }
}

/// Short machine-readable variant key (`unopt` / `paired` / `cached`).
pub fn variant_key(variant: Variant) -> &'static str {
    match variant {
        Variant::Unopt => "unopt",
        Variant::Paired => "paired",
        Variant::Cached => "cached",
    }
}

/// Runs one timed construction, returning `(seconds, mapping)`.
pub fn time_construction(h: &MajoranaSum, variant: Variant) -> (f64, HattMapping) {
    let t0 = Instant::now();
    let m = hatt_with(
        h,
        &HattOptions {
            variant,
            naive_weight: false,
            ..Default::default()
        },
    );
    let dt = t0.elapsed().as_secs_f64();
    (dt, m)
}

/// Sweeps one variant over the configured Ns on `H_F = Σ_i M_i`,
/// stopping early when a point blows the per-point budget.
pub fn sweep_variant(cfg: &SweepConfig, variant: Variant) -> VariantSweep {
    let mut points = Vec::new();
    for &n in &cfg.ns {
        let h = MajoranaSum::uniform_singles(n);
        let (first, mapping) = time_construction(&h, variant);
        let mut samples = vec![first];
        let over_budget = first > cfg.budget_per_point;
        if !over_budget {
            for _ in 1..cfg.samples {
                samples.push(time_construction(&h, variant).0);
            }
        }
        let stats = mapping.stats();
        points.push(SweepPoint {
            n,
            stats: summarize(&samples),
            pauli_weight: stats.total_weight(),
            candidates: stats.total_candidates(),
            memo_hits: stats.memo_hits,
            memo_misses: stats.memo_misses,
        });
        if over_budget {
            break;
        }
    }
    let slope = loglog_slope(
        &points
            .iter()
            .filter(|p| p.n >= cfg.slope_min_n)
            .map(|p| (p.n, p.stats.median))
            .collect::<Vec<_>>(),
    );
    VariantSweep {
        variant,
        points,
        slope,
    }
}

/// One (case, policy) cell of the quality-vs-time study.
#[derive(Debug, Clone)]
pub struct PolicyPoint {
    /// Benchmark case name.
    pub case: String,
    /// Mode count of the case.
    pub n_modes: usize,
    /// The selection policy measured.
    pub policy: SelectionPolicy,
    /// Mapped Pauli weight under this policy.
    pub pauli_weight: usize,
    /// Jordan-Wigner Pauli weight on the same case (the quality bar).
    pub jw_weight: usize,
    /// Construction wall time in seconds (single run — quality, not
    /// timing noise, is the signal here).
    pub seconds: f64,
}

/// The policy ladder measured by the perf harness.
pub fn policy_ladder() -> Vec<SelectionPolicy> {
    vec![
        SelectionPolicy::Vanilla,
        SelectionPolicy::Greedy,
        SelectionPolicy::Lookahead { width: 8 },
        SelectionPolicy::Beam { width: 8 },
        SelectionPolicy::Restarts,
    ]
}

/// Measures the policy ladder on a fixed set of tie-heavy benchmark
/// cases (the neutrino family — the workload where the myopic objective
/// used to lose to Jordan-Wigner). `smoke` keeps only the smallest case.
pub fn policy_tradeoff(smoke: bool) -> Vec<PolicyPoint> {
    let mut cases: Vec<(String, MajoranaSum)> = Vec::new();
    let sizes: &[(usize, usize)] = if smoke {
        &[(3, 2)]
    } else {
        &[(3, 2), (4, 2), (5, 2)]
    };
    for &(sites, flavors) in sizes {
        let model = NeutrinoModel::new(sites, flavors);
        let mut h = MajoranaSum::from_fermion(&model.hamiltonian());
        let _ = h.take_identity();
        cases.push((format!("neutrino {}", model.label()), h));
    }
    let mut points = Vec::new();
    for (case, h) in &cases {
        let n = h.n_modes();
        let jw_weight = jordan_wigner(n).map_majorana_sum(h).weight();
        for policy in policy_ladder() {
            let t0 = Instant::now();
            let m = hatt_with(h, &HattOptions::with_policy(policy));
            let seconds = t0.elapsed().as_secs_f64();
            points.push(PolicyPoint {
                case: case.clone(),
                n_modes: n,
                policy,
                pauli_weight: m.map_majorana_sum(h).weight(),
                jw_weight,
                seconds,
            });
        }
    }
    points
}

/// Least-squares slope of `ln t` against `ln n`; `None` with fewer than
/// two usable (positive-time) points.
pub fn loglog_slope(points: &[(usize, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, t)| t > 0.0)
        .map(|&(n, t)| ((n as f64).ln(), t.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom == 0.0 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Serializes a sweep set to the `BENCH_perf.json` document
/// (`schema: "hatt-perf/1"`; see README "Perf harness" and
/// docs/REPRODUCTION.md for the schema). `policies` is the
/// quality-vs-time study from [`policy_tradeoff`] (additive field; older
/// documents simply lack it).
pub fn sweeps_to_json(
    cfg: &SweepConfig,
    smoke: bool,
    sweeps: &[VariantSweep],
    policies: &[PolicyPoint],
) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("hatt-perf/1")),
        ("workload".into(), Json::str("uniform_singles")),
        ("smoke".into(), Json::Bool(smoke)),
        ("samples_per_point".into(), Json::int(cfg.samples as u64)),
        ("budget_per_point_s".into(), Json::Num(cfg.budget_per_point)),
        ("slope_fit_min_n".into(), Json::int(cfg.slope_min_n as u64)),
        (
            "variants".into(),
            Json::Arr(sweeps.iter().map(sweep_to_json).collect()),
        ),
        (
            "policies".into(),
            Json::Arr(policies.iter().map(policy_point_to_json).collect()),
        ),
    ])
}

fn policy_point_to_json(p: &PolicyPoint) -> Json {
    Json::Obj(vec![
        ("case".into(), Json::str(&p.case)),
        ("n_modes".into(), Json::int(p.n_modes as u64)),
        ("policy".into(), Json::str(p.policy.label())),
        ("pauli_weight".into(), Json::int(p.pauli_weight as u64)),
        ("jw_weight".into(), Json::int(p.jw_weight as u64)),
        ("seconds".into(), Json::Num(p.seconds)),
    ])
}

fn sweep_to_json(sweep: &VariantSweep) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(variant_key(sweep.variant))),
        ("label".into(), Json::str(sweep.variant.label())),
        (
            "paper_complexity".into(),
            Json::str(paper_complexity(sweep.variant)),
        ),
        (
            "loglog_slope".into(),
            sweep.slope.map_or(Json::Null, Json::Num),
        ),
        (
            "points".into(),
            Json::Arr(sweep.points.iter().map(point_to_json).collect()),
        ),
    ])
}

fn point_to_json(p: &SweepPoint) -> Json {
    Json::Obj(vec![
        ("n".into(), Json::int(p.n as u64)),
        ("mean_s".into(), Json::Num(p.stats.mean)),
        ("median_s".into(), Json::Num(p.stats.median)),
        ("stddev_s".into(), Json::Num(p.stats.stddev)),
        ("min_s".into(), Json::Num(p.stats.min)),
        ("max_s".into(), Json::Num(p.stats.max)),
        ("samples".into(), Json::int(p.stats.n as u64)),
        ("pauli_weight".into(), Json::int(p.pauli_weight as u64)),
        ("candidates".into(), Json::int(p.candidates)),
        ("memo_hits".into(), Json::int(p.memo_hits)),
        ("memo_misses".into(), Json::int(p.memo_misses)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_perfect_cubic_is_three() {
        let pts: Vec<(usize, f64)> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| (n, (n as f64).powi(3)))
            .collect();
        let s = loglog_slope(&pts).unwrap();
        assert!((s - 3.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn slope_needs_two_points() {
        assert!(loglog_slope(&[]).is_none());
        assert!(loglog_slope(&[(8, 1.0)]).is_none());
        assert!(loglog_slope(&[(8, 0.0), (16, 0.0)]).is_none());
    }

    #[test]
    fn smoke_sweep_produces_points_and_json() {
        let cfg = SweepConfig {
            ns: vec![4, 6, 8],
            samples: 2,
            budget_per_point: 5.0,
            slope_min_n: 4,
        };
        let sweeps: Vec<VariantSweep> = [Variant::Cached, Variant::Unopt]
            .iter()
            .map(|&v| sweep_variant(&cfg, v))
            .collect();
        assert_eq!(sweeps[0].points.len(), 3);
        for p in &sweeps[0].points {
            assert!(p.pauli_weight > 0);
            assert!(p.candidates > 0);
            assert_eq!(p.stats.n, 2);
        }
        // The cached variant's selection loop must actually hit the memo.
        assert!(sweeps[0].points[0].memo_hits > 0);
        let policies = policy_tradeoff(true);
        assert_eq!(policies.len(), policy_ladder().len());
        for p in &policies {
            assert!(p.pauli_weight > 0);
            if p.policy == SelectionPolicy::Restarts {
                assert!(
                    p.pauli_weight <= p.jw_weight,
                    "restarts must not lose to JW"
                );
            }
        }
        let doc = sweeps_to_json(&cfg, true, &sweeps, &policies).render();
        assert!(doc.starts_with(r#"{"schema":"hatt-perf/1""#));
        assert!(doc.contains(r#""name":"cached""#));
        assert!(doc.contains(r#""pauli_weight":"#));
        assert!(doc.contains(r#""policy":"restarts""#));
    }

    #[test]
    fn budget_truncates_the_tail() {
        let cfg = SweepConfig {
            ns: vec![4, 8, 12],
            samples: 2,
            budget_per_point: 0.0, // everything is over budget
            slope_min_n: 4,
        };
        let sweep = sweep_variant(&cfg, Variant::Cached);
        assert_eq!(sweep.points.len(), 1, "must stop after the first point");
        assert_eq!(sweep.points[0].stats.n, 1, "no extra samples when over");
    }
}
