//! The scalability/perf sweep behind `fig12` and the `perf` harness:
//! timed HATT constructions on the paper's `H_F = Σ_i M_i` workload
//! (§V-E) across N, with summary statistics per point and least-squares
//! log-log slope fits against the paper's complexity claims
//! (Algorithm 1 `O(N⁴)`, Algorithm 3 `O(N³)`) — plus the
//! quality-vs-time study of the [`SelectionPolicy`] ladder
//! ([`policy_tradeoff`]) and the parallel-engine study
//! ([`parallel_study`]: threaded `restarts` vs sequential, and batched
//! `map_many` sweeps with the structure-keyed cache), so
//! `BENCH_perf.json` records how fast the kernel is, what each extra
//! millisecond of search buys, *and* what threads/batching buy on this
//! host. Since hatt-perf/3 the document also carries a dense-molecule
//! sweep (two-body interaction structure, not the uniform-singles
//! chain) and the [`remap_study`] — incremental [`Mapper::remap`]
//! throughput on a one-term-delta stream vs cold rebuilds. hatt-perf/4
//! adds the `"load"` section: the open-loop service study from
//! [`crate::load::load_study`] (sustained mappings/sec and tail latency
//! against a single daemon and a two-shard router). hatt-perf/5 adds
//! the `"trace"` section from [`crate::load::trace_study`]: the routed
//! run with the span collector off and on — tracing's throughput
//! overhead plus the per-stage latency breakdown (queue wait, cache
//! probe, construction, forward hop, write drain) mined from the
//! daemons' `trace_dump` replies.

use std::time::Instant;

use criterion::{summarize, Stats};
use hatt_core::{HattMapping, Mapper, Variant};
use hatt_fermion::models::{molecule_catalog, random_hermitian, FermiHubbard, NeutrinoModel};
use hatt_fermion::{HamiltonianDelta, MajoranaSum};
use hatt_mappings::{jordan_wigner, FermionMapping, SelectionPolicy};
use hatt_pauli::Complex64;

use crate::json::Json;

/// Sweep configuration shared by `fig12` and `perf`.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Mode counts to visit, ascending.
    pub ns: Vec<usize>,
    /// Timed construction samples per (variant, N) point.
    pub samples: usize,
    /// Per-point wall-clock budget in seconds: once a point's *first*
    /// sample exceeds it, the variant stops at that N (the point is
    /// still recorded from that single sample).
    pub budget_per_point: f64,
    /// Smallest N included in the slope fit (asymptotics need the tail).
    pub slope_min_n: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            ns: vec![8, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96, 100],
            samples: 3,
            budget_per_point: 10.0,
            slope_min_n: 32,
        }
    }
}

impl SweepConfig {
    /// The quick configuration used by `perf --smoke` and CI.
    pub fn smoke() -> Self {
        SweepConfig {
            ns: vec![8, 12, 16, 20, 24],
            samples: 3,
            budget_per_point: 2.0,
            slope_min_n: 12,
        }
    }
}

/// One timed (variant, N) sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Mode count.
    pub n: usize,
    /// Wall-clock statistics over the samples, in seconds.
    pub stats: Stats,
    /// Total settled Pauli weight (the construction objective) —
    /// golden-checked so perf work cannot silently change results.
    pub pauli_weight: usize,
    /// Candidate triples evaluated across the construction.
    pub candidates: u64,
    /// Pairwise-memo hits inside the selection kernel.
    pub memo_hits: u64,
    /// Pairwise-memo misses.
    pub memo_misses: u64,
}

/// A completed per-variant sweep.
#[derive(Debug, Clone)]
pub struct VariantSweep {
    /// The algorithm variant swept.
    pub variant: Variant,
    /// Points actually completed (the budget may truncate the tail).
    pub points: Vec<SweepPoint>,
    /// Fitted log-log slope over points with `n ≥ slope_min_n`
    /// (`None` with fewer than two such points).
    pub slope: Option<f64>,
}

/// The paper's complexity claim for a variant, for reports.
pub fn paper_complexity(variant: Variant) -> &'static str {
    match variant {
        Variant::Unopt => "O(N^4)",
        Variant::Paired => "O(N^4) worst-case traversals",
        Variant::Cached => "O(N^3)",
    }
}

/// Short machine-readable variant key (`unopt` / `paired` / `cached`).
pub fn variant_key(variant: Variant) -> &'static str {
    match variant {
        Variant::Unopt => "unopt",
        Variant::Paired => "paired",
        Variant::Cached => "cached",
    }
}

/// A mapper with caching disabled — every call is a cold construction,
/// which is what a timing harness must measure.
fn uncached_mapper(
    configure: impl FnOnce(hatt_core::MapperBuilder) -> hatt_core::MapperBuilder,
) -> Mapper {
    configure(Mapper::builder().cache_capacity(0))
        .build()
        .expect("static mapper configuration")
}

/// Runs one timed construction, returning `(seconds, mapping)`.
pub fn time_construction(h: &MajoranaSum, variant: Variant) -> (f64, HattMapping) {
    let mapper = uncached_mapper(|b| b.variant(variant));
    let t0 = Instant::now();
    let m = mapper.map(h).expect("sweep Hamiltonians are non-empty");
    let dt = t0.elapsed().as_secs_f64();
    (dt, m)
}

/// The Hamiltonian family a scalability sweep times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepWorkload {
    /// The paper's `H_F = Σ_i M_i` chain (§V-E): every term is one
    /// Majorana pair — the sparsest possible structure.
    UniformSingles,
    /// A dense molecule-like instance: `2N` one-body hops plus `4N`
    /// two-body interactions (quartic Majorana supports), deterministic
    /// in `N`. This is the structure shape of the Table I
    /// electronic-structure cases, where candidate scans touch far more
    /// terms per triple than the singles chain.
    DenseMolecule,
}

impl SweepWorkload {
    /// Machine-readable key used in `BENCH_perf.json`.
    pub fn key(self) -> &'static str {
        match self {
            SweepWorkload::UniformSingles => "uniform_singles",
            SweepWorkload::DenseMolecule => "dense_molecule",
        }
    }

    /// The workload instance at `n` modes (pure function of `n`).
    pub fn hamiltonian(self, n: usize) -> MajoranaSum {
        match self {
            SweepWorkload::UniformSingles => MajoranaSum::uniform_singles(n),
            SweepWorkload::DenseMolecule => {
                crate::preprocess(&random_hermitian(n, 2 * n, 4 * n, 0xDE5E + n as u64))
            }
        }
    }
}

/// Sweeps one variant over the configured Ns on `H_F = Σ_i M_i`,
/// stopping early when a point blows the per-point budget.
pub fn sweep_variant(cfg: &SweepConfig, variant: Variant) -> VariantSweep {
    sweep_variant_on(cfg, variant, SweepWorkload::UniformSingles)
}

/// Sweeps one variant over the configured Ns on the given workload,
/// stopping early when a point blows the per-point budget.
pub fn sweep_variant_on(
    cfg: &SweepConfig,
    variant: Variant,
    workload: SweepWorkload,
) -> VariantSweep {
    let mut points = Vec::new();
    for &n in &cfg.ns {
        let h = workload.hamiltonian(n);
        let (first, mapping) = time_construction(&h, variant);
        let mut samples = vec![first];
        let over_budget = first > cfg.budget_per_point;
        if !over_budget {
            for _ in 1..cfg.samples {
                samples.push(time_construction(&h, variant).0);
            }
        }
        let stats = mapping.stats();
        points.push(SweepPoint {
            n,
            stats: summarize(&samples),
            pauli_weight: stats.total_weight(),
            candidates: stats.total_candidates(),
            memo_hits: stats.memo_hits,
            memo_misses: stats.memo_misses,
        });
        if over_budget {
            break;
        }
    }
    let slope = loglog_slope(
        &points
            .iter()
            .filter(|p| p.n >= cfg.slope_min_n)
            .map(|p| (p.n, p.stats.median))
            .collect::<Vec<_>>(),
    );
    VariantSweep {
        variant,
        points,
        slope,
    }
}

/// One (case, policy) cell of the quality-vs-time study.
#[derive(Debug, Clone)]
pub struct PolicyPoint {
    /// Benchmark case name.
    pub case: String,
    /// Mode count of the case.
    pub n_modes: usize,
    /// The selection policy measured.
    pub policy: SelectionPolicy,
    /// Mapped Pauli weight under this policy.
    pub pauli_weight: usize,
    /// Jordan-Wigner Pauli weight on the same case (the quality bar).
    pub jw_weight: usize,
    /// Construction wall time in seconds (single run — quality, not
    /// timing noise, is the signal here).
    pub seconds: f64,
}

/// The policy ladder measured by the perf harness.
pub fn policy_ladder() -> Vec<SelectionPolicy> {
    vec![
        SelectionPolicy::Vanilla,
        SelectionPolicy::Greedy,
        SelectionPolicy::Lookahead { width: 8 },
        SelectionPolicy::Beam { width: 8 },
        SelectionPolicy::Restarts,
    ]
}

/// Measures the policy ladder on a fixed set of tie-heavy benchmark
/// cases (the neutrino family — the workload where the myopic objective
/// used to lose to Jordan-Wigner). `smoke` keeps only the smallest case.
pub fn policy_tradeoff(smoke: bool) -> Vec<PolicyPoint> {
    let mut cases: Vec<(String, MajoranaSum)> = Vec::new();
    let sizes: &[(usize, usize)] = if smoke {
        &[(3, 2)]
    } else {
        &[(3, 2), (4, 2), (5, 2)]
    };
    for &(sites, flavors) in sizes {
        let model = NeutrinoModel::new(sites, flavors);
        let mut h = MajoranaSum::from_fermion(&model.hamiltonian());
        let _ = h.take_identity();
        cases.push((format!("neutrino {}", model.label()), h));
    }
    let mut points = Vec::new();
    for (case, h) in &cases {
        let n = h.n_modes();
        let jw_weight = jordan_wigner(n).map_majorana_sum(h).weight();
        for policy in policy_ladder() {
            let mapper = uncached_mapper(|b| b.policy(policy));
            let t0 = Instant::now();
            let m = mapper.map(h).expect("policy cases are non-empty");
            let seconds = t0.elapsed().as_secs_f64();
            points.push(PolicyPoint {
                case: case.clone(),
                n_modes: n,
                policy,
                pauli_weight: m.map_majorana_sum(h).weight(),
                jw_weight,
                seconds,
            });
        }
    }
    points
}

/// One case of the threaded-`restarts` study: the quality portfolio
/// built sequentially (1 worker) and with the study's worker count.
#[derive(Debug, Clone)]
pub struct ParallelCase {
    /// Benchmark case name.
    pub case: String,
    /// Mode count of the case.
    pub n_modes: usize,
    /// Best-of-samples wall time with 1 worker, seconds.
    pub seq_s: f64,
    /// Best-of-samples wall time with [`ParallelReport::workers`]
    /// workers, seconds.
    pub threaded_s: f64,
}

impl ParallelCase {
    /// Sequential / threaded wall-time ratio (> 1 means threads won).
    pub fn speedup(&self) -> f64 {
        if self.threaded_s > 0.0 {
            self.seq_s / self.threaded_s
        } else {
            0.0
        }
    }
}

/// The batched-sweep study: `batch_size` Hamiltonians spanning
/// `distinct_structures` term structures (a coefficient sweep, the
/// service workload), mapped one-by-one sequentially vs through
/// `Mapper::map_batch` — so the speedup combines thread fan-out *and*
/// structure-cache hits.
#[derive(Debug, Clone)]
pub struct BatchStudy {
    /// Total Hamiltonians in the batch.
    pub batch_size: usize,
    /// Distinct term structures in the batch.
    pub distinct_structures: usize,
    /// Sequential per-element loop wall time, seconds (best of samples).
    pub seq_s: f64,
    /// `map_many_cached` wall time with the study's workers, seconds.
    pub threaded_s: f64,
    /// Structure-cache hits during the batched run.
    pub cache_hits: u64,
    /// Structure-cache misses (full constructions) during the batch.
    pub cache_misses: u64,
}

impl BatchStudy {
    /// Sequential / batched wall-time ratio.
    pub fn speedup(&self) -> f64 {
        if self.threaded_s > 0.0 {
            self.seq_s / self.threaded_s
        } else {
            0.0
        }
    }

    /// Mappings per second through the batched path — the headline
    /// throughput bin.
    pub fn throughput_per_s(&self) -> f64 {
        if self.threaded_s > 0.0 {
            self.batch_size as f64 / self.threaded_s
        } else {
            0.0
        }
    }
}

/// The parallel-engine study serialized under `"parallel"` in
/// `BENCH_perf.json` (schema `hatt-perf/2`).
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Workers the threaded runs used (`HATT_THREADS` or hardware).
    pub workers: usize,
    /// Hardware parallelism of the measuring host. Speedups are only
    /// meaningful when this is > 1 — on a single-core container the
    /// threaded engine can at best tie sequential, and consumers (CI)
    /// must gate wall-time assertions on this field.
    pub available_workers: usize,
    /// Per-case threaded-`restarts` rows.
    pub restarts: Vec<ParallelCase>,
    /// The batched neutrino sweep.
    pub batch: BatchStudy,
}

impl ParallelReport {
    /// Total sequential restarts wall time over the roster.
    pub fn restarts_seq_total_s(&self) -> f64 {
        self.restarts.iter().map(|c| c.seq_s).sum()
    }

    /// Total threaded restarts wall time over the roster.
    pub fn restarts_threaded_total_s(&self) -> f64 {
        self.restarts.iter().map(|c| c.threaded_s).sum()
    }

    /// Roster-level speedup of the threaded portfolio.
    pub fn restarts_speedup(&self) -> f64 {
        let threaded = self.restarts_threaded_total_s();
        if threaded > 0.0 {
            self.restarts_seq_total_s() / threaded
        } else {
            0.0
        }
    }
}

/// The roster the threaded-`restarts` study times: the Table I
/// molecules (full), or a medium-sized subset where thread fan-out
/// clearly dominates spawn overhead (smoke — this is what the CI
/// wall-time gate runs).
pub fn parallel_roster(smoke: bool) -> Vec<(String, MajoranaSum)> {
    let mut cases = Vec::new();
    if smoke {
        let name = "LiH sto3g frz";
        let spec = molecule_catalog()
            .into_iter()
            .find(|m| m.name == name)
            .expect("catalog molecule");
        cases.push((name.to_string(), crate::preprocess(&spec.hamiltonian())));
        cases.push((
            "Hubbard 2x2".to_string(),
            crate::preprocess(&FermiHubbard::new(2, 2).hamiltonian()),
        ));
        cases.push((
            "neutrino 3x2F".to_string(),
            crate::preprocess(&NeutrinoModel::new(3, 2).hamiltonian()),
        ));
    } else {
        for spec in molecule_catalog() {
            cases.push((
                spec.name.to_string(),
                crate::preprocess(&spec.hamiltonian()),
            ));
        }
    }
    cases
}

/// Best-of-`samples` wall time of one restarts construction at the
/// given worker cap.
fn time_restarts(h: &MajoranaSum, workers: usize, samples: usize) -> f64 {
    let mapper = uncached_mapper(|b| b.policy(SelectionPolicy::Restarts).threads(workers));
    (0..samples.max(1))
        .map(|_| {
            let t0 = Instant::now();
            let m = mapper.map(h).expect("roster cases are non-empty");
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(m.stats().total_weight());
            dt
        })
        .fold(f64::INFINITY, f64::min)
}

/// Measures the parallel engine: threaded `restarts` vs 1 worker on the
/// [`parallel_roster`], and a batched neutrino coefficient sweep
/// (`map_many_cached` vs a sequential loop). Worker count comes from
/// [`parallel::max_threads`] (so `HATT_THREADS` steers CI runs); all
/// constructions are result-identical, only wall time differs.
pub fn parallel_study(smoke: bool) -> ParallelReport {
    let workers = parallel::max_threads();
    let samples = 3;
    let restarts = parallel_roster(smoke)
        .into_iter()
        .map(|(case, h)| ParallelCase {
            n_modes: h.n_modes(),
            seq_s: time_restarts(&h, 1, samples),
            threaded_s: time_restarts(&h, workers, samples),
            case,
        })
        .collect();

    // Batched sweep: `reps` coefficient-rescaled instances per neutrino
    // structure, under the quality policy (the service configuration).
    let sizes: &[(usize, usize)] = if smoke { &[(3, 2)] } else { &[(3, 2), (4, 2)] };
    let reps = if smoke { 8 } else { 12 };
    let mut batch: Vec<MajoranaSum> = Vec::new();
    for &(sites, flavors) in sizes {
        let base = crate::preprocess(&NeutrinoModel::new(sites, flavors).hamiltonian());
        for r in 0..reps {
            batch.push(base.scaled(1.0 + 0.125 * r as f64));
        }
    }
    let seq_s = {
        let solo = uncached_mapper(|b| b.policy(SelectionPolicy::Restarts).threads(1));
        let t0 = Instant::now();
        for h in &batch {
            let m = solo.map(h).expect("sweep Hamiltonians are non-empty");
            std::hint::black_box(m.stats().total_weight());
        }
        t0.elapsed().as_secs_f64()
    };
    let batched = Mapper::builder()
        .policy(SelectionPolicy::Restarts)
        .threads(workers)
        .build()
        .expect("static mapper configuration");
    let t0 = Instant::now();
    let maps = batched.map_batch(&batch).expect("sweep batch maps");
    let threaded_s = t0.elapsed().as_secs_f64();
    std::hint::black_box(maps.len());

    ParallelReport {
        workers,
        available_workers: parallel::available_workers(),
        restarts,
        batch: BatchStudy {
            batch_size: batch.len(),
            distinct_structures: sizes.len(),
            seq_s,
            threaded_s,
            cache_hits: batched.cache().hits(),
            cache_misses: batched.cache().misses(),
        },
    }
}

/// The incremental-remapping study serialized under `"remap"` in
/// `BENCH_perf.json` (hatt-perf/3): a stream of one-term deltas served
/// by [`Mapper::remap`] vs cold rebuilds of every edited Hamiltonian —
/// the adaptive-ansatz workload the `map_delta` verb exists for.
#[derive(Debug, Clone)]
pub struct RemapStudy {
    /// Benchmark case name.
    pub case: String,
    /// Mode count of the base Hamiltonian.
    pub n_modes: usize,
    /// One-term deltas in the stream.
    pub steps: usize,
    /// Total wall time of the incremental chain (base construction
    /// excluded), seconds.
    pub incremental_s: f64,
    /// Total wall time of cold-constructing every edited Hamiltonian,
    /// seconds.
    pub fresh_s: f64,
    /// Incremental rebuilds served (must equal `steps`).
    pub remaps: u64,
    /// Cold constructions on the incremental path **after** the base
    /// (must be 0 — every step rode the ancestor).
    pub constructions_after_base: u64,
}

impl RemapStudy {
    /// Cold / incremental wall-time ratio (> 1 means remap won).
    pub fn speedup(&self) -> f64 {
        if self.incremental_s > 0.0 {
            self.fresh_s / self.incremental_s
        } else {
            0.0
        }
    }

    /// Remapped mappings per second through the incremental path.
    pub fn remaps_per_s(&self) -> f64 {
        if self.incremental_s > 0.0 {
            self.steps as f64 / self.incremental_s
        } else {
            0.0
        }
    }
}

/// A quartic support absent from `h`, scanned deterministically from
/// `salt` — the one-term edit of the remap stream.
fn absent_quad(h: &MajoranaSum, salt: usize) -> Vec<u32> {
    let m = 2 * h.n_modes() as u32;
    assert!(m >= 4, "remap study needs at least two modes");
    for off in 0..m {
        let a = (salt as u32 + off) % (m - 3);
        let support = vec![a, a + 1, a + 2, a + 3];
        if h.coefficient_of(&support).is_zero(1e-12) {
            return support;
        }
    }
    // hatt-lint: allow(panic) -- bench harness; m candidate quads cannot all collide with O(m) terms
    panic!("no absent quad found");
}

/// Times a one-term-delta stream on the dense-molecule workload:
/// `steps` edits, each served incrementally through [`Mapper::remap`]
/// (one warm base construction, then ancestor rebuilds only) and, for
/// the baseline, cold-constructed from scratch. Both paths produce
/// bit-identical trees (`tests/remap_differential.rs` pins this); the
/// study records what the incremental path saves.
pub fn remap_study(smoke: bool) -> RemapStudy {
    let (n, steps) = if smoke { (8, 8) } else { (12, 32) };
    let base = SweepWorkload::DenseMolecule.hamiltonian(n);
    let mapper = Mapper::new();
    mapper.map(&base).expect("base maps");
    let base_constructions = mapper.cache().constructions();

    let mut incremental_s = 0.0;
    let mut fresh_s = 0.0;
    let mut current = base.clone();
    for step in 0..steps {
        let mut delta = HamiltonianDelta::new(current.n_modes());
        delta
            .push_add(Complex64::real(0.5), &absent_quad(&current, 7 * step + 1))
            .expect("absent support inserts");
        let next = delta.apply(&current).expect("one-term delta applies");

        let t0 = Instant::now();
        let m = mapper
            .remap(&current, &delta)
            .expect("remap serves the edit");
        incremental_s += t0.elapsed().as_secs_f64();
        std::hint::black_box(m.stats().total_weight());

        let cold = uncached_mapper(|b| b);
        let t0 = Instant::now();
        let m = cold.map(&next).expect("cold rebuild");
        fresh_s += t0.elapsed().as_secs_f64();
        std::hint::black_box(m.stats().total_weight());

        current = next;
    }

    RemapStudy {
        case: format!("dense_molecule n={n}"),
        n_modes: n,
        steps,
        incremental_s,
        fresh_s,
        remaps: mapper.cache().remaps(),
        constructions_after_base: mapper.cache().constructions() - base_constructions,
    }
}

/// Least-squares slope of `ln t` against `ln n`; `None` with fewer than
/// two usable (positive-time) points.
pub fn loglog_slope(points: &[(usize, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, t)| t > 0.0)
        .map(|&(n, t)| ((n as f64).ln(), t.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom == 0.0 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Serializes a sweep set to the `BENCH_perf.json` document
/// (`schema: "hatt-perf/5"`; see README "Perf harness" and
/// docs/REPRODUCTION.md for the schema). `policies` is the
/// quality-vs-time study from [`policy_tradeoff`]; `parallel` is the
/// parallel-engine study from [`parallel_study`]; `dense` is the
/// [`SweepWorkload::DenseMolecule`] scalability sweep, `remap` the
/// one-term-delta stream from [`remap_study`], `load` the open-loop
/// service study from [`crate::load::load_study`], and `trace` the
/// tracing-overhead study from [`crate::load::trace_study`]. Every
/// section is additive over the previous schema version — older
/// documents simply lack the newer keys.
#[allow(clippy::too_many_arguments)] // one argument per schema section
pub fn sweeps_to_json(
    cfg: &SweepConfig,
    smoke: bool,
    sweeps: &[VariantSweep],
    policies: &[PolicyPoint],
    parallel: &ParallelReport,
    dense: &[VariantSweep],
    remap: &RemapStudy,
    load: &crate::load::LoadStudy,
    trace: &crate::load::TraceStudy,
) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::str("hatt-perf/5")),
        ("workload".into(), Json::str("uniform_singles")),
        ("smoke".into(), Json::Bool(smoke)),
        ("samples_per_point".into(), Json::int(cfg.samples as u64)),
        ("budget_per_point_s".into(), Json::Num(cfg.budget_per_point)),
        ("slope_fit_min_n".into(), Json::int(cfg.slope_min_n as u64)),
        (
            "variants".into(),
            Json::Arr(sweeps.iter().map(sweep_to_json).collect()),
        ),
        (
            "policies".into(),
            Json::Arr(policies.iter().map(policy_point_to_json).collect()),
        ),
        ("parallel".into(), parallel_to_json(parallel)),
        (
            "dense".into(),
            Json::Obj(vec![
                (
                    "workload".into(),
                    Json::str(SweepWorkload::DenseMolecule.key()),
                ),
                (
                    "variants".into(),
                    Json::Arr(dense.iter().map(sweep_to_json).collect()),
                ),
            ]),
        ),
        ("remap".into(), remap_to_json(remap)),
        ("load".into(), load_to_json(load)),
        ("trace".into(), trace_to_json(trace)),
    ])
}

/// The `"trace"` section of the hatt-perf/5 document.
fn trace_to_json(study: &crate::load::TraceStudy) -> Json {
    Json::Obj(vec![
        ("generator".into(), Json::str("open_loop")),
        ("rate_hz".into(), Json::Num(study.config.rate_hz)),
        ("requests".into(), Json::int(study.config.requests as u64)),
        (
            "connections".into(),
            Json::int(study.config.connections as u64),
        ),
        ("shards".into(), Json::int(study.shards as u64)),
        ("untraced".into(), load_report_to_json(&study.untraced)),
        ("traced".into(), load_report_to_json(&study.traced)),
        ("overhead_pct".into(), Json::Num(study.overhead_pct)),
        ("spans_recorded".into(), Json::int(study.spans_recorded)),
        ("spans_dropped".into(), Json::int(study.spans_dropped)),
        (
            "stages".into(),
            Json::Arr(
                study
                    .stages
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("name".into(), Json::str(&s.name)),
                            ("count".into(), Json::int(s.count as u64)),
                            ("p50_ms".into(), Json::Num(s.p50_ms)),
                            ("p99_ms".into(), Json::Num(s.p99_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `"load"` section of the hatt-perf/4 document.
fn load_to_json(study: &crate::load::LoadStudy) -> Json {
    Json::Obj(vec![
        ("generator".into(), Json::str("open_loop")),
        ("rate_hz".into(), Json::Num(study.config.rate_hz)),
        ("requests".into(), Json::int(study.config.requests as u64)),
        (
            "connections".into(),
            Json::int(study.config.connections as u64),
        ),
        (
            "sizes".into(),
            Json::Arr(
                study
                    .config
                    .sizes
                    .iter()
                    .map(|&s| Json::int(s as u64))
                    .collect(),
            ),
        ),
        ("shards".into(), Json::int(study.shards as u64)),
        ("single".into(), load_report_to_json(&study.single)),
        ("routed".into(), load_report_to_json(&study.routed)),
    ])
}

fn load_report_to_json(r: &crate::load::LoadReport) -> Json {
    Json::Obj(vec![
        ("offered".into(), Json::int(r.offered as u64)),
        ("completed".into(), Json::int(r.completed as u64)),
        ("errors".into(), Json::int(r.errors as u64)),
        ("elapsed_s".into(), Json::Num(r.elapsed_s)),
        ("sustained_per_s".into(), Json::Num(r.sustained_per_s)),
        ("p50_ms".into(), Json::Num(r.p50_ms)),
        ("p99_ms".into(), Json::Num(r.p99_ms)),
        ("max_ms".into(), Json::Num(r.max_ms)),
    ])
}

/// The `"remap"` section of the hatt-perf/3 document.
fn remap_to_json(r: &RemapStudy) -> Json {
    Json::Obj(vec![
        ("case".into(), Json::str(&r.case)),
        ("n_modes".into(), Json::int(r.n_modes as u64)),
        ("steps".into(), Json::int(r.steps as u64)),
        ("incremental_s".into(), Json::Num(r.incremental_s)),
        ("fresh_s".into(), Json::Num(r.fresh_s)),
        ("speedup".into(), Json::Num(r.speedup())),
        ("remaps_per_s".into(), Json::Num(r.remaps_per_s())),
        ("remaps".into(), Json::int(r.remaps)),
        (
            "constructions_after_base".into(),
            Json::int(r.constructions_after_base),
        ),
    ])
}

/// The `"parallel"` section of the hatt-perf/2 document.
fn parallel_to_json(report: &ParallelReport) -> Json {
    Json::Obj(vec![
        ("workers".into(), Json::int(report.workers as u64)),
        (
            "available_workers".into(),
            Json::int(report.available_workers as u64),
        ),
        (
            "restarts".into(),
            Json::Arr(
                report
                    .restarts
                    .iter()
                    .map(|c| {
                        Json::Obj(vec![
                            ("case".into(), Json::str(&c.case)),
                            ("n_modes".into(), Json::int(c.n_modes as u64)),
                            ("seq_s".into(), Json::Num(c.seq_s)),
                            ("threaded_s".into(), Json::Num(c.threaded_s)),
                            ("speedup".into(), Json::Num(c.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "restarts_seq_total_s".into(),
            Json::Num(report.restarts_seq_total_s()),
        ),
        (
            "restarts_threaded_total_s".into(),
            Json::Num(report.restarts_threaded_total_s()),
        ),
        (
            "restarts_speedup".into(),
            Json::Num(report.restarts_speedup()),
        ),
        (
            "throughput".into(),
            Json::Obj(vec![
                (
                    "batch_size".into(),
                    Json::int(report.batch.batch_size as u64),
                ),
                (
                    "distinct_structures".into(),
                    Json::int(report.batch.distinct_structures as u64),
                ),
                ("seq_s".into(), Json::Num(report.batch.seq_s)),
                ("threaded_s".into(), Json::Num(report.batch.threaded_s)),
                ("speedup".into(), Json::Num(report.batch.speedup())),
                (
                    "mappings_per_s".into(),
                    Json::Num(report.batch.throughput_per_s()),
                ),
                ("cache_hits".into(), Json::int(report.batch.cache_hits)),
                ("cache_misses".into(), Json::int(report.batch.cache_misses)),
            ]),
        ),
    ])
}

fn policy_point_to_json(p: &PolicyPoint) -> Json {
    Json::Obj(vec![
        ("case".into(), Json::str(&p.case)),
        ("n_modes".into(), Json::int(p.n_modes as u64)),
        ("policy".into(), Json::str(p.policy.label())),
        ("pauli_weight".into(), Json::int(p.pauli_weight as u64)),
        ("jw_weight".into(), Json::int(p.jw_weight as u64)),
        ("seconds".into(), Json::Num(p.seconds)),
    ])
}

fn sweep_to_json(sweep: &VariantSweep) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(variant_key(sweep.variant))),
        ("label".into(), Json::str(sweep.variant.label())),
        (
            "paper_complexity".into(),
            Json::str(paper_complexity(sweep.variant)),
        ),
        (
            "loglog_slope".into(),
            sweep.slope.map_or(Json::Null, Json::Num),
        ),
        (
            "points".into(),
            Json::Arr(sweep.points.iter().map(point_to_json).collect()),
        ),
    ])
}

fn point_to_json(p: &SweepPoint) -> Json {
    Json::Obj(vec![
        ("n".into(), Json::int(p.n as u64)),
        ("mean_s".into(), Json::Num(p.stats.mean)),
        ("median_s".into(), Json::Num(p.stats.median)),
        ("stddev_s".into(), Json::Num(p.stats.stddev)),
        ("min_s".into(), Json::Num(p.stats.min)),
        ("max_s".into(), Json::Num(p.stats.max)),
        ("samples".into(), Json::int(p.stats.n as u64)),
        ("pauli_weight".into(), Json::int(p.pauli_weight as u64)),
        ("candidates".into(), Json::int(p.candidates)),
        ("memo_hits".into(), Json::int(p.memo_hits)),
        ("memo_misses".into(), Json::int(p.memo_misses)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_perfect_cubic_is_three() {
        let pts: Vec<(usize, f64)> = [8usize, 16, 32, 64]
            .iter()
            .map(|&n| (n, (n as f64).powi(3)))
            .collect();
        let s = loglog_slope(&pts).unwrap();
        assert!((s - 3.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn slope_needs_two_points() {
        assert!(loglog_slope(&[]).is_none());
        assert!(loglog_slope(&[(8, 1.0)]).is_none());
        assert!(loglog_slope(&[(8, 0.0), (16, 0.0)]).is_none());
    }

    #[test]
    fn smoke_sweep_produces_points_and_json() {
        let cfg = SweepConfig {
            ns: vec![4, 6, 8],
            samples: 2,
            budget_per_point: 5.0,
            slope_min_n: 4,
        };
        let sweeps: Vec<VariantSweep> = [Variant::Cached, Variant::Unopt]
            .iter()
            .map(|&v| sweep_variant(&cfg, v))
            .collect();
        assert_eq!(sweeps[0].points.len(), 3);
        for p in &sweeps[0].points {
            assert!(p.pauli_weight > 0);
            assert!(p.candidates > 0);
            assert_eq!(p.stats.n, 2);
        }
        // The cached variant's selection loop must actually hit the memo.
        assert!(sweeps[0].points[0].memo_hits > 0);
        let policies = policy_tradeoff(true);
        assert_eq!(policies.len(), policy_ladder().len());
        for p in &policies {
            assert!(p.pauli_weight > 0);
            if p.policy == SelectionPolicy::Restarts {
                assert!(
                    p.pauli_weight <= p.jw_weight,
                    "restarts must not lose to JW"
                );
            }
        }
        let report = tiny_parallel_report();
        let dense = vec![sweep_variant_on(
            &cfg,
            Variant::Cached,
            SweepWorkload::DenseMolecule,
        )];
        let remap = tiny_remap_study();
        let load = tiny_load_study();
        let trace = tiny_trace_study();
        let doc = sweeps_to_json(
            &cfg, true, &sweeps, &policies, &report, &dense, &remap, &load, &trace,
        )
        .render();
        assert!(doc.starts_with(r#"{"schema":"hatt-perf/5""#));
        assert!(doc.contains(r#""name":"cached""#));
        assert!(doc.contains(r#""pauli_weight":"#));
        assert!(doc.contains(r#""policy":"restarts""#));
        assert!(doc.contains(r#""parallel":{"workers":"#));
        assert!(doc.contains(r#""throughput":{"batch_size":"#));
        assert!(doc.contains(r#""cache_hits":"#));
        assert!(doc.contains(r#""dense":{"workload":"dense_molecule""#));
        assert!(doc.contains(r#""remap":{"case":"#));
        assert!(doc.contains(r#""remaps_per_s":"#));
        assert!(doc.contains(r#""load":{"generator":"open_loop""#));
        assert!(doc.contains(r#""sustained_per_s":"#));
        assert!(doc.contains(r#""p99_ms":"#));
        assert!(doc.contains(r#""routed":{"offered":"#));
        assert!(doc.contains(r#""trace":{"generator":"open_loop""#));
        assert!(doc.contains(r#""overhead_pct":"#));
        assert!(doc.contains(r#""spans_recorded":"#));
        assert!(doc.contains(r#""stages":[{"name":"construct""#));
        assert!(doc.contains(r#""untraced":{"offered":"#));
        assert!(doc.contains(r#""traced":{"offered":"#));
    }

    fn tiny_load_report() -> crate::load::LoadReport {
        crate::load::LoadReport {
            offered: 8,
            completed: 8,
            errors: 0,
            elapsed_s: 0.5,
            sustained_per_s: 16.0,
            p50_ms: 1.0,
            p99_ms: 2.0,
            max_ms: 3.0,
        }
    }

    fn tiny_load_study() -> crate::load::LoadStudy {
        let report = tiny_load_report();
        crate::load::LoadStudy {
            config: crate::load::LoadConfig::smoke(),
            shards: 2,
            single: report.clone(),
            routed: report,
        }
    }

    fn tiny_trace_study() -> crate::load::TraceStudy {
        crate::load::TraceStudy {
            config: crate::load::LoadConfig::smoke(),
            shards: 2,
            untraced: tiny_load_report(),
            traced: tiny_load_report(),
            overhead_pct: 1.5,
            spans_recorded: 64,
            spans_dropped: 0,
            stages: vec![crate::load::TraceStageStats {
                name: "construct".into(),
                count: 8,
                p50_ms: 0.4,
                p99_ms: 0.9,
            }],
        }
    }

    fn tiny_remap_study() -> RemapStudy {
        RemapStudy {
            case: "t".into(),
            n_modes: 8,
            steps: 4,
            incremental_s: 0.5,
            fresh_s: 2.0,
            remaps: 4,
            constructions_after_base: 0,
        }
    }

    fn tiny_parallel_report() -> ParallelReport {
        ParallelReport {
            workers: 4,
            available_workers: 4,
            restarts: vec![ParallelCase {
                case: "t".into(),
                n_modes: 4,
                seq_s: 0.4,
                threaded_s: 0.1,
            }],
            batch: BatchStudy {
                batch_size: 8,
                distinct_structures: 1,
                seq_s: 2.0,
                threaded_s: 0.5,
                cache_hits: 7,
                cache_misses: 1,
            },
        }
    }

    #[test]
    fn parallel_report_arithmetic() {
        let r = tiny_parallel_report();
        assert!((r.restarts[0].speedup() - 4.0).abs() < 1e-12);
        assert!((r.restarts_speedup() - 4.0).abs() < 1e-12);
        assert!((r.batch.speedup() - 4.0).abs() < 1e-12);
        assert!((r.batch.throughput_per_s() - 16.0).abs() < 1e-12);
        // Division-by-zero guards.
        let zero = ParallelCase {
            case: "z".into(),
            n_modes: 1,
            seq_s: 1.0,
            threaded_s: 0.0,
        };
        assert_eq!(zero.speedup(), 0.0);
    }

    #[test]
    fn parallel_study_smoke_is_result_identical_and_counts_cache() {
        let report = parallel_study(true);
        assert!(report.workers >= 1);
        assert!(report.available_workers >= 1);
        assert_eq!(report.restarts.len(), 3, "smoke roster size");
        for c in &report.restarts {
            assert!(c.seq_s > 0.0 && c.threaded_s > 0.0, "{}: timed", c.case);
        }
        // One distinct structure, 8 instances: exactly one construction.
        assert_eq!(report.batch.batch_size, 8);
        assert_eq!(report.batch.distinct_structures, 1);
        assert_eq!(report.batch.cache_misses, 1);
        assert_eq!(report.batch.cache_hits, 7);
        assert!(report.batch.throughput_per_s() > 0.0);
    }

    #[test]
    fn remap_study_arithmetic_and_counters() {
        let r = tiny_remap_study();
        assert!((r.speedup() - 4.0).abs() < 1e-12);
        assert!((r.remaps_per_s() - 8.0).abs() < 1e-12);
        let zero = RemapStudy {
            incremental_s: 0.0,
            ..tiny_remap_study()
        };
        assert_eq!(zero.speedup(), 0.0);
        assert_eq!(zero.remaps_per_s(), 0.0);
    }

    #[test]
    fn remap_study_smoke_rides_the_ancestor_every_step() {
        let r = remap_study(true);
        assert_eq!(r.steps, 8);
        assert_eq!(r.remaps, 8, "every edit must remap incrementally");
        assert_eq!(
            r.constructions_after_base, 0,
            "one-term deltas must never construct cold"
        );
        assert!(r.incremental_s > 0.0 && r.fresh_s > 0.0);
    }

    #[test]
    fn dense_workload_is_deterministic_and_not_singles_shaped() {
        let a = SweepWorkload::DenseMolecule.hamiltonian(8);
        let b = SweepWorkload::DenseMolecule.hamiltonian(8);
        assert_eq!(a, b, "the sweep must time a pure function of N");
        // A dense instance must contain quartic supports — the shape
        // uniform_singles never has.
        assert!(
            a.iter().any(|(support, _)| support.len() == 4),
            "no two-body structure in the dense workload"
        );
        assert!(a.n_terms() > 8, "denser than the singles chain");
    }

    #[test]
    fn budget_truncates_the_tail() {
        let cfg = SweepConfig {
            ns: vec![4, 8, 12],
            samples: 2,
            budget_per_point: 0.0, // everything is over budget
            slope_min_n: 4,
        };
        let sweep = sweep_variant(&cfg, Variant::Cached);
        assert_eq!(sweep.points.len(), 1, "must stop after the first point");
        assert_eq!(sweep.points[0].stats.n, 1, "no extra samples when over");
    }
}
