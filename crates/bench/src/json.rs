//! JSON writer/parser re-export. The implementation moved to
//! [`hatt_pauli::json`] so the `hatt-wire/1` codecs (which live below
//! this crate in the dependency graph) can share it; this alias keeps
//! the historical `hatt_bench::json::Json` path working for the perf
//! harness and external scripts.

pub use hatt_pauli::json::{Json, JsonParseError, MAX_DEPTH};
