//! A minimal JSON value/writer, enough for the perf harness to emit
//! `BENCH_perf.json` without a serde dependency (the container vendors
//! no registry crates). Strings are escaped per RFC 8259; non-finite
//! floats render as `null` so the output always parses.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A floating-point number (`NaN`/`±∞` render as `null`).
    Num(f64),
    /// An integer, rendered without a decimal point.
    Int(i64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience integer constructor from any unsigned count.
    ///
    /// # Panics
    ///
    /// Panics when the value exceeds `i64::MAX` (no such counter exists
    /// in this workspace).
    pub fn int(v: u64) -> Json {
        Json::Int(i64::try_from(v).expect("count fits i64"))
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders the value as pretty-printed JSON (two-space indent).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 1);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        // depth == 0 means compact mode; otherwise depth counts the
        // current indentation level (starting at 1 for the root).
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if depth > 0 {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if depth > 0 {
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
        }
        item(out, i, if depth > 0 { depth + 1 } else { 0 });
    }
    if depth > 0 && len > 0 {
        out.push('\n');
        out.push_str(&"  ".repeat(depth - 1));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::int(42).render(), "42");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn compound_values_render_compact() {
        let v = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("name".into(), Json::str("hatt")),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"hatt"}"#);
    }

    #[test]
    fn pretty_rendering_is_indented_and_ends_with_newline() {
        let v = Json::Obj(vec![("a".into(), Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
        assert_eq!(Json::Arr(vec![]).render_pretty(), "[]\n");
    }
}
