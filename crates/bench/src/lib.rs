//! # hatt-bench
//!
//! The benchmark harness regenerating every table and figure of the HATT
//! paper's evaluation section (§V). Each `table*`/`fig*` binary prints the
//! corresponding rows; this library holds the shared pipeline:
//!
//! * workload construction (the three benchmark families),
//! * the mapping roster (JW / BK / BTT / FH / HATT),
//! * the compilation pipeline (map → Trotter → optimize → metrics)
//!   matching the paper's "Paulihedral + Qiskit L3" setup,
//! * table formatting.
//!
//! Run e.g. `cargo run --release -p hatt-bench --bin table1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod load;
pub mod perf;

use std::time::Instant;

use hatt_circuit::{optimize, trotter_circuit, CircuitMetrics, TermOrder};
use hatt_core::Mapper;
use hatt_fermion::{FermionOperator, MajoranaSum};
use hatt_mappings::{
    anneal_search, balanced_ternary_tree, bravyi_kitaev, exhaustive_optimal, jordan_wigner,
    AnnealingOptions, FermionMapping, SelectionPolicy, EXHAUSTIVE_MODE_LIMIT,
};

/// Which mappings a table evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MappingRoster {
    /// Include the Fermihedral substitute (exhaustive ≤ the mode limit,
    /// annealed otherwise up to `fh_anneal_limit`).
    pub include_fh: bool,
    /// Largest mode count for the annealed FH* fallback (0 disables it).
    pub fh_anneal_limit: usize,
    /// Selection policy for the HATT rows. The tables default to
    /// [`SelectionPolicy::quality`] (the restart portfolio) — quality is
    /// what the evaluation section measures; the time cost of each
    /// policy is measured separately by the `policy` and `perf`
    /// binaries.
    pub hatt_policy: SelectionPolicy,
}

impl Default for MappingRoster {
    fn default() -> Self {
        MappingRoster {
            include_fh: true,
            fh_anneal_limit: 18,
            hatt_policy: SelectionPolicy::quality(),
        }
    }
}

impl MappingRoster {
    /// The default roster with the HATT policy overridden by the
    /// `HATT_POLICY` environment variable when set (used by the table
    /// binaries; e.g. `HATT_POLICY=greedy cargo run --bin table1`).
    ///
    /// # Panics
    ///
    /// Panics when `HATT_POLICY` is set but unparsable.
    pub fn from_env() -> Self {
        let mut roster = MappingRoster::default();
        if let Ok(s) = std::env::var("HATT_POLICY") {
            roster.hatt_policy = s.parse().expect("invalid HATT_POLICY");
        }
        roster
    }
}

/// An uncached [`Mapper`] under the given policy — cold constructions
/// only, which is what every table/figure binary and timing loop in
/// this harness must measure. (A warm structure cache would silently
/// turn repeat constructions into replays.)
pub fn cold_mapper(policy: SelectionPolicy) -> Mapper {
    Mapper::builder()
        .policy(policy)
        .cache_capacity(0)
        .build()
        .expect("static mapper configuration")
}

/// One evaluated (case, mapping) cell: the paper's three metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalCell {
    /// Mapping name (`JW`, `BK`, `BTT`, `FH`, `HATT`, …).
    pub mapping: String,
    /// Pauli weight of the mapped Hamiltonian.
    pub pauli_weight: usize,
    /// Optimized-circuit metrics of one Trotter step.
    pub metrics: CircuitMetrics,
    /// Mapping-construction wall time in seconds.
    pub construct_seconds: f64,
}

/// Compiles one Trotter step of the mapped Hamiltonian through the
/// paper's pipeline (lexicographic term ordering + the L3-style
/// optimizer) and collects the metrics.
pub fn evaluate_mapping<M: FermionMapping + ?Sized>(
    mapping: &M,
    h: &MajoranaSum,
    construct_seconds: f64,
) -> EvalCell {
    let hq = mapping.map_majorana_sum(h);
    let pauli_weight = {
        let mut hw = hq.clone();
        let _ = hw.take_identity();
        hw.weight()
    };
    let circuit = trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic);
    let opt = optimize(&circuit);
    EvalCell {
        mapping: mapping.name().to_string(),
        pauli_weight,
        metrics: opt.metrics(),
        construct_seconds,
    }
}

/// Runs the full roster on one Hamiltonian, in the paper's column order.
pub fn evaluate_case(h: &MajoranaSum, roster: &MappingRoster) -> Vec<EvalCell> {
    let n = h.n_modes();
    let mut cells = Vec::new();

    let t0 = Instant::now();
    let jw = jordan_wigner(n);
    cells.push(evaluate_mapping(&jw, h, t0.elapsed().as_secs_f64()));

    let t0 = Instant::now();
    let bk = bravyi_kitaev(n);
    cells.push(evaluate_mapping(&bk, h, t0.elapsed().as_secs_f64()));

    let t0 = Instant::now();
    let btt = balanced_ternary_tree(n);
    cells.push(evaluate_mapping(&btt, h, t0.elapsed().as_secs_f64()));

    if roster.include_fh {
        if n <= EXHAUSTIVE_MODE_LIMIT.min(5) {
            let t0 = Instant::now();
            let (fh, _) = exhaustive_optimal(h);
            cells.push(evaluate_mapping(&fh, h, t0.elapsed().as_secs_f64()));
        } else if n <= roster.fh_anneal_limit {
            let t0 = Instant::now();
            // The annealed FH* fallback completes sequences under the
            // roster's policy too (whole-construction policies degrade
            // to the tie-broken greedy inside a completion).
            let opts = AnnealingOptions {
                policy: roster.hatt_policy,
                ..Default::default()
            };
            let (fh, _) = anneal_search(h, &opts);
            cells.push(evaluate_mapping(&fh, h, t0.elapsed().as_secs_f64()));
        }
    }

    let mapper = cold_mapper(roster.hatt_policy);
    let t0 = Instant::now();
    let hatt = mapper.map(h).expect("benchmark Hamiltonians are non-empty");
    cells.push(evaluate_mapping(&hatt, h, t0.elapsed().as_secs_f64()));
    cells
}

/// Preprocesses a second-quantized Hamiltonian (drops the constant).
pub fn preprocess(op: &FermionOperator) -> MajoranaSum {
    let mut m = MajoranaSum::from_fermion(op);
    let _ = m.take_identity();
    m.prune(1e-10);
    m
}

/// Preprocesses but keeps the constant term — required by the energy
/// experiments (Figs. 10 and 11), where the identity carries a large part
/// of the molecular energy.
pub fn preprocess_keep_constant(op: &FermionOperator) -> MajoranaSum {
    let mut m = MajoranaSum::from_fermion(op);
    m.prune(1e-10);
    m
}

/// Prints one table block: a header, then for every case a row per
/// mapping with the three paper metrics.
pub fn print_case_block(case: &str, modes: usize, cells: &[EvalCell]) {
    println!("\n{case} ({modes} modes)");
    println!(
        "  {:<14} {:>12} {:>10} {:>8} {:>10}",
        "mapping", "PauliWeight", "CNOT", "Depth", "1q(U3)"
    );
    for c in cells {
        println!(
            "  {:<14} {:>12} {:>10} {:>8} {:>10}",
            c.mapping, c.pauli_weight, c.metrics.cnot, c.metrics.depth, c.metrics.single_qubit
        );
    }
}

/// Renders a percentage reduction `(base − ours)/base` for summaries.
pub fn reduction_pct(base: usize, ours: usize) -> f64 {
    if base == 0 {
        0.0
    } else {
        100.0 * (base as f64 - ours as f64) / base as f64
    }
}

/// Mean reduction of HATT vs a named baseline over many evaluated cases,
/// as `(weight%, cnot%, depth%)`.
pub fn summarize_reduction(
    rows: &[(String, Vec<EvalCell>)],
    baseline: &str,
) -> Option<(f64, f64, f64)> {
    let mut weights = Vec::new();
    let mut cnots = Vec::new();
    let mut depths = Vec::new();
    for (_, cells) in rows {
        let base = cells.iter().find(|c| c.mapping == baseline)?;
        let hatt = cells.iter().find(|c| c.mapping == "HATT")?;
        weights.push(reduction_pct(base.pauli_weight, hatt.pauli_weight));
        cnots.push(reduction_pct(base.metrics.cnot, hatt.metrics.cnot));
        depths.push(reduction_pct(base.metrics.depth, hatt.metrics.depth));
    }
    if weights.is_empty() {
        return None;
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Some((mean(&weights), mean(&cnots), mean(&depths)))
}

/// Prints the standard `HATT vs baseline` summary under a table.
pub fn print_summaries(rows: &[(String, Vec<EvalCell>)]) {
    println!();
    for baseline in ["JW", "BK", "BTT"] {
        if let Some((w, c, d)) = summarize_reduction(rows, baseline) {
            println!(
                "HATT vs {baseline:<4}: Pauli weight {w:+.2}%, CNOT {c:+.2}%, depth {d:+.2}% (positive = HATT better)"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_fermion::models::FermiHubbard;

    #[test]
    fn pipeline_produces_all_mappings() {
        let h = preprocess(&FermiHubbard::new(2, 2).hamiltonian());
        let cells = evaluate_case(&h, &MappingRoster::default());
        let names: Vec<&str> = cells.iter().map(|c| c.mapping.as_str()).collect();
        assert_eq!(names, vec!["JW", "BK", "BTT", "FH*", "HATT"]);
        for c in &cells {
            assert!(c.pauli_weight > 0);
            assert!(c.metrics.cnot > 0);
        }
    }

    #[test]
    fn hubbard_2x2_reproduces_paper_weights() {
        // Paper Table II, 2×2: JW 80, BK 80, BTT 86, HATT 76. The
        // restart portfolio beats the paper's own HATT number (56 < 76).
        let h = preprocess(&FermiHubbard::new(2, 2).hamiltonian());
        let cells = evaluate_case(
            &h,
            &MappingRoster {
                include_fh: false,
                fh_anneal_limit: 0,
                ..Default::default()
            },
        );
        let w: Vec<usize> = cells.iter().map(|c| c.pauli_weight).collect();
        assert_eq!(w[0], 80, "JW weight");
        assert_eq!(w[1], 80, "BK weight");
        assert_eq!(w[3], 56, "HATT weight");
        // BTT is 84 under our pairing (paper: 86) — same shape.
        assert!(w[2] >= 80, "BTT should not beat JW here");
    }

    #[test]
    fn reduction_summary() {
        assert!((reduction_pct(100, 85) - 15.0).abs() < 1e-12);
        assert_eq!(reduction_pct(0, 5), 0.0);
    }
}
