//! Open-loop load generator for the `hattd` service layer: requests
//! arrive on a fixed schedule regardless of completions (so a slow
//! server builds queueing delay instead of silently throttling the
//! generator), and latency is measured from the *scheduled* arrival —
//! the coordinated-omission-resistant convention. The [`load_study`]
//! drives the same offered load against a single in-process daemon and
//! a two-shard consistent-hash router, producing the `"load"` section
//! of `BENCH_perf.json` (schema `hatt-perf/4`).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hatt_core::Mapper;
use hatt_fermion::MajoranaSum;
use hatt_service::{MapRequest, ResponseLine, Server, ServerConfig};

/// Configuration of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Offered arrival rate in requests per second. Arrivals sit on a
    /// fixed grid: request `i` is due at `start + i / rate_hz`.
    pub rate_hz: f64,
    /// Total requests offered over the run.
    pub requests: usize,
    /// Persistent client connections the offered load is spread over
    /// (request `i` rides connection `i % connections`).
    pub connections: usize,
    /// Mode counts of the single-item request structures, cycled per
    /// request. Distinct sizes are distinct structure keys, so a router
    /// spreads them across shards and a daemon's cache converges to
    /// hits — the steady-state serving regime, not construction cost.
    pub sizes: Vec<usize>,
}

impl LoadConfig {
    /// The quick configuration used by `loadgen --smoke` and CI.
    pub fn smoke() -> Self {
        LoadConfig {
            rate_hz: 200.0,
            requests: 300,
            connections: 4,
            sizes: vec![4, 6, 8, 10],
        }
    }
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            rate_hz: 400.0,
            requests: 2000,
            connections: 8,
            sizes: vec![4, 6, 8, 10, 12, 14, 16],
        }
    }
}

/// The measured outcome of one open-loop run. All latencies are in
/// milliseconds, measured from the request's scheduled arrival to the
/// arrival of its `map_done` line.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests offered (the configured total).
    pub offered: usize,
    /// Requests that completed with zero error items.
    pub completed: usize,
    /// Requests that failed (transport error after one reconnect, or a
    /// reply containing typed error items).
    pub errors: usize,
    /// Wall time from the first scheduled arrival to the last
    /// completion, seconds.
    pub elapsed_s: f64,
    /// Sustained completion throughput, mappings per second.
    pub sustained_per_s: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Worst-case latency.
    pub max_ms: f64,
}

/// One persistent connection of the generator: write a request line,
/// drain its streamed reply to the `map_done` marker.
struct LoadConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl LoadConn {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(LoadConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and drains the reply; returns the number of
    /// typed error items the server reported for it.
    fn exchange(&mut self, req: &MapRequest) -> std::io::Result<usize> {
        self.writer.write_all(req.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            if line.trim().is_empty() {
                continue;
            }
            match ResponseLine::from_line(line.trim_end())
                .map_err(|e| std::io::Error::other(e.to_string()))?
            {
                ResponseLine::Item(_) => {}
                ResponseLine::Done(done) => return Ok(done.errors),
            }
        }
    }
}

/// `q`-th quantile of an ascending sample (nearest-rank).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Drives one open-loop run against a live daemon (single or router).
///
/// Each of the `connections` workers owns one persistent connection and
/// serves the arrival grid points assigned to it; a worker that falls
/// behind its grid accumulates the delay into its requests' latencies
/// instead of slowing the offered rate. A transport failure is retried
/// once on a fresh connection before the request counts as an error.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let conns = cfg.connections.max(1);
    let tick = Duration::from_secs_f64(1.0 / cfg.rate_hz.max(1e-9));
    // A short runway so every worker sees the same epoch in the future.
    let start = Instant::now() + Duration::from_millis(20);

    let per_worker: Vec<(usize, usize, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|worker| {
                scope.spawn(move || {
                    let mut completed = 0usize;
                    let mut errors = 0usize;
                    let mut latencies_ms = Vec::new();
                    let mut conn = LoadConn::connect(addr).ok();
                    let mut i = worker;
                    while i < cfg.requests {
                        let scheduled = start + tick.mul_f64(i as f64);
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let size = cfg.sizes[i % cfg.sizes.len()].max(1);
                        let req = MapRequest::new(
                            format!("load-{i}"),
                            vec![MajoranaSum::uniform_singles(size)],
                        );
                        let ok = match conn.as_mut().map(|c| c.exchange(&req)) {
                            Some(Ok(0)) => true,
                            Some(Ok(_)) => false,
                            _ => {
                                conn = LoadConn::connect(addr).ok();
                                matches!(conn.as_mut().map(|c| c.exchange(&req)), Some(Ok(0)))
                            }
                        };
                        if ok {
                            completed += 1;
                            latencies_ms.push(scheduled.elapsed().as_secs_f64() * 1e3);
                        } else {
                            errors += 1;
                        }
                        i += conns;
                    }
                    (completed, errors, latencies_ms)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);

    let completed: usize = per_worker.iter().map(|w| w.0).sum();
    let errors: usize = per_worker.iter().map(|w| w.1).sum();
    let mut latencies_ms: Vec<f64> = per_worker.into_iter().flat_map(|w| w.2).collect();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    LoadReport {
        offered: cfg.requests,
        completed,
        errors,
        elapsed_s,
        sustained_per_s: completed as f64 / elapsed_s,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
    }
}

/// The load study serialized under `"load"` in `BENCH_perf.json`
/// (hatt-perf/4): the same offered load against a single in-process
/// daemon and a two-shard consistent-hash router.
#[derive(Debug, Clone)]
pub struct LoadStudy {
    /// The offered-load configuration both runs share.
    pub config: LoadConfig,
    /// Shard daemons behind the routed run.
    pub shards: usize,
    /// The single-daemon run.
    pub single: LoadReport,
    /// The routed run (router in front of the shard daemons).
    pub routed: LoadReport,
}

/// Boots a single daemon and a two-shard router in-process and drives
/// the open-loop generator against each. Both topologies serve the
/// identical structure roster, so the reports differ only in the
/// serving path (direct scheduler vs consistent-hash fan-out).
pub fn load_study(smoke: bool) -> LoadStudy {
    let cfg = if smoke {
        LoadConfig::smoke()
    } else {
        LoadConfig::default()
    };

    let single = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())
        .expect("bind single daemon");
    let single_report = run_load(single.local_addr(), &cfg);
    single.shutdown();

    let shard_a =
        Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default()).expect("bind shard a");
    let shard_b =
        Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default()).expect("bind shard b");
    let shard_addrs = vec![
        shard_a.local_addr().to_string(),
        shard_b.local_addr().to_string(),
    ];
    let router = Server::bind_router("127.0.0.1:0", &shard_addrs, ServerConfig::default())
        .expect("bind router");
    let routed = run_load(router.local_addr(), &cfg);
    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();

    LoadStudy {
        config: cfg,
        shards: 2,
        single: single_report,
        routed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }

    #[test]
    fn open_loop_run_completes_the_offered_load() {
        let server = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())
            .expect("bind ephemeral port");
        let cfg = LoadConfig {
            rate_hz: 500.0,
            requests: 40,
            connections: 2,
            sizes: vec![3, 4],
        };
        let report = run_load(server.local_addr(), &cfg);
        server.shutdown();
        assert_eq!(report.offered, 40);
        assert_eq!(report.completed, 40, "{report:?}");
        assert_eq!(report.errors, 0, "{report:?}");
        assert!(report.sustained_per_s > 0.0);
        assert!(report.p50_ms <= report.p99_ms && report.p99_ms <= report.max_ms);
    }
}
