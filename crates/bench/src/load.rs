//! Open-loop load generator for the `hattd` service layer: requests
//! arrive on a fixed schedule regardless of completions (so a slow
//! server builds queueing delay instead of silently throttling the
//! generator), and latency is measured from the *scheduled* arrival —
//! the coordinated-omission-resistant convention. The [`load_study`]
//! drives the same offered load against a single in-process daemon and
//! a two-shard consistent-hash router, producing the `"load"` section
//! of `BENCH_perf.json`, and the [`trace_study`] repeats the routed run
//! with the span collector off and on, producing the `"trace"` section
//! (schema `hatt-perf/5`): tracing's throughput overhead plus a
//! per-stage latency breakdown mined from the daemons' span dumps.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use hatt_core::Mapper;
use hatt_fermion::MajoranaSum;
use hatt_service::{client, MapRequest, ResponseLine, Server, ServerConfig};

/// Configuration of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Offered arrival rate in requests per second. Arrivals sit on a
    /// fixed grid: request `i` is due at `start + i / rate_hz`.
    pub rate_hz: f64,
    /// Total requests offered over the run.
    pub requests: usize,
    /// Persistent client connections the offered load is spread over
    /// (request `i` rides connection `i % connections`).
    pub connections: usize,
    /// Mode counts of the single-item request structures, cycled per
    /// request. Distinct sizes are distinct structure keys, so a router
    /// spreads them across shards and a daemon's cache converges to
    /// hits — the steady-state serving regime, not construction cost.
    pub sizes: Vec<usize>,
}

impl LoadConfig {
    /// The quick configuration used by `loadgen --smoke` and CI.
    pub fn smoke() -> Self {
        LoadConfig {
            rate_hz: 200.0,
            requests: 300,
            connections: 4,
            sizes: vec![4, 6, 8, 10],
        }
    }
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            rate_hz: 400.0,
            requests: 2000,
            connections: 8,
            sizes: vec![4, 6, 8, 10, 12, 14, 16],
        }
    }
}

/// The measured outcome of one open-loop run. All latencies are in
/// milliseconds, measured from the request's scheduled arrival to the
/// arrival of its `map_done` line.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests offered (the configured total).
    pub offered: usize,
    /// Requests that completed with zero error items.
    pub completed: usize,
    /// Requests that failed (transport error after one reconnect, or a
    /// reply containing typed error items).
    pub errors: usize,
    /// Wall time from the first scheduled arrival to the last
    /// completion, seconds.
    pub elapsed_s: f64,
    /// Sustained completion throughput, mappings per second.
    pub sustained_per_s: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Worst-case latency.
    pub max_ms: f64,
}

/// One persistent connection of the generator: write a request line,
/// drain its streamed reply to the `map_done` marker.
struct LoadConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl LoadConn {
    fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(LoadConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and drains the reply; returns the number of
    /// typed error items the server reported for it.
    fn exchange(&mut self, req: &MapRequest) -> std::io::Result<usize> {
        self.writer.write_all(req.to_line().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::ErrorKind::UnexpectedEof.into());
            }
            if line.trim().is_empty() {
                continue;
            }
            match ResponseLine::from_line(line.trim_end())
                .map_err(|e| std::io::Error::other(e.to_string()))?
            {
                ResponseLine::Item(_) => {}
                ResponseLine::Done(done) => return Ok(done.errors),
            }
        }
    }
}

/// `q`-th quantile of an ascending sample (nearest-rank).
fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Drives one open-loop run against a live daemon (single or router).
///
/// Each of the `connections` workers owns one persistent connection and
/// serves the arrival grid points assigned to it; a worker that falls
/// behind its grid accumulates the delay into its requests' latencies
/// instead of slowing the offered rate. A transport failure is retried
/// once on a fresh connection before the request counts as an error.
pub fn run_load(addr: SocketAddr, cfg: &LoadConfig) -> LoadReport {
    let conns = cfg.connections.max(1);
    let tick = Duration::from_secs_f64(1.0 / cfg.rate_hz.max(1e-9));
    // A short runway so every worker sees the same epoch in the future.
    let start = Instant::now() + Duration::from_millis(20);

    let per_worker: Vec<(usize, usize, Vec<f64>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|worker| {
                scope.spawn(move || {
                    let mut completed = 0usize;
                    let mut errors = 0usize;
                    let mut latencies_ms = Vec::new();
                    let mut conn = LoadConn::connect(addr).ok();
                    let mut i = worker;
                    while i < cfg.requests {
                        let scheduled = start + tick.mul_f64(i as f64);
                        let now = Instant::now();
                        if scheduled > now {
                            std::thread::sleep(scheduled - now);
                        }
                        let size = cfg.sizes[i % cfg.sizes.len()].max(1);
                        let req = MapRequest::new(
                            format!("load-{i}"),
                            vec![MajoranaSum::uniform_singles(size)],
                        );
                        let ok = match conn.as_mut().map(|c| c.exchange(&req)) {
                            Some(Ok(0)) => true,
                            Some(Ok(_)) => false,
                            _ => {
                                conn = LoadConn::connect(addr).ok();
                                matches!(conn.as_mut().map(|c| c.exchange(&req)), Some(Ok(0)))
                            }
                        };
                        if ok {
                            completed += 1;
                            latencies_ms.push(scheduled.elapsed().as_secs_f64() * 1e3);
                        } else {
                            errors += 1;
                        }
                        i += conns;
                    }
                    (completed, errors, latencies_ms)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker"))
            .collect()
    });
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);

    let completed: usize = per_worker.iter().map(|w| w.0).sum();
    let errors: usize = per_worker.iter().map(|w| w.1).sum();
    let mut latencies_ms: Vec<f64> = per_worker.into_iter().flat_map(|w| w.2).collect();
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    LoadReport {
        offered: cfg.requests,
        completed,
        errors,
        elapsed_s,
        sustained_per_s: completed as f64 / elapsed_s,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        max_ms: latencies_ms.last().copied().unwrap_or(0.0),
    }
}

/// The load study serialized under `"load"` in `BENCH_perf.json`
/// (hatt-perf/4): the same offered load against a single in-process
/// daemon and a two-shard consistent-hash router.
#[derive(Debug, Clone)]
pub struct LoadStudy {
    /// The offered-load configuration both runs share.
    pub config: LoadConfig,
    /// Shard daemons behind the routed run.
    pub shards: usize,
    /// The single-daemon run.
    pub single: LoadReport,
    /// The routed run (router in front of the shard daemons).
    pub routed: LoadReport,
}

/// Boots a single daemon and a two-shard router in-process and drives
/// the open-loop generator against each. Both topologies serve the
/// identical structure roster, so the reports differ only in the
/// serving path (direct scheduler vs consistent-hash fan-out).
pub fn load_study(smoke: bool) -> LoadStudy {
    let cfg = if smoke {
        LoadConfig::smoke()
    } else {
        LoadConfig::default()
    };

    let single = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())
        .expect("bind single daemon");
    let single_report = run_load(single.local_addr(), &cfg);
    single.shutdown();

    let topology = boot_routed(false);
    let routed = run_load(topology.router_addr(), &cfg);
    topology.shutdown();

    LoadStudy {
        config: cfg,
        shards: 2,
        single: single_report,
        routed,
    }
}

/// A two-shard consistent-hash topology booted in-process: the router
/// plus both shard daemons, each on an ephemeral port.
struct RoutedTopology {
    /// `[router, shard_a, shard_b]` — the router leads so
    /// [`RoutedTopology::router_addr`] is index 0.
    servers: Vec<Server>,
}

/// Boots two shard daemons and a router over them, all sharing one
/// configuration (with or without the span collector).
fn boot_routed(trace: bool) -> RoutedTopology {
    let config = ServerConfig {
        trace,
        ..ServerConfig::default()
    };
    let shard_a = Server::bind("127.0.0.1:0", Mapper::new(), config.clone()).expect("bind shard a");
    let shard_b = Server::bind("127.0.0.1:0", Mapper::new(), config.clone()).expect("bind shard b");
    let shard_addrs = vec![
        shard_a.local_addr().to_string(),
        shard_b.local_addr().to_string(),
    ];
    let router = Server::bind_router("127.0.0.1:0", &shard_addrs, config).expect("bind router");
    RoutedTopology {
        servers: vec![router, shard_a, shard_b],
    }
}

impl RoutedTopology {
    fn router_addr(&self) -> SocketAddr {
        self.servers[0].local_addr()
    }

    fn addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(|s| s.local_addr()).collect()
    }

    fn shutdown(self) {
        for server in self.servers {
            server.shutdown();
        }
    }
}

/// Per-stage latency statistics mined from the merged router and shard
/// trace dumps of one traced load run: every retained span of a stage,
/// pooled across the daemons that recorded it.
#[derive(Debug, Clone)]
pub struct TraceStageStats {
    /// Span name (`"queue.wait"`, `"construct"`, `"route.forward"`, …).
    pub name: String,
    /// Retained spans of this stage across all dumps.
    pub count: usize,
    /// Median span duration, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile span duration, milliseconds.
    pub p99_ms: f64,
}

/// The tracing study serialized under `"trace"` in `BENCH_perf.json`
/// (hatt-perf/5): the routed open-loop run with the span collector off
/// and on, the sustained-throughput overhead tracing costs, and the
/// per-stage breakdown (queue wait, cache probe, construction, forward
/// hop, write drain, …) aggregated from every daemon's `trace_dump`.
#[derive(Debug, Clone)]
pub struct TraceStudy {
    /// The offered-load configuration both runs share.
    pub config: LoadConfig,
    /// Shard daemons behind the router.
    pub shards: usize,
    /// The routed run with tracing off (the baseline).
    pub untraced: LoadReport,
    /// The identical run with `--trace` collectors on every daemon.
    pub traced: LoadReport,
    /// Throughput cost of tracing as a percentage of the untraced
    /// sustained rate (positive = tracing was slower; small negative
    /// values are run-to-run noise).
    pub overhead_pct: f64,
    /// Spans recorded across the three daemons during the traced run.
    pub spans_recorded: u64,
    /// Spans evicted from full ring buffers during the traced run.
    pub spans_dropped: u64,
    /// Per-stage duration percentiles, ordered by stage name.
    pub stages: Vec<TraceStageStats>,
}

/// Every retained span duration across the topology's dumps, as
/// `(stage name, milliseconds)` pairs.
fn dump_spans(addrs: &[SocketAddr]) -> Vec<(String, f64)> {
    let mut spans = Vec::new();
    for addr in addrs {
        if let Ok(dump) = client::trace_dump(addr, "trace-study") {
            for tree in &dump.traces {
                for s in &tree.spans {
                    spans.push((s.name.clone(), s.dur_ns as f64 / 1e6));
                }
            }
        }
    }
    spans
}

/// Runs the tracing study at the standard smoke/full offered load.
pub fn trace_study(smoke: bool) -> TraceStudy {
    let cfg = if smoke {
        LoadConfig::smoke()
    } else {
        LoadConfig::default()
    };
    trace_study_with(&cfg)
}

/// Runs the tracing study at an explicit offered load: the same
/// two-shard routed topology driven twice — collector off, then on —
/// followed by a `trace_dump` sweep over router and shards for the
/// per-stage breakdown.
pub fn trace_study_with(cfg: &LoadConfig) -> TraceStudy {
    let baseline = boot_routed(false);
    let untraced = run_load(baseline.router_addr(), cfg);
    baseline.shutdown();

    let topology = boot_routed(true);
    let traced = run_load(topology.router_addr(), cfg);

    // The final requests' root scopes close moments after their clients
    // read `map_done` (the write-drain span lands last), so poll until
    // the merged dumps stop growing before aggregating.
    let addrs = topology.addrs();
    let mut spans = Vec::new();
    let mut last_len = usize::MAX;
    for _ in 0..100 {
        spans = dump_spans(&addrs);
        if spans.len() == last_len {
            break;
        }
        last_len = spans.len();
        std::thread::sleep(Duration::from_millis(20));
    }

    let (mut spans_recorded, mut spans_dropped) = (0u64, 0u64);
    for addr in &addrs {
        if let Some(summary) = client::stats(addr, "trace-study")
            .ok()
            .and_then(|reply| reply.trace)
        {
            spans_recorded += summary.recorded;
            spans_dropped += summary.dropped;
        }
    }
    topology.shutdown();

    let mut by_stage: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for (name, ms) in spans {
        by_stage.entry(name).or_default().push(ms);
    }
    let stages = by_stage
        .into_iter()
        .map(|(name, mut ms)| {
            ms.sort_by(|a, b| a.total_cmp(b));
            TraceStageStats {
                name,
                count: ms.len(),
                p50_ms: percentile(&ms, 0.50),
                p99_ms: percentile(&ms, 0.99),
            }
        })
        .collect();

    let overhead_pct = if untraced.sustained_per_s > 0.0 {
        (untraced.sustained_per_s - traced.sustained_per_s) / untraced.sustained_per_s * 100.0
    } else {
        0.0
    };
    TraceStudy {
        config: cfg.clone(),
        shards: 2,
        untraced,
        traced,
        overhead_pct,
        spans_recorded,
        spans_dropped,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile(&[], 0.99), 0.0);
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
    }

    #[test]
    fn open_loop_run_completes_the_offered_load() {
        let server = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())
            .expect("bind ephemeral port");
        let cfg = LoadConfig {
            rate_hz: 500.0,
            requests: 40,
            connections: 2,
            sizes: vec![3, 4],
        };
        let report = run_load(server.local_addr(), &cfg);
        server.shutdown();
        assert_eq!(report.offered, 40);
        assert_eq!(report.completed, 40, "{report:?}");
        assert_eq!(report.errors, 0, "{report:?}");
        assert!(report.sustained_per_s > 0.0);
        assert!(report.p50_ms <= report.p99_ms && report.p99_ms <= report.max_ms);
    }

    #[test]
    fn trace_study_breaks_latency_into_stages() {
        let cfg = LoadConfig {
            rate_hz: 500.0,
            requests: 40,
            connections: 2,
            sizes: vec![3, 4],
        };
        let study = trace_study_with(&cfg);
        for (label, report) in [("untraced", &study.untraced), ("traced", &study.traced)] {
            assert_eq!(report.completed, 40, "{label}: {report:?}");
            assert_eq!(report.errors, 0, "{label}: {report:?}");
        }
        assert!(study.spans_recorded > 0, "traced run must record spans");
        let names: Vec<&str> = study.stages.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "queue.wait",
            "cache.probe",
            "construct",
            "route.forward",
            "write.drain",
        ] {
            assert!(names.contains(&stage), "missing stage {stage}: {names:?}");
        }
        for s in &study.stages {
            assert!(s.count > 0 && s.p50_ms <= s.p99_ms, "{s:?}");
        }
        // Every routed request forwards exactly once (single-item
        // requests, no retries on a healthy topology).
        let forward = study
            .stages
            .iter()
            .find(|s| s.name == "route.forward")
            .expect("forward stage");
        assert_eq!(forward.count, 40, "one forward hop per request");
    }
}
