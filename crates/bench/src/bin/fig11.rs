//! Figure 11 — the IonQ Forte 1 study: H2 ground-state energy measured
//! under the trapped-ion noise calibration quoted in the paper (99.98%
//! 1q, 98.99% 2q, 99.02% readout), 1000 shots per estimate. The real
//! device is replaced by the depolarizing + readout simulator at those
//! fidelities (DESIGN.md §3).
//!
//! `cargo run --release -p hatt-bench --bin fig11`

use hatt_bench::preprocess_keep_constant;
use hatt_bench::MappingRoster;
use hatt_circuit::{optimize, trotter_circuit, TermOrder};

use hatt_fermion::models::MolecularIntegrals;
use hatt_mappings::{
    balanced_ternary_tree, bravyi_kitaev, exhaustive_optimal, jordan_wigner, FermionMapping,
};
use hatt_sim::{bias_variance, energy_samples, ground_state, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("== Figure 11: H2 on an IonQ-Forte-1-like device (paper §V-D.2) ==");
    let h = preprocess_keep_constant(&MolecularIntegrals::h2_sto3g().to_fermion_operator());
    let n = h.n_modes();
    let noise = NoiseModel::ionq_forte1();
    let shots = 1000;
    let reps = 21;

    let mappings: Vec<Box<dyn FermionMapping>> = vec![
        Box::new(jordan_wigner(n)),
        Box::new(bravyi_kitaev(n)),
        Box::new(balanced_ternary_tree(n)),
        Box::new(exhaustive_optimal(&h).0),
        Box::new(
            hatt_bench::cold_mapper(MappingRoster::from_env().hatt_policy)
                .map(&h)
                .expect("benchmark Hamiltonians are non-empty")
                .as_tree_mapping()
                .clone(),
        ),
    ];

    println!(
        "  {:<8} {:>8} {:>8} {:>12} {:>12} {:>12}",
        "mapping", "cnot", "depth", "mean E", "variance", "theory"
    );
    let mut rng = StdRng::seed_from_u64(0x10_01);
    for mapping in &mappings {
        let hq = mapping.map_majorana_sum(&h);
        let (e0, psi0) = ground_state(&hq);
        let circ = optimize(&trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic));
        let mut samples = Vec::new();
        for _ in 0..reps {
            samples.extend(energy_samples(&psi0, &circ, &hq, &noise, shots, &mut rng));
        }
        let (bias, var) = bias_variance(&samples, e0);
        println!(
            "  {:<8} {:>8} {:>8} {:>12.4} {:>12.5} {:>12.4}",
            mapping.name(),
            circ.metrics().cnot,
            circ.metrics().depth,
            e0 + bias,
            var,
            e0
        );
    }
    println!(
        "\npaper reference (IonQ Forte 1): JW −1.423/0.264, BK −1.400/0.443, BTT −1.509/0.289,"
    );
    println!("  FH −1.572/0.237, HATT −1.511/0.224 against theory −1.857 (mean/variance)");
}
