//! Table III — collective neutrino oscillations: Pauli weight, CNOT count
//! and circuit depth for JW / BK / BTT / HATT (Fermihedral is absent —
//! every case exceeds its reach, as in the paper).
//!
//! `cargo run --release -p hatt-bench --bin table3`
//! (set `HATT_QUICK=1` to restrict to cases with ≤ 24 modes).

use hatt_bench::{evaluate_case, preprocess, print_case_block, print_summaries, MappingRoster};
use hatt_fermion::models::neutrino_catalog;

fn main() {
    let quick = std::env::var("HATT_QUICK").is_ok();
    println!("== Table III: collective neutrino oscillation (paper §V-C.3) ==");
    let roster = MappingRoster {
        include_fh: false,
        fh_anneal_limit: 0,
        ..MappingRoster::from_env()
    };
    let mut rows = Vec::new();
    for model in neutrino_catalog() {
        if quick && model.n_modes() > 24 {
            continue;
        }
        let h = preprocess(&model.hamiltonian());
        let cells = evaluate_case(&h, &roster);
        print_case_block(&model.label(), model.n_modes(), &cells);
        rows.push((model.label(), cells));
    }
    print_summaries(&rows);
    println!(
        "\npaper reference: HATT reduces Pauli weight ~15.7% vs JW, ~14.6% vs BK, ~12.0% vs BTT"
    );
}
