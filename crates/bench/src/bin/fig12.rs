//! Figure 12 — scalability: wall-clock construction time of the
//! Fermihedral substitute (exponential), HATT (unopt, Algorithm 1,
//! O(N⁴)), HATT (paired/uncached, Algorithm 2) and HATT (Algorithm 3,
//! O(N³)) on the paper's `H_F = Σ_i M_i` workload, swept to the paper's
//! N ≈ 100 regime, with log-log slope fits.
//!
//! `cargo run --release -p hatt-bench --bin fig12`
//! (set `HATT_FIG12_BUDGET=<seconds>` to change the per-point budget,
//! default 10 s; a variant stops at the first N whose construction
//! exceeds it).

use std::time::Instant;

use hatt_bench::perf::{
    loglog_slope, sweep_variant, sweep_variant_on, SweepConfig, SweepPoint, SweepWorkload,
    VariantSweep,
};
use hatt_core::Variant;
use hatt_fermion::MajoranaSum;
use hatt_mappings::exhaustive_optimal;

fn cell(points: &[SweepPoint], n: usize) -> String {
    points
        .iter()
        .find(|p| p.n == n)
        .map_or_else(|| "-".to_string(), |p| format!("{:.5}", p.stats.median))
}

fn main() {
    let budget = std::env::var("HATT_FIG12_BUDGET")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(10.0);
    let cfg = SweepConfig {
        ns: vec![2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 64, 80, 96, 100],
        samples: 3,
        budget_per_point: budget,
        slope_min_n: 32,
    };

    println!("== Figure 12: scalability on H_F = Σ M_i (paper §V-E) ==");
    println!(
        "(median of {} runs; per-point budget {budget} s)",
        cfg.samples
    );

    // Fermihedral substitute: exhaustive search, exponential — N ≤ 4.
    let mut fh_pts = Vec::new();
    for n in cfg.ns.iter().copied().filter(|&n| n <= 4) {
        let h = MajoranaSum::uniform_singles(n);
        let t0 = Instant::now();
        let (m, _) = exhaustive_optimal(&h);
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(m);
        fh_pts.push((n, dt));
    }

    let sweeps: Vec<VariantSweep> = [Variant::Unopt, Variant::Paired, Variant::Cached]
        .iter()
        .map(|&v| sweep_variant(&cfg, v))
        .collect();
    let (unopt, paired, cached) = (&sweeps[0], &sweeps[1], &sweeps[2]);

    println!(
        "  {:>5} {:>12} {:>12} {:>12} {:>12}",
        "N", "FH(s)", "unopt(s)", "paired(s)", "HATT(s)"
    );
    for &n in &cfg.ns {
        let fh = fh_pts
            .iter()
            .find(|&&(m, _)| m == n)
            .map_or_else(|| "-".to_string(), |&(_, t)| format!("{t:.5}"));
        println!(
            "  {:>5} {:>12} {:>12} {:>12} {:>12}",
            n,
            fh,
            cell(&unopt.points, n),
            cell(&paired.points, n),
            cell(&cached.points, n),
        );
    }

    let fmt_slope = |s: Option<f64>| s.map_or_else(|| "n/a".to_string(), |v| format!("{v:.2}"));
    println!("\nlog-log slope fits (N ≥ {}):", cfg.slope_min_n);
    println!(
        "  HATT (unopt)  ~ N^{}   (paper: O(N^4))",
        fmt_slope(unopt.slope)
    );
    println!(
        "  HATT (paired) ~ N^{}   (uncached Algorithm 2)",
        fmt_slope(paired.slope)
    );
    println!(
        "  HATT          ~ N^{}   (paper: O(N^3))",
        fmt_slope(cached.slope)
    );
    if fh_pts.len() >= 2 {
        let (n0, t0) = fh_pts[fh_pts.len() - 2];
        let (n1, t1) = fh_pts[fh_pts.len() - 1];
        println!(
            "  FH substitute grows ×{:.1} from N={n0} to N={n1} (exponential, paper: O(4^N))",
            t1 / t0.max(1e-12)
        );
    }

    // Slopes fitted on the *overlapping* range make the O(N³)/O(N⁴)
    // separation directly comparable even when budgets truncate unopt.
    let n_common = unopt
        .points
        .last()
        .map(|p| p.n)
        .min(cached.points.last().map(|p| p.n));
    if let Some(n_max) = n_common {
        let tail = |s: &VariantSweep| -> Vec<(usize, f64)> {
            s.points
                .iter()
                .filter(|p| p.n >= cfg.slope_min_n && p.n <= n_max)
                .map(|p| (p.n, p.stats.median))
                .collect()
        };
        println!(
            "  overlapping range ({} ≤ N ≤ {n_max}): unopt ~ N^{}, HATT ~ N^{}",
            cfg.slope_min_n,
            fmt_slope(loglog_slope(&tail(unopt))),
            fmt_slope(loglog_slope(&tail(cached))),
        );
        let t_unopt = unopt.points.iter().find(|p| p.n == n_max).unwrap();
        let t_cached = cached.points.iter().find(|p| p.n == n_max).unwrap();
        println!(
            "\nat N = {n_max}: HATT is {:.2}% faster than HATT (unopt)  (paper: 59.73%)",
            100.0 * (t_unopt.stats.median - t_cached.stats.median) / t_unopt.stats.median
        );
    }
    if let Some(last) = cached.points.last() {
        println!(
            "HATT reached N = {} in {:.3} s per construction (memo: {} hits / {} misses)",
            last.n, last.stats.median, last.memo_hits, last.memo_misses
        );
    }

    // The dense-molecule workload: unlike the singles chain, every mode
    // participates in quartic interaction terms, so candidate scans
    // touch many terms per triple — the structure shape of the Table I
    // electronic-structure cases.
    println!("\n== dense-molecule workload (2N hops + 4N interactions) ==");
    let dense = sweep_variant_on(&cfg, Variant::Cached, SweepWorkload::DenseMolecule);
    println!("  {:>5} {:>12} {:>12}", "N", "HATT(s)", "weight");
    for p in &dense.points {
        println!(
            "  {:>5} {:>12.5} {:>12}",
            p.n, p.stats.median, p.pauli_weight
        );
    }
    println!(
        "  dense HATT slope ~ N^{} (N ≥ {})",
        fmt_slope(dense.slope),
        cfg.slope_min_n
    );
}
