//! Figure 12 — scalability: wall-clock construction time of the
//! Fermihedral substitute (exponential), HATT (unopt, Algorithm 1,
//! O(N⁴)), HATT (paired/uncached, Algorithm 2) and HATT (Algorithm 3,
//! O(N³)) on the paper's `H_F = Σ_i M_i` workload, with log-log slope
//! fits.
//!
//! `cargo run --release -p hatt-bench --bin fig12`

use std::time::Instant;

use hatt_core::{hatt_with, HattOptions, Variant};
use hatt_fermion::MajoranaSum;
use hatt_mappings::exhaustive_optimal;

fn time_variant(h: &MajoranaSum, variant: Variant, repeats: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let m = hatt_with(
            h,
            &HattOptions {
                variant,
                naive_weight: false,
            },
        );
        let dt = t0.elapsed().as_secs_f64();
        std::hint::black_box(m);
        best = best.min(dt);
    }
    best
}

/// Least-squares slope of ln(t) against ln(n).
fn loglog_slope(points: &[(usize, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(_, t)| t > 0.0)
        .map(|&(n, t)| ((n as f64).ln(), t.ln()))
        .collect();
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

fn main() {
    println!("== Figure 12: scalability on H_F = Σ M_i (paper §V-E) ==");
    println!(
        "  {:>5} {:>12} {:>12} {:>12} {:>12}",
        "N", "FH(s)", "unopt(s)", "paired(s)", "HATT(s)"
    );
    let mut fh_pts = Vec::new();
    let mut unopt_pts = Vec::new();
    let mut paired_pts = Vec::new();
    let mut cached_pts = Vec::new();

    for n in [2usize, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 64] {
        let h = MajoranaSum::uniform_singles(n);
        let fh = if n <= 4 {
            let t0 = Instant::now();
            let (m, _) = exhaustive_optimal(&h);
            let dt = t0.elapsed().as_secs_f64();
            std::hint::black_box(m);
            fh_pts.push((n, dt));
            format!("{dt:.5}")
        } else {
            "-".to_string()
        };
        let unopt = time_variant(&h, Variant::Unopt, 3);
        let paired = time_variant(&h, Variant::Paired, 3);
        let cached = time_variant(&h, Variant::Cached, 3);
        unopt_pts.push((n, unopt));
        paired_pts.push((n, paired));
        cached_pts.push((n, cached));
        println!(
            "  {:>5} {:>12} {:>12.5} {:>12.5} {:>12.5}",
            n, fh, unopt, paired, cached
        );
    }

    // Fit slopes on the large-N tail where asymptotics dominate.
    let tail = |pts: &[(usize, f64)]| -> Vec<(usize, f64)> {
        pts.iter().copied().filter(|&(n, _)| n >= 16).collect()
    };
    println!("\nlog-log slope fits (N ≥ 16):");
    println!(
        "  HATT (unopt)  ~ N^{:.2}   (paper: O(N^4))",
        loglog_slope(&tail(&unopt_pts))
    );
    println!(
        "  HATT (paired) ~ N^{:.2}   (uncached Algorithm 2)",
        loglog_slope(&tail(&paired_pts))
    );
    println!(
        "  HATT          ~ N^{:.2}   (paper: O(N^3))",
        loglog_slope(&tail(&cached_pts))
    );
    if fh_pts.len() >= 2 {
        let (n0, t0) = fh_pts[fh_pts.len() - 2];
        let (n1, t1) = fh_pts[fh_pts.len() - 1];
        println!(
            "  FH substitute grows ×{:.1} from N={n0} to N={n1} (exponential, paper: O(4^N))",
            t1 / t0.max(1e-12)
        );
    }
    let (n_max, t_unopt) = *unopt_pts.last().unwrap();
    let t_cached = cached_pts.last().unwrap().1;
    println!(
        "\nat N = {n_max}: HATT is {:.2}% faster than HATT (unopt)  (paper: 59.73%)",
        100.0 * (t_unopt - t_cached) / t_unopt
    );
}
