//! Table V — Pauli-network synthesis (Rustiq stand-in): CNOT / U3 / depth
//! of JW vs HATT circuits compiled with the greedy frame-tracking
//! synthesizer.
//!
//! `cargo run --release -p hatt-bench --bin table5`

use hatt_bench::MappingRoster;
use hatt_bench::{preprocess, reduction_pct};
use hatt_circuit::{optimize, rustiq_trotter, RustiqOptions};

use hatt_fermion::models::molecule_catalog;
use hatt_mappings::{jordan_wigner, FermionMapping};

fn main() {
    println!("== Table V: JW vs HATT through Rustiq-lite synthesis (paper §V-C.1) ==");
    println!(
        "  {:<16} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
        "case", "JW cx", "JW u3", "JW d", "HATT cx", "HATT u3", "HATT d"
    );
    let cases: Vec<_> = molecule_catalog()
        .into_iter()
        .filter(|m| m.n_modes <= 20)
        .collect();
    let opts = RustiqOptions::default();
    let mut cx_red = Vec::new();
    let mut u3_red = Vec::new();
    for spec in &cases {
        let h = preprocess(&spec.hamiltonian());
        let n = h.n_modes();
        let mut row = Vec::new();
        for mapping in [
            Box::new(jordan_wigner(n)) as Box<dyn FermionMapping>,
            Box::new(
                hatt_bench::cold_mapper(MappingRoster::from_env().hatt_policy)
                    .map(&h)
                    .expect("benchmark Hamiltonians are non-empty")
                    .as_tree_mapping()
                    .clone(),
            ),
        ] {
            let hq = mapping.map_majorana_sum(&h);
            let circ = optimize(&rustiq_trotter(&hq, 1.0, 1, &opts));
            row.push(circ.metrics());
        }
        println!(
            "  {:<16} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
            spec.name,
            row[0].cnot,
            row[0].single_qubit,
            row[0].depth,
            row[1].cnot,
            row[1].single_qubit,
            row[1].depth
        );
        cx_red.push(reduction_pct(row[0].cnot, row[1].cnot));
        u3_red.push(reduction_pct(row[0].single_qubit, row[1].single_qubit));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean reduction (HATT vs JW): CNOT {:.2}%, U3 {:.2}%",
        mean(&cx_red),
        mean(&u3_red)
    );
    println!(
        "paper reference: HATT+Rustiq beats JW+Rustiq by up to 18.2% CNOT / 21.8% U3 / 13.5% depth"
    );
}
