//! Table I — electronic-structure models: Pauli weight, CNOT count and
//! circuit depth for JW / BK / BTT / FH / HATT.
//!
//! `cargo run --release -p hatt-bench --bin table1`
//! (set `HATT_QUICK=1` to restrict to molecules with ≤ 20 modes).

use hatt_bench::{evaluate_case, preprocess, print_case_block, print_summaries, MappingRoster};
use hatt_fermion::models::molecule_catalog;

fn main() {
    let quick = std::env::var("HATT_QUICK").is_ok();
    println!("== Table I: electronic structure (paper §V-C.1) ==");
    if quick {
        println!("(HATT_QUICK set: molecules ≤ 20 modes only)");
    }
    let roster = MappingRoster::from_env();
    let mut rows = Vec::new();
    for spec in molecule_catalog() {
        if quick && spec.n_modes > 20 {
            continue;
        }
        let h = preprocess(&spec.hamiltonian());
        let cells = evaluate_case(&h, &roster);
        print_case_block(spec.name, spec.n_modes, &cells);
        rows.push((spec.name.to_string(), cells));
    }
    print_summaries(&rows);
    println!(
        "\npaper reference: HATT reduces Pauli weight by ~14.8% vs JW, ~13.8% vs BK, ~11.8% vs BTT"
    );
}
