//! Table IV — architecture-aware compilation (Tetris stand-in): CNOT /
//! U3 / depth of JW vs HATT circuits routed onto the Manhattan, Sycamore
//! and Montreal coupling maps with the SABRE-style router.
//!
//! `cargo run --release -p hatt-bench --bin table4`

use hatt_bench::MappingRoster;
use hatt_bench::{preprocess, reduction_pct};
use hatt_circuit::{optimize, route_sabre, trotter_circuit, CouplingMap, RouterOptions, TermOrder};

use hatt_fermion::models::molecule_catalog;
use hatt_mappings::{jordan_wigner, FermionMapping};

fn main() {
    println!("== Table IV: JW vs HATT through SABRE-lite routing (paper §V-C.1, Tetris) ==");
    let archs = [
        CouplingMap::manhattan65(),
        CouplingMap::sycamore54(),
        CouplingMap::montreal27(),
    ];
    // The routed study uses the molecules that fit the smallest device.
    let cases: Vec<_> = molecule_catalog()
        .into_iter()
        .filter(|m| m.n_modes <= 14)
        .collect();

    for arch in &archs {
        println!(
            "\n--- architecture: {} ({} qubits) ---",
            arch.name(),
            arch.n_qubits()
        );
        println!(
            "  {:<16} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
            "case", "JW cx", "JW u3", "JW d", "HATT cx", "HATT u3", "HATT d"
        );
        let mut cx_red = Vec::new();
        for spec in &cases {
            if spec.n_modes > arch.n_qubits() {
                continue;
            }
            let h = preprocess(&spec.hamiltonian());
            let n = h.n_modes();
            let mut row = Vec::new();
            for mapping in [
                Box::new(jordan_wigner(n)) as Box<dyn FermionMapping>,
                Box::new(
                    hatt_bench::cold_mapper(MappingRoster::from_env().hatt_policy)
                        .map(&h)
                        .expect("benchmark Hamiltonians are non-empty")
                        .as_tree_mapping()
                        .clone(),
                ),
            ] {
                let hq = mapping.map_majorana_sum(&h);
                let circ = optimize(&trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic));
                let routed = route_sabre(&circ, arch, &RouterOptions::default());
                let m = optimize(&routed.circuit).metrics();
                row.push(m);
            }
            println!(
                "  {:<16} {:>10} {:>10} {:>8} | {:>10} {:>10} {:>8}",
                spec.name,
                row[0].cnot,
                row[0].single_qubit,
                row[0].depth,
                row[1].cnot,
                row[1].single_qubit,
                row[1].depth
            );
            cx_red.push(reduction_pct(row[0].cnot, row[1].cnot));
        }
        if !cx_red.is_empty() {
            let mean = cx_red.iter().sum::<f64>() / cx_red.len() as f64;
            println!("  mean CNOT reduction (HATT vs JW): {mean:.2}%");
        }
    }
    println!("\npaper reference: HATT+Tetris beats JW+Tetris by up to 17.1% CNOT / 22.0% U3 / 19.5% depth");
}
