//! Quality-vs-time study of the HATT [`SelectionPolicy`] ladder: for
//! every benchmark Hamiltonian ≤ 20 modes (Table I molecules, Fermi-
//! Hubbard lattices, neutrino models), the mapped Pauli weight and the
//! construction time of each policy, against the Jordan-Wigner and
//! balanced-ternary-tree baselines.
//!
//! `cargo run --release -p hatt-bench --bin policy`
//! (set `HATT_POLICIES=greedy,beam:4,…` to change the ladder and
//! `HATT_POLICY_MAX_MODES=<n>` to change the size cut-off).

use std::time::Instant;

use hatt_bench::preprocess;
use hatt_fermion::models::{molecule_catalog, neutrino_catalog, FermiHubbard};
use hatt_fermion::MajoranaSum;
use hatt_mappings::{
    balanced_ternary_tree, exhaustive_optimal, exhaustive_optimal_with, jordan_wigner,
    FermionMapping, SelectionPolicy,
};

fn cases(max_modes: usize) -> Vec<(String, MajoranaSum)> {
    let mut cases = Vec::new();
    for spec in molecule_catalog() {
        if spec.n_modes <= max_modes {
            cases.push((spec.name.to_string(), preprocess(&spec.hamiltonian())));
        }
    }
    for (rows, cols) in [(2, 2), (2, 3)] {
        let h = preprocess(&FermiHubbard::new(rows, cols).hamiltonian());
        if h.n_modes() <= max_modes {
            cases.push((format!("Hubbard {rows}x{cols}"), h));
        }
    }
    for model in neutrino_catalog() {
        if model.n_modes() <= max_modes {
            cases.push((
                format!("neutrino {}", model.label()),
                preprocess(&model.hamiltonian()),
            ));
        }
    }
    cases
}

fn main() {
    let max_modes = std::env::var("HATT_POLICY_MAX_MODES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let policies: Vec<SelectionPolicy> = std::env::var("HATT_POLICIES")
        .map(|s| {
            s.split(',')
                .map(|p| p.trim().parse().expect("invalid HATT_POLICIES entry"))
                .collect()
        })
        .unwrap_or_else(|_| {
            vec![
                SelectionPolicy::Greedy,
                SelectionPolicy::Lookahead { width: 8 },
                SelectionPolicy::Beam { width: 4 },
                SelectionPolicy::quality(),
            ]
        });

    println!("== Selection-policy quality vs time (cases ≤ {max_modes} modes) ==");
    print!("{:<18} {:>5} {:>8} {:>8} |", "case", "modes", "JW", "BTT");
    for p in &policies {
        print!(" {:>21}", p.label());
    }
    println!();

    let mut worse_than_jw = 0usize;
    for (name, h) in cases(max_modes) {
        let n = h.n_modes();
        let w_jw = jordan_wigner(n).map_majorana_sum(&h).weight();
        let w_btt = balanced_ternary_tree(n).map_majorana_sum(&h).weight();
        print!("{name:<18} {n:>5} {w_jw:>8} {w_btt:>8} |");
        for &policy in &policies {
            let mapper = hatt_bench::cold_mapper(policy);
            let t0 = Instant::now();
            let m = mapper
                .map(&h)
                .expect("benchmark Hamiltonians are non-empty");
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            let w = m.map_majorana_sum(&h).weight();
            let marker = if w > w_jw { "!" } else { " " };
            if w > w_jw && policy == SelectionPolicy::quality() {
                worse_than_jw += 1;
            }
            print!(" {w:>10}{marker} {dt:>8.2}ms");
        }
        println!();
    }
    // The exhaustive baseline benefits too: a policy-greedy seed gives
    // the branch-and-bound a tight bound from step 0. Measured, not
    // asserted — same optimum, fewer candidate evaluations.
    println!("\n== greedy-seeded exhaustive search (H2, 4 modes) ==");
    let h2 = preprocess(
        &molecule_catalog()
            .into_iter()
            .find(|m| m.n_modes == 4)
            .expect("H2 in catalog")
            .hamiltonian(),
    );
    let (_, plain) = exhaustive_optimal(&h2);
    let (_, seeded) = exhaustive_optimal_with(&h2, Some(SelectionPolicy::Greedy));
    println!(
        "  unseeded: weight {} after {} candidates; greedy-seeded: weight {} after {} candidates ({:+.1}%)",
        plain.best_weight,
        plain.candidates,
        seeded.best_weight,
        seeded.candidates,
        100.0 * (seeded.candidates as f64 - plain.candidates as f64) / plain.candidates as f64,
    );

    println!("\n('!' marks a policy losing to Jordan-Wigner on that case)");
    if !policies.contains(&SelectionPolicy::quality()) {
        println!(
            "quality policy ({}) not in the measured ladder — no guarantee to report",
            SelectionPolicy::quality()
        );
    } else if worse_than_jw == 0 {
        println!(
            "quality policy ({}) ≤ JW on every case",
            SelectionPolicy::quality()
        );
    } else {
        println!(
            "quality policy ({}) loses to JW on {worse_than_jw} case(s)",
            SelectionPolicy::quality()
        );
    }
}
