//! Figure 10 — noisy-simulation bias/variance heatmaps for H2 and
//! LiH-frz: a depolarizing (p1, p2) grid × the five mappings. The ground
//! state (from the dense eigensolver) is prepared exactly, one Trotter
//! step of `exp(-iHt)` runs under noise, and the energy is estimated from
//! shots with QWC grouping — all bias/variance therefore comes from noise
//! acting on the mapping-dependent circuit (see DESIGN.md §3).
//!
//! `cargo run --release -p hatt-bench --bin fig10`

use hatt_bench::preprocess_keep_constant;
use hatt_bench::MappingRoster;
use hatt_circuit::{optimize, trotter_circuit, TermOrder};

use hatt_fermion::models::molecule_catalog;
use hatt_mappings::{
    balanced_ternary_tree, bravyi_kitaev, exhaustive_optimal, jordan_wigner, FermionMapping,
};
use hatt_sim::{bias_variance, energy_samples, ground_state, NoiseModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn logspace(lo: f64, hi: f64, k: usize) -> Vec<f64> {
    (0..k)
        .map(|i| lo * (hi / lo).powf(i as f64 / (k - 1) as f64))
        .collect()
}

fn main() {
    println!("== Figure 10: noisy-simulation bias/variance (paper §V-D.1) ==");
    for (mol_name, shots, reps, grid) in [
        ("H2 sto3g", 1000usize, 8usize, 4usize),
        ("LiH sto3g frz", 300, 3, 2),
    ] {
        let spec = molecule_catalog()
            .into_iter()
            .find(|m| m.name == mol_name)
            .expect("known molecule");
        let h = preprocess_keep_constant(&spec.hamiltonian());
        let n = h.n_modes();
        println!("\n--- {mol_name} ({n} modes); {shots} shots × {reps} repetitions ---");

        let mappings: Vec<Box<dyn FermionMapping>> = {
            let mut v: Vec<Box<dyn FermionMapping>> = vec![
                Box::new(jordan_wigner(n)),
                Box::new(bravyi_kitaev(n)),
                Box::new(balanced_ternary_tree(n)),
            ];
            if n <= 5 {
                v.push(Box::new(exhaustive_optimal(&h).0));
            }
            v.push(Box::new(
                hatt_bench::cold_mapper(MappingRoster::from_env().hatt_policy)
                    .map(&h)
                    .expect("benchmark Hamiltonians are non-empty")
                    .as_tree_mapping()
                    .clone(),
            ));
            v
        };

        let p1s = logspace(1e-5, 1e-4, grid);
        let p2s = logspace(1e-4, 1e-3, grid);
        for mapping in &mappings {
            let hq = mapping.map_majorana_sum(&h);
            let (e0, psi0) = ground_state(&hq);
            let circ = optimize(&trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic));
            let m = circ.metrics();
            println!(
                "\n  {} (cnot {}, depth {}): theoretical E0 = {:.6}",
                mapping.name(),
                m.cnot,
                m.depth,
                e0
            );
            println!(
                "    {:>9} {:>9} {:>10} {:>10}",
                "p1", "p2", "bias", "variance"
            );
            let mut rng = StdRng::seed_from_u64(0xF160 + n as u64);
            for &p1 in &p1s {
                for &p2 in &p2s {
                    let noise = NoiseModel::depolarizing(p1, p2);
                    let mut samples = Vec::new();
                    for _ in 0..reps {
                        samples.extend(energy_samples(&psi0, &circ, &hq, &noise, shots, &mut rng));
                    }
                    let (bias, var) = bias_variance(&samples, e0);
                    println!("    {:>9.1e} {:>9.1e} {:>10.4} {:>10.5}", p1, p2, bias, var);
                }
            }
        }
    }
    println!("\npaper reference: HATT shows the lowest bias/variance, close to the optimal FH");
}
