//! Machine-readable perf harness: sweeps the three HATT variants on the
//! paper's scalability workload (plus a dense-molecule structure), the
//! policy quality-vs-time ladder, the parallel engine (threaded
//! `restarts`, batched `map_many`), the incremental-remap stream and
//! the open-loop service load study (single daemon vs two-shard
//! router) and the tracing-overhead study (the routed run with the
//! span collector off vs on, with a per-stage latency breakdown), then
//! writes `BENCH_perf.json` (schema `hatt-perf/5`) so successive PRs
//! can compare perf trajectories.
//!
//! `cargo run --release -p hatt-bench --bin perf -- [--smoke]
//!     [--out PATH] [--budget SECONDS] [--samples K] [--max-n N]`
//!
//! * `--smoke` — quick CI configuration (N ≤ 24, tight budget).
//! * `--out PATH` — output path (default `BENCH_perf.json`).
//! * `--budget SECONDS` — per-point budget; a variant stops at the
//!   first N whose construction exceeds it (default 10, smoke 2).
//! * `--samples K` — timed samples per point (default 3).
//! * `--max-n N` — drop sweep points above N.
//!
//! See the README "Perf harness" section for the JSON schema.

use std::process::ExitCode;

use hatt_bench::load::{load_study, trace_study};
use hatt_bench::perf::{
    paper_complexity, parallel_study, policy_tradeoff, remap_study, sweep_variant,
    sweep_variant_on, sweeps_to_json, SweepConfig, SweepWorkload, VariantSweep,
};
use hatt_core::Variant;

struct Args {
    smoke: bool,
    out: String,
    budget: Option<f64>,
    samples: Option<usize>,
    max_n: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_perf.json".to_string(),
        budget: None,
        samples: None,
        max_n: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = value("--out")?,
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                )
            }
            "--samples" => {
                args.samples = Some(
                    value("--samples")?
                        .parse()
                        .map_err(|e| format!("--samples: {e}"))?,
                )
            }
            "--max-n" => {
                args.max_n = Some(
                    value("--max-n")?
                        .parse()
                        .map_err(|e| format!("--max-n: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("perf: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut cfg = if args.smoke {
        SweepConfig::smoke()
    } else {
        SweepConfig::default()
    };
    if let Some(b) = args.budget {
        cfg.budget_per_point = b;
    }
    if let Some(k) = args.samples {
        cfg.samples = k.max(1);
    }
    if let Some(cap) = args.max_n {
        cfg.ns.retain(|&n| n <= cap);
    }
    if cfg.ns.is_empty() {
        eprintln!("perf: no sweep points left (check --max-n)");
        return ExitCode::FAILURE;
    }

    println!(
        "== perf harness: H_F = Σ M_i, N ∈ {:?}, {} samples/point, budget {} s ==",
        cfg.ns, cfg.samples, cfg.budget_per_point
    );
    let sweeps: Vec<VariantSweep> = [Variant::Unopt, Variant::Paired, Variant::Cached]
        .iter()
        .map(|&v| {
            let sweep = sweep_variant(&cfg, v);
            let slope = sweep
                .slope
                .map_or_else(|| "n/a".to_string(), |s| format!("{s:.2}"));
            let last = sweep.points.last().expect("ns is non-empty");
            println!(
                "  {:<24} reached N={:<4} median {:.4} s  slope ~ N^{slope}  ({})",
                sweep.variant.label(),
                last.n,
                last.stats.median,
                paper_complexity(v),
            );
            sweep
        })
        .collect();

    println!("\n== selection-policy quality vs time (neutrino family) ==");
    let policies = policy_tradeoff(args.smoke);
    for p in &policies {
        let marker = if p.pauli_weight > p.jw_weight {
            "  (worse than JW)"
        } else {
            ""
        };
        println!(
            "  {:<16} {:<12} weight {:>6} (JW {:>6})  {:>8.2} ms{marker}",
            p.case,
            p.policy.label(),
            p.pauli_weight,
            p.jw_weight,
            p.seconds * 1e3,
        );
    }

    println!("\n== parallel engine: threaded restarts & batched map_many ==");
    let parallel = parallel_study(args.smoke);
    println!(
        "  workers: {} (hardware: {})",
        parallel.workers, parallel.available_workers
    );
    for c in &parallel.restarts {
        println!(
            "  restarts {:<16} ({:>2} modes)  seq {:>8.2} ms  threaded {:>8.2} ms  ×{:.2}",
            c.case,
            c.n_modes,
            c.seq_s * 1e3,
            c.threaded_s * 1e3,
            c.speedup(),
        );
    }
    println!(
        "  restarts roster total: seq {:.2} ms, threaded {:.2} ms (×{:.2})",
        parallel.restarts_seq_total_s() * 1e3,
        parallel.restarts_threaded_total_s() * 1e3,
        parallel.restarts_speedup(),
    );
    let b = &parallel.batch;
    println!(
        "  batch sweep: {} Hamiltonians / {} structures  seq {:.2} ms  map_many {:.2} ms (×{:.2}, {:.1} mappings/s, {} hits / {} misses)",
        b.batch_size,
        b.distinct_structures,
        b.seq_s * 1e3,
        b.threaded_s * 1e3,
        b.speedup(),
        b.throughput_per_s(),
        b.cache_hits,
        b.cache_misses,
    );

    println!("\n== dense-molecule structure (2N hops + 4N interactions) ==");
    let dense: Vec<VariantSweep> = [Variant::Cached]
        .iter()
        .map(|&v| {
            let sweep = sweep_variant_on(&cfg, v, SweepWorkload::DenseMolecule);
            let last = sweep.points.last().expect("ns is non-empty");
            println!(
                "  {:<24} reached N={:<4} median {:.4} s",
                sweep.variant.label(),
                last.n,
                last.stats.median,
            );
            sweep
        })
        .collect();

    println!("\n== incremental remap: one-term-delta stream vs cold rebuilds ==");
    let remap = remap_study(args.smoke);
    println!(
        "  {} / {} steps  incremental {:.2} ms  fresh {:.2} ms  ×{:.2}  ({:.1} remaps/s, {} cold after base)",
        remap.case,
        remap.steps,
        remap.incremental_s * 1e3,
        remap.fresh_s * 1e3,
        remap.speedup(),
        remap.remaps_per_s(),
        remap.constructions_after_base,
    );

    println!("\n== open-loop service load: single daemon vs 2-shard router ==");
    let load = load_study(args.smoke);
    for (topology, report) in [("single", &load.single), ("routed", &load.routed)] {
        println!(
            "  {topology:<8} {}/{} ok  {:.1} mappings/s  p50 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
            report.completed,
            report.offered,
            report.sustained_per_s,
            report.p50_ms,
            report.p99_ms,
            report.max_ms,
        );
    }

    println!("\n== tracing overhead: routed load with the span collector off vs on ==");
    let trace = trace_study(args.smoke);
    for (label, report) in [("untraced", &trace.untraced), ("traced", &trace.traced)] {
        println!(
            "  {label:<8} {}/{} ok  {:.1} mappings/s  p50 {:.2} ms  p99 {:.2} ms",
            report.completed, report.offered, report.sustained_per_s, report.p50_ms, report.p99_ms,
        );
    }
    println!(
        "  overhead {:.2}%  ({} spans recorded, {} dropped)",
        trace.overhead_pct, trace.spans_recorded, trace.spans_dropped,
    );
    for s in &trace.stages {
        println!(
            "  stage {:<16} ×{:<5} p50 {:.3} ms  p99 {:.3} ms",
            s.name, s.count, s.p50_ms, s.p99_ms,
        );
    }

    let doc = sweeps_to_json(
        &cfg, args.smoke, &sweeps, &policies, &parallel, &dense, &remap, &load, &trace,
    );
    if let Err(e) = std::fs::write(&args.out, doc.render_pretty()) {
        eprintln!("perf: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    ExitCode::SUCCESS
}
