//! Table II — Fermi-Hubbard lattices: Pauli weight, CNOT count and
//! circuit depth for JW / BK / BTT / FH / HATT.
//!
//! `cargo run --release -p hatt-bench --bin table2`

use hatt_bench::{evaluate_case, preprocess, print_case_block, print_summaries, MappingRoster};
use hatt_fermion::models::hubbard_catalog;

fn main() {
    println!("== Table II: Fermi-Hubbard model (paper §V-C.2) ==");
    let roster = MappingRoster::from_env();
    let mut rows = Vec::new();
    for lattice in hubbard_catalog() {
        let h = preprocess(&lattice.hamiltonian());
        let cells = evaluate_case(&h, &roster);
        print_case_block(&lattice.label(), lattice.n_modes(), &cells);
        rows.push((lattice.label(), cells));
    }
    print_summaries(&rows);
    println!(
        "\npaper reference (2x2): JW 80, BK 80, BTT 86, FH 56, HATT 76; \
         HATT reduces Pauli weight ~20.9% vs JW on average"
    );
}
