//! Batched-construction throughput harness: how many fermion-to-qubit
//! mappings per second the engine serves on a coefficient-sweep
//! workload, sequentially vs through `map_many` (threads + the
//! structure-keyed cache), plus the warm-cache service ceiling.
//!
//! `cargo run --release -p hatt-bench --bin throughput --
//!     [--smoke] [--reps K] [--threads N]`
//!
//! * `--smoke` — one neutrino structure, 8 instances (the CI shape).
//! * `--reps K` — instances per structure (default 12, smoke 8).
//! * `--threads N` — worker override (default: `HATT_THREADS` /
//!   hardware, like every other entry point).
//!
//! Three measurements per roster:
//!
//! 1. `sequential` — one-by-one `hatt_with`, 1 worker, no cache;
//! 2. `map_many (cold)` — batched, fresh cache (thread fan-out + the
//!    in-flight structure dedup);
//! 3. `map_many (warm)` — the same batch again against the now-warm
//!    cache: every probe hits and only replays, the service ceiling.
//!
//! All three produce bit-identical mappings (cross-checked here), so
//! the only thing being traded is wall time.

use std::process::ExitCode;
use std::time::Instant;

use hatt_core::Mapper;
use hatt_fermion::models::NeutrinoModel;
use hatt_fermion::MajoranaSum;
use hatt_mappings::SelectionPolicy;

struct Args {
    smoke: bool,
    reps: Option<usize>,
    threads: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        reps: None,
        threads: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--reps" => {
                args.reps = Some(
                    value("--reps")?
                        .parse()
                        .map_err(|e| format!("--reps: {e}"))?,
                )
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("throughput: {e}");
            return ExitCode::FAILURE;
        }
    };
    let sizes: &[(usize, usize)] = if args.smoke {
        &[(3, 2)]
    } else {
        &[(3, 2), (4, 2), (3, 3)]
    };
    let reps = args.reps.unwrap_or(if args.smoke { 8 } else { 12 }).max(1);
    let workers = args.threads.unwrap_or_else(parallel::max_threads);

    let mut batch: Vec<MajoranaSum> = Vec::new();
    let mut labels: Vec<String> = Vec::new();
    for &(sites, flavors) in sizes {
        let model = NeutrinoModel::new(sites, flavors);
        let base = hatt_bench::preprocess(&model.hamiltonian());
        labels.push(format!("neutrino {}", model.label()));
        for r in 0..reps {
            batch.push(base.scaled(1.0 + 0.0625 * r as f64));
        }
    }
    println!(
        "== map_many throughput: {} Hamiltonians ({} structures × {} instances), {} workers ==",
        batch.len(),
        sizes.len(),
        reps,
        workers,
    );
    println!("   structures: {}", labels.join(", "));

    let policy = SelectionPolicy::Restarts;
    // Sequential baseline: uncached handle, 1 worker, cold every time.
    let seq_mapper = Mapper::builder()
        .policy(policy)
        .threads(1)
        .cache_capacity(0)
        .build()
        .expect("static mapper configuration");
    let t0 = Instant::now();
    let seq_maps: Vec<_> = batch
        .iter()
        .map(|h| seq_mapper.map(h).expect("sweep Hamiltonians are non-empty"))
        .collect();
    let seq_s = t0.elapsed().as_secs_f64();

    // Batched handle: threads + the structure cache (the service shape).
    let batched = Mapper::builder()
        .policy(policy)
        .threads(workers)
        .build()
        .expect("static mapper configuration");
    let t0 = Instant::now();
    let cold_maps = batched.map_batch(&batch).expect("sweep batch maps");
    let cold_s = t0.elapsed().as_secs_f64();
    let (cold_hits, cold_misses) = (batched.cache().hits(), batched.cache().misses());

    let t0 = Instant::now();
    let warm_maps = batched.map_batch(&batch).expect("sweep batch maps");
    let warm_s = t0.elapsed().as_secs_f64();

    // Throughput must never buy different results.
    for (i, seq) in seq_maps.iter().enumerate() {
        assert_eq!(cold_maps[i].tree(), seq.tree(), "cold batch drifted at {i}");
        assert_eq!(warm_maps[i].tree(), seq.tree(), "warm batch drifted at {i}");
    }

    let row = |name: &str, secs: f64, extra: String| {
        println!(
            "  {:<16} {:>10.2} ms  {:>10.1} mappings/s{}",
            name,
            secs * 1e3,
            batch.len() as f64 / secs.max(1e-12),
            extra,
        );
    };
    row("sequential", seq_s, String::new());
    row(
        "map_many cold",
        cold_s,
        format!(
            "  (×{:.2}; {cold_hits} hits / {cold_misses} misses)",
            seq_s / cold_s.max(1e-12)
        ),
    );
    row(
        "map_many warm",
        warm_s,
        format!("  (×{:.2}; all hits)", seq_s / warm_s.max(1e-12)),
    );
    println!(
        "  cache: {} entries after {} lookups",
        batched.cache().len(),
        batched.cache().hits() + batched.cache().misses(),
    );
    ExitCode::SUCCESS
}
