//! Synthetic open-loop load generator for `hattd` deployments — the CI
//! smoke driver behind the `"load"` section of `BENCH_perf.json`.
//!
//! `cargo run --release -p hatt-bench --bin loadgen -- [--smoke]
//!     [--trace] [--addr HOST:PORT] [--rate HZ] [--requests N]
//!     [--connections C] [--identity HOST:PORT]`
//!
//! * `--smoke` — boot a single daemon and a two-shard router in-process
//!   and drive the quick study against both (no external daemon).
//! * `--trace` — boot the two-shard routed topology twice (span
//!   collector off, then on), measure tracing's throughput overhead and
//!   print the per-stage p50/p99 breakdown (queue wait, cache probe,
//!   construction, forward hop, write drain, …) mined from the daemons'
//!   `trace_dump` replies. Honours `--rate`/`--requests`/
//!   `--connections`.
//! * `--addr HOST:PORT` — drive a live daemon (single or router) with
//!   the open-loop generator and print its sustained throughput and
//!   latency percentiles.
//! * `--rate` / `--requests` / `--connections` — override the offered
//!   load for `--addr` runs (defaults: the smoke configuration).
//! * `--identity HOST:PORT` — map the Table I roster through a live
//!   daemon and verify every response is bit-identical to an in-process
//!   reference `Mapper` (the router-vs-single-daemon identity check).
//!
//! Exits non-zero when a run completes nothing, reports errors, or an
//! identity check finds a drifted tree.

use std::net::{SocketAddr, ToSocketAddrs};
use std::process::ExitCode;

use hatt_bench::load::{load_study, run_load, trace_study_with, LoadConfig};
use hatt_bench::preprocess;
use hatt_core::Mapper;
use hatt_fermion::models::{molecule_catalog, NeutrinoModel};
use hatt_fermion::MajoranaSum;
use hatt_mappings::FermionMapping;
use hatt_service::{client, MapRequest};

struct Args {
    smoke: bool,
    trace: bool,
    addr: Option<String>,
    identity: Option<String>,
    rate: Option<f64>,
    requests: Option<usize>,
    connections: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        trace: false,
        addr: None,
        identity: None,
        rate: None,
        requests: None,
        connections: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--trace" => args.trace = true,
            "--addr" => args.addr = Some(value("--addr")?),
            "--identity" => args.identity = Some(value("--identity")?),
            "--rate" => {
                args.rate = Some(
                    value("--rate")?
                        .parse()
                        .map_err(|e| format!("--rate: {e}"))?,
                )
            }
            "--requests" => {
                args.requests = Some(
                    value("--requests")?
                        .parse()
                        .map_err(|e| format!("--requests: {e}"))?,
                )
            }
            "--connections" => {
                args.connections = Some(
                    value("--connections")?
                        .parse()
                        .map_err(|e| format!("--connections: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !args.smoke && !args.trace && args.addr.is_none() && args.identity.is_none() {
        return Err("nothing to do: pass --smoke, --trace, --addr or --identity".into());
    }
    Ok(args)
}

/// The offered load of a `--trace` or `--addr` run: the smoke
/// configuration with any explicit overrides applied.
fn offered_load(args: &Args) -> LoadConfig {
    let mut cfg = LoadConfig::smoke();
    if let Some(rate) = args.rate {
        cfg.rate_hz = rate;
    }
    if let Some(requests) = args.requests {
        cfg.requests = requests;
    }
    if let Some(connections) = args.connections {
        cfg.connections = connections;
    }
    cfg
}

fn resolve(addr: &str) -> Result<SocketAddr, String> {
    addr.to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
        .next()
        .ok_or_else(|| format!("no address behind {addr}"))
}

fn print_report(topology: &str, report: &hatt_bench::load::LoadReport) -> bool {
    println!(
        "loadgen: {topology} sustained {:.1} mappings/s  p50 {:.2} ms  p99 {:.2} ms  max {:.2} ms  ({}/{} ok, {} errors)",
        report.sustained_per_s,
        report.p50_ms,
        report.p99_ms,
        report.max_ms,
        report.completed,
        report.offered,
        report.errors,
    );
    report.completed > 0 && report.errors == 0
}

/// The Table I roster: every catalog molecule plus two neutrino models
/// — the same cases `tests/service_integration.rs` pins.
fn roster() -> Vec<(String, MajoranaSum)> {
    let mut cases: Vec<(String, MajoranaSum)> = molecule_catalog()
        .into_iter()
        .map(|spec| (spec.name.to_string(), preprocess(&spec.hamiltonian())))
        .collect();
    for (sites, flavors) in [(3usize, 2usize), (4, 2)] {
        let model = NeutrinoModel::new(sites, flavors);
        cases.push((
            format!("neutrino {}", model.label()),
            preprocess(&model.hamiltonian()),
        ));
    }
    cases
}

fn check_identity(addr: &str) -> Result<(), String> {
    let cases = roster();
    let hams: Vec<MajoranaSum> = cases.iter().map(|(_, h)| h.clone()).collect();
    let reply = client::request(addr, &MapRequest::new("identity", hams))
        .map_err(|e| format!("identity round trip failed: {e}"))?;
    if reply.done.errors != 0 {
        return Err(format!(
            "{} roster items came back as errors",
            reply.done.errors
        ));
    }
    let items = reply.into_ordered();
    let reference = Mapper::new();
    for ((name, h), item) in cases.iter().zip(&items) {
        let remote = item
            .mapping()
            .ok_or_else(|| format!("{name}: error item {:?}", item.error()))?;
        let local = reference.map(h).map_err(|e| format!("{name}: {e}"))?;
        if remote.tree() != local.tree() {
            return Err(format!("{name}: tree drifted through {addr}"));
        }
        if remote.map_majorana_sum(h).weight() != local.map_majorana_sum(h).weight() {
            return Err(format!("{name}: mapped weight drifted through {addr}"));
        }
    }
    println!(
        "loadgen: identity ok — {} roster cases bit-identical through {addr}",
        cases.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut ok = true;
    if args.smoke {
        let study = load_study(true);
        ok &= print_report("single", &study.single);
        ok &= print_report("routed", &study.routed);
    }
    if args.trace {
        let study = trace_study_with(&offered_load(&args));
        ok &= print_report("untraced", &study.untraced);
        ok &= print_report("traced", &study.traced);
        println!(
            "loadgen: tracing overhead {:.2}% of sustained throughput  ({} spans recorded, {} dropped)",
            study.overhead_pct, study.spans_recorded, study.spans_dropped,
        );
        for s in &study.stages {
            println!(
                "loadgen:   stage {:<16} x{:<5} p50 {:.3} ms  p99 {:.3} ms",
                s.name, s.count, s.p50_ms, s.p99_ms,
            );
        }
        if study.stages.is_empty() {
            eprintln!("loadgen: traced run produced no spans");
            ok = false;
        }
    }
    if let Some(addr) = &args.addr {
        let target = match resolve(addr) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("loadgen: {e}");
                return ExitCode::FAILURE;
            }
        };
        ok &= print_report(addr, &run_load(target, &offered_load(&args)));
    }
    if let Some(addr) = &args.identity {
        if let Err(e) = check_identity(addr) {
            eprintln!("loadgen: identity check failed: {e}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
