//! Table VI — Pauli weight of HATT (unopt, Algorithm 1) vs HATT
//! (optimized, Algorithms 2+3) on all benchmarks up to 24 modes: the
//! vacuum-preservation + caching optimizations should cost ≲ 1% weight.
//!
//! `cargo run --release -p hatt-bench --bin table6`

use hatt_bench::preprocess;
use hatt_core::{Mapper, Variant};
use hatt_fermion::models::{hubbard_catalog, molecule_catalog, neutrino_catalog};
use hatt_fermion::MajoranaSum;
use hatt_mappings::FermionMapping;

fn weight_of(h: &MajoranaSum, variant: Variant) -> usize {
    let m = Mapper::builder()
        .variant(variant)
        .cache_capacity(0)
        .build()
        .expect("static mapper configuration")
        .map(h)
        .expect("benchmark Hamiltonians are non-empty");
    let mut hq = m.map_majorana_sum(h);
    let _ = hq.take_identity();
    hq.weight()
}

fn main() {
    println!("== Table VI: HATT (unopt) vs HATT Pauli weight, ≤ 24 modes (paper §V-F) ==");
    println!(
        "  {:<16} {:>6} {:>14} {:>10} {:>9}",
        "case", "modes", "HATT(unopt)", "HATT", "Δ%"
    );
    let mut cases: Vec<(String, MajoranaSum)> = Vec::new();
    for spec in molecule_catalog() {
        if spec.n_modes <= 24 {
            cases.push((spec.name.to_string(), preprocess(&spec.hamiltonian())));
        }
    }
    for lat in hubbard_catalog() {
        if lat.n_modes() <= 24 {
            cases.push((lat.label(), preprocess(&lat.hamiltonian())));
        }
    }
    for model in neutrino_catalog() {
        if model.n_modes() <= 24 {
            cases.push((model.label(), preprocess(&model.hamiltonian())));
        }
    }
    let mut deltas = Vec::new();
    for (name, h) in &cases {
        let unopt = weight_of(h, Variant::Unopt);
        let opt = weight_of(h, Variant::Cached);
        let delta = 100.0 * (opt as f64 - unopt as f64) / unopt as f64;
        deltas.push(delta.abs());
        println!(
            "  {:<16} {:>6} {:>14} {:>10} {:>8.2}%",
            name,
            h.n_modes(),
            unopt,
            opt,
            delta
        );
    }
    let mean = deltas.iter().sum::<f64>() / deltas.len() as f64;
    println!("\nmean |Δ| = {mean:.2}%  (paper: ~0.43% average difference)");
}
