//! Criterion benches for the Pauli-algebra hot paths that dominate
//! mapping application (Tables I–III): string products, commutation
//! checks, and Hamiltonian assembly.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hatt_fermion::models::FermiHubbard;
use hatt_fermion::MajoranaSum;
use hatt_mappings::{jordan_wigner, FermionMapping};
use hatt_pauli::{Complex64, Pauli, PauliString, PauliSum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_string(n: usize, rng: &mut StdRng) -> PauliString {
    let mut s = PauliString::identity(n);
    for q in 0..n {
        s.set_op(q, Pauli::ALL[rng.gen_range(0..4)]);
    }
    s
}

fn bench_string_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    for n in [16usize, 64, 256] {
        let a = random_string(n, &mut rng);
        let b = random_string(n, &mut rng);
        c.bench_function(&format!("pauli/mul/{n}q"), |bench| {
            bench.iter(|| std::hint::black_box(a.mul(&b)))
        });
        c.bench_function(&format!("pauli/commutes/{n}q"), |bench| {
            bench.iter(|| std::hint::black_box(a.commutes_with(&b)))
        });
        c.bench_function(&format!("pauli/weight/{n}q"), |bench| {
            bench.iter(|| std::hint::black_box(a.weight()))
        });
    }
}

fn bench_sum_assembly(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let n = 32;
    let strings: Vec<PauliString> = (0..512).map(|_| random_string(n, &mut rng)).collect();
    c.bench_function("pauli/sum_assembly/512x32q", |bench| {
        bench.iter_batched(
            || strings.clone(),
            |strings| {
                let mut sum = PauliSum::new(n);
                for s in strings {
                    sum.add(Complex64::real(0.25), s);
                }
                std::hint::black_box(sum)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_hamiltonian_mapping(c: &mut Criterion) {
    // Applying JW to a Hubbard 3×3 Hamiltonian: the Table II inner loop.
    let h = MajoranaSum::from_fermion(&FermiHubbard::new(3, 3).hamiltonian());
    let jw = jordan_wigner(h.n_modes());
    c.bench_function("pauli/map_hubbard_3x3/jw", |bench| {
        bench.iter(|| std::hint::black_box(jw.map_majorana_sum(&h)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_string_ops, bench_sum_assembly, bench_hamiltonian_mapping
);
criterion_main!(benches);
