//! Criterion benches for mapping construction — the Figure 12 scalability
//! claim in benchmark form: HATT's O(N³) vs Algorithm 1's O(N⁴), plus the
//! baselines and the exhaustive search at its small-N limit.

use criterion::{criterion_group, criterion_main, Criterion};
use hatt_core::{HattOptions, Mapper, Variant};
use hatt_fermion::models::FermiHubbard;
use hatt_fermion::MajoranaSum;
use hatt_mappings::{balanced_ternary_tree, bravyi_kitaev, exhaustive_optimal, jordan_wigner};

/// One cold construction through the `Mapper` handle (fresh, uncached —
/// benches must never hit a warm cache).
fn hatt_with(h: &hatt_fermion::MajoranaSum, opts: &HattOptions) -> hatt_core::HattMapping {
    Mapper::with_options(*opts)
        .map(h)
        .expect("bench Hamiltonians are non-empty")
}

fn bench_variants_on_uniform(c: &mut Criterion) {
    for n in [8usize, 16, 32] {
        let h = MajoranaSum::uniform_singles(n);
        for variant in [Variant::Unopt, Variant::Paired, Variant::Cached] {
            let label = match variant {
                Variant::Unopt => "unopt",
                Variant::Paired => "paired",
                Variant::Cached => "cached",
            };
            c.bench_function(&format!("construct/fig12/{label}/{n}modes"), |b| {
                b.iter(|| {
                    std::hint::black_box(hatt_with(
                        &h,
                        &HattOptions {
                            variant,
                            naive_weight: false,
                            ..Default::default()
                        },
                    ))
                })
            });
        }
    }
}

fn bench_variants_on_hubbard(c: &mut Criterion) {
    let h = MajoranaSum::from_fermion(&FermiHubbard::new(2, 4).hamiltonian());
    for variant in [Variant::Unopt, Variant::Cached] {
        let label = if variant == Variant::Unopt {
            "unopt"
        } else {
            "cached"
        };
        c.bench_function(&format!("construct/hubbard_2x4/{label}"), |b| {
            b.iter(|| {
                std::hint::black_box(hatt_with(
                    &h,
                    &HattOptions {
                        variant,
                        naive_weight: false,
                        ..Default::default()
                    },
                ))
            })
        });
    }
}

fn bench_baseline_construction(c: &mut Criterion) {
    let n = 32;
    c.bench_function("construct/jw/32modes", |b| {
        b.iter(|| std::hint::black_box(jordan_wigner(n)))
    });
    c.bench_function("construct/bk/32modes", |b| {
        b.iter(|| std::hint::black_box(bravyi_kitaev(n)))
    });
    c.bench_function("construct/btt/32modes", |b| {
        b.iter(|| std::hint::black_box(balanced_ternary_tree(n)))
    });
}

fn bench_exhaustive_small(c: &mut Criterion) {
    let h = MajoranaSum::uniform_singles(3);
    c.bench_function("construct/fh_exhaustive/3modes", |b| {
        b.iter(|| std::hint::black_box(exhaustive_optimal(&h)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_variants_on_uniform,
        bench_variants_on_hubbard,
        bench_baseline_construction,
        bench_exhaustive_small
);
criterion_main!(benches);
