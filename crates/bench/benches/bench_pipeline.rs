//! Criterion benches for the full compilation pipeline behind Tables
//! I–V: Hamiltonian mapping, Trotter synthesis, the optimizer, the
//! Pauli-network synthesizer, and routing.

use criterion::{criterion_group, criterion_main, Criterion};
use hatt_circuit::{
    optimize, route_sabre, rustiq_trotter, trotter_circuit, CouplingMap, RouterOptions,
    RustiqOptions, TermOrder,
};
use hatt_core::Mapper;
use hatt_fermion::models::FermiHubbard;
use hatt_fermion::MajoranaSum;
use hatt_mappings::FermionMapping;

fn workload() -> (MajoranaSum, hatt_pauli::PauliSum) {
    let mut h = MajoranaSum::from_fermion(&FermiHubbard::new(2, 3).hamiltonian());
    let _ = h.take_identity();
    let mapping = Mapper::new().map(&h).expect("bench Hamiltonian");
    let hq = mapping.map_majorana_sum(&h);
    (h, hq)
}

fn bench_trotter(c: &mut Criterion) {
    let (_, hq) = workload();
    c.bench_function("pipeline/trotter/hubbard_2x3", |b| {
        b.iter(|| std::hint::black_box(trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic)))
    });
}

fn bench_optimize(c: &mut Criterion) {
    let (_, hq) = workload();
    let circuit = trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic);
    c.bench_function("pipeline/optimize/hubbard_2x3", |b| {
        b.iter(|| std::hint::black_box(optimize(&circuit)))
    });
}

fn bench_rustiq(c: &mut Criterion) {
    let (_, hq) = workload();
    c.bench_function("pipeline/rustiq_lite/hubbard_2x3", |b| {
        b.iter(|| std::hint::black_box(rustiq_trotter(&hq, 1.0, 1, &RustiqOptions::default())))
    });
}

fn bench_routing(c: &mut Criterion) {
    let (_, hq) = workload();
    let circuit = optimize(&trotter_circuit(&hq, 1.0, 1, TermOrder::Lexicographic));
    let arch = CouplingMap::montreal27();
    c.bench_function("pipeline/route_sabre/hubbard_2x3_montreal", |b| {
        b.iter(|| std::hint::black_box(route_sabre(&circuit, &arch, &RouterOptions::default())))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trotter, bench_optimize, bench_rustiq, bench_routing
);
criterion_main!(benches);
