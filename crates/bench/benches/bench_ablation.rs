//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * block-bitset vs per-term (paper-literal) weight evaluation inside
//!   the HATT construction;
//! * the Algorithm 3 cache vs literal Algorithm 2 traversals;
//! * term ordering policies feeding the optimizer;
//! * measurement-grouping cost.

use criterion::{criterion_group, criterion_main, Criterion};
use hatt_circuit::{optimize, trotter_circuit, TermOrder};
use hatt_core::{HattOptions, Mapper, Variant};
use hatt_fermion::models::{FermiHubbard, NeutrinoModel};
use hatt_fermion::MajoranaSum;
use hatt_mappings::FermionMapping;
use hatt_sim::qwc_groups;

/// One cold construction through the `Mapper` handle (fresh, uncached —
/// benches must never hit a warm cache).
fn hatt_with(h: &hatt_fermion::MajoranaSum, opts: &HattOptions) -> hatt_core::HattMapping {
    Mapper::with_options(*opts)
        .map(h)
        .expect("bench Hamiltonians are non-empty")
}

fn bench_weight_kernel(c: &mut Criterion) {
    // The engine ablation: identical output, different inner loop.
    let h = MajoranaSum::from_fermion(&NeutrinoModel::new(3, 2).hamiltonian());
    for (label, naive) in [("bitset", false), ("naive", true)] {
        c.bench_function(&format!("ablation/weight_kernel/{label}"), |b| {
            b.iter(|| {
                std::hint::black_box(hatt_with(
                    &h,
                    &HattOptions {
                        variant: Variant::Cached,
                        naive_weight: naive,
                        ..Default::default()
                    },
                ))
            })
        });
    }
}

fn bench_cache_ablation(c: &mut Criterion) {
    let h = MajoranaSum::uniform_singles(24);
    for (label, variant) in [("cached", Variant::Cached), ("walking", Variant::Paired)] {
        c.bench_function(&format!("ablation/pairing_traversal/{label}"), |b| {
            b.iter(|| {
                std::hint::black_box(hatt_with(
                    &h,
                    &HattOptions {
                        variant,
                        naive_weight: false,
                        ..Default::default()
                    },
                ))
            })
        });
    }
}

fn bench_term_ordering(c: &mut Criterion) {
    let mut h = MajoranaSum::from_fermion(&FermiHubbard::new(2, 3).hamiltonian());
    let _ = h.take_identity();
    let mapping = hatt_with(&h, &HattOptions::default());
    let hq = mapping.map_majorana_sum(&h);
    for (label, order) in [
        ("given", TermOrder::Given),
        ("lexicographic", TermOrder::Lexicographic),
        ("greedy_overlap", TermOrder::GreedyOverlap),
    ] {
        c.bench_function(&format!("ablation/term_order/{label}"), |b| {
            b.iter(|| std::hint::black_box(optimize(&trotter_circuit(&hq, 1.0, 1, order))))
        });
    }
}

fn bench_qwc_grouping(c: &mut Criterion) {
    let mut h = MajoranaSum::from_fermion(&FermiHubbard::new(2, 4).hamiltonian());
    let _ = h.take_identity();
    let mapping = hatt_with(&h, &HattOptions::default());
    let hq = mapping.map_majorana_sum(&h);
    c.bench_function("ablation/qwc_grouping/hubbard_2x4", |b| {
        b.iter(|| std::hint::black_box(qwc_groups(&hq)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_weight_kernel, bench_cache_ablation, bench_term_ordering, bench_qwc_grouping
);
criterion_main!(benches);
