//! The bounded-queue request scheduler: accepts [`MapRequest`]s, fans
//! their items onto `vendor/parallel` scoped workers through the shared
//! [`Mapper`] cache, and streams one [`MapItem`] per Hamiltonian **as it
//! completes** over a per-request channel.
//!
//! ## Design
//!
//! * **Bounded queue.** [`Scheduler::submit`] blocks while the job
//!   queue is at capacity (backpressure toward the socket);
//!   [`Scheduler::try_submit`] instead fails fast with
//!   [`ServiceError::Overloaded`] — the knob a front-end uses to shed
//!   load.
//! * **Per-client fairness.** Jobs are queued per [`ClientId`] (the
//!   server mints one per connection) and the dispatcher drains clients
//!   round-robin, one job each per turn — a chatty client with a huge
//!   batch cannot monopolize the queue ahead of a small request from
//!   another connection.
//! * **Fan-out.** A single dispatcher thread drains the queue in
//!   batches and runs each batch through [`parallel::par_map_with`] —
//!   the same scoped-thread fan-out the construction engine itself
//!   uses — with the per-job thread budget split evenly so a batch
//!   never oversubscribes the host.
//! * **Shared cache.** Every job probes the mapper's structure-keyed
//!   [`MappingCache`](hatt_core::MappingCache), so repeated structures
//!   across requests and connections dedupe onto one construction.
//! * **Typed failures.** A job that fails maps to an error
//!   [`MapItem`] (`empty_hamiltonian`, `mode_mismatch`, …) — one bad
//!   item never poisons its batch, and no panic is reachable from
//!   request data.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use hatt_core::Mapper;
//! use hatt_fermion::MajoranaSum;
//! use hatt_service::{MapRequest, Scheduler, SchedulerConfig};
//!
//! let scheduler = Scheduler::new(Arc::new(Mapper::new()), SchedulerConfig::default())?;
//! let req = MapRequest::new("r", vec![MajoranaSum::uniform_singles(2)]);
//! let rx = scheduler.submit(&req)?;
//! let item = rx.recv().unwrap();
//! assert!(item.is_ok());
//! # Ok::<(), hatt_service::ServiceError>(())
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use hatt_core::{HattError, HattOptions, Mapper};
use hatt_fermion::{HamiltonianDelta, MajoranaSum};
use hatt_mappings::FermionMapping;
use hatt_trace::{now_ns, TraceCtx, Tracer};

use crate::error::ServiceError;
use crate::metrics::Metrics;
use crate::proto::{ItemError, ItemPayload, MapDeltaRequest, MapItem, MapRequest};
use crate::reactor::ConnSink;

/// Scheduler sizing.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Concurrent mapping workers per dispatched batch (default:
    /// [`parallel::max_threads`], i.e. `HATT_THREADS` or the hardware
    /// count).
    pub workers: usize,
    /// Maximum queued (not yet dispatched) jobs before `submit` blocks
    /// and `try_submit` sheds load.
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: parallel::max_threads(),
            queue_capacity: 256,
        }
    }
}

/// Where one job's finished [`MapItem`] goes.
enum JobSink {
    /// The in-process API path: a per-request channel the caller holds
    /// the receiving end of ([`Scheduler::submit`] and friends).
    Channel(Sender<MapItem>),
    /// The event-loop path: completions are tagged with the owning
    /// connection token and the owning reactor worker is woken.
    Conn(ConnSink),
}

impl JobSink {
    fn send(&self, item: MapItem) {
        match self {
            // A dropped receiver (caller went away) is not an error —
            // the work is already done and cached.
            JobSink::Channel(tx) => drop(tx.send(item)),
            JobSink::Conn(sink) => sink.send(item),
        }
    }

    /// Whether the destination hung up before this job ran — the signal
    /// to skip the work entirely.
    fn cancelled(&self) -> bool {
        match self {
            JobSink::Channel(_) => false,
            JobSink::Conn(sink) => sink.is_cancelled(),
        }
    }
}

/// The computation of one queued job.
enum Work {
    /// Map one Hamiltonian of a batch request.
    Map {
        index: usize,
        h: MajoranaSum,
        expected_modes: Option<usize>,
    },
    /// Apply a structural delta to a base Hamiltonian and remap it,
    /// reusing the cached ancestor tree when the base is known (the
    /// incremental fast path of [`hatt_core::MappingCache`]).
    Remap {
        hamiltonian: MajoranaSum,
        delta: HamiltonianDelta,
    },
}

/// The trace identity a traced job carries through the queue: the
/// request's context (parented on its root span) plus the enqueue
/// timestamp, so dispatch can emit the `sched.wait` span retroactively.
struct JobTrace {
    ctx: TraceCtx,
    enqueued_ns: u64,
}

/// One queued unit of work: a single item of some request.
struct Job {
    id: String,
    options: HattOptions,
    work: Work,
    sink: JobSink,
    trace: Option<JobTrace>,
}

/// Identifies one submission source (typically: one connection) for the
/// round-robin fairness of the queue. Mint with
/// [`Scheduler::register_client`]; plain [`Scheduler::submit`] mints a
/// fresh one per call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ClientId(u64);

impl ClientId {
    /// Builds a client id from a raw counter value — for submission
    /// sources that mint their own ids (the shard router has no
    /// scheduler to register with).
    pub(crate) fn from_raw(raw: u64) -> ClientId {
        ClientId(raw)
    }
}

/// A queue of jobs bucketed by client, drained round-robin: each drain
/// turn takes one job from the least-recently-served non-empty client.
/// `BTreeMap` (not a hash map) keeps the client order deterministic.
struct FairQueue<T> {
    queues: BTreeMap<u64, VecDeque<T>>,
    /// Non-empty clients in service order; a client re-joins at the back
    /// after each served job.
    rotation: VecDeque<u64>,
    len: usize,
}

impl<T> Default for FairQueue<T> {
    fn default() -> Self {
        FairQueue {
            queues: BTreeMap::new(),
            rotation: VecDeque::new(),
            len: 0,
        }
    }
}

impl<T> FairQueue<T> {
    fn push(&mut self, client: ClientId, item: T) {
        let queue = self.queues.entry(client.0).or_default();
        if queue.is_empty() {
            self.rotation.push_back(client.0);
        }
        queue.push_back(item);
        self.len += 1;
    }

    /// Removes up to `max` items, one per client per rotation turn.
    fn drain(&mut self, max: usize) -> Vec<T> {
        let mut out = Vec::new();
        while out.len() < max {
            let Some(client) = self.rotation.pop_front() else {
                break;
            };
            let Some(queue) = self.queues.get_mut(&client) else {
                continue;
            };
            if let Some(item) = queue.pop_front() {
                out.push(item);
                self.len -= 1;
            }
            if queue.is_empty() {
                self.queues.remove(&client);
            } else {
                self.rotation.push_back(client);
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

struct QueueState {
    jobs: FairQueue<Job>,
    shutdown: bool,
}

struct Shared {
    mapper: Arc<Mapper>,
    metrics: Arc<Metrics>,
    tracer: Tracer,
    workers: usize,
    capacity: usize,
    next_client: AtomicU64,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The bounded-queue scheduler (see the crate docs for the design).
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<Shared>,
    dispatcher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("workers", &self.workers)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Starts a scheduler over `mapper` (shared with the caller — e.g.
    /// the server also answering in-process queries).
    ///
    /// # Errors
    ///
    /// Fails when the dispatcher thread cannot be spawned (resource
    /// exhaustion).
    pub fn new(mapper: Arc<Mapper>, config: SchedulerConfig) -> std::io::Result<Scheduler> {
        Self::with_tracer(mapper, config, Tracer::disabled())
    }

    /// [`Scheduler::new`] with a span collector: traced jobs record
    /// their queue wait and dispatch under the request's trace.
    pub(crate) fn with_tracer(
        mapper: Arc<Mapper>,
        config: SchedulerConfig,
        tracer: Tracer,
    ) -> std::io::Result<Scheduler> {
        let shared = Arc::new(Shared {
            mapper,
            metrics: Arc::new(Metrics::default()),
            tracer,
            workers: config.workers.max(1),
            capacity: config.queue_capacity.max(1),
            next_client: AtomicU64::new(0),
            state: Mutex::new(QueueState {
                jobs: FairQueue::default(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hatt-sched".into())
                .spawn(move || dispatch_loop(&shared))?
        };
        Ok(Scheduler {
            shared,
            dispatcher: Mutex::new(Some(dispatcher)),
        })
    }

    /// Signals shutdown and joins the dispatcher: every already-queued
    /// job is still dispatched and answered first. Idempotent, callable
    /// through a shared reference (the server drains its backend behind
    /// an `Arc`); [`Drop`] calls it too.
    pub(crate) fn drain(&self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        let handle = self
            .dispatcher
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Jobs currently queued (not yet dispatched).
    pub fn queue_len(&self) -> usize {
        self.shared.lock().jobs.len()
    }

    /// The service counters shared between scheduler and server.
    pub(crate) fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The span collector shared between scheduler and server (disabled
    /// unless the server was booted with tracing on).
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.shared.tracer
    }

    /// The mapper every job maps through.
    pub(crate) fn mapper(&self) -> &Arc<Mapper> {
        &self.shared.mapper
    }

    /// Mints a fresh fairness bucket. The server registers one client
    /// per connection so the round-robin drain interleaves
    /// *connections*, whatever their batch sizes.
    pub fn register_client(&self) -> ClientId {
        ClientId(self.shared.next_client.fetch_add(1, Ordering::Relaxed))
    }

    /// Enqueues every item of `req`, blocking while the queue is full
    /// (backpressure). Returns the channel on which one [`MapItem`] per
    /// Hamiltonian arrives in completion order; the channel disconnects
    /// after the last item. Each call is its own fairness bucket; use
    /// [`Scheduler::submit_from`] to pool several requests under one
    /// [`ClientId`].
    pub fn submit(&self, req: &MapRequest) -> Result<Receiver<MapItem>, ServiceError> {
        self.submit_from(self.register_client(), req)
    }

    /// Like [`Scheduler::submit`] but fails fast with
    /// [`ServiceError::Overloaded`] when the queue cannot take the whole
    /// request right now.
    pub fn try_submit(&self, req: &MapRequest) -> Result<Receiver<MapItem>, ServiceError> {
        self.enqueue(self.register_client(), req, false)
    }

    /// [`Scheduler::submit`] under an explicit fairness bucket: all
    /// requests submitted under one [`ClientId`] share a single
    /// round-robin turn against other clients.
    pub fn submit_from(
        &self,
        client: ClientId,
        req: &MapRequest,
    ) -> Result<Receiver<MapItem>, ServiceError> {
        self.enqueue(client, req, true)
    }

    fn enqueue(
        &self,
        client: ClientId,
        req: &MapRequest,
        block: bool,
    ) -> Result<Receiver<MapItem>, ServiceError> {
        let (tx, rx) = channel();
        let options = req.options.unwrap_or(*self.shared.mapper.options());
        let mut state = self.shared.lock();
        if !block && state.jobs.len() + req.hamiltonians.len() > self.shared.capacity {
            return Err(ServiceError::Overloaded);
        }
        for (index, h) in req.hamiltonians.iter().enumerate() {
            while state.jobs.len() >= self.shared.capacity {
                if state.shutdown {
                    return Err(ServiceError::ShuttingDown);
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            if state.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            state.jobs.push(
                client,
                Job {
                    id: req.id.clone(),
                    options,
                    work: Work::Map {
                        index,
                        h: h.clone(),
                        expected_modes: req.n_modes,
                    },
                    sink: JobSink::Channel(tx.clone()),
                    trace: None,
                },
            );
            self.shared.not_empty.notify_all();
        }
        self.shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        Ok(rx)
    }

    /// The event-loop submission path for a batch request: every item
    /// completion goes through `sink` (tagged with its connection and
    /// waking the owning reactor worker). **Never blocks** — a reactor
    /// worker must not stall every connection it owns on one full
    /// queue, so an oversubscribed queue sheds the request with
    /// [`ServiceError::Overloaded`] instead of applying backpressure.
    /// Returns the number of items the caller should await.
    pub(crate) fn submit_conn(
        &self,
        client: ClientId,
        req: &MapRequest,
        sink: &ConnSink,
        trace: Option<TraceCtx>,
    ) -> Result<usize, ServiceError> {
        let options = req.options.unwrap_or(*self.shared.mapper.options());
        let enqueued_ns = trace.map(|_| now_ns()).unwrap_or_default();
        let mut state = self.shared.lock();
        if state.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if state.jobs.len() + req.hamiltonians.len() > self.shared.capacity {
            return Err(ServiceError::Overloaded);
        }
        for (index, h) in req.hamiltonians.iter().enumerate() {
            state.jobs.push(
                client,
                Job {
                    id: req.id.clone(),
                    options,
                    work: Work::Map {
                        index,
                        h: h.clone(),
                        expected_modes: req.n_modes,
                    },
                    sink: JobSink::Conn(sink.clone()),
                    trace: trace.map(|ctx| JobTrace { ctx, enqueued_ns }),
                },
            );
        }
        self.shared.not_empty.notify_all();
        self.shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        Ok(req.hamiltonians.len())
    }

    /// The event-loop submission path for an incremental remap: one
    /// queued job, same shedding contract as [`Scheduler::submit_conn`].
    /// Running the remap through the queue (instead of inline on a
    /// connection thread, as the thread-per-connection server did)
    /// keeps the reactor worker free while the frontier re-scores.
    pub(crate) fn submit_delta_conn(
        &self,
        client: ClientId,
        req: &MapDeltaRequest,
        sink: &ConnSink,
        trace: Option<TraceCtx>,
    ) -> Result<usize, ServiceError> {
        let options = req.options.unwrap_or(*self.shared.mapper.options());
        let enqueued_ns = trace.map(|_| now_ns()).unwrap_or_default();
        let mut state = self.shared.lock();
        if state.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        if state.jobs.len() >= self.shared.capacity {
            return Err(ServiceError::Overloaded);
        }
        state.jobs.push(
            client,
            Job {
                id: req.id.clone(),
                options,
                work: Work::Remap {
                    hamiltonian: req.hamiltonian.clone(),
                    delta: req.delta.clone(),
                },
                sink: JobSink::Conn(sink.clone()),
                trace: trace.map(|ctx| JobTrace { ctx, enqueued_ns }),
            },
        );
        self.shared.not_empty.notify_all();
        self.shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        Ok(1)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.drain();
    }
}

/// The dispatcher: drain a batch, fan it out, repeat. Exits once
/// shutdown is signalled *and* the queue is drained (submitted work is
/// always answered).
fn dispatch_loop(shared: &Shared) {
    loop {
        let batch: Vec<Job> = {
            let mut state = shared.lock();
            loop {
                if !state.jobs.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            // Dispatch up to 2× the worker count per round: enough to
            // keep every worker busy while leaving later arrivals the
            // chance to ride the next (soon) round. The drain itself is
            // round-robin across clients, so a round mixes every waiting
            // connection instead of exhausting the chattiest one first.
            let take = state.jobs.len().min(shared.workers * 2);
            let batch = state.jobs.drain(take);
            shared.not_full.notify_all();
            batch
        };
        // Disconnect cancellation: a job whose connection hung up is
        // dead weight — skip the construction entirely. The check sits
        // here (per dispatch round, not only at enqueue) so a client
        // dropping mid-batch stops burning workers within one round.
        let (batch, cancelled): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|job| !job.sink.cancelled());
        if !cancelled.is_empty() {
            shared
                .metrics
                .items_cancelled
                .fetch_add(cancelled.len() as u64, Ordering::Relaxed);
        }
        if batch.is_empty() {
            continue;
        }
        // Split the thread budget so one round never oversubscribes:
        // concurrent jobs are peers, exactly like `Mapper::map_batch`.
        let inner_threads = (shared.workers / batch.len().min(shared.workers)).max(1);
        parallel::par_map_with(shared.workers, &batch, |job| {
            let start = Instant::now();
            // A traced job emits its queue wait retroactively and runs
            // under a dispatch scope, so every span the construction
            // layer emits (cache probe, store I/O, selection steps)
            // nests beneath this request's tree.
            let item = match &job.trace {
                Some(t) => {
                    shared
                        .tracer
                        .record_span(t.ctx, "sched.wait", t.enqueued_ns, now_ns());
                    shared.tracer.scope(t.ctx, "sched.dispatch", || {
                        run_job(&shared.mapper, job, inner_threads)
                    })
                }
                None => run_job(&shared.mapper, job, inner_threads),
            };
            shared
                .metrics
                .observe_latency(&job.options.policy.to_string(), start.elapsed());
            job.sink.send(item);
        });
    }
}

/// Runs one job to a response item. Infallible by construction: every
/// failure mode becomes a typed error payload.
fn run_job(mapper: &Mapper, job: &Job, inner_threads: usize) -> MapItem {
    let options = HattOptions {
        threads: Some(inner_threads),
        ..job.options
    };
    let (index, payload) = match &job.work {
        Work::Map {
            index,
            h,
            expected_modes,
        } => {
            let result = check_modes(h, *expected_modes)
                .and_then(|()| mapper.cache().try_get_or_build(h, &options));
            (*index, to_payload(result, h))
        }
        Work::Remap { hamiltonian, delta } => {
            let result = delta
                .apply(hamiltonian)
                .map_err(HattError::from)
                .and_then(|next| {
                    let mapping =
                        mapper
                            .cache()
                            .try_remap_or_build(hamiltonian, delta, &options)?;
                    Ok((mapping, next))
                });
            let payload = match result {
                Ok((mapping, next)) => {
                    let pauli_weight = mapping.map_majorana_sum(&next).weight();
                    ItemPayload::Ok {
                        mapping,
                        pauli_weight,
                    }
                }
                Err(e) => ItemPayload::Err(ItemError::from_hatt(&e)),
            };
            (0, payload)
        }
    };
    MapItem {
        id: job.id.clone(),
        index: Some(index),
        payload,
    }
}

fn to_payload(result: Result<hatt_core::HattMapping, HattError>, h: &MajoranaSum) -> ItemPayload {
    match result {
        Ok(mapping) => {
            let pauli_weight = mapping.map_majorana_sum(h).weight();
            ItemPayload::Ok {
                mapping,
                pauli_weight,
            }
        }
        Err(e) => ItemPayload::Err(ItemError::from_hatt(&e)),
    }
}

fn check_modes(h: &MajoranaSum, expected_modes: Option<usize>) -> Result<(), HattError> {
    match expected_modes {
        Some(expected) if h.n_modes() != expected => Err(HattError::ModeMismatch {
            expected,
            got: h.n_modes(),
        }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_pauli::Complex64;

    fn collect(rx: Receiver<MapItem>, n: usize) -> Vec<MapItem> {
        let mut items: Vec<MapItem> = (0..n).map(|_| rx.recv().expect("item")).collect();
        assert!(rx.recv().is_err(), "channel must close after the batch");
        items.sort_by_key(|i| i.index);
        items
    }

    #[test]
    fn maps_a_batch_and_streams_every_item() {
        let mapper = Arc::new(Mapper::new());
        let scheduler =
            Scheduler::new(Arc::clone(&mapper), SchedulerConfig::default()).expect("scheduler");
        let hams: Vec<MajoranaSum> = (2..6).map(MajoranaSum::uniform_singles).collect();
        let rx = scheduler
            .submit(&MapRequest::new("r", hams.clone()))
            .unwrap();
        let items = collect(rx, hams.len());
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.index, Some(i));
            assert_eq!(item.id, "r");
            let expect = mapper.map(&hams[i]).unwrap();
            assert_eq!(item.mapping().unwrap().tree(), expect.tree());
        }
    }

    #[test]
    fn bad_items_fail_individually_not_the_batch() {
        let scheduler =
            Scheduler::new(Arc::new(Mapper::new()), SchedulerConfig::default()).expect("scheduler");
        let mut pinned = MapRequest::new(
            "r",
            vec![
                MajoranaSum::uniform_singles(3),
                MajoranaSum::new(0),
                MajoranaSum::uniform_singles(2),
            ],
        );
        pinned.n_modes = Some(3);
        let rx = scheduler.submit(&pinned).unwrap();
        let items = collect(rx, 3);
        assert!(items[0].is_ok());
        assert_eq!(items[1].error().unwrap().code, "mode_mismatch");
        assert_eq!(items[2].error().unwrap().code, "mode_mismatch");
        // Without the pin, the zero-mode item gets its own typed error.
        let unpinned = MapRequest::new(
            "r2",
            vec![MajoranaSum::new(0), MajoranaSum::uniform_singles(2)],
        );
        let rx = scheduler.submit(&unpinned).unwrap();
        let items = collect(rx, 2);
        assert_eq!(items[0].error().unwrap().code, "empty_hamiltonian");
        assert!(items[1].is_ok());
    }

    #[test]
    fn requests_share_the_mapper_cache() {
        let mapper = Arc::new(Mapper::new());
        let scheduler =
            Scheduler::new(Arc::clone(&mapper), SchedulerConfig::default()).expect("scheduler");
        let mut h = MajoranaSum::new(2);
        h.add(Complex64::ONE, &[0, 1]);
        h.add(Complex64::ONE, &[2, 3]);
        let rx = scheduler
            .submit(&MapRequest::new("a", vec![h.clone()]))
            .unwrap();
        let _ = collect(rx, 1);
        let rx = scheduler
            .submit(&MapRequest::new("b", vec![h.scaled(2.0)]))
            .unwrap();
        let _ = collect(rx, 1);
        assert_eq!(mapper.cache().hits(), 1, "second request replayed");
    }

    #[test]
    fn fair_queue_interleaves_clients_round_robin() {
        let mut q = FairQueue::default();
        let (a, b, c) = (ClientId(0), ClientId(1), ClientId(2));
        for i in 0..6 {
            q.push(a, format!("a{i}"));
        }
        q.push(b, "b0".to_string());
        q.push(b, "b1".to_string());
        q.push(c, "c0".to_string());
        assert_eq!(q.len(), 9);
        // One job per client per turn, in arrival order of the clients.
        assert_eq!(q.drain(6), ["a0", "b0", "c0", "a1", "b1", "a2"]);
        // Only client a remains; the drain degenerates to FIFO.
        assert_eq!(q.drain(10), ["a3", "a4", "a5"]);
        assert!(q.is_empty());
        assert!(q.drain(4).is_empty());
    }

    #[test]
    fn fair_queue_late_client_overtakes_a_deep_backlog() {
        let mut q = FairQueue::default();
        let (a, b) = (ClientId(7), ClientId(3));
        for i in 0..100 {
            q.push(a, (0usize, i));
        }
        // b arrives after a's whole backlog, with a single job.
        q.push(b, (1usize, 0));
        let batch = q.drain(4);
        assert_eq!(batch, [(0, 0), (1, 0), (0, 1), (0, 2)]);
        // b's lone job rode the first round instead of waiting out all
        // 100 of a's — the fairness property the service test pins
        // end to end.
    }

    #[test]
    fn submissions_under_one_client_share_a_turn() {
        let mut q = FairQueue::default();
        let shared = ClientId(0);
        q.push(shared, "r1-0");
        q.push(shared, "r1-1");
        q.push(shared, "r2-0");
        q.push(ClientId(1), "other");
        // Both of client 0's requests pool into one rotation slot.
        assert_eq!(q.drain(3), ["r1-0", "other", "r1-1"]);
    }

    #[test]
    fn try_submit_sheds_load_when_full() {
        // One-slot queue: a multi-item request cannot fit atomically.
        let scheduler = Scheduler::new(
            Arc::new(Mapper::new()),
            SchedulerConfig {
                workers: 1,
                queue_capacity: 1,
            },
        )
        .expect("scheduler");
        let big = MapRequest::new(
            "big",
            (0..64).map(|_| MajoranaSum::uniform_singles(2)).collect(),
        );
        match scheduler.try_submit(&big) {
            Err(ServiceError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Blocking submit still completes (backpressure, not failure).
        let rx = scheduler.submit(&big).unwrap();
        assert_eq!(collect(rx, 64).len(), 64);
    }
}
