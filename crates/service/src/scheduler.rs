//! The bounded-queue request scheduler: accepts [`MapRequest`]s, fans
//! their items onto `vendor/parallel` scoped workers through the shared
//! [`Mapper`] cache, and streams one [`MapItem`] per Hamiltonian **as it
//! completes** over a per-request channel.
//!
//! ## Design
//!
//! * **Bounded queue.** [`Scheduler::submit`] blocks while the job
//!   queue is at capacity (backpressure toward the socket);
//!   [`Scheduler::try_submit`] instead fails fast with
//!   [`ServiceError::Overloaded`] — the knob a front-end uses to shed
//!   load.
//! * **Fan-out.** A single dispatcher thread drains the queue in
//!   batches and runs each batch through [`parallel::par_map_with`] —
//!   the same scoped-thread fan-out the construction engine itself
//!   uses — with the per-job thread budget split evenly so a batch
//!   never oversubscribes the host.
//! * **Shared cache.** Every job probes the mapper's structure-keyed
//!   [`MappingCache`](hatt_core::MappingCache), so repeated structures
//!   across requests and connections dedupe onto one construction.
//! * **Typed failures.** A job that fails maps to an error
//!   [`MapItem`] (`empty_hamiltonian`, `mode_mismatch`, …) — one bad
//!   item never poisons its batch, and no panic is reachable from
//!   request data.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use hatt_core::Mapper;
//! use hatt_fermion::MajoranaSum;
//! use hatt_service::{MapRequest, Scheduler, SchedulerConfig};
//!
//! let scheduler = Scheduler::new(Arc::new(Mapper::new()), SchedulerConfig::default())?;
//! let req = MapRequest::new("r", vec![MajoranaSum::uniform_singles(2)]);
//! let rx = scheduler.submit(&req)?;
//! let item = rx.recv().unwrap();
//! assert!(item.is_ok());
//! # Ok::<(), hatt_service::ServiceError>(())
//! ```

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use hatt_core::{HattError, HattOptions, Mapper};
use hatt_fermion::MajoranaSum;
use hatt_mappings::FermionMapping;

use crate::error::ServiceError;
use crate::metrics::Metrics;
use crate::proto::{ItemError, ItemPayload, MapItem, MapRequest};

/// Scheduler sizing.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Concurrent mapping workers per dispatched batch (default:
    /// [`parallel::max_threads`], i.e. `HATT_THREADS` or the hardware
    /// count).
    pub workers: usize,
    /// Maximum queued (not yet dispatched) jobs before `submit` blocks
    /// and `try_submit` sheds load.
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: parallel::max_threads(),
            queue_capacity: 256,
        }
    }
}

/// One queued unit of work: a single Hamiltonian of some request.
struct Job {
    id: String,
    index: usize,
    h: MajoranaSum,
    options: HattOptions,
    expected_modes: Option<usize>,
    tx: Sender<MapItem>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    mapper: Arc<Mapper>,
    metrics: Arc<Metrics>,
    workers: usize,
    capacity: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The bounded-queue scheduler (see the crate docs for the design).
#[derive(Debug)]
pub struct Scheduler {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("workers", &self.workers)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Scheduler {
    /// Starts a scheduler over `mapper` (shared with the caller — e.g.
    /// the server also answering in-process queries).
    ///
    /// # Errors
    ///
    /// Fails when the dispatcher thread cannot be spawned (resource
    /// exhaustion).
    pub fn new(mapper: Arc<Mapper>, config: SchedulerConfig) -> std::io::Result<Scheduler> {
        let shared = Arc::new(Shared {
            mapper,
            metrics: Arc::new(Metrics::default()),
            workers: config.workers.max(1),
            capacity: config.queue_capacity.max(1),
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("hatt-sched".into())
                .spawn(move || dispatch_loop(&shared))?
        };
        Ok(Scheduler {
            shared,
            dispatcher: Some(dispatcher),
        })
    }

    /// Jobs currently queued (not yet dispatched).
    pub fn queue_len(&self) -> usize {
        self.shared.lock().jobs.len()
    }

    /// The service counters shared between scheduler and server.
    pub(crate) fn metrics(&self) -> &Arc<Metrics> {
        &self.shared.metrics
    }

    /// The mapper every job maps through.
    pub(crate) fn mapper(&self) -> &Arc<Mapper> {
        &self.shared.mapper
    }

    /// Enqueues every item of `req`, blocking while the queue is full
    /// (backpressure). Returns the channel on which one [`MapItem`] per
    /// Hamiltonian arrives in completion order; the channel disconnects
    /// after the last item.
    pub fn submit(&self, req: &MapRequest) -> Result<Receiver<MapItem>, ServiceError> {
        self.enqueue(req, true)
    }

    /// Like [`Scheduler::submit`] but fails fast with
    /// [`ServiceError::Overloaded`] when the queue cannot take the whole
    /// request right now.
    pub fn try_submit(&self, req: &MapRequest) -> Result<Receiver<MapItem>, ServiceError> {
        self.enqueue(req, false)
    }

    fn enqueue(&self, req: &MapRequest, block: bool) -> Result<Receiver<MapItem>, ServiceError> {
        let (tx, rx) = channel();
        let options = req.options.unwrap_or(*self.shared.mapper.options());
        let mut state = self.shared.lock();
        if !block && state.jobs.len() + req.hamiltonians.len() > self.shared.capacity {
            return Err(ServiceError::Overloaded);
        }
        for (index, h) in req.hamiltonians.iter().enumerate() {
            while state.jobs.len() >= self.shared.capacity {
                if state.shutdown {
                    return Err(ServiceError::ShuttingDown);
                }
                state = self
                    .shared
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            if state.shutdown {
                return Err(ServiceError::ShuttingDown);
            }
            state.jobs.push_back(Job {
                id: req.id.clone(),
                index,
                h: h.clone(),
                options,
                expected_modes: req.n_modes,
                tx: tx.clone(),
            });
            self.shared.not_empty.notify_all();
        }
        self.shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        Ok(rx)
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        {
            let mut state = self.shared.lock();
            state.shutdown = true;
        }
        self.shared.not_empty.notify_all();
        self.shared.not_full.notify_all();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// The dispatcher: drain a batch, fan it out, repeat. Exits once
/// shutdown is signalled *and* the queue is drained (submitted work is
/// always answered).
fn dispatch_loop(shared: &Shared) {
    loop {
        let batch: Vec<Job> = {
            let mut state = shared.lock();
            loop {
                if !state.jobs.is_empty() {
                    break;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
            // Dispatch up to 2× the worker count per round: enough to
            // keep every worker busy while leaving later arrivals the
            // chance to ride the next (soon) round.
            let take = state.jobs.len().min(shared.workers * 2);
            let batch = state.jobs.drain(..take).collect();
            shared.not_full.notify_all();
            batch
        };
        // Split the thread budget so one round never oversubscribes:
        // concurrent jobs are peers, exactly like `Mapper::map_batch`.
        let inner_threads = (shared.workers / batch.len().min(shared.workers)).max(1);
        parallel::par_map_with(shared.workers, &batch, |job| {
            let start = Instant::now();
            let item = run_job(&shared.mapper, job, inner_threads);
            shared
                .metrics
                .observe_latency(&job.options.policy.to_string(), start.elapsed());
            // A dropped receiver (client went away) is not an error —
            // the work is already done and cached.
            let _ = job.tx.send(item);
        });
    }
}

/// Runs one job to a response item. Infallible by construction: every
/// failure mode becomes a typed error payload.
fn run_job(mapper: &Mapper, job: &Job, inner_threads: usize) -> MapItem {
    let result = check_modes(job).and_then(|()| {
        let options = HattOptions {
            threads: Some(inner_threads),
            ..job.options
        };
        mapper.cache().try_get_or_build(&job.h, &options)
    });
    let payload = match result {
        Ok(mapping) => {
            let pauli_weight = mapping.map_majorana_sum(&job.h).weight();
            ItemPayload::Ok {
                mapping,
                pauli_weight,
            }
        }
        Err(e) => ItemPayload::Err(ItemError::from_hatt(&e)),
    };
    MapItem {
        id: job.id.clone(),
        index: Some(job.index),
        payload,
    }
}

fn check_modes(job: &Job) -> Result<(), HattError> {
    match job.expected_modes {
        Some(expected) if job.h.n_modes() != expected => Err(HattError::ModeMismatch {
            expected,
            got: job.h.n_modes(),
        }),
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_pauli::Complex64;

    fn collect(rx: Receiver<MapItem>, n: usize) -> Vec<MapItem> {
        let mut items: Vec<MapItem> = (0..n).map(|_| rx.recv().expect("item")).collect();
        assert!(rx.recv().is_err(), "channel must close after the batch");
        items.sort_by_key(|i| i.index);
        items
    }

    #[test]
    fn maps_a_batch_and_streams_every_item() {
        let mapper = Arc::new(Mapper::new());
        let scheduler =
            Scheduler::new(Arc::clone(&mapper), SchedulerConfig::default()).expect("scheduler");
        let hams: Vec<MajoranaSum> = (2..6).map(MajoranaSum::uniform_singles).collect();
        let rx = scheduler
            .submit(&MapRequest::new("r", hams.clone()))
            .unwrap();
        let items = collect(rx, hams.len());
        for (i, item) in items.iter().enumerate() {
            assert_eq!(item.index, Some(i));
            assert_eq!(item.id, "r");
            let expect = mapper.map(&hams[i]).unwrap();
            assert_eq!(item.mapping().unwrap().tree(), expect.tree());
        }
    }

    #[test]
    fn bad_items_fail_individually_not_the_batch() {
        let scheduler =
            Scheduler::new(Arc::new(Mapper::new()), SchedulerConfig::default()).expect("scheduler");
        let mut pinned = MapRequest::new(
            "r",
            vec![
                MajoranaSum::uniform_singles(3),
                MajoranaSum::new(0),
                MajoranaSum::uniform_singles(2),
            ],
        );
        pinned.n_modes = Some(3);
        let rx = scheduler.submit(&pinned).unwrap();
        let items = collect(rx, 3);
        assert!(items[0].is_ok());
        assert_eq!(items[1].error().unwrap().code, "mode_mismatch");
        assert_eq!(items[2].error().unwrap().code, "mode_mismatch");
        // Without the pin, the zero-mode item gets its own typed error.
        let unpinned = MapRequest::new(
            "r2",
            vec![MajoranaSum::new(0), MajoranaSum::uniform_singles(2)],
        );
        let rx = scheduler.submit(&unpinned).unwrap();
        let items = collect(rx, 2);
        assert_eq!(items[0].error().unwrap().code, "empty_hamiltonian");
        assert!(items[1].is_ok());
    }

    #[test]
    fn requests_share_the_mapper_cache() {
        let mapper = Arc::new(Mapper::new());
        let scheduler =
            Scheduler::new(Arc::clone(&mapper), SchedulerConfig::default()).expect("scheduler");
        let mut h = MajoranaSum::new(2);
        h.add(Complex64::ONE, &[0, 1]);
        h.add(Complex64::ONE, &[2, 3]);
        let rx = scheduler
            .submit(&MapRequest::new("a", vec![h.clone()]))
            .unwrap();
        let _ = collect(rx, 1);
        let rx = scheduler
            .submit(&MapRequest::new("b", vec![h.scaled(2.0)]))
            .unwrap();
        let _ = collect(rx, 1);
        assert_eq!(mapper.cache().hits(), 1, "second request replayed");
    }

    #[test]
    fn try_submit_sheds_load_when_full() {
        // One-slot queue: a multi-item request cannot fit atomically.
        let scheduler = Scheduler::new(
            Arc::new(Mapper::new()),
            SchedulerConfig {
                workers: 1,
                queue_capacity: 1,
            },
        )
        .expect("scheduler");
        let big = MapRequest::new(
            "big",
            (0..64).map(|_| MajoranaSum::uniform_singles(2)).collect(),
        );
        match scheduler.try_submit(&big) {
            Err(ServiceError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Blocking submit still completes (backpressure, not failure).
        let rx = scheduler.submit(&big).unwrap();
        assert_eq!(collect(rx, 64).len(), 64);
    }
}
