//! Service-layer errors: everything the scheduler, server and client
//! helpers can fail with beyond the mapping engine's own
//! [`HattError`](hatt_core::HattError).

use std::fmt;

use hatt_pauli::wire::WireError;

/// Errors of the request/response layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// Socket or stream I/O failed.
    Io(std::io::Error),
    /// A wire document failed to parse/validate.
    Wire(WireError),
    /// The peer violated the line protocol (unexpected kind, missing
    /// `map_done`, mismatched request id, …).
    Protocol(String),
    /// The scheduler queue cannot take the request right now
    /// (`try_submit` only — blocking `submit` applies backpressure
    /// instead).
    Overloaded,
    /// The scheduler is shutting down.
    ShuttingDown,
}

impl ServiceError {
    /// Stable machine-readable code for wire error objects.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Io(_) => "io",
            ServiceError::Wire(_) => "wire",
            ServiceError::Protocol(_) => "protocol",
            ServiceError::Overloaded => "overloaded",
            ServiceError::ShuttingDown => "shutting_down",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Wire(e) => write!(f, "wire error: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ServiceError::Overloaded => write!(f, "scheduler queue is full"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}
