//! Hand-rolled, std-only service observability: the counters and
//! per-policy latency histograms behind the `stats` request verb.
//!
//! No external metrics crate (the container is offline); the histogram
//! is a fixed set of cumulative-friendly duration buckets chosen to
//! bracket real mapping latencies — sub-millisecond cache hits up to
//! multi-second cold beam constructions.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Upper bounds (nanoseconds) of the finite histogram buckets; one
/// overflow bucket follows. 100µs..10s in decades.
pub(crate) const BUCKET_BOUNDS_NS: [u64; 6] = [
    100_000,        // 100 µs
    1_000_000,      // 1 ms
    10_000_000,     // 10 ms
    100_000_000,    // 100 ms
    1_000_000_000,  // 1 s
    10_000_000_000, // 10 s
];

/// One latency histogram: counts per bucket plus totals for averages.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Histogram {
    /// `counts[i]` = observations ≤ `BUCKET_BOUNDS_NS[i]` (and above the
    /// previous bound); the last slot is the overflow bucket.
    pub(crate) counts: [u64; BUCKET_BOUNDS_NS.len() + 1],
    /// Total observations.
    pub(crate) count: u64,
    /// Sum of observed nanoseconds (saturating).
    pub(crate) total_ns: u64,
}

impl Histogram {
    pub(crate) fn observe(&mut self, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let slot = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.counts[slot] += 1;
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }
}

/// Shared service counters. One instance lives in the [`Scheduler`]
/// (the object every connection already shares); the server layers its
/// connection-level counters onto the same struct so the `stats` verb
/// has a single source.
///
/// [`Scheduler`]: crate::Scheduler
#[derive(Debug)]
pub(crate) struct Metrics {
    /// When this daemon's metrics were created — the uptime epoch the
    /// `stats` verb reports against.
    pub(crate) started: Instant,
    /// `map_request` lines accepted by the reactor (parse failures and
    /// overload rejections excluded).
    pub(crate) verb_map: AtomicU64,
    /// `map_delta` lines accepted by the reactor.
    pub(crate) verb_delta: AtomicU64,
    /// `stats_request` lines answered.
    pub(crate) verb_stats: AtomicU64,
    /// `trace_dump_request` lines answered.
    pub(crate) verb_trace_dump: AtomicU64,
    /// Handler threads currently serving a connection.
    pub(crate) connections_active: AtomicUsize,
    /// Connections turned away at the connection limit.
    pub(crate) connections_rejected: AtomicU64,
    /// Request lines discarded for exceeding `max_line_bytes`.
    pub(crate) oversize_lines: AtomicU64,
    /// Map requests accepted into the scheduler.
    pub(crate) requests: AtomicU64,
    /// Queued items skipped because their connection hung up before
    /// they were dispatched — work the disconnect cancellation saved.
    pub(crate) items_cancelled: AtomicU64,
    /// Event-loop poll returns across every reactor worker. Near-idle
    /// servers should barely move this — the counter the idle-churn
    /// regression test watches.
    pub(crate) wakeups: AtomicU64,
    /// Per-policy job latency (policy string → histogram). A `BTreeMap`
    /// so the `stats` reply lists policies in a deterministic order.
    latencies: Mutex<BTreeMap<String, Histogram>>,
}

// Manual because `Instant` has no `Default`: the epoch is "now".
impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            verb_map: AtomicU64::new(0),
            verb_delta: AtomicU64::new(0),
            verb_stats: AtomicU64::new(0),
            verb_trace_dump: AtomicU64::new(0),
            connections_active: AtomicUsize::new(0),
            connections_rejected: AtomicU64::new(0),
            oversize_lines: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            items_cancelled: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            latencies: Mutex::new(BTreeMap::new()),
        }
    }
}

impl Metrics {
    /// Milliseconds since this daemon's metrics epoch.
    pub(crate) fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Snapshot of the per-verb request counters.
    pub(crate) fn verb_counters(&self) -> crate::proto::VerbCounters {
        crate::proto::VerbCounters {
            map: self.verb_map.load(Ordering::Relaxed),
            map_delta: self.verb_delta.load(Ordering::Relaxed),
            stats: self.verb_stats.load(Ordering::Relaxed),
            trace_dump: self.verb_trace_dump.load(Ordering::Relaxed),
        }
    }

    /// Records one job's wall-clock latency under its policy label.
    pub(crate) fn observe_latency(&self, policy: &str, elapsed: Duration) {
        let mut map = self.lock();
        map.entry(policy.to_string()).or_default().observe(elapsed);
    }

    /// Snapshot of every policy histogram (deterministic order).
    pub(crate) fn latency_snapshot(&self) -> Vec<(String, Histogram)> {
        self.lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Histogram>> {
        self.latencies.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// RAII claim of one connection slot: increments the active count on
/// claim, decrements on drop (however the handler exits — return, error
/// or unwind), so the connection limit cannot leak slots. Owns its
/// `Arc<Metrics>` so the claim can travel into the handler thread.
#[derive(Debug)]
pub(crate) struct ConnectionSlot {
    metrics: Arc<Metrics>,
}

impl ConnectionSlot {
    /// Tries to claim a slot under `limit`; `None` means the server is
    /// at its connection cap and the connection must be rejected.
    pub(crate) fn claim(metrics: &Arc<Metrics>, limit: usize) -> Option<Self> {
        let claimed = metrics
            .connections_active
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |active| {
                (active < limit).then_some(active + 1)
            })
            .is_ok();
        if claimed {
            Some(ConnectionSlot {
                metrics: Arc::clone(metrics),
            })
        } else {
            metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

impl Drop for ConnectionSlot {
    fn drop(&mut self) {
        self.metrics
            .connections_active
            .fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_totals() {
        let mut h = Histogram::default();
        h.observe(Duration::from_micros(50)); // ≤ 100µs
        h.observe(Duration::from_micros(500)); // ≤ 1ms
        h.observe(Duration::from_millis(50)); // ≤ 100ms
        h.observe(Duration::from_secs(60)); // overflow
        assert_eq!(h.counts, [1, 1, 0, 1, 0, 0, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(
            h.total_ns,
            50_000 + 500_000 + 50_000_000 + 60_000_000_000u64
        );
    }

    #[test]
    fn connection_slots_enforce_the_limit_and_release_on_drop() {
        let metrics = Arc::new(Metrics::default());
        let a = ConnectionSlot::claim(&metrics, 2).expect("slot 1");
        let _b = ConnectionSlot::claim(&metrics, 2).expect("slot 2");
        assert!(ConnectionSlot::claim(&metrics, 2).is_none(), "at cap");
        assert_eq!(metrics.connections_rejected.load(Ordering::SeqCst), 1);
        drop(a);
        assert!(ConnectionSlot::claim(&metrics, 2).is_some(), "slot freed");
    }

    #[test]
    fn latency_snapshot_is_deterministically_ordered() {
        let metrics = Metrics::default();
        metrics.observe_latency("restarts", Duration::from_millis(2));
        metrics.observe_latency("greedy", Duration::from_micros(10));
        metrics.observe_latency("greedy", Duration::from_micros(20));
        let snap = metrics.latency_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "greedy");
        assert_eq!(snap[0].1.count, 2);
        assert_eq!(snap[1].0, "restarts");
    }
}
