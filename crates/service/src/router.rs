//! The consistent-hash shard router behind `hattd --route`: a reactor
//! front-end (same event loop as the local server) whose backend fans
//! each request item out to the shard that owns the item's canonical
//! structure key, instead of a local scheduler.
//!
//! ## Why hash the structure key
//!
//! The `MappingCache` and the persistent store are already
//! content-addressed by the coefficient-independent FNV-1a structure
//! key of a Hamiltonian (the paper's observation that the HATT tree
//! depends only on the *support structure*). Routing on the same key
//! means every structure has exactly one owning shard, so shard caches
//! partition the keyspace instead of duplicating it — adding a shard
//! grows aggregate cache capacity nearly linearly, and the consistent
//! ring keeps most keys on their old owner when the shard set changes.
//!
//! ## Data flow and backpressure
//!
//! ```text
//! client ──▶ router reactor ──(group items by ring owner)──▶ per-shard
//!   bounded queue ──▶ forwarder thread (persistent connection, one
//!   retry on transport error) ──▶ shard hattd ──▶ items stream back,
//!   indices translated to the client's, into the client's ConnSink
//! ```
//!
//! A full shard queue **sheds** that shard's slice of the request with
//! typed `overloaded` items (the other shards' slices proceed); a
//! shard that stays unreachable after a reconnect answers its slice
//! with typed `io` items and is marked unhealthy in `stats` until a
//! forward succeeds again. The router never blocks an event-loop
//! worker on a shard.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use hatt_core::structure_key;
use hatt_trace::{now_ns, TraceCtx, Tracer};

use crate::error::ServiceError;
use crate::metrics::Metrics;
use crate::proto::{
    ItemError, ItemPayload, MapDeltaRequest, MapItem, MapRequest, ResponseLine, ShardStats,
    StatsReply, StatsRequest, TierStats, TraceSummary,
};
use crate::reactor::{Backend, ConnSink, ReactorLimits};
use crate::scheduler::ClientId;

/// Virtual points per shard on the ring: enough to keep the keyspace
/// split within a few percent of even for small shard counts.
const RING_REPLICAS: usize = 64;

/// 64-bit FNV-1a over a byte stream — the same construction (offset
/// basis + prime) as the structure key itself, applied to shard labels
/// to place ring points.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A consistent-hash ring over shard indices: `owner(key)` is the
/// first ring point at or after `key` (wrapping), so re-labelling or
/// resizing the shard set moves only the keys between affected points.
#[derive(Debug)]
pub(crate) struct HashRing {
    /// `(point, shard index)`, sorted by point.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    pub(crate) fn new(labels: &[String]) -> HashRing {
        let mut points: Vec<(u64, usize)> = labels
            .iter()
            .enumerate()
            .flat_map(|(shard, label)| {
                (0..RING_REPLICAS).map(move |replica| {
                    let bytes = label
                        .bytes()
                        .chain(std::iter::once(b'#'))
                        .chain((replica as u64).to_le_bytes());
                    (fnv1a(bytes), shard)
                })
            })
            .collect();
        points.sort_unstable();
        HashRing { points }
    }

    /// The shard owning `key`.
    pub(crate) fn owner(&self, key: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < key);
        self.points[i % self.points.len()].1
    }
}

/// One unit of forwarding work: a sub-request bound for one shard.
struct ShardJob {
    payload: ShardPayload,
    sink: ConnSink,
    /// The originating request's trace context (parent = the router's
    /// root request span). The forwarder mints a `route.forward` span
    /// under it and stamps *that* span as the sub-request's `trace_ctx`
    /// parent, linking the shard's span tree into the router's.
    trace: Option<TraceCtx>,
}

enum ShardPayload {
    /// A slice of a batch request; `orig[i]` is the client-side index
    /// of the sub-request's item `i`.
    Map { sub: MapRequest, orig: Vec<usize> },
    /// A whole remap request (routed by its base structure's key so it
    /// lands on the shard whose cache holds the ancestor tree).
    Delta(MapDeltaRequest),
}

impl ShardJob {
    fn item_count(&self) -> usize {
        match &self.payload {
            ShardPayload::Map { orig, .. } => orig.len(),
            ShardPayload::Delta(_) => 1,
        }
    }

    fn id(&self) -> &str {
        match &self.payload {
            ShardPayload::Map { sub, .. } => &sub.id,
            ShardPayload::Delta(req) => &req.id,
        }
    }

    /// Translates a sub-request item index back to the client's.
    fn orig_index(&self, i: usize) -> Option<usize> {
        match &self.payload {
            ShardPayload::Map { orig, .. } => orig.get(i).copied(),
            ShardPayload::Delta(_) => (i == 0).then_some(0),
        }
    }

    fn to_line(&self) -> String {
        match &self.payload {
            ShardPayload::Map { sub, .. } => sub.to_line(),
            ShardPayload::Delta(req) => req.to_line(),
        }
    }

    /// Sets the sub-request's on-wire `trace_ctx` (the forward span the
    /// shard's spans should hang off).
    fn set_forward_ctx(&mut self, ctx: TraceCtx) {
        match &mut self.payload {
            ShardPayload::Map { sub, .. } => sub.trace = Some(ctx),
            ShardPayload::Delta(req) => req.trace = Some(ctx),
        }
    }
}

/// The bounded job queue in front of one forwarder thread.
struct ShardQueue {
    state: Mutex<(VecDeque<ShardJob>, bool)>,
    not_empty: Condvar,
    capacity: usize,
}

impl ShardQueue {
    fn new(capacity: usize) -> ShardQueue {
        ShardQueue {
            state: Mutex::new((VecDeque::new(), false)),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, (VecDeque<ShardJob>, bool)> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking (event-loop safe): `Err` hands the job back when
    /// the queue is full or shutting down — the caller sheds it.
    #[allow(clippy::result_large_err)] // Err returns the job to the caller by design
    fn try_push(&self, job: ShardJob) -> Result<(), ShardJob> {
        let mut state = self.lock();
        if state.1 || state.0.len() >= self.capacity {
            return Err(job);
        }
        state.0.push_back(job);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once shut down *and* drained
    /// (already-accepted work is always forwarded or answered).
    fn pop(&self) -> Option<ShardJob> {
        let mut state = self.lock();
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn len(&self) -> usize {
        self.lock().0.len()
    }

    fn shutdown(&self) {
        self.lock().1 = true;
        self.not_empty.notify_all();
    }
}

/// Health and traffic counters of one shard, surfaced in `stats`.
#[derive(Debug, Default)]
struct ShardCounters {
    /// False after a forward failed (reconnect included); true again
    /// after the next success. Fresh shards start healthy.
    unhealthy: AtomicBool,
    forwarded: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
}

struct Shard {
    addr: String,
    queue: Arc<ShardQueue>,
    counters: Arc<ShardCounters>,
    forwarder: Mutex<Option<JoinHandle<()>>>,
}

/// The router backend: groups request items by ring owner, enqueues
/// per-shard sub-requests, and reports per-shard health.
pub(crate) struct RouterBackend {
    shards: Vec<Shard>,
    ring: HashRing,
    metrics: Arc<Metrics>,
    limits: ReactorLimits,
    tracer: Tracer,
    next_client: AtomicU64,
}

impl RouterBackend {
    /// Spawns one forwarder per shard address. `shard_queue` bounds
    /// each shard's accepted-but-not-forwarded backlog (requests
    /// beyond it are shed with typed `overloaded` items).
    pub(crate) fn new(
        shard_addrs: &[String],
        shard_queue: usize,
        limits: ReactorLimits,
        tracer: Tracer,
    ) -> std::io::Result<RouterBackend> {
        let metrics = Arc::new(Metrics::default());
        let mut shards = Vec::with_capacity(shard_addrs.len());
        for addr in shard_addrs {
            let queue = Arc::new(ShardQueue::new(shard_queue));
            let counters = Arc::new(ShardCounters::default());
            let forwarder = {
                let addr = addr.clone();
                let queue = Arc::clone(&queue);
                let counters = Arc::clone(&counters);
                let metrics = Arc::clone(&metrics);
                let tracer = tracer.clone();
                std::thread::Builder::new()
                    .name(format!("hattd-fwd-{addr}"))
                    .spawn(move || forwarder_loop(&addr, &queue, &counters, &metrics, &tracer))?
            };
            shards.push(Shard {
                addr: addr.clone(),
                queue,
                counters,
                forwarder: Mutex::new(Some(forwarder)),
            });
        }
        Ok(RouterBackend {
            ring: HashRing::new(shard_addrs),
            shards,
            metrics,
            limits,
            tracer,
            next_client: AtomicU64::new(0),
        })
    }

    /// Sheds one shard slice: every affected client index gets a typed
    /// `overloaded` item immediately.
    fn shed(&self, shard: &Shard, id: &str, indices: &[usize], sink: &ConnSink) {
        shard
            .counters
            .shed
            .fetch_add(indices.len() as u64, Ordering::Relaxed);
        let e = ServiceError::Overloaded;
        for &index in indices {
            sink.send(MapItem {
                id: id.to_string(),
                index: Some(index),
                payload: ItemPayload::Err(ItemError {
                    code: e.code().to_string(),
                    message: format!("shard {} queue is full; retry later", shard.addr),
                }),
            });
        }
    }
}

impl Backend for RouterBackend {
    fn register_client(&self) -> ClientId {
        ClientId::from_raw(self.next_client.fetch_add(1, Ordering::Relaxed))
    }

    fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn submit_map(
        &self,
        _client: ClientId,
        req: &MapRequest,
        sink: &ConnSink,
        trace: Option<TraceCtx>,
    ) -> Result<usize, ServiceError> {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // Group client indices by owning shard, preserving order.
        let hash_start = trace.map(|_| now_ns()).unwrap_or_default();
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (index, h) in req.hamiltonians.iter().enumerate() {
            groups[self.ring.owner(structure_key(h))].push(index);
        }
        if let Some(ctx) = trace {
            self.tracer
                .record_span(ctx, "route.hash", hash_start, now_ns());
        }
        for (shard, orig) in self.shards.iter().zip(&groups) {
            if orig.is_empty() {
                continue;
            }
            let sub = MapRequest {
                id: req.id.clone(),
                options: req.options,
                n_modes: req.n_modes,
                hamiltonians: orig.iter().map(|&i| req.hamiltonians[i].clone()).collect(),
                trace: None,
            };
            let job = ShardJob {
                payload: ShardPayload::Map {
                    sub,
                    orig: orig.clone(),
                },
                sink: sink.clone(),
                trace,
            };
            if let Err(job) = shard.queue.try_push(job) {
                self.shed(shard, &req.id, orig, &job.sink);
            }
        }
        Ok(req.hamiltonians.len())
    }

    fn submit_delta(
        &self,
        _client: ClientId,
        req: &MapDeltaRequest,
        sink: &ConnSink,
        trace: Option<TraceCtx>,
    ) -> Result<usize, ServiceError> {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // Route by the *base* structure: that's the key under which the
        // owning shard's cache holds the ancestor tree the incremental
        // remap wants to reuse.
        let hash_start = trace.map(|_| now_ns()).unwrap_or_default();
        let shard = &self.shards[self.ring.owner(structure_key(&req.hamiltonian))];
        if let Some(ctx) = trace {
            self.tracer
                .record_span(ctx, "route.hash", hash_start, now_ns());
        }
        let mut sub = req.clone();
        sub.trace = None;
        let job = ShardJob {
            payload: ShardPayload::Delta(sub),
            sink: sink.clone(),
            trace,
        };
        if let Err(job) = shard.queue.try_push(job) {
            self.shed(shard, &req.id, &[0], &job.sink);
        }
        Ok(1)
    }

    fn stats(&self, req: &StatsRequest) -> StatsReply {
        let shards = self
            .shards
            .iter()
            .map(|s| ShardStats {
                addr: s.addr.clone(),
                healthy: !s.counters.unhealthy.load(Ordering::Relaxed),
                queue_depth: s.queue.len(),
                forwarded: s.counters.forwarded.load(Ordering::Relaxed),
                errors: s.counters.errors.load(Ordering::Relaxed),
                shed: s.counters.shed.load(Ordering::Relaxed),
            })
            .collect();
        StatsReply {
            id: req.id.clone(),
            uptime_ms: self.metrics.uptime_ms(),
            verbs: self.metrics.verb_counters(),
            trace: self.tracer.is_enabled().then(|| TraceSummary {
                capacity: self.tracer.capacity(),
                recorded: self.tracer.spans_recorded(),
                dropped: self.tracer.spans_dropped(),
            }),
            queue_depth: self.shards.iter().map(|s| s.queue.len()).sum(),
            connections: self.metrics.connections_active.load(Ordering::SeqCst),
            connection_limit: self.limits.max_connections,
            connections_rejected: self.metrics.connections_rejected.load(Ordering::Relaxed),
            oversize_lines: self.metrics.oversize_lines.load(Ordering::Relaxed),
            requests: self.metrics.requests.load(Ordering::Relaxed),
            // Constructions, caches and latency histograms live on the
            // shards (probe them directly); the router reports its own
            // traffic plus per-shard health.
            constructions: 0,
            remaps: 0,
            cancelled_items: self.metrics.items_cancelled.load(Ordering::Relaxed),
            event_loop_wakeups: self.metrics.wakeups.load(Ordering::Relaxed),
            cache: TierStats::default(),
            store: None,
            policies: Vec::new(),
            shards,
        }
    }

    fn drain(&self) {
        for shard in &self.shards {
            shard.queue.shutdown();
        }
        for shard in &self.shards {
            let handle = shard
                .forwarder
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
    }
}

/// One shard's persistent connection (line-buffered both ways).
struct ShardConn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn connect(addr: &str) -> std::io::Result<ShardConn> {
    let stream = TcpStream::connect(addr)?;
    // A wedged shard must not pin the forwarder (and the router's
    // drain) forever; a timeout surfaces as a transport error and the
    // job is answered with typed items.
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    Ok(ShardConn {
        reader: BufReader::new(stream.try_clone()?),
        writer: BufWriter::new(stream),
    })
}

/// The per-shard forwarder: pops jobs, relays them over a persistent
/// connection (reconnecting once per job on transport errors), and
/// translates item indices back to the client's.
fn forwarder_loop(
    addr: &str,
    queue: &ShardQueue,
    counters: &ShardCounters,
    metrics: &Metrics,
    tracer: &Tracer,
) {
    let mut conn: Option<ShardConn> = None;
    while let Some(mut job) = queue.pop() {
        if job.sink.is_cancelled() {
            // The client hung up while the job sat in the queue: skip
            // the round trip entirely.
            metrics
                .items_cancelled
                .fetch_add(job.item_count() as u64, Ordering::Relaxed);
            continue;
        }
        // The forward-hop span id is minted *before* the sub-request is
        // serialized so the shard's root span can parent on it — the
        // cross-process seam of a trace.
        let forward = job.trace.filter(|_| tracer.is_enabled()).map(|ctx| {
            let span_id = tracer.alloc_span_id();
            job.set_forward_ctx(TraceCtx {
                trace_id: ctx.trace_id,
                parent_span: span_id,
            });
            (ctx, span_id, now_ns())
        });
        // `answered` survives the retry so a mid-response reconnect
        // never double-sends an index (the shard's cache makes the
        // replayed sub-request cheap).
        let mut answered = vec![false; job.item_count()];
        let mut outcome = Err(ServiceError::Protocol("never attempted".into()));
        for attempt in 0..2 {
            let retry_start = if attempt > 0 { now_ns() } else { 0 };
            let result = (|| {
                let io = match conn.as_mut() {
                    Some(io) => io,
                    None => conn.insert(connect(addr).map_err(ServiceError::Io)?),
                };
                forward_once(io, &job, &mut answered, counters)
            })();
            if attempt > 0 {
                if let Some((ctx, span_id, _)) = forward {
                    tracer.record_span(ctx.child_of(span_id), "route.retry", retry_start, now_ns());
                }
            }
            match result {
                Ok(()) => {
                    outcome = Ok(());
                    break;
                }
                Err(e) => {
                    // Transport is suspect: retry on a fresh connection.
                    conn = None;
                    outcome = Err(e);
                }
            }
        }
        if let Some((ctx, span_id, start)) = forward {
            tracer.record_span_id(span_id, ctx, "route.forward", start, now_ns());
        }
        match outcome {
            Ok(()) => counters.unhealthy.store(false, Ordering::Relaxed),
            Err(e) => {
                counters.unhealthy.store(true, Ordering::Relaxed);
                counters.errors.fetch_add(1, Ordering::Relaxed);
                let error = ItemError {
                    code: e.code().to_string(),
                    message: format!("shard {addr} unavailable: {e}"),
                };
                for (i, done) in answered.iter().enumerate() {
                    if *done {
                        continue;
                    }
                    if let Some(index) = job.orig_index(i) {
                        job.sink.send(MapItem {
                            id: job.id().to_string(),
                            index: Some(index),
                            payload: ItemPayload::Err(error.clone()),
                        });
                    }
                }
            }
        }
    }
}

/// Relays one job over an established connection: writes the
/// sub-request line, streams items back (translating indices), and
/// covers any index the shard never answered with a typed error.
fn forward_once(
    io: &mut ShardConn,
    job: &ShardJob,
    answered: &mut [bool],
    counters: &ShardCounters,
) -> Result<(), ServiceError> {
    io.writer.write_all(job.to_line().as_bytes())?;
    io.writer.write_all(b"\n")?;
    io.writer.flush()?;
    let mut request_error: Option<ItemError> = None;
    let mut line = String::new();
    loop {
        line.clear();
        if io.reader.read_line(&mut line)? == 0 {
            return Err(ServiceError::Protocol(
                "shard closed the connection mid-response".into(),
            ));
        }
        if line.trim().is_empty() {
            continue;
        }
        match ResponseLine::from_line(line.trim_end())? {
            ResponseLine::Item(mut item) => match item.index {
                Some(i) if i < answered.len() && !answered[i] => {
                    answered[i] = true;
                    item.index = job.orig_index(i);
                    counters.forwarded.fetch_add(1, Ordering::Relaxed);
                    job.sink.send(item);
                }
                // Request-level (index-less) errors from the shard are
                // remembered and fanned to every unanswered index below.
                _ => {
                    if let ItemPayload::Err(e) = item.payload {
                        request_error = Some(e);
                    }
                }
            },
            ResponseLine::Done(_) => break,
        }
    }
    let fallback = request_error.unwrap_or_else(|| ItemError {
        code: "internal".to_string(),
        message: "shard response did not cover this item".to_string(),
    });
    for (i, done) in answered.iter_mut().enumerate() {
        if *done {
            continue;
        }
        *done = true;
        if let Some(index) = job.orig_index(i) {
            job.sink.send(MapItem {
                id: job.id().to_string(),
                index: Some(index),
                payload: ItemPayload::Err(fallback.clone()),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_fermion::MajoranaSum;

    fn labels(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn ring_assignment_is_deterministic_and_total() {
        let a = HashRing::new(&labels(3));
        let b = HashRing::new(&labels(3));
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            let owner = a.owner(key);
            assert!(owner < 3);
            assert_eq!(owner, b.owner(key), "same labels, same ring");
        }
    }

    #[test]
    fn ring_spreads_structure_keys_across_shards() {
        let ring = HashRing::new(&labels(2));
        let mut counts = [0usize; 2];
        for n in 2..40 {
            counts[ring.owner(structure_key(&MajoranaSum::uniform_singles(n)))] += 1;
        }
        assert!(
            counts.iter().all(|&c| c > 0),
            "both shards should own some of the workload: {counts:?}"
        );
    }

    #[test]
    fn ring_growth_moves_only_a_fraction_of_keys() {
        let two = HashRing::new(&labels(2));
        let three = HashRing::new(&labels(3));
        let keys: Vec<u64> = (0..20_000u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let moved = keys
            .iter()
            .filter(|&&k| {
                let before = two.owner(k);
                let after = three.owner(k);
                after != before && after != 2
            })
            .count();
        // Consistent hashing: keys either stay put or move to the new
        // shard; cross-migration between surviving shards stays small.
        assert!(
            moved * 10 < keys.len(),
            "{moved} of {} keys migrated between surviving shards",
            keys.len()
        );
    }

    #[test]
    fn shard_queue_bounds_and_drains() {
        let q = ShardQueue::new(2);
        let sink_parts = crate::reactor::worker_pair().expect("pair");
        let mk = || ShardJob {
            payload: ShardPayload::Map {
                sub: MapRequest::new("r", vec![]),
                orig: vec![],
            },
            sink: crate::reactor::test_sink(&sink_parts.0),
            trace: None,
        };
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_ok());
        assert!(q.try_push(mk()).is_err(), "third job must be shed");
        assert_eq!(q.len(), 2);
        q.shutdown();
        assert!(q.try_push(mk()).is_err(), "no work after shutdown");
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none(), "drained and shut down");
    }
}
