//! The `hattd` JSON-lines-over-TCP server: one [`MapRequest`] per
//! line in, one [`MapItem`] line **per batch item as it completes**
//! out, closed by a [`MapDone`] line. A [`StatsRequest`] line is
//! answered with a single [`StatsReply`] line.
//!
//! The server is std-only and **readiness-based**: one accept thread
//! hands each connection to one of a small set of event-loop workers
//! (see [`crate::reactor`]), which own their connections as
//! non-blocking sockets multiplexed with `vendor/poll`. No thread ever
//! blocks on one peer's socket — an idle connection costs zero
//! syscalls until bytes arrive, and a slow reader only fills its own
//! write buffer. All connections share one [`Scheduler`] (and through
//! it one [`Mapper`] + structure cache); in router mode
//! ([`Server::bind_router`]) they instead share a consistent-hash
//! shard router.
//!
//! ## Hardening
//!
//! * **Bounded request lines.** A line is scanned through a fixed-size
//!   window ([`ServerConfig::max_line_bytes`], default 4 MiB); an
//!   over-long line is discarded as it streams in — never buffered —
//!   and answered with a typed `invalid_request` item, after which the
//!   connection keeps working.
//! * **Connection limit.** At most [`ServerConfig::max_connections`]
//!   connections are served at once; a connection beyond the cap gets a
//!   single typed `overloaded` line and is closed.
//! * **Slow-reader isolation.** Responses queue in a per-connection
//!   write buffer drained on write readiness; above
//!   [`ServerConfig::max_write_buffer`] the connection stops reading
//!   and starting new requests until the peer catches up. Other
//!   connections are unaffected.
//! * **Coalesced writes.** Response lines accumulate in the write
//!   buffer and reach the kernel once per readiness cycle instead of
//!   one flush per item — items still *stream* (each cycle flushes
//!   whatever is ready), but a large batch no longer costs one
//!   syscall-pair per line.
//! * **Disconnect cancellation.** A peer that hangs up mid-batch has
//!   its still-queued jobs skipped (counted as `cancelled_items` in
//!   `stats`); a half-written line dies with its own connection and
//!   can never interleave into another connection's stream.
//! * **Graceful drain.** Shutdown stops accepting, answers
//!   parsed-but-unstarted requests with typed `shutting_down` errors,
//!   lets in-flight batches finish and flush under a grace period,
//!   then tears down the backend and flushes the mapper's persistent
//!   store.
//!
//! # Examples
//!
//! ```
//! use hatt_core::Mapper;
//! use hatt_fermion::MajoranaSum;
//! use hatt_service::{client, MapRequest, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())?;
//! let req = MapRequest::new("r", vec![MajoranaSum::uniform_singles(2)]);
//! let reply = client::request(server.local_addr(), &req)?;
//! assert_eq!(reply.done.items, 1);
//! assert!(reply.items[0].is_ok());
//!
//! let stats = client::stats(server.local_addr(), "probe")?;
//! assert_eq!(stats.requests, 1);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hatt_core::Mapper;
use hatt_trace::{TraceCtx, Tracer};

use crate::error::ServiceError;
use crate::metrics::{ConnectionSlot, Metrics, BUCKET_BOUNDS_NS};
use crate::proto::{
    ItemError, ItemPayload, LatencyBucket, MapDeltaRequest, MapDone, MapItem, MapRequest,
    PolicyLatency, StatsReply, StatsRequest, TierStats, TraceSummary,
};
use crate::reactor::{event_loop, worker_pair, Backend, ConnSink, ReactorLimits, WorkerShared};
use crate::router::RouterBackend;
use crate::scheduler::{ClientId, Scheduler, SchedulerConfig};

/// How long shutdown waits for in-flight responses to flush before
/// abandoning peers that stopped taking their bytes.
const DRAIN_GRACE: Duration = Duration::from_secs(10);

/// Server sizing and hardening knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Scheduler sizing.
    pub scheduler: SchedulerConfig,
    /// Longest accepted request line in bytes (default 4 MiB). Longer
    /// lines are discarded as they stream in — the server never buffers
    /// more than its internal read window — and answered with a typed
    /// `invalid_request` item; the connection stays usable.
    pub max_line_bytes: usize,
    /// Concurrent connections served at once (default 256). A
    /// connection beyond the cap receives one typed `overloaded` item
    /// plus `map_done` and is closed without entering an event loop.
    pub max_connections: usize,
    /// Event-loop worker threads (default `0` = automatic: the
    /// available parallelism, capped at 4 — connection multiplexing is
    /// I/O-bound; the mapping work has its own worker pool).
    pub event_workers: usize,
    /// Buffered response bytes per connection above which the
    /// connection stops reading new requests until the peer drains its
    /// responses (default 8 MiB) — the slow-reader backpressure knob.
    pub max_write_buffer: usize,
    /// Enables the in-process tracing collector (`hattd --trace`).
    /// Every `map`/`map_delta` request then records a span tree —
    /// accept, frame parse, queue wait, cache probe/construction,
    /// write drain — retrievable with the `trace_dump` verb and
    /// summarised in `stats`. Off by default: a disabled tracer costs
    /// one branch per instrumentation point.
    pub trace: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            scheduler: SchedulerConfig::default(),
            max_line_bytes: 4 << 20,
            max_connections: 256,
            event_workers: 0,
            max_write_buffer: 8 << 20,
            trace: false,
        }
    }
}

impl ServerConfig {
    fn reactor_limits(&self) -> ReactorLimits {
        ReactorLimits {
            max_line_bytes: self.max_line_bytes.max(1),
            max_connections: self.max_connections.max(1),
            max_write_buffer: self.max_write_buffer.max(1),
            drain_grace: DRAIN_GRACE,
        }
    }

    fn effective_event_workers(&self) -> usize {
        if self.event_workers > 0 {
            return self.event_workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(4)
    }

    fn tracer(&self) -> Tracer {
        if self.trace {
            Tracer::enabled(hatt_trace::DEFAULT_CAPACITY)
        } else {
            Tracer::disabled()
        }
    }
}

/// A running `hattd` server. Dropping (or calling
/// [`Server::shutdown`]) stops accepting, drains in-flight requests,
/// joins every worker thread and flushes the mapper's persistent
/// store (when one is configured).
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    worker_shared: Vec<Arc<WorkerShared>>,
    backend: Option<Arc<dyn Backend>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("event_workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds and starts serving on `addr` (use port `0` for an
    /// ephemeral port; read it back with [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        mapper: Mapper,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let mapper = Arc::new(mapper);
        let scheduler = Scheduler::with_tracer(
            Arc::clone(&mapper),
            config.scheduler.clone(),
            config.tracer(),
        )?;
        let backend: Arc<dyn Backend> = Arc::new(LocalBackend {
            scheduler,
            mapper,
            limits: config.reactor_limits(),
        });
        Self::bind_with(addr, backend, &config)
    }

    /// Binds a **shard router**: instead of mapping locally, every
    /// request item is forwarded to the shard daemon that owns the
    /// item's canonical structure key on a consistent-hash ring (the
    /// `router` module). The wire protocol is identical to a single
    /// daemon's — clients cannot tell the difference, except for the
    /// populated `shards` section in `stats`.
    pub fn bind_router(
        addr: impl ToSocketAddrs,
        shard_addrs: &[String],
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        if shard_addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router mode needs at least one shard address",
            ));
        }
        let backend: Arc<dyn Backend> = Arc::new(RouterBackend::new(
            shard_addrs,
            config.scheduler.queue_capacity.max(1),
            config.reactor_limits(),
            config.tracer(),
        )?);
        Self::bind_with(addr, backend, &config)
    }

    fn bind_with(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        config: &ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let limits = config.reactor_limits();
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        let mut worker_shared = Vec::new();
        for i in 0..config.effective_event_workers() {
            let (shared, completions) = worker_pair()?;
            let handle = {
                let shared = Arc::clone(&shared);
                let backend = Arc::clone(&backend);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name(format!("hattd-loop-{i}"))
                    .spawn(move || run_worker(&shared, &completions, &backend, limits, &stop))?
            };
            workers.push(handle);
            worker_shared.push(shared);
        }
        let accept = {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(backend.metrics());
            let worker_shared = worker_shared.clone();
            std::thread::Builder::new()
                .name("hattd-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &metrics, &worker_shared, limits))?
        };
        Ok(Server {
            local_addr,
            stop,
            accept: Some(accept),
            workers,
            worker_shared,
            backend: Some(backend),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks the calling thread until the server shuts down — the
    /// daemon (`hattd`) foreground mode.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting connections, drains in-flight requests, joins
    /// every worker thread and flushes the persistent store.
    pub fn shutdown(self) {
        drop(self);
    }

    fn signal_stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Wake every event loop so it observes the stop flag, then let
        // each drain: pending lines are answered with `shutting_down`,
        // in-flight batches finish (the backend is still alive here)
        // and their bytes flush, bounded by the grace period.
        for shared in &self.worker_shared {
            shared.waker.wake();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // Only now tear the backend down: join the dispatcher (or the
        // shard forwarders) and flush the persistent tier.
        if let Some(backend) = self.backend.take() {
            backend.drain();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.signal_stop();
    }
}

/// One event-loop worker thread body (moved-ownership shim over
/// [`event_loop`]).
fn run_worker(
    shared: &WorkerShared,
    completions: &Receiver<(u64, MapItem)>,
    backend: &Arc<dyn Backend>,
    limits: ReactorLimits,
    stop: &AtomicBool,
) {
    event_loop(shared, completions, backend, limits, stop);
}

fn accept_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    metrics: &Arc<Metrics>,
    workers: &[Arc<WorkerShared>],
    limits: ReactorLimits,
) {
    let mut next = 0usize;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let Some(slot) = ConnectionSlot::claim(metrics, limits.max_connections) else {
                    reject_overloaded(stream);
                    continue;
                };
                // Round-robin across workers: connection counts stay
                // balanced without shared state between loops.
                workers[next % workers.len()].adopt(stream, slot);
                next = next.wrapping_add(1);
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Back off instead of busy-spinning: persistent accept
                // errors (fd exhaustion, EMFILE) would otherwise peg a
                // core while contributing nothing.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Answers an over-limit connection with one typed `overloaded` line
/// plus `map_done`, then closes it. Runs on the accept thread (the
/// rejected stream never reaches an event loop); the write timeout
/// keeps a non-reading peer from stalling accepts.
fn reject_overloaded(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let e = ServiceError::Overloaded;
    let item = MapItem {
        id: String::new(),
        index: None,
        payload: ItemPayload::Err(ItemError {
            code: e.code().to_string(),
            message: "connection limit reached; retry later".to_string(),
        }),
    };
    let done = MapDone {
        id: String::new(),
        items: 1,
        errors: 1,
    };
    let mut writer = BufWriter::new(stream);
    let _ = writer.write_all(item.to_line().as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.write_all(done.to_line().as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
}

/// The single-daemon backend: the scheduler+mapper pair every
/// connection of a [`Server::bind`] server shares.
struct LocalBackend {
    scheduler: Scheduler,
    mapper: Arc<Mapper>,
    limits: ReactorLimits,
}

impl Backend for LocalBackend {
    fn register_client(&self) -> ClientId {
        self.scheduler.register_client()
    }

    fn metrics(&self) -> &Arc<Metrics> {
        self.scheduler.metrics()
    }

    fn tracer(&self) -> &Tracer {
        self.scheduler.tracer()
    }

    fn submit_map(
        &self,
        client: ClientId,
        req: &MapRequest,
        sink: &ConnSink,
        trace: Option<TraceCtx>,
    ) -> Result<usize, ServiceError> {
        self.scheduler.submit_conn(client, req, sink, trace)
    }

    fn submit_delta(
        &self,
        client: ClientId,
        req: &MapDeltaRequest,
        sink: &ConnSink,
        trace: Option<TraceCtx>,
    ) -> Result<usize, ServiceError> {
        self.scheduler.submit_delta_conn(client, req, sink, trace)
    }

    fn stats(&self, req: &StatsRequest) -> StatsReply {
        stats_reply(&self.scheduler, req, &self.limits)
    }

    fn drain(&self) {
        self.scheduler.drain();
        // Everything that will ever be written through this server has
        // been; make the store tier durable.
        let _ = self.mapper.sync_store();
    }
}

/// Builds the `stats` reply from the scheduler, mapper and counters.
fn stats_reply(scheduler: &Scheduler, req: &StatsRequest, limits: &ReactorLimits) -> StatsReply {
    let metrics = scheduler.metrics();
    let cache = scheduler.mapper().cache();
    let policies = metrics
        .latency_snapshot()
        .into_iter()
        .map(|(policy, h)| {
            let buckets = h
                .counts
                .iter()
                .enumerate()
                .map(|(i, &count)| LatencyBucket {
                    le_ns: BUCKET_BOUNDS_NS.get(i).copied(),
                    count,
                })
                .collect();
            PolicyLatency {
                policy,
                count: h.count,
                total_ns: h.total_ns,
                buckets,
            }
        })
        .collect();
    let tracer = scheduler.tracer();
    StatsReply {
        id: req.id.clone(),
        uptime_ms: metrics.uptime_ms(),
        verbs: metrics.verb_counters(),
        trace: tracer.is_enabled().then(|| TraceSummary {
            capacity: tracer.capacity(),
            recorded: tracer.spans_recorded(),
            dropped: tracer.spans_dropped(),
        }),
        queue_depth: scheduler.queue_len(),
        connections: metrics.connections_active.load(Ordering::SeqCst),
        connection_limit: limits.max_connections,
        connections_rejected: metrics.connections_rejected.load(Ordering::Relaxed),
        oversize_lines: metrics.oversize_lines.load(Ordering::Relaxed),
        requests: metrics.requests.load(Ordering::Relaxed),
        constructions: cache.constructions(),
        remaps: cache.remaps(),
        cancelled_items: metrics.items_cancelled.load(Ordering::Relaxed),
        event_loop_wakeups: metrics.wakeups.load(Ordering::Relaxed),
        cache: TierStats {
            hits: cache.hits(),
            misses: cache.misses(),
            entries: cache.len(),
        },
        store: scheduler.mapper().store_stats(),
        policies,
        shards: Vec::new(),
    }
}
