//! The `hattd` JSON-lines-over-TCP server: one [`MapRequest`] per
//! line in, one [`MapItem`] line **per batch item as it completes**
//! out, closed by a [`MapDone`] line. A [`StatsRequest`] line is
//! answered with a single [`StatsReply`] line.
//!
//! The server is std-only: an accept thread hands each connection to
//! its own handler thread; all handlers share one [`Scheduler`] (and
//! through it one [`Mapper`] + structure cache). A connection can issue
//! any number of requests back to back; an unparsable line yields a
//! single `invalid_request` item plus `map_done` and the connection
//! stays usable.
//!
//! ## Hardening
//!
//! * **Bounded request lines.** A line is read through a fixed-size
//!   window ([`ServerConfig::max_line_bytes`], default 4 MiB); an
//!   over-long line is discarded as it streams in — never buffered —
//!   and answered with a typed `invalid_request` item, after which the
//!   connection keeps working.
//! * **Connection limit.** At most [`ServerConfig::max_connections`]
//!   handler threads exist at once; a connection beyond the cap gets a
//!   single typed `overloaded` line and is closed.
//! * **Graceful drain.** Shutdown stops accepting, wakes idle handlers
//!   (they observe the stop flag on their next read-timeout tick),
//!   joins every handler — in-flight batches finish and their items are
//!   delivered — then tears down the scheduler and flushes the mapper's
//!   persistent store.
//! * **No silent truncation.** If the scheduler goes away mid-batch,
//!   every unmapped index is answered with a typed `internal` error
//!   item, so `map_done.items` always equals the request length.
//!
//! # Examples
//!
//! ```
//! use hatt_core::Mapper;
//! use hatt_fermion::MajoranaSum;
//! use hatt_service::{client, MapRequest, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())?;
//! let req = MapRequest::new("r", vec![MajoranaSum::uniform_singles(2)]);
//! let reply = client::request(server.local_addr(), &req)?;
//! assert_eq!(reply.done.items, 1);
//! assert!(reply.items[0].is_ok());
//!
//! let stats = client::stats(server.local_addr(), "probe")?;
//! assert_eq!(stats.requests, 1);
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use hatt_core::{HattError, Mapper};
use hatt_mappings::FermionMapping;

use crate::error::ServiceError;
use crate::metrics::{ConnectionSlot, BUCKET_BOUNDS_NS};
use crate::proto::{
    ItemError, ItemPayload, LatencyBucket, MapDeltaRequest, MapDone, MapItem, MapRequest,
    PolicyLatency, RequestLine, StatsReply, StatsRequest, TierStats,
};
use crate::scheduler::{ClientId, Scheduler, SchedulerConfig};

/// Server sizing and hardening knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Scheduler sizing.
    pub scheduler: SchedulerConfig,
    /// Longest accepted request line in bytes (default 4 MiB). Longer
    /// lines are discarded as they stream in — the server never buffers
    /// more than its internal read window — and answered with a typed
    /// `invalid_request` item; the connection stays usable.
    pub max_line_bytes: usize,
    /// Concurrent connections served at once (default 256). A
    /// connection beyond the cap receives one typed `overloaded` item
    /// plus `map_done` and is closed without a handler thread.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            scheduler: SchedulerConfig::default(),
            max_line_bytes: 4 << 20,
            max_connections: 256,
        }
    }
}

/// A running `hattd` server. Dropping (or calling
/// [`Server::shutdown`]) stops accepting, drains in-flight requests,
/// joins every handler thread and flushes the mapper's persistent
/// store (when one is configured).
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<Arc<Scheduler>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    mapper: Arc<Mapper>,
}

impl Server {
    /// Binds and starts serving on `addr` (use port `0` for an
    /// ephemeral port; read it back with [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        mapper: Mapper,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let mapper = Arc::new(mapper);
        let scheduler = Arc::new(Scheduler::new(
            Arc::clone(&mapper),
            config.scheduler.clone(),
        )?);
        let stop = Arc::new(AtomicBool::new(false));
        let handlers = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let scheduler = Arc::clone(&scheduler);
            let handlers = Arc::clone(&handlers);
            let limits = Limits {
                max_line_bytes: config.max_line_bytes.max(1),
                max_connections: config.max_connections.max(1),
            };
            std::thread::Builder::new()
                .name("hattd-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &scheduler, &handlers, limits))?
        };
        Ok(Server {
            local_addr,
            stop,
            accept: Some(accept),
            scheduler: Some(scheduler),
            handlers,
            mapper,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks the calling thread until the server shuts down — the
    /// daemon (`hattd`) foreground mode.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting connections, drains in-flight requests, joins
    /// every handler thread and flushes the persistent store.
    pub fn shutdown(self) {
        drop(self);
    }

    fn signal_stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Join every handler: idle connections notice the stop flag on
        // their next read-timeout tick; busy ones finish their batch
        // (the scheduler is still alive here, so they can't deadlock).
        let handles = std::mem::take(&mut *lock_handlers(&self.handlers));
        for handle in handles {
            let _ = handle.join();
        }
        // Dropping the last scheduler handle joins the dispatcher
        // (already-queued jobs are still dispatched and answered).
        self.scheduler.take();
        // Everything that will ever be written through this server has
        // been; make the store tier durable.
        let _ = self.mapper.sync_store();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.signal_stop();
    }
}

/// The per-connection hardening knobs, copied into the accept thread.
#[derive(Clone, Copy)]
struct Limits {
    max_line_bytes: usize,
    max_connections: usize,
}

fn lock_handlers(
    handlers: &Mutex<Vec<JoinHandle<()>>>,
) -> std::sync::MutexGuard<'_, Vec<JoinHandle<()>>> {
    handlers.lock().unwrap_or_else(|e| e.into_inner())
}

fn accept_loop(
    listener: &TcpListener,
    stop: &Arc<AtomicBool>,
    scheduler: &Arc<Scheduler>,
    handlers: &Mutex<Vec<JoinHandle<()>>>,
    limits: Limits,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Reap finished handlers so the tracked set stays
                // proportional to *live* connections, not history.
                {
                    let mut tracked = lock_handlers(handlers);
                    let (done, live): (Vec<_>, Vec<_>) =
                        tracked.drain(..).partition(JoinHandle::is_finished);
                    *tracked = live;
                    drop(tracked);
                    for handle in done {
                        let _ = handle.join();
                    }
                }
                let Some(slot) = ConnectionSlot::claim(scheduler.metrics(), limits.max_connections)
                else {
                    reject_overloaded(stream);
                    continue;
                };
                let spawned = {
                    let stop = Arc::clone(stop);
                    let scheduler = Arc::clone(scheduler);
                    std::thread::Builder::new()
                        .name("hattd-conn".into())
                        .spawn(move || {
                            let _slot = slot;
                            let _ = handle_connection(stream, &scheduler, &stop, limits);
                        })
                };
                if let Ok(handle) = spawned {
                    lock_handlers(handlers).push(handle);
                }
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Back off instead of busy-spinning: persistent accept
                // errors (fd exhaustion, EMFILE) would otherwise peg a
                // core while contributing nothing.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Answers an over-limit connection with one typed `overloaded` line
/// plus `map_done`, then closes it.
fn reject_overloaded(stream: TcpStream) {
    let e = ServiceError::Overloaded;
    let item = MapItem {
        id: String::new(),
        index: None,
        payload: ItemPayload::Err(ItemError {
            code: e.code().to_string(),
            message: "connection limit reached; retry later".to_string(),
        }),
    };
    let done = MapDone {
        id: String::new(),
        items: 1,
        errors: 1,
    };
    let mut writer = BufWriter::new(stream);
    let _ = write_line(&mut writer, &item.to_line());
    let _ = write_line(&mut writer, &done.to_line());
}

/// Outcome of one bounded line read.
enum LineRead {
    /// A complete line within the size cap (terminator stripped).
    Line(String),
    /// The line exceeded the cap; its bytes were discarded up to and
    /// including the terminating newline.
    Oversize,
    /// Clean end of the stream (or shutdown observed while idle).
    Eof,
}

/// Reads one `\n`-terminated line of at most `max` bytes. Oversize
/// lines are *streamed to the bin*, never accumulated, so a hostile
/// client cannot make the server buffer an unbounded line. Read
/// timeouts (the stream carries one) are used to poll `stop` so idle
/// connections drain promptly on shutdown.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    stop: &AtomicBool,
) -> std::io::Result<LineRead> {
    let mut line = Vec::new();
    let mut oversize = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(LineRead::Eof);
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            // EOF. An unterminated tail is not a request line.
            return Ok(LineRead::Eof);
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !oversize && line.len() + pos <= max {
                    line.extend_from_slice(&available[..pos]);
                } else {
                    oversize = true;
                }
                reader.consume(pos + 1);
                if oversize {
                    return Ok(LineRead::Oversize);
                }
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            None => {
                let n = available.len();
                if !oversize {
                    if line.len() + n <= max {
                        line.extend_from_slice(available);
                    } else {
                        oversize = true;
                        line.clear();
                    }
                }
                reader.consume(n);
            }
        }
    }
}

/// Serves one connection: request lines in, streamed item lines out.
fn handle_connection(
    stream: TcpStream,
    scheduler: &Scheduler,
    stop: &AtomicBool,
    limits: Limits,
) -> std::io::Result<()> {
    // The read timeout doubles as the shutdown poll interval; the write
    // timeout bounds how long a stuck client can hold up the drain.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // One fairness bucket per connection: every request on this stream
    // shares a single round-robin turn against other connections.
    let client = scheduler.register_client();
    loop {
        let line = match read_line_bounded(&mut reader, limits.max_line_bytes, stop)? {
            LineRead::Eof => return Ok(()),
            LineRead::Oversize => {
                scheduler
                    .metrics()
                    .oversize_lines
                    .fetch_add(1, Ordering::Relaxed);
                let item = MapItem {
                    id: String::new(),
                    index: None,
                    payload: ItemPayload::Err(ItemError::invalid_request(format!(
                        "request line exceeds the {} byte limit",
                        limits.max_line_bytes
                    ))),
                };
                write_line(&mut writer, &item.to_line())?;
                let done = MapDone {
                    id: String::new(),
                    items: 1,
                    errors: 1,
                };
                write_line(&mut writer, &done.to_line())?;
                continue;
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        match RequestLine::from_line(&line) {
            Ok(RequestLine::Stats(req)) => {
                let reply = stats_reply(scheduler, &req, limits);
                write_line(&mut writer, &reply.to_line())?;
            }
            Ok(RequestLine::Map(req)) => serve_map(&mut writer, scheduler, client, &req)?,
            Ok(RequestLine::Delta(req)) => serve_remap(&mut writer, scheduler, &req)?,
            Err(e) => {
                let item = MapItem {
                    id: String::new(),
                    index: None,
                    payload: ItemPayload::Err(ItemError::invalid_request(e.to_string())),
                };
                write_line(&mut writer, &item.to_line())?;
                let done = MapDone {
                    id: String::new(),
                    items: 1,
                    errors: 1,
                };
                write_line(&mut writer, &done.to_line())?;
            }
        }
    }
}

/// Serves one map request: submit, stream items, close with `map_done`.
fn serve_map(
    writer: &mut impl Write,
    scheduler: &Scheduler,
    client: ClientId,
    req: &MapRequest,
) -> std::io::Result<()> {
    let expected = req.hamiltonians.len();
    let (items, errors) = match scheduler.submit_from(client, req) {
        Ok(rx) => {
            let mut errors = 0usize;
            let mut received = 0usize;
            let mut seen = vec![false; expected];
            // Stream items in completion order; the channel closes once
            // every job answered.
            while received < expected {
                let Ok(item) = rx.recv() else { break };
                received += 1;
                if let Some(i) = item.index {
                    if let Some(flag) = seen.get_mut(i) {
                        *flag = true;
                    }
                }
                if !item.is_ok() {
                    errors += 1;
                }
                write_line(writer, &item.to_line())?;
            }
            // The channel closing early (scheduler torn down mid-batch)
            // must not silently truncate the reply: answer every
            // missing index with a typed error so items == expected.
            for item in truncation_errors(&req.id, &seen) {
                received += 1;
                errors += 1;
                write_line(writer, &item.to_line())?;
            }
            (received, errors)
        }
        Err(e) => {
            let item = MapItem {
                id: req.id.clone(),
                index: None,
                payload: ItemPayload::Err(ItemError {
                    code: e.code().to_string(),
                    message: e.to_string(),
                }),
            };
            write_line(writer, &item.to_line())?;
            (1, 1)
        }
    };
    let done = MapDone {
        id: req.id.clone(),
        items,
        errors,
    };
    write_line(writer, &done.to_line())
}

/// One typed `internal` error item per index the scheduler never
/// answered — the fix for the silent-truncation bug where an early
/// channel close produced a short `map_done` with no error marker.
fn truncation_errors(id: &str, seen: &[bool]) -> Vec<MapItem> {
    seen.iter()
        .enumerate()
        .filter(|&(_, &answered)| !answered)
        .map(|(index, _)| MapItem {
            id: id.to_string(),
            index: Some(index),
            payload: ItemPayload::Err(ItemError {
                code: "internal".to_string(),
                message: "scheduler shut down before this item was mapped".to_string(),
            }),
        })
        .collect()
}

/// Serves one `map_delta` request: apply the structural delta to the
/// base Hamiltonian and map the result, reusing the cached ancestor
/// tree when the base structure is known (the incremental fast path of
/// [`hatt_core::MappingCache`]). A single item, so it runs on the
/// connection thread — it never queues behind batch work, and a failed
/// delta is a typed error item like any other.
fn serve_remap(
    writer: &mut impl Write,
    scheduler: &Scheduler,
    req: &MapDeltaRequest,
) -> std::io::Result<()> {
    let mapper = scheduler.mapper();
    let options = req.options.unwrap_or(*mapper.options());
    let start = Instant::now();
    let result = req
        .delta
        .apply(&req.hamiltonian)
        .map_err(HattError::from)
        .and_then(|next| {
            let mapping =
                mapper
                    .cache()
                    .try_remap_or_build(&req.hamiltonian, &req.delta, &options)?;
            Ok((mapping, next))
        });
    scheduler
        .metrics()
        .observe_latency(&options.policy.to_string(), start.elapsed());
    scheduler.metrics().requests.fetch_add(1, Ordering::Relaxed);
    let payload = match result {
        Ok((mapping, next)) => {
            let pauli_weight = mapping.map_majorana_sum(&next).weight();
            ItemPayload::Ok {
                mapping,
                pauli_weight,
            }
        }
        Err(e) => ItemPayload::Err(ItemError::from_hatt(&e)),
    };
    let errors = usize::from(matches!(payload, ItemPayload::Err(_)));
    let item = MapItem {
        id: req.id.clone(),
        index: Some(0),
        payload,
    };
    write_line(writer, &item.to_line())?;
    let done = MapDone {
        id: req.id.clone(),
        items: 1,
        errors,
    };
    write_line(writer, &done.to_line())
}

/// Builds the `stats` reply from the scheduler, mapper and counters.
fn stats_reply(scheduler: &Scheduler, req: &StatsRequest, limits: Limits) -> StatsReply {
    let metrics = scheduler.metrics();
    let cache = scheduler.mapper().cache();
    let policies = metrics
        .latency_snapshot()
        .into_iter()
        .map(|(policy, h)| {
            let buckets = h
                .counts
                .iter()
                .enumerate()
                .map(|(i, &count)| LatencyBucket {
                    le_ns: BUCKET_BOUNDS_NS.get(i).copied(),
                    count,
                })
                .collect();
            PolicyLatency {
                policy,
                count: h.count,
                total_ns: h.total_ns,
                buckets,
            }
        })
        .collect();
    StatsReply {
        id: req.id.clone(),
        queue_depth: scheduler.queue_len(),
        connections: metrics.connections_active.load(Ordering::SeqCst),
        connection_limit: limits.max_connections,
        connections_rejected: metrics.connections_rejected.load(Ordering::Relaxed),
        oversize_lines: metrics.oversize_lines.load(Ordering::Relaxed),
        requests: metrics.requests.load(Ordering::Relaxed),
        constructions: cache.constructions(),
        remaps: cache.remaps(),
        cache: TierStats {
            hits: cache.hits(),
            misses: cache.misses(),
            entries: cache.len(),
        },
        store: scheduler.mapper().store_stats(),
        policies,
    }
}

fn write_line(writer: &mut impl Write, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    // Flush per line: responses must *stream*, not arrive as one blob
    // when the batch finishes.
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_errors_cover_exactly_the_unanswered_indices() {
        let items = truncation_errors("req", &[true, false, true, false, false]);
        let indices: Vec<_> = items.iter().map(|i| i.index).collect();
        assert_eq!(indices, [Some(1), Some(3), Some(4)]);
        for item in &items {
            assert_eq!(item.id, "req");
            assert_eq!(item.error().map(|e| e.code.as_str()), Some("internal"));
        }
        assert!(truncation_errors("req", &[true, true]).is_empty());
    }
}
