//! The `hattd` JSON-lines-over-TCP server: one [`MapRequest`] per
//! line in, one [`MapItem`] line **per batch item as it completes**
//! out, closed by a [`MapDone`] line.
//!
//! The server is std-only: an accept thread hands each connection to
//! its own handler thread; all handlers share one [`Scheduler`] (and
//! through it one [`Mapper`] + structure cache). A connection can issue
//! any number of requests back to back; an unparsable line yields a
//! single `invalid_request` item plus `map_done` and the connection
//! stays usable.
//!
//! # Examples
//!
//! ```
//! use hatt_core::Mapper;
//! use hatt_fermion::MajoranaSum;
//! use hatt_service::{client, MapRequest, Server, ServerConfig};
//!
//! let server = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())?;
//! let req = MapRequest::new("r", vec![MajoranaSum::uniform_singles(2)]);
//! let reply = client::request(server.local_addr(), &req)?;
//! assert_eq!(reply.done.items, 1);
//! assert!(reply.items[0].is_ok());
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use hatt_core::Mapper;

use crate::proto::{ItemError, ItemPayload, MapDone, MapItem, MapRequest};
use crate::scheduler::{Scheduler, SchedulerConfig};

/// Server sizing (passed through to the [`Scheduler`]).
#[derive(Debug, Clone, Default)]
pub struct ServerConfig {
    /// Scheduler sizing.
    pub scheduler: SchedulerConfig,
}

/// A running `hattd` server. Dropping (or calling
/// [`Server::shutdown`]) stops accepting and tears the scheduler down;
/// in-flight requests are still answered.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    scheduler: Option<Arc<Scheduler>>,
}

impl Server {
    /// Binds and starts serving on `addr` (use port `0` for an
    /// ephemeral port; read it back with [`Server::local_addr`]).
    pub fn bind(
        addr: impl ToSocketAddrs,
        mapper: Mapper,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let scheduler = Arc::new(Scheduler::new(Arc::new(mapper), config.scheduler)?);
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let stop = Arc::clone(&stop);
            let scheduler = Arc::clone(&scheduler);
            std::thread::Builder::new()
                .name("hattd-accept".into())
                .spawn(move || accept_loop(&listener, &stop, &scheduler))?
        };
        Ok(Server {
            local_addr,
            stop,
            accept: Some(accept),
            scheduler: Some(scheduler),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Blocks the calling thread until the server shuts down — the
    /// daemon (`hattd`) foreground mode.
    pub fn join(mut self) {
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting connections and joins the accept thread.
    pub fn shutdown(self) {
        drop(self);
    }

    fn signal_stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        // Dropping the last scheduler handle joins the dispatcher.
        self.scheduler.take();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.signal_stop();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, scheduler: &Arc<Scheduler>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let scheduler = Arc::clone(scheduler);
                let _ = std::thread::Builder::new()
                    .name("hattd-conn".into())
                    .spawn(move || {
                        let _ = handle_connection(stream, &scheduler);
                    });
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Back off instead of busy-spinning: persistent accept
                // errors (fd exhaustion, EMFILE) would otherwise peg a
                // core while contributing nothing.
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

/// Serves one connection: request lines in, streamed item lines out.
fn handle_connection(stream: TcpStream, scheduler: &Scheduler) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let (items, errors, id) = match MapRequest::from_line(&line) {
            Ok(req) => {
                let expected = req.hamiltonians.len();
                match scheduler.submit(&req) {
                    Ok(rx) => {
                        let mut errors = 0usize;
                        let mut received = 0usize;
                        // Stream items in completion order; the channel
                        // closes once every job answered.
                        while received < expected {
                            let Ok(item) = rx.recv() else { break };
                            received += 1;
                            if !item.is_ok() {
                                errors += 1;
                            }
                            write_line(&mut writer, &item.to_line())?;
                        }
                        (received, errors, req.id)
                    }
                    Err(e) => {
                        let item = MapItem {
                            id: req.id.clone(),
                            index: None,
                            payload: ItemPayload::Err(ItemError {
                                code: e.code().to_string(),
                                message: e.to_string(),
                            }),
                        };
                        write_line(&mut writer, &item.to_line())?;
                        (1, 1, req.id)
                    }
                }
            }
            Err(e) => {
                let item = MapItem {
                    id: String::new(),
                    index: None,
                    payload: ItemPayload::Err(ItemError::invalid_request(e.to_string())),
                };
                write_line(&mut writer, &item.to_line())?;
                (1, 1, String::new())
            }
        };
        let done = MapDone { id, items, errors };
        write_line(&mut writer, &done.to_line())?;
    }
    Ok(())
}

fn write_line(writer: &mut impl Write, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    // Flush per line: responses must *stream*, not arrive as one blob
    // when the batch finishes.
    writer.flush()
}
