//! # hatt-service
//!
//! The production service surface of the HATT mapping engine: a typed
//! request/response protocol over the `hatt-wire/1` JSON format, a
//! bounded-queue [`Scheduler`] fanning work onto scoped worker threads
//! through the shared [`Mapper`](hatt_core::Mapper) cache, and a
//! std-only JSON-lines-over-TCP daemon ([`Server`], shipped as the
//! `hattd` binary) with a matching [`client`] helper.
//!
//! ```text
//! client ──(map_request line)──▶ hattd event loop ──▶ Scheduler
//!            non-blocking socket,      (bounded, fair queue)
//!            readiness-multiplexed          │ par_map over workers
//!                                           ▼
//!                                  Mapper + MappingCache
//!                                           │
//! client ◀─(map_item line per item, streamed)
//!        ◀─(map_done line)
//! ```
//!
//! Connections are owned by a small set of readiness-based event-loop
//! workers (`vendor/poll` over non-blocking sockets) — no per-connection
//! thread, no blocking write to a slow client. [`Server::bind_router`]
//! swaps the scheduler for a consistent-hash shard router that fans
//! request items out to the shard daemons owning their structure keys.
//!
//! Responses stream **one line per batch item as it completes**, so a
//! large batch's fast items arrive while slow ones still construct.
//! Every failure mode of a malformed or oversized request is a typed
//! error line — no panic in this crate is reachable from wire input.
//!
//! # Examples
//!
//! ```
//! use hatt_core::Mapper;
//! use hatt_fermion::MajoranaSum;
//! use hatt_service::{client, MapRequest, Server, ServerConfig};
//!
//! // Boot a daemon on an ephemeral port.
//! let server = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())?;
//!
//! // Map two Hamiltonians over the socket.
//! let req = MapRequest::new(
//!     "demo",
//!     vec![MajoranaSum::uniform_singles(2), MajoranaSum::uniform_singles(3)],
//! );
//! let items = client::request(server.local_addr(), &req)?.into_ordered();
//! assert!(items.iter().all(|i| i.is_ok()));
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
mod error;
mod metrics;
mod proto;
mod reactor;
mod router;
mod scheduler;
mod server;

pub use client::MapReply;
pub use error::ServiceError;
pub use proto::{
    ItemError, ItemPayload, LatencyBucket, MapDeltaRequest, MapDone, MapItem, MapRequest,
    PolicyLatency, RequestLine, ResponseLine, ShardStats, StatsReply, StatsRequest, TierStats,
    TraceDumpReply, TraceDumpRequest, TraceSpan, TraceSummary, TraceTree, VerbCounters,
};
pub use scheduler::{ClientId, Scheduler, SchedulerConfig};
pub use server::{Server, ServerConfig};
