//! The `hatt-wire/1` request/response protocol spoken over the `hattd`
//! socket (JSON lines: one request per line in, one response line per
//! batch item out, closed by a `map_done` line).
//!
//! ## Request line
//!
//! ```json
//! {"format":"hatt-wire/1","kind":"map_request","payload":{
//!   "id": "req-1",
//!   "options": {"variant":"cached","policy":"restarts","naive_weight":false},
//!   "n_modes": 8,
//!   "hamiltonians": [ {"n_modes":8,"terms":[...]}, ... ]
//! }}
//! ```
//!
//! `options` and `n_modes` are optional: missing options fall back to
//! the server mapper's configuration; a present `n_modes` pins every
//! item to that size (mismatching items fail individually with
//! `mode_mismatch`, the rest of the batch still maps).
//!
//! ## Response lines
//!
//! One `map_item` line per Hamiltonian **as it completes** (so a slow
//! item does not block a fast one), then one `map_done` line:
//!
//! ```json
//! {"format":"hatt-wire/1","kind":"map_item","payload":{
//!   "id":"req-1","index":0,"ok":true,"n_modes":8,"pauli_weight":123,
//!   "mapping":{ ...hatt_mapping payload... }}}
//! {"format":"hatt-wire/1","kind":"map_item","payload":{
//!   "id":"req-1","index":1,"ok":false,
//!   "error":{"code":"empty_hamiltonian","message":"..."}}}
//! {"format":"hatt-wire/1","kind":"map_done","payload":{"id":"req-1","items":2,"errors":1}}
//! ```
//!
//! A line that fails to parse as a request at all produces a single
//! `map_item` with `index: null` and code `invalid_request`, then
//! `map_done` — the connection stays usable.

use hatt_core::wire::{decode_hatt_mapping_payload, hatt_mapping_payload};
use hatt_core::StoreTierStats;
use hatt_core::{HattError, HattMapping, HattOptions, Variant};
use hatt_fermion::wire::{
    decode_hamiltonian_delta_payload, decode_majorana_sum_payload, hamiltonian_delta_payload,
    majorana_sum_payload,
};
use hatt_fermion::{HamiltonianDelta, MajoranaSum};
use hatt_mappings::{FermionMapping, SelectionPolicy};
use hatt_pauli::json::Json;
use hatt_pauli::wire::{
    as_arr, as_bool, as_obj, as_str, as_u64, as_usize, envelope, field, get, open_envelope,
    WireError,
};
use hatt_trace::{SpanRecord, TraceCtx};

const KIND_REQUEST: &str = "map_request";
const KIND_DELTA_REQUEST: &str = "map_delta";
const KIND_ITEM: &str = "map_item";
const KIND_DONE: &str = "map_done";
const KIND_STATS_REQUEST: &str = "stats_request";
const KIND_STATS: &str = "stats";
const KIND_TRACE_DUMP_REQUEST: &str = "trace_dump_request";
const KIND_TRACE_DUMP: &str = "trace_dump";

/// Encodes a propagated trace context as the optional `trace_ctx`
/// request field. IDs are 63-bit by construction ([`hatt_trace`] mints
/// them that way); out-of-range values are masked rather than panicking.
fn encode_trace_ctx(ctx: TraceCtx) -> Json {
    let mask = i64::MAX as u64;
    Json::Obj(vec![
        ("trace_id".into(), Json::int(ctx.trace_id & mask)),
        ("parent_span".into(), Json::int(ctx.parent_span & mask)),
    ])
}

fn decode_trace_ctx(v: &Json) -> Result<TraceCtx, WireError> {
    const CTX: &str = "trace_ctx";
    let pairs = as_obj(v, CTX)?;
    Ok(TraceCtx {
        trace_id: as_u64(field(pairs, "trace_id", CTX)?, CTX)?,
        parent_span: match get(pairs, "parent_span") {
            None | Some(Json::Null) => 0,
            Some(v) => as_u64(v, CTX)?,
        },
    })
}

/// A batch mapping request: one or more Majorana Hamiltonians to map
/// under one option set.
///
/// # Examples
///
/// ```
/// use hatt_fermion::MajoranaSum;
/// use hatt_service::MapRequest;
///
/// let req = MapRequest::new("sweep-7", vec![MajoranaSum::uniform_singles(3)]);
/// let line = req.to_line();
/// let back = MapRequest::from_line(&line)?;
/// assert_eq!(back.id, "sweep-7");
/// assert_eq!(back.hamiltonians.len(), 1);
/// # Ok::<(), hatt_pauli::wire::WireError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MapRequest {
    /// Caller-chosen identifier, echoed on every response line.
    pub id: String,
    /// Construction options (`None` = use the server mapper's
    /// configuration). The worker-thread cap is *not* part of the wire
    /// protocol — scheduling is the server's concern.
    pub options: Option<HattOptions>,
    /// Optional mode-count pin: items of any other size fail
    /// individually with `mode_mismatch`.
    pub n_modes: Option<usize>,
    /// Optional propagated trace context (`trace_ctx` on the wire): a
    /// traced caller's trace ID plus its active span, so the server's
    /// spans join the caller's tree. Absent means "not traced by the
    /// caller" — a `--trace` server then roots a fresh trace itself.
    pub trace: Option<TraceCtx>,
    /// The Hamiltonians to map, in order.
    pub hamiltonians: Vec<MajoranaSum>,
}

impl MapRequest {
    /// A request with default (server-side) options and no mode pin.
    pub fn new(id: impl Into<String>, hamiltonians: Vec<MajoranaSum>) -> Self {
        MapRequest {
            id: id.into(),
            options: None,
            n_modes: None,
            trace: None,
            hamiltonians,
        }
    }

    /// Encodes the request envelope.
    pub fn encode(&self) -> Json {
        let mut payload = vec![("id".into(), Json::str(&self.id))];
        if let Some(options) = &self.options {
            payload.push(("options".into(), encode_options(options)));
        }
        if let Some(n) = self.n_modes {
            payload.push(("n_modes".into(), Json::int(n as u64)));
        }
        if let Some(ctx) = self.trace {
            payload.push(("trace_ctx".into(), encode_trace_ctx(ctx)));
        }
        payload.push((
            "hamiltonians".into(),
            Json::Arr(self.hamiltonians.iter().map(majorana_sum_payload).collect()),
        ));
        envelope(KIND_REQUEST, Json::Obj(payload))
    }

    /// Decodes a request envelope.
    pub fn decode(v: &Json) -> Result<Self, WireError> {
        const CTX: &str = "map_request payload";
        let pairs = as_obj(open_envelope(v, KIND_REQUEST)?, CTX)?;
        let id = as_str(field(pairs, "id", CTX)?, CTX)?.to_string();
        let options = match get(pairs, "options") {
            None | Some(Json::Null) => None,
            Some(v) => Some(decode_options(v)?),
        };
        let n_modes = match get(pairs, "n_modes") {
            None | Some(Json::Null) => None,
            Some(v) => Some(as_usize(v, CTX)?),
        };
        // Additive (tracing): absent on lines from untraced clients.
        let trace = match get(pairs, "trace_ctx") {
            None | Some(Json::Null) => None,
            Some(v) => Some(decode_trace_ctx(v)?),
        };
        let hamiltonians = as_arr(field(pairs, "hamiltonians", CTX)?, CTX)?
            .iter()
            .map(decode_majorana_sum_payload)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MapRequest {
            id,
            options,
            n_modes,
            trace,
            hamiltonians,
        })
    }

    /// Renders the request as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.encode().render()
    }

    /// Parses a request line.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        Self::decode(&Json::parse(line)?)
    }
}

/// An incremental remapping request (`kind: "map_delta"`): a base
/// Hamiltonian the daemon has (ideally) already mapped, plus a
/// structural [`HamiltonianDelta`] to apply to it. Answered with one
/// `map_item` for the post-delta Hamiltonian and a `map_done` line —
/// the same response shape as a one-item [`MapRequest`], so existing
/// response parsers work unchanged.
///
/// # Examples
///
/// ```
/// use hatt_fermion::{HamiltonianDelta, MajoranaSum};
/// use hatt_pauli::Complex64;
/// use hatt_service::MapDeltaRequest;
///
/// let base = MajoranaSum::uniform_singles(3);
/// let mut delta = HamiltonianDelta::new(3);
/// delta.push_add(Complex64::real(0.5), &[0, 1, 2, 3]).unwrap();
/// let req = MapDeltaRequest::new("step-42", base, delta);
/// let back = MapDeltaRequest::from_line(&req.to_line())?;
/// assert_eq!(back.id, "step-42");
/// assert_eq!(back.delta.len(), 1);
/// # Ok::<(), hatt_pauli::wire::WireError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MapDeltaRequest {
    /// Caller-chosen identifier, echoed on every response line.
    pub id: String,
    /// Construction options (`None` = use the server mapper's
    /// configuration), exactly as on [`MapRequest`].
    pub options: Option<HattOptions>,
    /// Optional propagated trace context, exactly as on [`MapRequest`].
    pub trace: Option<TraceCtx>,
    /// The base Hamiltonian the delta applies to.
    pub hamiltonian: MajoranaSum,
    /// The structural edit to apply before mapping.
    pub delta: HamiltonianDelta,
}

impl MapDeltaRequest {
    /// A remap request with default (server-side) options.
    pub fn new(id: impl Into<String>, hamiltonian: MajoranaSum, delta: HamiltonianDelta) -> Self {
        MapDeltaRequest {
            id: id.into(),
            options: None,
            trace: None,
            hamiltonian,
            delta,
        }
    }

    /// Encodes the request envelope.
    pub fn encode(&self) -> Json {
        let mut payload = vec![("id".into(), Json::str(&self.id))];
        if let Some(options) = &self.options {
            payload.push(("options".into(), encode_options(options)));
        }
        if let Some(ctx) = self.trace {
            payload.push(("trace_ctx".into(), encode_trace_ctx(ctx)));
        }
        payload.push((
            "hamiltonian".into(),
            majorana_sum_payload(&self.hamiltonian),
        ));
        payload.push(("delta".into(), hamiltonian_delta_payload(&self.delta)));
        envelope(KIND_DELTA_REQUEST, Json::Obj(payload))
    }

    /// Decodes a remap-request envelope.
    pub fn decode(v: &Json) -> Result<Self, WireError> {
        const CTX: &str = "map_delta payload";
        let pairs = as_obj(open_envelope(v, KIND_DELTA_REQUEST)?, CTX)?;
        let id = as_str(field(pairs, "id", CTX)?, CTX)?.to_string();
        let options = match get(pairs, "options") {
            None | Some(Json::Null) => None,
            Some(v) => Some(decode_options(v)?),
        };
        let trace = match get(pairs, "trace_ctx") {
            None | Some(Json::Null) => None,
            Some(v) => Some(decode_trace_ctx(v)?),
        };
        let hamiltonian = decode_majorana_sum_payload(field(pairs, "hamiltonian", CTX)?)?;
        let delta = decode_hamiltonian_delta_payload(field(pairs, "delta", CTX)?)?;
        Ok(MapDeltaRequest {
            id,
            options,
            trace,
            hamiltonian,
            delta,
        })
    }

    /// Renders the request as one JSON line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.encode().render()
    }

    /// Parses a remap-request line.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        Self::decode(&Json::parse(line)?)
    }
}

fn encode_options(options: &HattOptions) -> Json {
    Json::Obj(vec![
        ("variant".into(), Json::str(options.variant.key())),
        ("policy".into(), Json::str(options.policy.to_string())),
        ("naive_weight".into(), Json::Bool(options.naive_weight)),
    ])
}

fn decode_options(v: &Json) -> Result<HattOptions, WireError> {
    const CTX: &str = "map_request options";
    let pairs = as_obj(v, CTX)?;
    let variant = match get(pairs, "variant") {
        None => Variant::default(),
        Some(v) => {
            let key = as_str(v, CTX)?;
            Variant::from_key(key)
                .ok_or_else(|| WireError::schema(CTX, format!("unknown variant {key:?}")))?
        }
    };
    let policy = match get(pairs, "policy") {
        None => SelectionPolicy::default(),
        Some(v) => as_str(v, CTX)?
            .parse::<SelectionPolicy>()
            .map_err(|e| WireError::schema(CTX, format!("{e}")))?,
    };
    let naive_weight = match get(pairs, "naive_weight") {
        None => false,
        Some(v) => as_bool(v, CTX)?,
    };
    Ok(HattOptions {
        variant,
        policy,
        naive_weight,
        threads: None,
    })
}

/// The error object of a failed item: a stable machine-readable code
/// (see [`HattError::code`]) plus the human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ItemError {
    /// Stable error code (`empty_hamiltonian`, `mode_mismatch`,
    /// `invalid_policy`, `wire`, `invalid_request`, …).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl ItemError {
    /// Builds the wire error object for a mapping failure.
    pub fn from_hatt(e: &HattError) -> Self {
        ItemError {
            code: e.code().to_string(),
            message: e.to_string(),
        }
    }

    /// The request-level error for an unparsable request line.
    pub fn invalid_request(message: impl Into<String>) -> Self {
        ItemError {
            code: "invalid_request".into(),
            message: message.into(),
        }
    }
}

/// One per-item response: either the finished mapping or a typed error.
#[derive(Debug, Clone)]
pub enum ItemPayload {
    /// The item mapped successfully.
    Ok {
        /// The constructed mapping (tree + options + stats).
        mapping: HattMapping,
        /// Pauli weight of the mapped Hamiltonian (after term merging).
        pauli_weight: usize,
    },
    /// The item failed.
    Err(ItemError),
}

/// One streamed response line (`kind: "map_item"`).
#[derive(Debug, Clone)]
pub struct MapItem {
    /// Echo of the request id.
    pub id: String,
    /// Position of this item in the request's Hamiltonian list
    /// (`None` for request-level failures).
    pub index: Option<usize>,
    /// The result.
    pub payload: ItemPayload,
}

impl MapItem {
    /// Whether the item succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self.payload, ItemPayload::Ok { .. })
    }

    /// The mapping of a successful item.
    pub fn mapping(&self) -> Option<&HattMapping> {
        match &self.payload {
            ItemPayload::Ok { mapping, .. } => Some(mapping),
            ItemPayload::Err(_) => None,
        }
    }

    /// The error of a failed item.
    pub fn error(&self) -> Option<&ItemError> {
        match &self.payload {
            ItemPayload::Ok { .. } => None,
            ItemPayload::Err(e) => Some(e),
        }
    }

    /// Encodes the item envelope.
    pub fn encode(&self) -> Json {
        let mut payload = vec![
            ("id".into(), Json::str(&self.id)),
            (
                "index".into(),
                self.index.map_or(Json::Null, |i| Json::int(i as u64)),
            ),
            ("ok".into(), Json::Bool(self.is_ok())),
        ];
        match &self.payload {
            ItemPayload::Ok {
                mapping,
                pauli_weight,
            } => {
                payload.push(("n_modes".into(), Json::int(mapping.n_modes() as u64)));
                payload.push(("pauli_weight".into(), Json::int(*pauli_weight as u64)));
                payload.push(("mapping".into(), hatt_mapping_payload(mapping)));
            }
            ItemPayload::Err(e) => {
                payload.push((
                    "error".into(),
                    Json::Obj(vec![
                        ("code".into(), Json::str(&e.code)),
                        ("message".into(), Json::str(&e.message)),
                    ]),
                ));
            }
        }
        envelope(KIND_ITEM, Json::Obj(payload))
    }

    /// Decodes an item envelope.
    pub fn decode(v: &Json) -> Result<Self, WireError> {
        const CTX: &str = "map_item payload";
        let pairs = as_obj(open_envelope(v, KIND_ITEM)?, CTX)?;
        let id = as_str(field(pairs, "id", CTX)?, CTX)?.to_string();
        let index = match field(pairs, "index", CTX)? {
            Json::Null => None,
            v => Some(as_usize(v, CTX)?),
        };
        let ok = as_bool(field(pairs, "ok", CTX)?, CTX)?;
        let payload = if ok {
            let mapping = decode_hatt_mapping_payload(field(pairs, "mapping", CTX)?)?;
            let pauli_weight = as_usize(field(pairs, "pauli_weight", CTX)?, CTX)?;
            ItemPayload::Ok {
                mapping,
                pauli_weight,
            }
        } else {
            const ECTX: &str = "map_item error";
            let ep = as_obj(field(pairs, "error", CTX)?, ECTX)?;
            ItemPayload::Err(ItemError {
                code: as_str(field(ep, "code", ECTX)?, ECTX)?.to_string(),
                message: as_str(field(ep, "message", ECTX)?, ECTX)?.to_string(),
            })
        };
        Ok(MapItem { id, index, payload })
    }

    /// Renders the item as one JSON line.
    pub fn to_line(&self) -> String {
        self.encode().render()
    }
}

/// The terminal line of a response stream (`kind: "map_done"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapDone {
    /// Echo of the request id.
    pub id: String,
    /// Number of `map_item` lines that preceded this one.
    pub items: usize,
    /// How many of them carried errors.
    pub errors: usize,
}

impl MapDone {
    /// Encodes the done envelope.
    pub fn encode(&self) -> Json {
        envelope(
            KIND_DONE,
            Json::Obj(vec![
                ("id".into(), Json::str(&self.id)),
                ("items".into(), Json::int(self.items as u64)),
                ("errors".into(), Json::int(self.errors as u64)),
            ]),
        )
    }

    /// Decodes a done envelope.
    pub fn decode(v: &Json) -> Result<Self, WireError> {
        const CTX: &str = "map_done payload";
        let pairs = as_obj(open_envelope(v, KIND_DONE)?, CTX)?;
        Ok(MapDone {
            id: as_str(field(pairs, "id", CTX)?, CTX)?.to_string(),
            items: as_usize(field(pairs, "items", CTX)?, CTX)?,
            errors: as_usize(field(pairs, "errors", CTX)?, CTX)?,
        })
    }

    /// Renders the done marker as one JSON line.
    pub fn to_line(&self) -> String {
        self.encode().render()
    }
}

/// The observability verb (`kind: "stats_request"`): ask the daemon
/// for its counters. Answered with one [`StatsReply`] line.
///
/// # Examples
///
/// ```
/// use hatt_service::StatsRequest;
///
/// let req = StatsRequest::new("probe-1");
/// let back = StatsRequest::from_line(&req.to_line())?;
/// assert_eq!(back.id, "probe-1");
/// # Ok::<(), hatt_pauli::wire::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsRequest {
    /// Caller-chosen identifier, echoed on the reply line.
    pub id: String,
}

impl StatsRequest {
    /// A stats request with the given id.
    pub fn new(id: impl Into<String>) -> Self {
        StatsRequest { id: id.into() }
    }

    /// Encodes the request envelope.
    pub fn encode(&self) -> Json {
        envelope(
            KIND_STATS_REQUEST,
            Json::Obj(vec![("id".into(), Json::str(&self.id))]),
        )
    }

    /// Decodes a stats-request envelope.
    pub fn decode(v: &Json) -> Result<Self, WireError> {
        const CTX: &str = "stats_request payload";
        let pairs = as_obj(open_envelope(v, KIND_STATS_REQUEST)?, CTX)?;
        Ok(StatsRequest {
            id: as_str(field(pairs, "id", CTX)?, CTX)?.to_string(),
        })
    }

    /// Renders the request as one JSON line.
    pub fn to_line(&self) -> String {
        self.encode().render()
    }

    /// Parses a stats-request line.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        Self::decode(&Json::parse(line)?)
    }
}

/// Hit/miss counters of one cache tier.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Probes answered by this tier.
    pub hits: u64,
    /// Probes this tier could not answer.
    pub misses: u64,
    /// Entries currently held.
    pub entries: usize,
}

/// One histogram bucket of a latency distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBucket {
    /// Inclusive upper bound in nanoseconds; `None` is the overflow
    /// bucket.
    pub le_ns: Option<u64>,
    /// Observations that landed in this bucket.
    pub count: u64,
}

/// Per-policy job latency distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyLatency {
    /// The selection policy label (`greedy`, `restarts`, `beam:8`, …).
    pub policy: String,
    /// Total jobs observed under this policy.
    pub count: u64,
    /// Sum of observed latencies in nanoseconds.
    pub total_ns: u64,
    /// The bucketed distribution, ascending bounds, overflow last.
    pub buckets: Vec<LatencyBucket>,
}

/// Health and traffic counters of one routed shard. Only populated by
/// `hattd --route`; a single daemon reports an empty shard list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard's address as configured on the router command line.
    pub addr: String,
    /// False while the shard's last forward (including its reconnect
    /// retry) failed; true again after the next success.
    pub healthy: bool,
    /// Jobs accepted for this shard, not yet forwarded.
    pub queue_depth: usize,
    /// Items relayed back from this shard since boot.
    pub forwarded: u64,
    /// Forward attempts answered with typed errors instead (shard
    /// unreachable or mid-response failure after retry).
    pub errors: u64,
    /// Items shed with `overloaded` because the shard queue was full.
    pub shed: u64,
}

/// Requests served since boot, by verb. All counters are additive wire
/// fields: lines from older daemons decode as zeroes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerbCounters {
    /// `map_request` lines accepted (parse failures excluded).
    pub map: u64,
    /// `map_delta` lines accepted.
    pub map_delta: u64,
    /// `stats_request` lines answered.
    pub stats: u64,
    /// `trace_dump_request` lines answered.
    pub trace_dump: u64,
}

/// Summary of the trace collector, embedded in [`StatsReply`] when the
/// daemon runs with `--trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Ring-buffer capacity (spans retained).
    pub capacity: usize,
    /// Spans recorded since boot (including later-evicted ones).
    pub recorded: u64,
    /// Spans evicted because the ring was full.
    pub dropped: u64,
}

/// The daemon's observability snapshot (`kind: "stats"`), answering a
/// [`StatsRequest`]: queue depth, connection counters, per-tier cache
/// hit/miss, persistent-store health and per-policy latency histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    /// Echo of the request id.
    pub id: String,
    /// Milliseconds since the daemon booted.
    pub uptime_ms: u64,
    /// Requests served since boot, by verb.
    pub verbs: VerbCounters,
    /// Trace-collector summary (`None` when tracing is off).
    pub trace: Option<TraceSummary>,
    /// Jobs queued in the scheduler, not yet dispatched.
    pub queue_depth: usize,
    /// Connections currently being served.
    pub connections: usize,
    /// The configured connection cap.
    pub connection_limit: usize,
    /// Connections turned away at the cap since boot.
    pub connections_rejected: u64,
    /// Request lines discarded for exceeding the line-length cap.
    pub oversize_lines: u64,
    /// Map requests accepted into the scheduler since boot.
    pub requests: u64,
    /// Real constructions run (both cache tiers missed).
    pub constructions: u64,
    /// Incremental remaps served: `map_delta` requests whose base
    /// structure was found in a cache tier, so only the touched
    /// frontier was re-scored instead of a cold construction.
    pub remaps: u64,
    /// Queued items skipped because their connection hung up before
    /// dispatch — work the disconnect cancellation saved.
    pub cancelled_items: u64,
    /// Event-loop poll returns across every reactor worker since boot.
    /// An idle server should barely move this counter.
    pub event_loop_wakeups: u64,
    /// The in-memory structure cache tier.
    pub cache: TierStats,
    /// The persistent store tier (`None` when running memory-only).
    pub store: Option<StoreTierStats>,
    /// Per-policy latency histograms, deterministically ordered.
    pub policies: Vec<PolicyLatency>,
    /// Per-shard router health (`hattd --route` only; empty otherwise).
    pub shards: Vec<ShardStats>,
}

impl StatsReply {
    /// Encodes the stats envelope.
    pub fn encode(&self) -> Json {
        let cache = Json::Obj(vec![
            ("hits".into(), Json::int(self.cache.hits)),
            ("misses".into(), Json::int(self.cache.misses)),
            ("entries".into(), Json::int(self.cache.entries as u64)),
        ]);
        let store = match &self.store {
            None => Json::Null,
            Some(s) => Json::Obj(vec![
                ("hits".into(), Json::int(s.hits)),
                ("misses".into(), Json::int(s.misses)),
                ("writes".into(), Json::int(s.writes)),
                ("write_errors".into(), Json::int(s.write_errors)),
                ("entries".into(), Json::int(s.entries as u64)),
                ("file_bytes".into(), Json::int(s.file_bytes)),
            ]),
        };
        let policies = self
            .policies
            .iter()
            .map(|p| {
                let buckets = p
                    .buckets
                    .iter()
                    .map(|b| {
                        Json::Obj(vec![
                            ("le_ns".into(), b.le_ns.map_or(Json::Null, Json::int)),
                            ("count".into(), Json::int(b.count)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("policy".into(), Json::str(&p.policy)),
                    ("count".into(), Json::int(p.count)),
                    ("total_ns".into(), Json::int(p.total_ns)),
                    ("buckets".into(), Json::Arr(buckets)),
                ])
            })
            .collect();
        envelope(
            KIND_STATS,
            Json::Obj(vec![
                ("id".into(), Json::str(&self.id)),
                ("uptime_ms".into(), Json::int(self.uptime_ms)),
                (
                    "verbs".into(),
                    Json::Obj(vec![
                        // Counter keys are the verbs' wire kinds (the
                        // consts, so the registry sees one literal each).
                        ("map".into(), Json::int(self.verbs.map)),
                        (KIND_DELTA_REQUEST.into(), Json::int(self.verbs.map_delta)),
                        (KIND_STATS.into(), Json::int(self.verbs.stats)),
                        (KIND_TRACE_DUMP.into(), Json::int(self.verbs.trace_dump)),
                    ]),
                ),
                (
                    "trace".into(),
                    match &self.trace {
                        None => Json::Null,
                        Some(t) => Json::Obj(vec![
                            ("capacity".into(), Json::int(t.capacity as u64)),
                            ("recorded".into(), Json::int(t.recorded)),
                            ("dropped".into(), Json::int(t.dropped)),
                        ]),
                    },
                ),
                ("queue_depth".into(), Json::int(self.queue_depth as u64)),
                ("connections".into(), Json::int(self.connections as u64)),
                (
                    "connection_limit".into(),
                    Json::int(self.connection_limit as u64),
                ),
                (
                    "connections_rejected".into(),
                    Json::int(self.connections_rejected),
                ),
                ("oversize_lines".into(), Json::int(self.oversize_lines)),
                ("requests".into(), Json::int(self.requests)),
                ("constructions".into(), Json::int(self.constructions)),
                ("remaps".into(), Json::int(self.remaps)),
                ("cancelled_items".into(), Json::int(self.cancelled_items)),
                (
                    "event_loop_wakeups".into(),
                    Json::int(self.event_loop_wakeups),
                ),
                ("cache".into(), cache),
                ("store".into(), store),
                ("policies".into(), Json::Arr(policies)),
                (
                    "shards".into(),
                    Json::Arr(
                        self.shards
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("addr".into(), Json::str(&s.addr)),
                                    ("healthy".into(), Json::Bool(s.healthy)),
                                    ("queue_depth".into(), Json::int(s.queue_depth as u64)),
                                    ("forwarded".into(), Json::int(s.forwarded)),
                                    ("errors".into(), Json::int(s.errors)),
                                    ("shed".into(), Json::int(s.shed)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        )
    }

    /// Decodes a stats envelope.
    pub fn decode(v: &Json) -> Result<Self, WireError> {
        const CTX: &str = "stats payload";
        let pairs = as_obj(open_envelope(v, KIND_STATS)?, CTX)?;
        const CCTX: &str = "stats cache";
        let cp = as_obj(field(pairs, "cache", CTX)?, CCTX)?;
        let cache = TierStats {
            hits: as_u64(field(cp, "hits", CCTX)?, CCTX)?,
            misses: as_u64(field(cp, "misses", CCTX)?, CCTX)?,
            entries: as_usize(field(cp, "entries", CCTX)?, CCTX)?,
        };
        const SCTX: &str = "stats store";
        let store = match field(pairs, "store", CTX)? {
            Json::Null => None,
            v => {
                let sp = as_obj(v, SCTX)?;
                Some(StoreTierStats {
                    hits: as_u64(field(sp, "hits", SCTX)?, SCTX)?,
                    misses: as_u64(field(sp, "misses", SCTX)?, SCTX)?,
                    writes: as_u64(field(sp, "writes", SCTX)?, SCTX)?,
                    write_errors: as_u64(field(sp, "write_errors", SCTX)?, SCTX)?,
                    entries: as_usize(field(sp, "entries", SCTX)?, SCTX)?,
                    file_bytes: as_u64(field(sp, "file_bytes", SCTX)?, SCTX)?,
                })
            }
        };
        const PCTX: &str = "stats policy";
        let mut policies = Vec::new();
        for p in as_arr(field(pairs, "policies", CTX)?, CTX)? {
            let pp = as_obj(p, PCTX)?;
            let mut buckets = Vec::new();
            for b in as_arr(field(pp, "buckets", PCTX)?, PCTX)? {
                let bp = as_obj(b, PCTX)?;
                buckets.push(LatencyBucket {
                    le_ns: match field(bp, "le_ns", PCTX)? {
                        Json::Null => None,
                        v => Some(as_u64(v, PCTX)?),
                    },
                    count: as_u64(field(bp, "count", PCTX)?, PCTX)?,
                });
            }
            policies.push(PolicyLatency {
                policy: as_str(field(pp, "policy", PCTX)?, PCTX)?.to_string(),
                count: as_u64(field(pp, "count", PCTX)?, PCTX)?,
                total_ns: as_u64(field(pp, "total_ns", PCTX)?, PCTX)?,
                buckets,
            });
        }
        Ok(StatsReply {
            id: as_str(field(pairs, "id", CTX)?, CTX)?.to_string(),
            // Additive (tracing PR): absent on lines from older daemons.
            uptime_ms: match get(pairs, "uptime_ms") {
                None | Some(Json::Null) => 0,
                Some(v) => as_u64(v, CTX)?,
            },
            verbs: match get(pairs, "verbs") {
                None | Some(Json::Null) => VerbCounters::default(),
                Some(v) => {
                    const VCTX: &str = "stats verbs";
                    let vp = as_obj(v, VCTX)?;
                    let count = |key: &str| -> Result<u64, WireError> {
                        match get(vp, key) {
                            None | Some(Json::Null) => Ok(0),
                            Some(v) => as_u64(v, VCTX),
                        }
                    };
                    VerbCounters {
                        map: count("map")?,
                        map_delta: count(KIND_DELTA_REQUEST)?,
                        stats: count(KIND_STATS)?,
                        trace_dump: count(KIND_TRACE_DUMP)?,
                    }
                }
            },
            trace: match get(pairs, "trace") {
                None | Some(Json::Null) => None,
                Some(v) => {
                    const TCTX: &str = "stats trace";
                    let tp = as_obj(v, TCTX)?;
                    Some(TraceSummary {
                        capacity: as_usize(field(tp, "capacity", TCTX)?, TCTX)?,
                        recorded: as_u64(field(tp, "recorded", TCTX)?, TCTX)?,
                        dropped: as_u64(field(tp, "dropped", TCTX)?, TCTX)?,
                    })
                }
            },
            queue_depth: as_usize(field(pairs, "queue_depth", CTX)?, CTX)?,
            connections: as_usize(field(pairs, "connections", CTX)?, CTX)?,
            connection_limit: as_usize(field(pairs, "connection_limit", CTX)?, CTX)?,
            connections_rejected: as_u64(field(pairs, "connections_rejected", CTX)?, CTX)?,
            oversize_lines: as_u64(field(pairs, "oversize_lines", CTX)?, CTX)?,
            requests: as_u64(field(pairs, "requests", CTX)?, CTX)?,
            constructions: as_u64(field(pairs, "constructions", CTX)?, CTX)?,
            // Absent on lines from pre-remap daemons; default to zero so
            // newer probes can read older servers.
            remaps: match get(pairs, "remaps") {
                None | Some(Json::Null) => 0,
                Some(v) => as_u64(v, CTX)?,
            },
            // Likewise additive (event-loop rework): tolerate absence.
            cancelled_items: match get(pairs, "cancelled_items") {
                None | Some(Json::Null) => 0,
                Some(v) => as_u64(v, CTX)?,
            },
            event_loop_wakeups: match get(pairs, "event_loop_wakeups") {
                None | Some(Json::Null) => 0,
                Some(v) => as_u64(v, CTX)?,
            },
            cache,
            store,
            policies,
            // Additive (shard router): absent means "not a router".
            shards: match get(pairs, "shards") {
                None | Some(Json::Null) => Vec::new(),
                Some(v) => {
                    const SHCTX: &str = "stats shard";
                    let mut shards = Vec::new();
                    for s in as_arr(v, CTX)? {
                        let sp = as_obj(s, SHCTX)?;
                        shards.push(ShardStats {
                            addr: as_str(field(sp, "addr", SHCTX)?, SHCTX)?.to_string(),
                            healthy: as_bool(field(sp, "healthy", SHCTX)?, SHCTX)?,
                            queue_depth: as_usize(field(sp, "queue_depth", SHCTX)?, SHCTX)?,
                            forwarded: as_u64(field(sp, "forwarded", SHCTX)?, SHCTX)?,
                            errors: as_u64(field(sp, "errors", SHCTX)?, SHCTX)?,
                            shed: as_u64(field(sp, "shed", SHCTX)?, SHCTX)?,
                        });
                    }
                    shards
                }
            },
        })
    }

    /// Renders the stats reply as one JSON line.
    pub fn to_line(&self) -> String {
        self.encode().render()
    }

    /// Parses a stats line.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        Self::decode(&Json::parse(line)?)
    }
}

/// The trace verb (`kind: "trace_dump_request"`): ask a `--trace`
/// daemon for its recently retained span trees. Answered with one
/// [`TraceDumpReply`] line.
///
/// # Examples
///
/// ```
/// use hatt_service::TraceDumpRequest;
///
/// let req = TraceDumpRequest::new("dump-1").with_max_traces(8);
/// let back = TraceDumpRequest::from_line(&req.to_line())?;
/// assert_eq!(back.id, "dump-1");
/// assert_eq!(back.max_traces, Some(8));
/// # Ok::<(), hatt_pauli::wire::WireError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDumpRequest {
    /// Caller-chosen identifier, echoed on the reply line.
    pub id: String,
    /// Most-recent trace cap (`None` = every retained trace).
    pub max_traces: Option<usize>,
}

impl TraceDumpRequest {
    /// A dump request for every retained trace.
    pub fn new(id: impl Into<String>) -> Self {
        TraceDumpRequest {
            id: id.into(),
            max_traces: None,
        }
    }

    /// Caps the reply to the `max` most recent traces.
    pub fn with_max_traces(mut self, max: usize) -> Self {
        self.max_traces = Some(max);
        self
    }

    /// Encodes the request envelope.
    pub fn encode(&self) -> Json {
        let mut payload = vec![("id".into(), Json::str(&self.id))];
        if let Some(max) = self.max_traces {
            payload.push(("max_traces".into(), Json::int(max as u64)));
        }
        envelope(KIND_TRACE_DUMP_REQUEST, Json::Obj(payload))
    }

    /// Decodes a trace-dump-request envelope.
    pub fn decode(v: &Json) -> Result<Self, WireError> {
        const CTX: &str = "trace_dump_request payload";
        let pairs = as_obj(open_envelope(v, KIND_TRACE_DUMP_REQUEST)?, CTX)?;
        Ok(TraceDumpRequest {
            id: as_str(field(pairs, "id", CTX)?, CTX)?.to_string(),
            max_traces: match get(pairs, "max_traces") {
                None | Some(Json::Null) => None,
                Some(v) => Some(as_usize(v, CTX)?),
            },
        })
    }

    /// Renders the request as one JSON line.
    pub fn to_line(&self) -> String {
        self.encode().render()
    }

    /// Parses a trace-dump-request line.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        Self::decode(&Json::parse(line)?)
    }
}

/// One completed span on the wire (inside a [`TraceTree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Host-unique span identifier.
    pub span_id: u64,
    /// Parent span ID (`0` = root of the trace).
    pub parent_span: u64,
    /// Stage name (`"queue.wait"`, `"construct"`, …).
    pub name: String,
    /// Start time, nanoseconds since the *recording process's*
    /// monotonic epoch — comparable within one daemon only.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Every retained span of one trace, in recording order (children
/// complete before their parents). The tree shape is carried by
/// `parent_span` links; spans forwarded across daemons share the trace
/// ID, so router and shard dumps merge by concatenation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The trace these spans belong to.
    pub trace_id: u64,
    /// The spans, oldest first.
    pub spans: Vec<TraceSpan>,
}

/// The trace dump (`kind: "trace_dump"`), answering a
/// [`TraceDumpRequest`] with recent span trees, oldest trace first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDumpReply {
    /// Echo of the request id.
    pub id: String,
    /// Whether the daemon records spans (`false` = no `--trace`; the
    /// trace list is then empty).
    pub enabled: bool,
    /// Retained traces, ordered by first recorded span.
    pub traces: Vec<TraceTree>,
}

impl TraceDumpReply {
    /// Groups a collector snapshot into per-trace span lists, keeping
    /// the `max_traces` most recent traces (by first appearance).
    pub fn from_spans(
        id: impl Into<String>,
        enabled: bool,
        spans: &[SpanRecord],
        max_traces: Option<usize>,
    ) -> Self {
        let mut order: Vec<u64> = Vec::new();
        let mut groups: std::collections::BTreeMap<u64, Vec<TraceSpan>> =
            std::collections::BTreeMap::new();
        for s in spans {
            let group = groups.entry(s.trace_id).or_default();
            if group.is_empty() {
                order.push(s.trace_id);
            }
            group.push(TraceSpan {
                span_id: s.span_id,
                parent_span: s.parent_span,
                name: s.name.to_string(),
                start_ns: s.start_ns,
                dur_ns: s.dur_ns,
            });
        }
        let keep = max_traces.unwrap_or(usize::MAX);
        let skip = order.len().saturating_sub(keep);
        let traces = order
            .into_iter()
            .skip(skip)
            .map(|trace_id| TraceTree {
                trace_id,
                spans: groups.remove(&trace_id).unwrap_or_default(),
            })
            .collect();
        TraceDumpReply {
            id: id.into(),
            enabled,
            traces,
        }
    }

    /// Encodes the dump envelope.
    pub fn encode(&self) -> Json {
        let mask = i64::MAX as u64;
        let traces = self
            .traces
            .iter()
            .map(|t| {
                let spans = t
                    .spans
                    .iter()
                    .map(|s| {
                        Json::Obj(vec![
                            ("span_id".into(), Json::int(s.span_id & mask)),
                            ("parent_span".into(), Json::int(s.parent_span & mask)),
                            ("name".into(), Json::str(&s.name)),
                            ("start_ns".into(), Json::int(s.start_ns & mask)),
                            ("dur_ns".into(), Json::int(s.dur_ns & mask)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("trace_id".into(), Json::int(t.trace_id & mask)),
                    ("spans".into(), Json::Arr(spans)),
                ])
            })
            .collect();
        envelope(
            KIND_TRACE_DUMP,
            Json::Obj(vec![
                ("id".into(), Json::str(&self.id)),
                ("enabled".into(), Json::Bool(self.enabled)),
                ("traces".into(), Json::Arr(traces)),
            ]),
        )
    }

    /// Decodes a dump envelope.
    pub fn decode(v: &Json) -> Result<Self, WireError> {
        const CTX: &str = "trace_dump payload";
        let pairs = as_obj(open_envelope(v, KIND_TRACE_DUMP)?, CTX)?;
        const TCTX: &str = "trace_dump trace";
        let mut traces = Vec::new();
        for t in as_arr(field(pairs, "traces", CTX)?, CTX)? {
            let tp = as_obj(t, TCTX)?;
            let mut spans = Vec::new();
            for s in as_arr(field(tp, "spans", TCTX)?, TCTX)? {
                let sp = as_obj(s, TCTX)?;
                spans.push(TraceSpan {
                    span_id: as_u64(field(sp, "span_id", TCTX)?, TCTX)?,
                    parent_span: as_u64(field(sp, "parent_span", TCTX)?, TCTX)?,
                    name: as_str(field(sp, "name", TCTX)?, TCTX)?.to_string(),
                    start_ns: as_u64(field(sp, "start_ns", TCTX)?, TCTX)?,
                    dur_ns: as_u64(field(sp, "dur_ns", TCTX)?, TCTX)?,
                });
            }
            traces.push(TraceTree {
                trace_id: as_u64(field(tp, "trace_id", TCTX)?, TCTX)?,
                spans,
            });
        }
        Ok(TraceDumpReply {
            id: as_str(field(pairs, "id", CTX)?, CTX)?.to_string(),
            enabled: as_bool(field(pairs, "enabled", CTX)?, CTX)?,
            traces,
        })
    }

    /// Renders the dump as one JSON line.
    pub fn to_line(&self) -> String {
        self.encode().render()
    }

    /// Parses a trace-dump line.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        Self::decode(&Json::parse(line)?)
    }
}

/// One parsed request line: a mapping batch, an incremental remap, a
/// stats probe or a trace dump.
#[derive(Debug, Clone)]
pub enum RequestLine {
    /// A batch mapping request.
    Map(MapRequest),
    /// An incremental remapping request.
    Delta(MapDeltaRequest),
    /// An observability probe.
    Stats(StatsRequest),
    /// A span-tree dump request.
    TraceDump(TraceDumpRequest),
}

impl RequestLine {
    /// Parses one request line, dispatching on the envelope kind.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        let v = Json::parse(line)?;
        let pairs = as_obj(&v, "request envelope")?;
        let kind = get(pairs, "kind")
            .and_then(|k| match k {
                Json::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .unwrap_or_default();
        match kind {
            KIND_STATS_REQUEST => Ok(RequestLine::Stats(StatsRequest::decode(&v)?)),
            KIND_TRACE_DUMP_REQUEST => Ok(RequestLine::TraceDump(TraceDumpRequest::decode(&v)?)),
            KIND_DELTA_REQUEST => Ok(RequestLine::Delta(MapDeltaRequest::decode(&v)?)),
            // Anything else goes through the map-request decoder so the
            // error message names the expected kind (and legacy clients
            // that only speak map_request keep their exact errors).
            _ => Ok(RequestLine::Map(MapRequest::decode(&v)?)),
        }
    }
}

/// One parsed response line: an item or the done marker.
// The size difference between the variants is fine: response lines are
// transient parse results, never stored in bulk.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ResponseLine {
    /// A per-item result.
    Item(MapItem),
    /// The end-of-response marker.
    Done(MapDone),
}

impl ResponseLine {
    /// Parses one response line, dispatching on the envelope kind.
    pub fn from_line(line: &str) -> Result<Self, WireError> {
        let v = Json::parse(line)?;
        let pairs = as_obj(&v, "response envelope")?;
        let kind = get(pairs, "kind")
            .and_then(|k| match k {
                Json::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .unwrap_or_default();
        match kind {
            KIND_ITEM => Ok(ResponseLine::Item(MapItem::decode(&v)?)),
            KIND_DONE => Ok(ResponseLine::Done(MapDone::decode(&v)?)),
            other => Err(WireError::Kind {
                expected: "map_item | map_done",
                found: other.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hatt_core::Mapper;
    use hatt_pauli::Complex64;

    fn sample_hams() -> Vec<MajoranaSum> {
        let mut a = MajoranaSum::new(2);
        a.add(Complex64::ONE, &[0, 1]);
        a.add(Complex64::real(0.5), &[0, 1, 2, 3]);
        vec![a, MajoranaSum::uniform_singles(3)]
    }

    #[test]
    fn request_round_trips_with_options_and_pin() {
        let mut req = MapRequest::new("r1", sample_hams());
        req.options = Some(HattOptions {
            policy: SelectionPolicy::Beam { width: 4 },
            ..Default::default()
        });
        req.n_modes = Some(2);
        let back = MapRequest::from_line(&req.to_line()).unwrap();
        assert_eq!(back.id, "r1");
        assert_eq!(
            back.options.unwrap().policy,
            SelectionPolicy::Beam { width: 4 }
        );
        assert_eq!(back.n_modes, Some(2));
        assert_eq!(back.hamiltonians.len(), 2);
        assert_eq!(back.hamiltonians[0], req.hamiltonians[0]);
    }

    #[test]
    fn item_round_trips_both_arms() {
        let h = sample_hams().remove(0);
        let mapping = Mapper::new().map(&h).unwrap();
        let weight = mapping.map_majorana_sum(&h).weight();
        let item = MapItem {
            id: "r1".into(),
            index: Some(0),
            payload: ItemPayload::Ok {
                mapping: mapping.clone(),
                pauli_weight: weight,
            },
        };
        match ResponseLine::from_line(&item.to_line()).unwrap() {
            ResponseLine::Item(back) => {
                assert_eq!(back.index, Some(0));
                assert_eq!(back.mapping().unwrap().tree(), mapping.tree());
            }
            other => panic!("{other:?}"),
        }
        let err_item = MapItem {
            id: "r1".into(),
            index: None,
            payload: ItemPayload::Err(ItemError::invalid_request("nope")),
        };
        match ResponseLine::from_line(&err_item.to_line()).unwrap() {
            ResponseLine::Item(back) => {
                assert_eq!(back.index, None);
                assert_eq!(back.error().unwrap().code, "invalid_request");
            }
            other => panic!("{other:?}"),
        }
        let done = MapDone {
            id: "r1".into(),
            items: 2,
            errors: 1,
        };
        match ResponseLine::from_line(&done.to_line()).unwrap() {
            ResponseLine::Done(back) => assert_eq!(back, done),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn delta_request_round_trips_and_dispatches() {
        let base = sample_hams().remove(0);
        let mut delta = hatt_fermion::HamiltonianDelta::new(base.n_modes());
        delta.push_add(Complex64::real(0.25), &[0, 2]).unwrap();
        delta.push_remove(Complex64::ONE, &[0, 1]).unwrap();
        let mut req = MapDeltaRequest::new("d1", base.clone(), delta.clone());
        req.options = Some(HattOptions {
            policy: SelectionPolicy::Vanilla,
            ..Default::default()
        });
        let back = MapDeltaRequest::from_line(&req.to_line()).unwrap();
        assert_eq!(back.id, "d1");
        assert_eq!(back.options.unwrap().policy, SelectionPolicy::Vanilla);
        assert_eq!(back.hamiltonian, base);
        assert_eq!(back.delta.ops(), delta.ops());
        match RequestLine::from_line(&req.to_line()).unwrap() {
            RequestLine::Delta(d) => assert_eq!(d.id, "d1"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_delta_requests_fail_typed() {
        for line in [
            r#"{"format":"hatt-wire/1","kind":"map_delta","payload":{}}"#,
            r#"{"format":"hatt-wire/1","kind":"map_delta","payload":{"id":"x"}}"#,
            r#"{"format":"hatt-wire/1","kind":"map_delta","payload":{"id":"x","hamiltonian":{"n_modes":2,"terms":[]}}}"#,
            r#"{"format":"hatt-wire/1","kind":"map_delta","payload":{"id":"x","hamiltonian":{"n_modes":2,"terms":[]},"delta":{"n_modes":2,"ops":[{"op":"frob","re":1,"im":0,"idx":[0]}]}}}"#,
        ] {
            assert!(MapDeltaRequest::from_line(line).is_err(), "{line:?}");
            assert!(RequestLine::from_line(line).is_err(), "{line:?}");
        }
    }

    #[test]
    fn malformed_requests_fail_typed() {
        for line in [
            "",
            "not json",
            r#"{"format":"hatt-wire/1","kind":"map_request","payload":{}}"#,
            r#"{"format":"hatt-wire/1","kind":"map_request","payload":{"id":"x"}}"#,
            r#"{"format":"hatt-wire/1","kind":"map_request","payload":{"id":"x","options":{"policy":"bogus"},"hamiltonians":[]}}"#,
            r#"{"format":"hatt-wire/0","kind":"map_request","payload":{"id":"x","hamiltonians":[]}}"#,
        ] {
            assert!(MapRequest::from_line(line).is_err(), "{line:?}");
        }
    }
}
