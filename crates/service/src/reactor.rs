//! The readiness-based connection engine behind [`Server`]: one
//! acceptor thread plus N event-loop workers, each owning a set of
//! **non-blocking** connections it multiplexes with `vendor/poll`
//! (raw `ppoll`, no libc). Replaces the thread-per-connection model —
//! and its 100 ms `set_read_timeout` idle spin — with true readiness
//! wakeups: an idle connection costs zero syscalls until bytes arrive
//! or the peer hangs up.
//!
//! ## Buffer ownership and data flow
//!
//! ```text
//! acceptor ──(stream+slot)──▶ worker intake ──▶ Conn {
//!     read:  kernel ─▶ LineScanner (bounded, incremental) ─▶ pending queue
//!     serve: pending ─▶ Backend::submit_* ─▶ scheduler / shard queues
//!     done:  completions channel ─(ConnSink wake)─▶ write buffer
//!     write: write buffer ─▶ kernel, drained on POLLOUT readiness
//! }
//! ```
//!
//! Every buffer is owned by exactly one connection and only touched by
//! the worker that owns that connection, so a half-written line can
//! never interleave into another connection's stream. Backpressure
//! points, in order: the per-connection pending queue (reads pause at
//! [`MAX_PENDING`] parsed lines), the write buffer (reads pause and no
//! further pending request is started above `max_write_buffer`), and
//! the backend's bounded queues (a full queue sheds the request with a
//! typed `overloaded` error instead of stalling the worker).
//!
//! Responses stay strictly serialized per connection: one request's
//! items and `map_done` are fully emitted before the next pending line
//! is served, exactly like the old one-thread-per-connection loop.
//!
//! ## Disconnects
//!
//! A peer that closes its read side mid-batch surfaces as a write
//! error (or `POLLERR`); the worker then flips the connection's shared
//! cancellation flag so the scheduler skips its still-queued jobs
//! (counted in `stats` as `cancelled_items`) and drops the connection
//! state. A peer that merely shuts down its *write* side (EOF on read)
//! still receives every in-flight response before the close.
//!
//! [`Server`]: crate::Server

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use hatt_trace::{now_ns, TraceCtx, Tracer};

use crate::error::ServiceError;
use crate::metrics::{ConnectionSlot, Metrics};
use crate::proto::{
    ItemError, ItemPayload, MapDeltaRequest, MapDone, MapItem, MapRequest, RequestLine, StatsReply,
    StatsRequest, TraceDumpReply, TraceDumpRequest,
};
use crate::scheduler::ClientId;

/// Parsed-but-unserved lines a connection may queue before its reads
/// pause (resumed as the queue drains).
const MAX_PENDING: usize = 64;

/// Most bytes one connection may consume per readiness cycle, so a
/// blasting peer cannot monopolize its worker's loop.
const READ_QUANTUM: usize = 256 << 10;

/// What serves requests behind the reactor: the local scheduler+mapper
/// ([`Server::bind`]) or the consistent-hash shard router
/// ([`Server::bind_router`]). Submissions must **never block** — they
/// run on an event-loop worker.
///
/// [`Server::bind`]: crate::Server::bind
/// [`Server::bind_router`]: crate::Server::bind_router
pub(crate) trait Backend: Send + Sync + 'static {
    /// Mints the fairness bucket for one connection.
    fn register_client(&self) -> ClientId;
    /// The shared counters the reactor layers its own onto.
    fn metrics(&self) -> &Arc<Metrics>;
    /// The span collector (disabled unless the server traces).
    fn tracer(&self) -> &Tracer;
    /// Starts serving a batch request; one [`MapItem`] per item will
    /// arrive through `sink`. Returns how many items to await. `trace`
    /// is the request's context parented on its root span; the backend
    /// nests its own spans (queue wait, forward hop, …) beneath it.
    fn submit_map(
        &self,
        client: ClientId,
        req: &MapRequest,
        sink: &ConnSink,
        trace: Option<TraceCtx>,
    ) -> Result<usize, ServiceError>;
    /// Starts serving an incremental remap (same contract).
    fn submit_delta(
        &self,
        client: ClientId,
        req: &MapDeltaRequest,
        sink: &ConnSink,
        trace: Option<TraceCtx>,
    ) -> Result<usize, ServiceError>;
    /// Builds the observability snapshot (answered inline — must not
    /// block on I/O).
    fn stats(&self, req: &StatsRequest) -> StatsReply;
    /// Answers a span-tree dump from the collector (answered inline).
    fn trace_dump(&self, req: &TraceDumpRequest) -> TraceDumpReply {
        let tracer = self.tracer();
        TraceDumpReply::from_spans(
            &req.id,
            tracer.is_enabled(),
            &tracer.snapshot(),
            req.max_traces,
        )
    }
    /// Pre-teardown hook, called once after every worker has drained:
    /// join internal threads, flush persistent tiers.
    fn drain(&self);
}

/// Reactor sizing, shared by acceptor and workers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReactorLimits {
    pub(crate) max_line_bytes: usize,
    pub(crate) max_connections: usize,
    /// Above this many buffered response bytes a connection stops
    /// reading and stops starting new pending requests — the slow
    /// reader's cost stays on the slow reader.
    pub(crate) max_write_buffer: usize,
    /// How long shutdown waits for in-flight responses to flush before
    /// abandoning unresponsive peers.
    pub(crate) drain_grace: Duration,
}

/// Completion path into an event-loop worker: the scheduler (or a shard
/// forwarder) pushes finished items here; each push wakes the owning
/// worker. Cloned into every job of the connection's in-flight request.
#[derive(Debug, Clone)]
pub(crate) struct ConnSink {
    token: u64,
    tx: Sender<(u64, MapItem)>,
    waker: Arc<poll::Waker>,
    cancelled: Arc<AtomicBool>,
}

impl ConnSink {
    /// Delivers one completed item (dropped silently when the
    /// connection is already gone) and wakes the owning worker.
    pub(crate) fn send(&self, item: MapItem) {
        if self.cancelled.load(Ordering::Relaxed) {
            return;
        }
        let _ = self.tx.send((self.token, item));
        self.waker.wake();
    }

    /// Whether the owning connection hung up — the scheduler's cue to
    /// skip this job without running it.
    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }
}

/// One complete scan result of the incremental line scanner.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum Scanned {
    /// A complete line within the size cap (terminator stripped).
    Line(String),
    /// A line that exceeded the cap; its bytes were discarded as they
    /// streamed in, never buffered.
    Oversize,
}

/// The bounded incremental line scanner: feed it arbitrary chunks, get
/// complete lines out. The non-blocking successor of the old
/// `read_line_bounded` — same cap semantics (an over-long line is
/// streamed to the bin and reported as [`Scanned::Oversize`]), but
/// driven by readiness instead of blocking reads.
#[derive(Debug)]
pub(crate) struct LineScanner {
    buf: Vec<u8>,
    discarding: bool,
    max: usize,
}

impl LineScanner {
    pub(crate) fn new(max: usize) -> LineScanner {
        LineScanner {
            buf: Vec::new(),
            discarding: false,
            max,
        }
    }

    /// Consumes one chunk, appending every completed line to `out`.
    pub(crate) fn push(&mut self, mut chunk: &[u8], out: &mut Vec<Scanned>) {
        while let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            let (head, rest) = chunk.split_at(pos);
            chunk = &rest[1..];
            if self.discarding || self.buf.len() + head.len() > self.max {
                self.discarding = false;
                self.buf.clear();
                out.push(Scanned::Oversize);
                continue;
            }
            self.buf.extend_from_slice(head);
            if self.buf.last() == Some(&b'\r') {
                self.buf.pop();
            }
            out.push(Scanned::Line(
                String::from_utf8_lossy(&self.buf).into_owned(),
            ));
            self.buf.clear();
        }
        if !self.discarding {
            if self.buf.len() + chunk.len() > self.max {
                self.discarding = true;
                self.buf.clear();
            } else {
                self.buf.extend_from_slice(chunk);
            }
        }
    }
}

/// The per-connection outbound buffer, drained on write readiness. One
/// owner, one stream — lines are appended whole, so partial writes can
/// only ever split *this* connection's bytes, never another's.
#[derive(Debug, Default)]
struct WriteBuf {
    buf: VecDeque<u8>,
}

impl WriteBuf {
    fn push_line(&mut self, line: &str) {
        self.buf.extend(line.as_bytes());
        self.buf.push_back(b'\n');
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes as much as the socket takes right now. `Ok(())` on
    /// progress or `WouldBlock`; a real error marks the peer dead.
    fn flush_into(&mut self, mut stream: &TcpStream) -> std::io::Result<()> {
        while !self.buf.is_empty() {
            let (head, _) = self.buf.as_slices();
            match stream.write(head) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ))
                }
                Ok(n) => drop(self.buf.drain(..n)),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

/// The trace identity one traced request carries through the reactor.
/// The root span's ID is allocated at parse time (children reference it
/// before it completes) and recorded when the `map_done` line buffers.
#[derive(Clone, Copy)]
struct ReqTrace {
    trace_id: u64,
    /// The request's root span (parent of every server-side span).
    root_span: u64,
    /// What the root span itself parents onto: 0, or the forwarding
    /// router's hop span when the context arrived over the wire.
    root_parent: u64,
    /// Parse start — where the root span begins.
    started_ns: u64,
    /// Parse end — where the pending-queue wait begins.
    parsed_ns: u64,
}

impl ReqTrace {
    /// The context server-side children record under.
    fn ctx(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            parent_span: self.root_span,
        }
    }
}

/// A parsed line waiting its serialized turn on one connection.
enum Pending {
    Request(Box<RequestLine>, Option<ReqTrace>),
    /// A line that failed to parse (the error message).
    Invalid(String),
    /// A line that blew the length cap.
    Oversize,
}

/// The response stream currently being emitted on one connection.
struct Inflight {
    id: String,
    expected: usize,
    received: usize,
    errors: usize,
    trace: Option<ReqTrace>,
}

/// One connection owned by an event-loop worker.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    /// RAII connection-count claim; released whenever the conn drops.
    _slot: ConnectionSlot,
    client: ClientId,
    sink: ConnSink,
    scanner: LineScanner,
    pending: VecDeque<Pending>,
    inflight: Option<Inflight>,
    wbuf: WriteBuf,
    /// Peer sent EOF: serve what's queued, then close.
    read_closed: bool,
    /// Transport is broken: cancel queued work and drop.
    dead: bool,
    /// When the worker adopted this connection — the start of the
    /// retroactive `accept` span.
    accepted_ns: u64,
    /// Whether the `accept` span was already emitted (once per
    /// connection, under its first traced request).
    accept_traced: bool,
    /// Armed when a traced response finishes buffering: `(trace,
    /// buffered_ns)`; the `write.drain` span is recorded once the write
    /// buffer empties.
    drain_trace: Option<(ReqTrace, u64)>,
}

impl Conn {
    fn wants_read(&self, limits: &ReactorLimits) -> bool {
        !self.read_closed
            && !self.dead
            && self.pending.len() < MAX_PENDING
            && self.wbuf.len() < limits.max_write_buffer
    }

    fn has_work(&self) -> bool {
        self.inflight.is_some() || !self.pending.is_empty() || !self.wbuf.is_empty()
    }
}

/// The handle the acceptor (and `Server::shutdown`) uses to reach one
/// event-loop worker.
#[derive(Debug)]
pub(crate) struct WorkerShared {
    pub(crate) waker: Arc<poll::Waker>,
    completions_tx: Sender<(u64, MapItem)>,
    intake: Mutex<Vec<(TcpStream, ConnectionSlot)>>,
}

impl WorkerShared {
    fn lock_intake(&self) -> std::sync::MutexGuard<'_, Vec<(TcpStream, ConnectionSlot)>> {
        self.intake.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Hands a fresh connection to this worker and wakes it.
    pub(crate) fn adopt(&self, stream: TcpStream, slot: ConnectionSlot) {
        self.lock_intake().push((stream, slot));
        self.waker.wake();
    }
}

/// A worker's shared handle plus the private completions receiver its
/// event loop owns.
pub(crate) type WorkerPair = (Arc<WorkerShared>, Receiver<(u64, MapItem)>);

/// Builds one worker's shared handle plus the private completions
/// receiver its event loop owns.
pub(crate) fn worker_pair() -> std::io::Result<WorkerPair> {
    let (tx, rx) = std::sync::mpsc::channel();
    let shared = Arc::new(WorkerShared {
        waker: Arc::new(poll::Waker::new()?),
        completions_tx: tx,
        intake: Mutex::new(Vec::new()),
    });
    Ok((shared, rx))
}

/// One event-loop worker: multiplexes its connections until `stop` is
/// observed and the drain completes (or the grace period expires).
pub(crate) fn event_loop(
    shared: &WorkerShared,
    completions: &Receiver<(u64, MapItem)>,
    backend: &Arc<dyn Backend>,
    limits: ReactorLimits,
    stop: &AtomicBool,
) {
    let metrics = Arc::clone(backend.metrics());
    let tracer = backend.tracer().clone();
    let mut conns: Vec<Conn> = Vec::new();
    let mut tokens: Vec<u64> = Vec::new();
    let mut pollfds: Vec<(RawFd, poll::Interest)> = Vec::new();
    let mut readiness: Vec<poll::Readiness> = Vec::new();
    let mut scanned: Vec<Scanned> = Vec::new();
    let mut next_token: u64 = 1;
    let mut deadline: Option<Instant> = None;

    loop {
        let draining = deadline.is_some();

        // Build the poll set: the waker first, then every connection.
        // Hangup/error readiness is reported even for empty interest,
        // so paused or write-only connections still notice dying peers.
        pollfds.clear();
        tokens.clear();
        pollfds.push((shared.waker.fd(), poll::Interest::READABLE));
        tokens.push(0);
        for conn in &conns {
            pollfds.push((
                conn.fd,
                poll::Interest {
                    readable: !draining && conn.wants_read(&limits),
                    writable: !conn.wbuf.is_empty(),
                },
            ));
            tokens.push(conn.sink.token);
        }

        let timeout = deadline.map(|d| d.saturating_duration_since(Instant::now()));
        if poll::wait(&pollfds, timeout, &mut readiness).is_err() {
            // EINVAL-class failures are not actionable per-iteration;
            // back off instead of spinning.
            std::thread::sleep(Duration::from_millis(10));
            readiness.clear();
            readiness.resize(pollfds.len(), poll::Readiness::default());
        }
        metrics.wakeups.fetch_add(1, Ordering::Relaxed);

        if readiness.first().is_some_and(poll::Readiness::any) {
            shared.waker.drain();
        }

        // Adopt connections the acceptor handed over. During a drain,
        // late arrivals are closed immediately (accept raced the stop).
        for (stream, slot) in shared.lock_intake().drain(..) {
            if stop.load(Ordering::SeqCst) {
                continue;
            }
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            // Responses are batched per readiness cycle already; don't
            // let Nagle delay a small batch further.
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let sink = ConnSink {
                token: next_token,
                tx: shared.completions_tx.clone(),
                waker: Arc::clone(&shared.waker),
                cancelled: Arc::new(AtomicBool::new(false)),
            };
            next_token += 1;
            conns.push(Conn {
                stream,
                fd,
                _slot: slot,
                client: backend.register_client(),
                sink,
                scanner: LineScanner::new(limits.max_line_bytes),
                pending: VecDeque::new(),
                inflight: None,
                wbuf: WriteBuf::default(),
                read_closed: false,
                dead: false,
                accepted_ns: if tracer.is_enabled() { now_ns() } else { 0 },
                accept_traced: false,
                drain_trace: None,
            });
        }

        // Deliver completed items into their connections' write buffers.
        while let Ok((token, item)) = completions.try_recv() {
            if let Some(conn) = conns.iter_mut().find(|c| c.sink.token == token) {
                on_item(conn, item, &tracer);
            }
        }

        // Socket readiness: reads first (they can enqueue work), then
        // writes flush whatever this cycle produced.
        for (i, r) in readiness.iter().enumerate().skip(1) {
            if !r.any() {
                continue;
            }
            let token = tokens[i];
            let Some(conn) = conns.iter_mut().find(|c| c.sink.token == token) else {
                continue;
            };
            if r.readable || r.hangup || r.error {
                do_read(conn, &metrics, &tracer, &mut scanned);
            }
        }

        // Observe a freshly-signalled stop: no new requests; answer
        // parsed-but-unserved lines with typed `shutting_down` errors,
        // then let in-flight responses finish and flush under the
        // grace deadline.
        if stop.load(Ordering::SeqCst) && deadline.is_none() {
            deadline = Some(Instant::now() + limits.drain_grace);
            for conn in &mut conns {
                reject_pending_for_shutdown(conn);
            }
        }

        for conn in &mut conns {
            serve_pending(conn, backend, &limits, &metrics, &tracer);
            if !conn.wbuf.is_empty() && conn.wbuf.flush_into(&conn.stream).is_err() {
                conn.dead = true;
            }
            // A traced response whose bytes all reached the kernel
            // closes its `write.drain` span.
            if conn.wbuf.is_empty() {
                if let Some((t, buffered_ns)) = conn.drain_trace.take() {
                    tracer.record_span(t.ctx(), "write.drain", buffered_ns, now_ns());
                }
            }
            // The flush may have made room to start the next request.
            serve_pending(conn, backend, &limits, &metrics, &tracer);
        }

        // Reap: broken transports cancel their queued work; cleanly
        // closed peers leave once everything owed them was written.
        conns.retain(|conn| {
            if conn.dead {
                conn.sink.cancel();
                return false;
            }
            if conn.read_closed && !conn.has_work() {
                return false;
            }
            true
        });

        if let Some(d) = deadline {
            let expired = Instant::now() >= d;
            if expired {
                // Whoever hasn't taken their bytes by now isn't going
                // to; cancel what remains so the scheduler drains fast.
                for conn in &conns {
                    conn.sink.cancel();
                }
            }
            if expired || conns.iter().all(|c| !c.has_work()) {
                return;
            }
        }
    }
}

/// Builds the trace identity of one freshly parsed request: continues
/// the caller's context when the line carried `trace_ctx`, otherwise
/// roots a fresh trace (the daemon runs `--trace`). Emits the
/// retroactive `accept` (first traced request per connection) and
/// `frame.parse` spans as a side effect.
fn request_trace(
    conn: &mut Conn,
    req: &RequestLine,
    tracer: &Tracer,
    parse_start: u64,
) -> Option<ReqTrace> {
    if !tracer.is_enabled() {
        return None;
    }
    let incoming = match req {
        RequestLine::Map(r) => r.trace,
        RequestLine::Delta(r) => r.trace,
        // Probe verbs are answered inline; tracing them would only
        // drown the mapping spans the dump exists to expose.
        RequestLine::Stats(_) | RequestLine::TraceDump(_) => return None,
    };
    let ctx_in = incoming.or_else(|| tracer.new_trace())?;
    let root_span = tracer.alloc_span_id();
    let parsed_ns = now_ns();
    let trace = ReqTrace {
        trace_id: ctx_in.trace_id,
        root_span,
        root_parent: ctx_in.parent_span,
        started_ns: parse_start,
        parsed_ns,
    };
    if !conn.accept_traced {
        conn.accept_traced = true;
        tracer.record_span(trace.ctx(), "accept", conn.accepted_ns, parse_start);
    }
    tracer.record_span(trace.ctx(), "frame.parse", parse_start, parsed_ns);
    Some(trace)
}

/// Reads until `WouldBlock` (or the per-cycle quantum), feeding the
/// scanner and queueing parsed lines.
fn do_read(conn: &mut Conn, metrics: &Metrics, tracer: &Tracer, scanned: &mut Vec<Scanned>) {
    if conn.read_closed || conn.dead {
        // Still consume readiness on a half-closed socket: an error here
        // (RST) is how we learn the peer is fully gone.
        let mut probe = [0u8; 64];
        match (&conn.stream).read(&mut probe) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => conn.dead = true,
        }
        return;
    }
    let mut chunk = [0u8; 16 << 10];
    let mut consumed = 0usize;
    loop {
        if conn.pending.len() >= MAX_PENDING || consumed >= READ_QUANTUM {
            break;
        }
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                consumed += n;
                scanned.clear();
                conn.scanner.push(&chunk[..n], scanned);
                for entry in scanned.drain(..) {
                    match entry {
                        Scanned::Oversize => {
                            metrics.oversize_lines.fetch_add(1, Ordering::Relaxed);
                            conn.pending.push_back(Pending::Oversize);
                        }
                        Scanned::Line(line) => {
                            if line.trim().is_empty() {
                                continue;
                            }
                            let parse_start = if tracer.is_enabled() { now_ns() } else { 0 };
                            match RequestLine::from_line(&line) {
                                Ok(req) => {
                                    let trace = request_trace(conn, &req, tracer, parse_start);
                                    conn.pending
                                        .push_back(Pending::Request(Box::new(req), trace));
                                }
                                Err(e) => conn.pending.push_back(Pending::Invalid(e.to_string())),
                            }
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
}

/// Folds one completed item into its connection's response stream.
fn on_item(conn: &mut Conn, item: MapItem, tracer: &Tracer) {
    let Some(inflight) = conn.inflight.as_mut() else {
        // A completion for a request this connection no longer tracks
        // (cancelled then re-registered token is impossible — tokens
        // are unique — so this is a late item after an error reply).
        return;
    };
    inflight.received += 1;
    if !item.is_ok() {
        inflight.errors += 1;
    }
    conn.wbuf.push_line(&item.to_line());
    if inflight.received >= inflight.expected {
        let done = MapDone {
            id: inflight.id.clone(),
            items: inflight.received,
            errors: inflight.errors,
        };
        conn.wbuf.push_line(&done.to_line());
        // The response is fully buffered: close the root `request`
        // span and arm the `write.drain` span for the flush path.
        if let Some(t) = inflight.trace {
            let buffered_ns = now_ns();
            tracer.record_span_id(
                t.root_span,
                TraceCtx {
                    trace_id: t.trace_id,
                    parent_span: t.root_parent,
                },
                "request",
                t.started_ns,
                buffered_ns,
            );
            conn.drain_trace = Some((t, buffered_ns));
        }
        conn.inflight = None;
    }
}

/// Emits a request-level error reply (one typed item + `map_done`).
fn error_reply(conn: &mut Conn, id: &str, error: ItemError) {
    let item = MapItem {
        id: id.to_string(),
        index: None,
        payload: ItemPayload::Err(error),
    };
    conn.wbuf.push_line(&item.to_line());
    let done = MapDone {
        id: id.to_string(),
        items: 1,
        errors: 1,
    };
    conn.wbuf.push_line(&done.to_line());
}

/// Closes the pending-queue-wait span of a request about to be served.
fn observe_queue_wait(tracer: &Tracer, trace: Option<ReqTrace>) -> Option<ReqTrace> {
    if let Some(t) = trace {
        tracer.record_span(t.ctx(), "queue.wait", t.parsed_ns, now_ns());
    }
    trace
}

/// Starts as many pending lines as the serialization and backpressure
/// rules allow (responses stay strictly in request order).
fn serve_pending(
    conn: &mut Conn,
    backend: &Arc<dyn Backend>,
    limits: &ReactorLimits,
    metrics: &Metrics,
    tracer: &Tracer,
) {
    while conn.inflight.is_none() && conn.wbuf.len() < limits.max_write_buffer && !conn.dead {
        let Some(next) = conn.pending.pop_front() else {
            return;
        };
        match next {
            Pending::Oversize => error_reply(
                conn,
                "",
                ItemError::invalid_request(format!(
                    "request line exceeds the {} byte limit",
                    limits.max_line_bytes
                )),
            ),
            Pending::Invalid(message) => {
                error_reply(conn, "", ItemError::invalid_request(message));
            }
            Pending::Request(line, trace) => match *line {
                RequestLine::Stats(req) => {
                    metrics.verb_stats.fetch_add(1, Ordering::Relaxed);
                    let reply = backend.stats(&req);
                    conn.wbuf.push_line(&reply.to_line());
                }
                RequestLine::TraceDump(req) => {
                    metrics.verb_trace_dump.fetch_add(1, Ordering::Relaxed);
                    let reply = backend.trace_dump(&req);
                    conn.wbuf.push_line(&reply.to_line());
                }
                RequestLine::Map(req) => {
                    let trace = observe_queue_wait(tracer, trace);
                    let ctx = trace.map(|t| t.ctx());
                    match backend.submit_map(conn.client, &req, &conn.sink, ctx) {
                        Ok(0) => {
                            metrics.verb_map.fetch_add(1, Ordering::Relaxed);
                            conn.wbuf.push_line(
                                &MapDone {
                                    id: req.id.clone(),
                                    items: 0,
                                    errors: 0,
                                }
                                .to_line(),
                            );
                            close_root_span(conn, tracer, trace);
                        }
                        Ok(expected) => {
                            metrics.verb_map.fetch_add(1, Ordering::Relaxed);
                            conn.inflight = Some(Inflight {
                                id: req.id.clone(),
                                expected,
                                received: 0,
                                errors: 0,
                                trace,
                            });
                        }
                        Err(e) => {
                            error_reply(
                                conn,
                                &req.id.clone(),
                                ItemError {
                                    code: e.code().to_string(),
                                    message: e.to_string(),
                                },
                            );
                            close_root_span(conn, tracer, trace);
                        }
                    }
                }
                RequestLine::Delta(req) => {
                    let trace = observe_queue_wait(tracer, trace);
                    let ctx = trace.map(|t| t.ctx());
                    match backend.submit_delta(conn.client, &req, &conn.sink, ctx) {
                        Ok(expected) => {
                            metrics.verb_delta.fetch_add(1, Ordering::Relaxed);
                            conn.inflight = Some(Inflight {
                                id: req.id.clone(),
                                expected,
                                received: 0,
                                errors: 0,
                                trace,
                            });
                        }
                        Err(e) => {
                            error_reply(
                                conn,
                                &req.id.clone(),
                                ItemError {
                                    code: e.code().to_string(),
                                    message: e.to_string(),
                                },
                            );
                            close_root_span(conn, tracer, trace);
                        }
                    }
                }
            },
        }
    }
}

/// Records the root `request` span of a request answered without going
/// in-flight (empty batch or typed submit error) and arms the
/// `write.drain` span.
fn close_root_span(conn: &mut Conn, tracer: &Tracer, trace: Option<ReqTrace>) {
    if let Some(t) = trace {
        let buffered_ns = now_ns();
        tracer.record_span_id(
            t.root_span,
            TraceCtx {
                trace_id: t.trace_id,
                parent_span: t.root_parent,
            },
            "request",
            t.started_ns,
            buffered_ns,
        );
        conn.drain_trace = Some((t, buffered_ns));
    }
}

/// Answers every not-yet-started pending line with a typed
/// `shutting_down` reply — a stopping server refuses new work loudly
/// instead of silently dropping parsed requests.
fn reject_pending_for_shutdown(conn: &mut Conn) {
    let e = ServiceError::ShuttingDown;
    while let Some(next) = conn.pending.pop_front() {
        let id = match &next {
            Pending::Request(line, _) => match line.as_ref() {
                RequestLine::Map(req) => req.id.clone(),
                RequestLine::Delta(req) => req.id.clone(),
                RequestLine::Stats(req) => req.id.clone(),
                RequestLine::TraceDump(req) => req.id.clone(),
            },
            _ => String::new(),
        };
        error_reply(
            conn,
            &id,
            ItemError {
                code: e.code().to_string(),
                message: e.to_string(),
            },
        );
    }
}

/// Test-only sink bound to a worker handle, for exercising queue and
/// sink plumbing without a live socket.
#[cfg(test)]
pub(crate) fn test_sink(shared: &WorkerShared) -> ConnSink {
    ConnSink {
        token: 1,
        tx: shared.completions_tx.clone(),
        waker: Arc::clone(&shared.waker),
        cancelled: Arc::new(AtomicBool::new(false)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(scanner: &mut LineScanner, chunks: &[&[u8]]) -> Vec<Scanned> {
        let mut out = Vec::new();
        for chunk in chunks {
            scanner.push(chunk, &mut out);
        }
        out
    }

    #[test]
    fn scanner_reassembles_lines_split_across_chunks() {
        let mut s = LineScanner::new(64);
        let out = lines(&mut s, &[b"hel", b"lo\nwor", b"ld\r\n", b"tail"]);
        assert_eq!(
            out,
            [Scanned::Line("hello".into()), Scanned::Line("world".into())]
        );
        // The unterminated tail stays buffered until its newline.
        let out = lines(&mut s, &[b"!\n"]);
        assert_eq!(out, [Scanned::Line("tail!".into())]);
    }

    #[test]
    fn scanner_discards_oversize_lines_without_buffering_them() {
        let mut s = LineScanner::new(8);
        // 30 bytes streamed in small chunks: must never be accumulated.
        let out = lines(&mut s, &[b"0123456789", b"0123456789", b"0123456789\nok\n"]);
        assert_eq!(out, [Scanned::Oversize, Scanned::Line("ok".into())]);
        assert!(s.buf.capacity() <= 16, "oversize bytes were buffered");
    }

    #[test]
    fn scanner_boundary_is_exact() {
        let mut s = LineScanner::new(4);
        let out = lines(&mut s, &[b"abcd\nabcde\nab\n"]);
        assert_eq!(
            out,
            [
                Scanned::Line("abcd".into()),
                Scanned::Oversize,
                Scanned::Line("ab".into())
            ]
        );
    }

    #[test]
    fn write_buf_appends_whole_lines() {
        let mut w = WriteBuf::default();
        w.push_line("abc");
        w.push_line("de");
        assert_eq!(w.len(), 7);
        let bytes: Vec<u8> = w.buf.iter().copied().collect();
        assert_eq!(bytes, b"abc\nde\n");
        assert!(!w.is_empty());
    }
}
