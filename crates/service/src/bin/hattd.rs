//! `hattd` — the HATT mapping daemon: JSON lines over TCP
//! (`hatt-wire/1` protocol, see `hatt_service::proto`).
//!
//! ```sh
//! hattd [--addr 127.0.0.1:7878] [--threads N] [--queue N] [--cache N]
//!       [--store PATH] [--max-conns N] [--max-line-bytes N]
//!       [--event-workers N] [--route HOST:PORT,HOST:PORT,...]
//!       [--policy greedy|vanilla|restarts|lookahead:<w>|beam:<w>]
//!       [--variant cached|paired|unopt] [--trace]
//!       [--self-check] [--persist-check] [--route-check] [--trace-check]
//! ```
//!
//! * `--addr` — listen address (`:0` picks an ephemeral port; the bound
//!   address is printed either way as `hattd listening on <addr>`).
//! * `--route` — **shard router mode**: serve the same wire protocol,
//!   but forward each request item to the listed shard daemon that owns
//!   the item's structure key on a consistent-hash ring. Per-shard
//!   health appears in `stats`; mapping flags (`--store`, `--cache`,
//!   `--policy`, …) are ignored — the shards own the mapping.
//! * `--event-workers` — event-loop worker threads multiplexing the
//!   connections (default: automatic).
//! * `--threads` — worker cap for the scheduler and constructions
//!   (default: `HATT_THREADS` / hardware count).
//! * `--queue` — bounded scheduler queue capacity (default 256).
//! * `--cache` — LRU bound on the structure cache (default unbounded;
//!   `0` disables caching).
//! * `--store` — persistent content-addressed mapping store: warm-starts
//!   the cache from `PATH` on boot, writes every newly constructed
//!   mapping through, and flushes on shutdown. A restarted daemon
//!   serves previously seen structures from disk with zero selection
//!   work.
//! * `--max-conns` — concurrent-connection cap (default 256); over-cap
//!   connections get one typed `overloaded` line and are closed.
//! * `--max-line-bytes` — longest accepted request line (default 4 MiB);
//!   longer lines are answered with `invalid_request` without buffering.
//! * `--policy` / `--variant` — the server mapper's defaults; requests
//!   may override per call.
//! * `--self-check` — boot on an ephemeral port, round-trip a sample
//!   request through a real socket, verify the responses against
//!   in-process mappings, and exit (the CI smoke mode).
//! * `--persist-check` — boot with a store, map the Table I molecule
//!   roster, restart the daemon on the same store, map the roster
//!   again, and verify the second pass is all store hits with **zero**
//!   constructions and bit-identical trees (the CI persistence smoke).
//! * `--route-check` — boot two in-process shard daemons plus a router
//!   over them, map a synthetic roster through the router, and verify
//!   the responses are bit-identical to in-process mappings with every
//!   shard healthy (the CI router smoke).
//! * `--trace` — record a span tree per request (accept, frame parse,
//!   queue wait, cache probe / construction, forward hop, write drain)
//!   into a bounded in-memory ring; dump recent trees with the
//!   `trace_dump` verb (`hatt_service::client::trace_dump`) and see
//!   recorded/dropped totals in `stats`.
//! * `--trace-check` — boot two traced in-process shard daemons plus a
//!   traced router, send one request through the router, merge the
//!   three daemons' `trace_dump`s, and verify they form a single
//!   connected trace — router accept → forward hop → shard
//!   construction — with at least 6 nested spans (the CI trace smoke).

use std::process::ExitCode;
use std::sync::Arc;

use hatt_core::Mapper;
use hatt_fermion::models::molecule_catalog;
use hatt_fermion::{FermionOperator, MajoranaSum};
use hatt_mappings::FermionMapping;
use hatt_pauli::Complex64;
use hatt_service::{
    client, MapDeltaRequest, MapRequest, Scheduler, SchedulerConfig, Server, ServerConfig,
    StatsReply, TraceSpan,
};

struct Args {
    addr: String,
    threads: Option<usize>,
    queue: usize,
    cache: Option<usize>,
    store: Option<std::path::PathBuf>,
    max_conns: Option<usize>,
    max_line_bytes: Option<usize>,
    event_workers: Option<usize>,
    route: Option<String>,
    policy: Option<String>,
    variant: Option<String>,
    trace: bool,
    self_check: bool,
    persist_check: bool,
    route_check: bool,
    trace_check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        threads: None,
        queue: 256,
        cache: None,
        store: None,
        max_conns: None,
        max_line_bytes: None,
        event_workers: None,
        route: None,
        policy: None,
        variant: None,
        trace: false,
        self_check: false,
        persist_check: false,
        route_check: false,
        trace_check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--cache" => {
                args.cache = Some(
                    value("--cache")?
                        .parse()
                        .map_err(|e| format!("--cache: {e}"))?,
                )
            }
            "--store" => args.store = Some(value("--store")?.into()),
            "--max-conns" => {
                args.max_conns = Some(
                    value("--max-conns")?
                        .parse()
                        .map_err(|e| format!("--max-conns: {e}"))?,
                )
            }
            "--max-line-bytes" => {
                args.max_line_bytes = Some(
                    value("--max-line-bytes")?
                        .parse()
                        .map_err(|e| format!("--max-line-bytes: {e}"))?,
                )
            }
            "--event-workers" => {
                args.event_workers = Some(
                    value("--event-workers")?
                        .parse()
                        .map_err(|e| format!("--event-workers: {e}"))?,
                )
            }
            "--route" => args.route = Some(value("--route")?),
            "--policy" => args.policy = Some(value("--policy")?),
            "--variant" => args.variant = Some(value("--variant")?),
            "--trace" => args.trace = true,
            "--self-check" => args.self_check = true,
            "--persist-check" => args.persist_check = true,
            "--route-check" => args.route_check = true,
            "--trace-check" => args.trace_check = true,
            "--help" | "-h" => {
                println!(
                    "hattd [--addr IP:PORT] [--threads N] [--queue N] [--cache N] \
                     [--store PATH] [--max-conns N] [--max-line-bytes N] \
                     [--event-workers N] [--route HOST:PORT,...] \
                     [--policy P] [--variant V] [--trace] \
                     [--self-check] [--persist-check] [--route-check] [--trace-check]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn build_mapper(args: &Args) -> Result<Mapper, String> {
    let mut builder = Mapper::builder();
    if let Some(policy) = &args.policy {
        builder = builder.policy_str(policy);
    }
    if let Some(variant) = &args.variant {
        let v = hatt_core::Variant::from_key(variant)
            .ok_or_else(|| format!("--variant: unknown variant {variant:?}"))?;
        builder = builder.variant(v);
    }
    if let Some(threads) = args.threads {
        builder = builder.threads(threads);
    }
    if let Some(cache) = args.cache {
        builder = builder.cache_capacity(cache);
    }
    if let Some(store) = &args.store {
        builder = builder.store_path(store);
    }
    builder.build().map_err(|e| e.to_string())
}

fn scheduler_config(args: &Args) -> SchedulerConfig {
    SchedulerConfig {
        workers: args.threads.unwrap_or_else(parallel::max_threads),
        queue_capacity: args.queue,
    }
}

fn server_config(args: &Args) -> ServerConfig {
    let defaults = ServerConfig::default();
    ServerConfig {
        scheduler: scheduler_config(args),
        max_line_bytes: args.max_line_bytes.unwrap_or(defaults.max_line_bytes),
        max_connections: args.max_conns.unwrap_or(defaults.max_connections),
        event_workers: args.event_workers.unwrap_or(defaults.event_workers),
        max_write_buffer: defaults.max_write_buffer,
        trace: args.trace,
    }
}

/// Splits a `--route` shard list, rejecting empty entries.
fn parse_shards(route: &str) -> Result<Vec<String>, String> {
    let shards: Vec<String> = route
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if shards.is_empty() {
        return Err("--route: needs at least one HOST:PORT".into());
    }
    Ok(shards)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hattd: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.self_check {
        return match self_check(&args) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hattd self-check FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.persist_check {
        return match persist_check(args) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hattd persist-check FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.route_check {
        return match route_check(&args) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hattd route-check FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.trace_check {
        return match trace_check(&args) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hattd trace-check FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let config = server_config(&args);
    let bound = if let Some(route) = &args.route {
        let shards = match parse_shards(route) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("hattd: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "hattd routing to {} shard(s): {}",
            shards.len(),
            shards.join(", ")
        );
        Server::bind_router(args.addr.as_str(), &shards, config)
    } else {
        let mapper = match build_mapper(&args) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("hattd: {e}");
                return ExitCode::FAILURE;
            }
        };
        Server::bind(args.addr.as_str(), mapper, config)
    };
    match bound {
        Ok(server) => {
            println!("hattd listening on {}", server.local_addr());
            server.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hattd: bind {}: {e}", args.addr);
            ExitCode::FAILURE
        }
    }
}

/// The CI router smoke: boot two in-process shard daemons plus a
/// consistent-hash router over them, map a synthetic roster through the
/// router, and require the responses to be bit-identical to in-process
/// mappings with both shards healthy in the router's `stats`.
fn route_check(args: &Args) -> Result<String, String> {
    let shard_a = Server::bind("127.0.0.1:0", build_mapper(args)?, server_config(args))
        .map_err(|e| format!("shard a: bind: {e}"))?;
    let shard_b = Server::bind("127.0.0.1:0", build_mapper(args)?, server_config(args))
        .map_err(|e| format!("shard b: bind: {e}"))?;
    let shards = vec![
        shard_a.local_addr().to_string(),
        shard_b.local_addr().to_string(),
    ];
    let router = Server::bind_router("127.0.0.1:0", &shards, server_config(args))
        .map_err(|e| format!("router: bind: {e}"))?;
    let reference = build_mapper(args)?;

    let hams: Vec<MajoranaSum> = (2..26).map(MajoranaSum::uniform_singles).collect();
    let reply = client::request(
        router.local_addr(),
        &MapRequest::new("route-check", hams.clone()),
    )
    .map_err(|e| format!("routed request: {e}"))?;
    if reply.done.errors != 0 {
        return Err(format!("routed request had errors: {:?}", reply.done));
    }
    let items = reply.into_ordered();
    if items.len() != hams.len() {
        return Err(format!(
            "expected {} items, got {}",
            hams.len(),
            items.len()
        ));
    }
    for (i, (item, h)) in items.iter().zip(&hams).enumerate() {
        let mapping = item
            .mapping()
            .ok_or_else(|| format!("item {i} is an error: {:?}", item.error()))?;
        let local = reference
            .map(h)
            .map_err(|e| format!("local map {i}: {e}"))?;
        if mapping.tree() != local.tree() {
            return Err(format!(
                "item {i}: routed tree differs from in-process tree"
            ));
        }
    }

    let stats = client::stats(router.local_addr(), "route-check-stats")
        .map_err(|e| format!("router stats: {e}"))?;
    if stats.shards.len() != 2 {
        return Err(format!(
            "expected 2 shards in stats, got {}",
            stats.shards.len()
        ));
    }
    if let Some(sick) = stats.shards.iter().find(|s| !s.healthy) {
        return Err(format!("shard {} reported unhealthy", sick.addr));
    }
    let forwarded: u64 = stats.shards.iter().map(|s| s.forwarded).sum();
    if forwarded != hams.len() as u64 {
        return Err(format!(
            "router forwarded {forwarded} items, expected {}",
            hams.len()
        ));
    }

    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
    Ok(format!(
        "hattd route-check ok: {} items routed across 2 shards, trees bit-identical, \
         both shards healthy",
        hams.len()
    ))
}

/// The CI trace smoke: boot two traced in-process shard daemons plus a
/// traced router, send **one** map request through the router, merge
/// the three daemons' `trace_dump`s, and require a single connected
/// trace — router accept → forward hop → shard construction → write
/// drain — with at least 6 nested spans under one root.
fn trace_check(args: &Args) -> Result<String, String> {
    let mut config = server_config(args);
    config.trace = true;
    let shard_a = Server::bind("127.0.0.1:0", build_mapper(args)?, config.clone())
        .map_err(|e| format!("shard a: bind: {e}"))?;
    let shard_b = Server::bind("127.0.0.1:0", build_mapper(args)?, config.clone())
        .map_err(|e| format!("shard b: bind: {e}"))?;
    let shards = vec![
        shard_a.local_addr().to_string(),
        shard_b.local_addr().to_string(),
    ];
    let router = Server::bind_router("127.0.0.1:0", &shards, config)
        .map_err(|e| format!("router: bind: {e}"))?;

    let req = MapRequest::new("trace-check", vec![MajoranaSum::uniform_singles(6)]);
    let reply =
        client::request(router.local_addr(), &req).map_err(|e| format!("traced request: {e}"))?;
    if reply.done.errors != 0 {
        return Err(format!("traced request had errors: {:?}", reply.done));
    }

    // Every stage the request crossed, in at least one of the three
    // daemons' rings.
    let required = [
        "request",
        "accept",
        "frame.parse",
        "queue.wait",
        "route.hash",
        "route.forward",
        "construct",
        "write.drain",
    ];
    // The final write-drain span lands moments after the client reads
    // `map_done`; poll the dumps briefly instead of racing them.
    let mut merged: std::collections::BTreeMap<u64, Vec<TraceSpan>> = Default::default();
    for _ in 0..200 {
        merged.clear();
        let router_addr = router.local_addr().to_string();
        for addr in std::iter::once(&router_addr).chain(&shards) {
            let dump = client::trace_dump(addr.as_str(), "trace-check-dump")
                .map_err(|e| format!("trace_dump {addr}: {e}"))?;
            if !dump.enabled {
                return Err(format!("daemon {addr} reports tracing disabled"));
            }
            for tree in dump.traces {
                merged.entry(tree.trace_id).or_default().extend(tree.spans);
            }
        }
        let covered = required
            .iter()
            .all(|n| merged.values().flatten().any(|s| s.name == *n));
        if merged.len() == 1 && covered {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    if merged.len() != 1 {
        return Err(format!(
            "expected exactly one trace id across router+shards, found {}",
            merged.len()
        ));
    }
    let (trace_id, spans) = merged.into_iter().next().ok_or("no spans recorded")?;
    for name in required {
        if !spans.iter().any(|s| s.name == name) {
            return Err(format!("trace {trace_id:#x} is missing a {name:?} span"));
        }
    }
    let nested = spans.iter().filter(|s| s.parent_span != 0).count();
    if nested < 6 {
        return Err(format!(
            "trace {trace_id:#x} has only {nested} nested spans (need ≥ 6): {spans:?}"
        ));
    }
    // Connectivity: exactly one root (the router's request span), and
    // every other span — including the shard's, linked through the
    // on-wire forward-hop context — hangs off a recorded span.
    let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let orphans: Vec<&TraceSpan> = spans
        .iter()
        .filter(|s| s.parent_span != 0 && !ids.contains(&s.parent_span))
        .collect();
    if !orphans.is_empty() {
        return Err(format!("spans with unrecorded parents: {orphans:?}"));
    }
    let roots = spans.iter().filter(|s| s.parent_span == 0).count();
    if roots != 1 {
        return Err(format!("expected 1 root span, found {roots}"));
    }

    router.shutdown();
    shard_a.shutdown();
    shard_b.shutdown();
    Ok(format!(
        "hattd trace-check ok: one traced request produced trace {trace_id:#x} with \
         {} spans ({nested} nested) spanning router accept → forward hop → shard \
         construction → write drain",
        spans.len()
    ))
}

/// Boots an ephemeral server, round-trips a request through a real
/// socket, and verifies every response equals the in-process mapping.
fn self_check(args: &Args) -> Result<String, String> {
    let mapper = build_mapper(args)?;
    let reference = build_mapper(args)?;
    let config = server_config(args);
    let server = Server::bind("127.0.0.1:0", mapper, config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();

    // Sample workload: the paper's Eq. (3) example, a coefficient
    // rescale of it (must cache-hit server-side), and a uniform-singles
    // chain. One zero-mode item checks the typed error path.
    let mut eq3 = MajoranaSum::new(3);
    eq3.add(Complex64::new(0.0, 0.5), &[0, 1]);
    eq3.add(Complex64::new(0.0, -0.5), &[2, 3]);
    eq3.add(Complex64::new(0.0, -0.5), &[4, 5]);
    eq3.add(Complex64::real(0.5), &[2, 3, 4, 5]);
    let hams = vec![
        eq3.clone(),
        eq3.scaled(2.0),
        MajoranaSum::uniform_singles(4),
    ];
    let req = MapRequest::new("self-check", hams.clone());
    let reply = client::request(addr, &req).map_err(|e| format!("request: {e}"))?;
    if reply.done.errors != 0 {
        return Err(format!("unexpected errors: {:?}", reply.done));
    }
    let items = reply.into_ordered();
    if items.len() != hams.len() {
        return Err(format!(
            "expected {} items, got {}",
            hams.len(),
            items.len()
        ));
    }
    for (i, (item, h)) in items.iter().zip(&hams).enumerate() {
        let mapping = item
            .mapping()
            .ok_or_else(|| format!("item {i} is an error: {:?}", item.error()))?;
        let local = reference
            .map(h)
            .map_err(|e| format!("local map {i}: {e}"))?;
        if mapping.tree() != local.tree() {
            return Err(format!(
                "item {i}: socket tree differs from in-process tree"
            ));
        }
        let weight = mapping.map_majorana_sum(h).weight();
        if weight != local.map_majorana_sum(h).weight() {
            return Err(format!("item {i}: weight mismatch"));
        }
    }

    // The typed error path: a zero-mode item fails alone, the rest map.
    let req = MapRequest::new("self-check-err", vec![MajoranaSum::new(0), eq3]);
    let items = client::request(addr, &req)
        .map_err(|e| format!("error-path request: {e}"))?
        .into_ordered();
    if items[0].error().map(|e| e.code.as_str()) != Some("empty_hamiltonian") {
        return Err(format!("expected empty_hamiltonian, got {:?}", items[0]));
    }
    if !items[1].is_ok() {
        return Err("valid item failed alongside an invalid one".into());
    }

    // The incremental verb: remap the already-warmed eq3 structure with
    // a one-term delta over the socket and require the result to be
    // bit-identical to a fresh in-process build — served as a remap,
    // not a cold construction.
    let mut delta = hatt_fermion::HamiltonianDelta::new(3);
    delta
        .push_add(Complex64::real(0.25), &[0, 1, 2, 3])
        .map_err(|e| format!("delta build: {e}"))?;
    let edited = delta
        .apply(&hams[0])
        .map_err(|e| format!("delta apply: {e}"))?;
    let reply = client::remap(
        addr,
        &MapDeltaRequest::new("self-check-delta", hams[0].clone(), delta),
    )
    .map_err(|e| format!("map_delta request: {e}"))?;
    if reply.done.errors != 0 {
        return Err(format!("map_delta errors: {:?}", reply.done));
    }
    let remote = reply.items[0]
        .mapping()
        .ok_or_else(|| format!("map_delta item is an error: {:?}", reply.items[0].error()))?;
    let local = reference
        .map(&edited)
        .map_err(|e| format!("local map of the edited Hamiltonian: {e}"))?;
    if remote.tree() != local.tree() {
        return Err("map_delta: socket tree differs from in-process tree".into());
    }
    // Under the default greedy/cached configuration the delta must ride
    // the ancestor fast path; exotic --policy/--variant flags may
    // legitimately fall back to a cold construct, so only the default
    // asserts the counter.
    if args.policy.is_none() && args.variant.is_none() {
        let stats = client::stats(addr, "self-check-stats").map_err(|e| format!("stats: {e}"))?;
        if stats.remaps != 1 {
            return Err(format!(
                "expected the delta to be served incrementally (1 remap), stats report {}",
                stats.remaps
            ));
        }
    }

    // A scheduler smoke directly (no socket) for the bounded queue.
    let sched = Scheduler::new(Arc::new(build_mapper(args)?), scheduler_config(args))
        .map_err(|e| format!("scheduler start: {e}"))?;
    let rx = sched
        .submit(&MapRequest::new("q", vec![MajoranaSum::uniform_singles(2)]))
        .map_err(|e| format!("scheduler submit: {e}"))?;
    rx.recv().map_err(|e| format!("scheduler recv: {e}"))?;

    server.shutdown();
    Ok(format!(
        "hattd self-check ok: {} items round-tripped on {addr}, trees bit-identical, \
         typed errors intact",
        hams.len()
    ))
}

/// Strips the identity and numerical noise off a second-quantized
/// Hamiltonian — the same preprocessing the benchmarks use.
fn preprocess(h: &FermionOperator) -> MajoranaSum {
    let mut m = MajoranaSum::from_fermion(h);
    let _ = m.take_identity();
    m.prune(1e-10);
    m
}

/// The CI persistence smoke: boot a daemon with a store, map the
/// Table I molecule roster over the socket, restart the daemon on the
/// same store file, map the roster again, and require the second pass
/// to be pure store hits — zero constructions — with trees
/// bit-identical to the first pass.
fn persist_check(mut args: Args) -> Result<String, String> {
    let temp = args.store.is_none();
    let store_path = args.store.take().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("hattd-persist-check-{}.store", std::process::id()))
    });
    // The check owns the store's lifecycle: a leftover file from an
    // earlier run would make the first pass warm and fail the cold
    // assertions.
    let _ = std::fs::remove_file(&store_path);
    args.store = Some(store_path.clone());

    let roster: Vec<MajoranaSum> = molecule_catalog()
        .iter()
        .map(|spec| preprocess(&spec.hamiltonian()))
        .collect();

    let run_pass = |label: &str| -> Result<(Vec<hatt_service::MapItem>, StatsReply), String> {
        let mapper = build_mapper(&args)?;
        let server = Server::bind("127.0.0.1:0", mapper, server_config(&args))
            .map_err(|e| format!("{label}: bind: {e}"))?;
        let addr = server.local_addr();
        let req = MapRequest::new(label, roster.clone());
        let reply = client::request(addr, &req).map_err(|e| format!("{label}: request: {e}"))?;
        if reply.done.errors != 0 {
            return Err(format!("{label}: unexpected errors: {:?}", reply.done));
        }
        let items = reply.into_ordered();
        let stats = client::stats(addr, label).map_err(|e| format!("{label}: stats: {e}"))?;
        // Shutdown drains the scheduler and flushes the store to disk —
        // the durability boundary the second pass depends on.
        server.shutdown();
        Ok((items, stats))
    };

    let (cold_items, cold_stats) = run_pass("persist-cold")?;
    let (warm_items, warm_stats) = run_pass("persist-warm")?;
    if temp {
        let _ = std::fs::remove_file(&store_path);
    }

    let n = roster.len() as u64;
    let cold_store = cold_stats
        .store
        .ok_or("cold pass: stats reports no store tier")?;
    if cold_stats.constructions != n || cold_store.writes != n {
        return Err(format!(
            "cold pass: expected {n} constructions / {n} store writes, \
             got {} / {}",
            cold_stats.constructions, cold_store.writes
        ));
    }
    let warm_store = warm_stats
        .store
        .ok_or("warm pass: stats reports no store tier")?;
    if warm_stats.constructions != 0 {
        return Err(format!(
            "warm pass ran {} constructions; the store should have served all {n}",
            warm_stats.constructions
        ));
    }
    if warm_store.hits != n {
        return Err(format!(
            "warm pass: expected {n} store hits, got {} ({} misses)",
            warm_store.hits, warm_store.misses
        ));
    }
    for (i, (cold, warm)) in cold_items.iter().zip(&warm_items).enumerate() {
        let (Some(a), Some(b)) = (cold.mapping(), warm.mapping()) else {
            return Err(format!("item {i}: missing mapping payload"));
        };
        if a.tree() != b.tree() {
            return Err(format!(
                "item {i}: store-replayed tree differs from the freshly built one"
            ));
        }
    }
    Ok(format!(
        "hattd persist-check ok: {} structures persisted to {}; restarted daemon \
         served all of them from the store (0 constructions, trees bit-identical)",
        roster.len(),
        store_path.display()
    ))
}
