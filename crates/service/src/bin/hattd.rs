//! `hattd` — the HATT mapping daemon: JSON lines over TCP
//! (`hatt-wire/1` protocol, see `hatt_service::proto`).
//!
//! ```sh
//! hattd [--addr 127.0.0.1:7878] [--threads N] [--queue N] [--cache N]
//!       [--policy greedy|vanilla|restarts|lookahead:<w>|beam:<w>]
//!       [--variant cached|paired|unopt] [--self-check]
//! ```
//!
//! * `--addr` — listen address (`:0` picks an ephemeral port; the bound
//!   address is printed either way as `hattd listening on <addr>`).
//! * `--threads` — worker cap for the scheduler and constructions
//!   (default: `HATT_THREADS` / hardware count).
//! * `--queue` — bounded scheduler queue capacity (default 256).
//! * `--cache` — LRU bound on the structure cache (default unbounded;
//!   `0` disables caching).
//! * `--policy` / `--variant` — the server mapper's defaults; requests
//!   may override per call.
//! * `--self-check` — boot on an ephemeral port, round-trip a sample
//!   request through a real socket, verify the responses against
//!   in-process mappings, and exit (the CI smoke mode).

use std::process::ExitCode;
use std::sync::Arc;

use hatt_core::Mapper;
use hatt_fermion::MajoranaSum;
use hatt_mappings::FermionMapping;
use hatt_pauli::Complex64;
use hatt_service::{client, MapRequest, Scheduler, SchedulerConfig, Server, ServerConfig};

struct Args {
    addr: String,
    threads: Option<usize>,
    queue: usize,
    cache: Option<usize>,
    policy: Option<String>,
    variant: Option<String>,
    self_check: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        threads: None,
        queue: 256,
        cache: None,
        policy: None,
        variant: None,
        self_check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--queue" => {
                args.queue = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--cache" => {
                args.cache = Some(
                    value("--cache")?
                        .parse()
                        .map_err(|e| format!("--cache: {e}"))?,
                )
            }
            "--policy" => args.policy = Some(value("--policy")?),
            "--variant" => args.variant = Some(value("--variant")?),
            "--self-check" => args.self_check = true,
            "--help" | "-h" => {
                println!(
                    "hattd [--addr IP:PORT] [--threads N] [--queue N] [--cache N] \
                     [--policy P] [--variant V] [--self-check]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn build_mapper(args: &Args) -> Result<Mapper, String> {
    let mut builder = Mapper::builder();
    if let Some(policy) = &args.policy {
        builder = builder.policy_str(policy);
    }
    if let Some(variant) = &args.variant {
        let v = hatt_core::Variant::from_key(variant)
            .ok_or_else(|| format!("--variant: unknown variant {variant:?}"))?;
        builder = builder.variant(v);
    }
    if let Some(threads) = args.threads {
        builder = builder.threads(threads);
    }
    if let Some(cache) = args.cache {
        builder = builder.cache_capacity(cache);
    }
    builder.build().map_err(|e| e.to_string())
}

fn scheduler_config(args: &Args) -> SchedulerConfig {
    SchedulerConfig {
        workers: args.threads.unwrap_or_else(parallel::max_threads),
        queue_capacity: args.queue,
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("hattd: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.self_check {
        return match self_check(&args) {
            Ok(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("hattd self-check FAILED: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mapper = match build_mapper(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("hattd: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        scheduler: scheduler_config(&args),
    };
    match Server::bind(args.addr.as_str(), mapper, config) {
        Ok(server) => {
            println!("hattd listening on {}", server.local_addr());
            server.join();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("hattd: bind {}: {e}", args.addr);
            ExitCode::FAILURE
        }
    }
}

/// Boots an ephemeral server, round-trips a request through a real
/// socket, and verifies every response equals the in-process mapping.
fn self_check(args: &Args) -> Result<String, String> {
    let mapper = build_mapper(args)?;
    let reference = build_mapper(args)?;
    let config = ServerConfig {
        scheduler: scheduler_config(args),
    };
    let server = Server::bind("127.0.0.1:0", mapper, config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr();

    // Sample workload: the paper's Eq. (3) example, a coefficient
    // rescale of it (must cache-hit server-side), and a uniform-singles
    // chain. One zero-mode item checks the typed error path.
    let mut eq3 = MajoranaSum::new(3);
    eq3.add(Complex64::new(0.0, 0.5), &[0, 1]);
    eq3.add(Complex64::new(0.0, -0.5), &[2, 3]);
    eq3.add(Complex64::new(0.0, -0.5), &[4, 5]);
    eq3.add(Complex64::real(0.5), &[2, 3, 4, 5]);
    let hams = vec![
        eq3.clone(),
        eq3.scaled(2.0),
        MajoranaSum::uniform_singles(4),
    ];
    let req = MapRequest::new("self-check", hams.clone());
    let reply = client::request(addr, &req).map_err(|e| format!("request: {e}"))?;
    if reply.done.errors != 0 {
        return Err(format!("unexpected errors: {:?}", reply.done));
    }
    let items = reply.into_ordered();
    if items.len() != hams.len() {
        return Err(format!(
            "expected {} items, got {}",
            hams.len(),
            items.len()
        ));
    }
    for (i, (item, h)) in items.iter().zip(&hams).enumerate() {
        let mapping = item
            .mapping()
            .ok_or_else(|| format!("item {i} is an error: {:?}", item.error()))?;
        let local = reference
            .map(h)
            .map_err(|e| format!("local map {i}: {e}"))?;
        if mapping.tree() != local.tree() {
            return Err(format!(
                "item {i}: socket tree differs from in-process tree"
            ));
        }
        let weight = mapping.map_majorana_sum(h).weight();
        if weight != local.map_majorana_sum(h).weight() {
            return Err(format!("item {i}: weight mismatch"));
        }
    }

    // The typed error path: a zero-mode item fails alone, the rest map.
    let req = MapRequest::new("self-check-err", vec![MajoranaSum::new(0), eq3]);
    let items = client::request(addr, &req)
        .map_err(|e| format!("error-path request: {e}"))?
        .into_ordered();
    if items[0].error().map(|e| e.code.as_str()) != Some("empty_hamiltonian") {
        return Err(format!("expected empty_hamiltonian, got {:?}", items[0]));
    }
    if !items[1].is_ok() {
        return Err("valid item failed alongside an invalid one".into());
    }

    // A scheduler smoke directly (no socket) for the bounded queue.
    let sched = Scheduler::new(Arc::new(build_mapper(args)?), scheduler_config(args))
        .map_err(|e| format!("scheduler start: {e}"))?;
    let rx = sched
        .submit(&MapRequest::new("q", vec![MajoranaSum::uniform_singles(2)]))
        .map_err(|e| format!("scheduler submit: {e}"))?;
    rx.recv().map_err(|e| format!("scheduler recv: {e}"))?;

    server.shutdown();
    Ok(format!(
        "hattd self-check ok: {} items round-tripped on {addr}, trees bit-identical, \
         typed errors intact",
        hams.len()
    ))
}
