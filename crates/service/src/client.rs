//! Client helper for the `hattd` line protocol: write one request,
//! stream the per-item response lines, return everything once the
//! `map_done` marker arrives.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::ServiceError;
use crate::proto::{
    MapDeltaRequest, MapDone, MapItem, MapRequest, ResponseLine, StatsReply, StatsRequest,
    TraceDumpReply, TraceDumpRequest,
};

/// A complete response to one request.
#[derive(Debug)]
pub struct MapReply {
    /// The per-item results, in **arrival (completion) order** — use
    /// [`MapReply::into_ordered`] for request order.
    pub items: Vec<MapItem>,
    /// The terminal marker.
    pub done: MapDone,
}

impl MapReply {
    /// The items sorted back into request order (request-level errors,
    /// which carry no index, come first).
    pub fn into_ordered(mut self) -> Vec<MapItem> {
        self.items.sort_by_key(|i| i.index);
        self.items
    }
}

/// Sends `req` to a `hattd` server and collects the streamed response.
///
/// # Examples
///
/// See [`crate::Server`] — the doctest there round-trips a request
/// through a real socket.
pub fn request(addr: impl ToSocketAddrs, req: &MapRequest) -> Result<MapReply, ServiceError> {
    request_streaming(addr, req, |_| {})
}

/// Like [`request`], additionally invoking `on_item` for every item
/// line **as it arrives** — the streaming consumer hook (progress bars,
/// incremental pipelines).
pub fn request_streaming(
    addr: impl ToSocketAddrs,
    req: &MapRequest,
    on_item: impl FnMut(&MapItem),
) -> Result<MapReply, ServiceError> {
    exchange(addr, &req.to_line(), &req.id, on_item)
}

/// Sends a [`MapDeltaRequest`] — incremental remapping of a base
/// Hamiltonian plus a structural delta — and collects the single-item
/// response. The daemon reuses the cached tree of the base structure
/// when it has one, re-scoring only the touched frontier.
///
/// # Examples
///
/// ```
/// use hatt_core::Mapper;
/// use hatt_fermion::{HamiltonianDelta, MajoranaSum};
/// use hatt_pauli::Complex64;
/// use hatt_service::{client, MapDeltaRequest, MapRequest, Server, ServerConfig};
///
/// let server = Server::bind("127.0.0.1:0", Mapper::new(), ServerConfig::default())?;
/// let base = MajoranaSum::uniform_singles(3);
/// // Warm the daemon's cache with the base structure…
/// client::request(server.local_addr(), &MapRequest::new("warm", vec![base.clone()]))?;
/// // …then remap a one-term edit of it incrementally.
/// let mut delta = HamiltonianDelta::new(3);
/// delta.push_add(Complex64::real(0.5), &[0, 1, 2, 3]).unwrap();
/// let reply = client::remap(server.local_addr(), &MapDeltaRequest::new("step", base, delta))?;
/// assert_eq!(reply.done.items, 1);
/// assert!(reply.items[0].is_ok());
/// let stats = client::stats(server.local_addr(), "probe")?;
/// assert_eq!(stats.remaps, 1);
/// server.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn remap(addr: impl ToSocketAddrs, req: &MapDeltaRequest) -> Result<MapReply, ServiceError> {
    exchange(addr, &req.to_line(), &req.id, |_| {})
}

/// Writes one request line and collects the streamed `map_item` lines
/// up to the `map_done` marker — the shared transport loop behind
/// [`request_streaming`] and [`remap`].
fn exchange(
    addr: impl ToSocketAddrs,
    request_line: &str,
    id: &str,
    mut on_item: impl FnMut(&MapItem),
) -> Result<MapReply, ServiceError> {
    let stream = TcpStream::connect(addr)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writer.write_all(request_line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;

    let mut items = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match ResponseLine::from_line(&line)? {
            ResponseLine::Item(item) => {
                if item.id != id && !item.id.is_empty() {
                    return Err(ServiceError::Protocol(format!(
                        "response for request {:?} while waiting on {id:?}",
                        item.id
                    )));
                }
                on_item(&item);
                items.push(item);
            }
            ResponseLine::Done(done) => {
                if done.items != items.len() {
                    return Err(ServiceError::Protocol(format!(
                        "done marker counts {} items, received {}",
                        done.items,
                        items.len()
                    )));
                }
                return Ok(MapReply { items, done });
            }
        }
    }
    Err(ServiceError::Protocol(
        "connection closed before map_done".into(),
    ))
}

/// Asks a `hattd` server for its observability snapshot (queue depth,
/// cache and store hit/miss, per-policy latency histograms).
///
/// # Examples
///
/// See [`crate::Server`] — the doctest there probes a live daemon.
pub fn stats(addr: impl ToSocketAddrs, id: impl Into<String>) -> Result<StatsReply, ServiceError> {
    let req = StatsRequest::new(id);
    let stream = TcpStream::connect(addr)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writer.write_all(req.to_line().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = StatsReply::from_line(&line)?;
        if reply.id != req.id {
            return Err(ServiceError::Protocol(format!(
                "stats for probe {:?} while waiting on {:?}",
                reply.id, req.id
            )));
        }
        return Ok(reply);
    }
    Err(ServiceError::Protocol(
        "connection closed before the stats line".into(),
    ))
}

/// Asks a `--trace` daemon for its recent span trees (the `trace_dump`
/// verb). On a daemon without tracing the reply comes back with
/// `enabled: false` and no traces — asking is always safe.
///
/// # Examples
///
/// ```
/// use hatt_core::Mapper;
/// use hatt_fermion::MajoranaSum;
/// use hatt_service::{client, MapRequest, Server, ServerConfig};
///
/// let config = ServerConfig { trace: true, ..ServerConfig::default() };
/// let server = Server::bind("127.0.0.1:0", Mapper::new(), config)?;
/// let req = MapRequest::new("traced", vec![MajoranaSum::uniform_singles(2)]);
/// client::request(server.local_addr(), &req)?;
/// let dump = client::trace_dump(server.local_addr(), "probe")?;
/// assert!(dump.enabled);
/// assert_eq!(dump.traces.len(), 1);
/// assert!(dump.traces[0].spans.iter().any(|s| s.name == "construct"));
/// server.shutdown();
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn trace_dump(
    addr: impl ToSocketAddrs,
    id: impl Into<String>,
) -> Result<TraceDumpReply, ServiceError> {
    let req = TraceDumpRequest::new(id);
    let stream = TcpStream::connect(addr)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writer.write_all(req.to_line().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = TraceDumpReply::from_line(&line)?;
        if reply.id != req.id {
            return Err(ServiceError::Protocol(format!(
                "trace dump for probe {:?} while waiting on {:?}",
                reply.id, req.id
            )));
        }
        return Ok(reply);
    }
    Err(ServiceError::Protocol(
        "connection closed before the trace_dump line".into(),
    ))
}
