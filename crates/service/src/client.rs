//! Client helper for the `hattd` line protocol: write one request,
//! stream the per-item response lines, return everything once the
//! `map_done` marker arrives.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::error::ServiceError;
use crate::proto::{MapDone, MapItem, MapRequest, ResponseLine, StatsReply, StatsRequest};

/// A complete response to one request.
#[derive(Debug)]
pub struct MapReply {
    /// The per-item results, in **arrival (completion) order** — use
    /// [`MapReply::into_ordered`] for request order.
    pub items: Vec<MapItem>,
    /// The terminal marker.
    pub done: MapDone,
}

impl MapReply {
    /// The items sorted back into request order (request-level errors,
    /// which carry no index, come first).
    pub fn into_ordered(mut self) -> Vec<MapItem> {
        self.items.sort_by_key(|i| i.index);
        self.items
    }
}

/// Sends `req` to a `hattd` server and collects the streamed response.
///
/// # Examples
///
/// See [`crate::Server`] — the doctest there round-trips a request
/// through a real socket.
pub fn request(addr: impl ToSocketAddrs, req: &MapRequest) -> Result<MapReply, ServiceError> {
    request_streaming(addr, req, |_| {})
}

/// Like [`request`], additionally invoking `on_item` for every item
/// line **as it arrives** — the streaming consumer hook (progress bars,
/// incremental pipelines).
pub fn request_streaming(
    addr: impl ToSocketAddrs,
    req: &MapRequest,
    mut on_item: impl FnMut(&MapItem),
) -> Result<MapReply, ServiceError> {
    let stream = TcpStream::connect(addr)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writer.write_all(req.to_line().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;

    let mut items = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match ResponseLine::from_line(&line)? {
            ResponseLine::Item(item) => {
                if item.id != req.id && !item.id.is_empty() {
                    return Err(ServiceError::Protocol(format!(
                        "response for request {:?} while waiting on {:?}",
                        item.id, req.id
                    )));
                }
                on_item(&item);
                items.push(item);
            }
            ResponseLine::Done(done) => {
                if done.items != items.len() {
                    return Err(ServiceError::Protocol(format!(
                        "done marker counts {} items, received {}",
                        done.items,
                        items.len()
                    )));
                }
                return Ok(MapReply { items, done });
            }
        }
    }
    Err(ServiceError::Protocol(
        "connection closed before map_done".into(),
    ))
}

/// Asks a `hattd` server for its observability snapshot (queue depth,
/// cache and store hit/miss, per-policy latency histograms).
///
/// # Examples
///
/// See [`crate::Server`] — the doctest there probes a live daemon.
pub fn stats(addr: impl ToSocketAddrs, id: impl Into<String>) -> Result<StatsReply, ServiceError> {
    let req = StatsRequest::new(id);
    let stream = TcpStream::connect(addr)?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writer.write_all(req.to_line().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()?;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = StatsReply::from_line(&line)?;
        if reply.id != req.id {
            return Err(ServiceError::Protocol(format!(
                "stats for probe {:?} while waiting on {:?}",
                reply.id, req.id
            )));
        }
        return Ok(reply);
    }
    Err(ServiceError::Protocol(
        "connection closed before the stats line".into(),
    ))
}
