//! Wire-format property tests for the tracing protocol surface:
//! `decode ∘ encode = id` for `trace_ctx` contexts riding `map` /
//! `map_delta` lines and for the `trace_dump` request/reply pair, plus
//! totality on truncations and random byte mutations (a dropped
//! connection or corrupted line must yield a typed error, never a
//! panic).

// Test-harness code unwraps freely; the no-panic contract covers library code only.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use hatt_fermion::{HamiltonianDelta, MajoranaSum};
use hatt_pauli::Complex64;
use hatt_service::{
    MapDeltaRequest, MapRequest, RequestLine, TraceDumpReply, TraceDumpRequest, TraceSpan,
    TraceTree,
};
use hatt_trace::TraceCtx;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A wire-legal trace context: IDs are minted below `2^63` (the JSON
/// integer range) and the trace ID is never zero.
fn random_ctx(rng: &mut StdRng) -> TraceCtx {
    TraceCtx {
        trace_id: rng.gen_range(1..i64::MAX as u64),
        // Zero = "root span" is a legal parent on the wire.
        parent_span: rng.gen_range(0..i64::MAX as u64),
    }
}

fn random_span(rng: &mut StdRng) -> TraceSpan {
    let names = [
        "request",
        "queue.wait",
        "construct",
        "route.forward",
        "write.drain",
    ];
    TraceSpan {
        span_id: rng.gen_range(1..i64::MAX as u64),
        parent_span: rng.gen_range(0..i64::MAX as u64),
        name: names[rng.gen_range(0..names.len())].to_string(),
        start_ns: rng.gen_range(0..i64::MAX as u64),
        dur_ns: rng.gen_range(0..i64::MAX as u64),
    }
}

fn random_reply(rng: &mut StdRng) -> TraceDumpReply {
    let traces = (0..rng.gen_range(0usize..4))
        .map(|i| TraceTree {
            // Distinct ascending IDs keep the reply canonical (the
            // reply encoder preserves trace order as-is).
            trace_id: 1 + i as u64 * 7919 + rng.gen_range(0..1000),
            spans: (0..rng.gen_range(1usize..5))
                .map(|_| random_span(rng))
                .collect(),
        })
        .collect();
    TraceDumpReply {
        id: format!("dump-{}", rng.gen_range(0..1000)),
        enabled: rng.gen_bool(0.9),
        traces,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn map_request_trace_ctx_roundtrips(seed in 0u64..1000, traced in proptest::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut req = MapRequest::new("props", vec![MajoranaSum::uniform_singles(3)]);
        req.trace = traced.then(|| random_ctx(&mut rng));
        // Through the value tree…
        let back = MapRequest::decode(&req.encode()).expect("decode value");
        prop_assert_eq!(back.trace, req.trace);
        // …and through actual bytes (the socket path).
        let back = MapRequest::from_line(&req.to_line()).expect("decode text");
        prop_assert_eq!(back.trace, req.trace);
        prop_assert_eq!(back.id, req.id);
        prop_assert_eq!(back.hamiltonians, req.hamiltonians);
    }

    #[test]
    fn map_delta_trace_ctx_roundtrips(seed in 0u64..1000, traced in proptest::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut delta = HamiltonianDelta::new(3);
        delta.push_add(Complex64::real(0.5), &[0, 1, 2, 3]).unwrap();
        let mut req = MapDeltaRequest::new("props", MajoranaSum::uniform_singles(3), delta);
        req.trace = traced.then(|| random_ctx(&mut rng));
        let back = MapDeltaRequest::from_line(&req.to_line()).expect("decode text");
        prop_assert_eq!(back.trace, req.trace);
        prop_assert_eq!(back.id, req.id);
    }

    #[test]
    fn trace_dump_request_roundtrips(seed in 0u64..1000, capped in proptest::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut req = TraceDumpRequest::new(format!("dump-{}", rng.gen_range(0..1000)));
        if capped {
            req = req.with_max_traces(rng.gen_range(0..64));
        }
        let back = TraceDumpRequest::decode(&req.encode()).expect("decode value");
        prop_assert_eq!(&back, &req);
        let back = TraceDumpRequest::from_line(&req.to_line()).expect("decode text");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn trace_dump_reply_roundtrips(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let reply = random_reply(&mut rng);
        let back = TraceDumpReply::decode(&reply.encode()).expect("decode value");
        prop_assert_eq!(&back, &reply);
        let back = TraceDumpReply::from_line(&reply.to_line()).expect("decode text");
        prop_assert_eq!(back, reply);
    }

    #[test]
    fn mutated_trace_lines_decode_to_typed_errors_not_panics(
        doc in 0usize..3,
        pos in 0usize..4096,
        byte in 0u8..=255,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let line = trace_corpus(&mut rng)[doc].1.clone();
        let mut bytes = line.into_bytes();
        let at = pos % bytes.len();
        bytes[at] = byte;
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        // Ok (the mutation was benign) and Err are both fine; only a
        // panic would fail the case.
        let _ = RequestLine::from_line(&mutated);
        let _ = TraceDumpReply::from_line(&mutated);
    }
}

/// One valid rendered line per tracing wire surface: a traced `map`
/// request, a capped `trace_dump_request`, and a populated reply.
fn trace_corpus(rng: &mut StdRng) -> Vec<(&'static str, String)> {
    let mut map = MapRequest::new("fuzz", vec![MajoranaSum::uniform_singles(3)]);
    map.trace = Some(random_ctx(rng));
    vec![
        ("traced map_request", map.to_line()),
        (
            "trace_dump_request",
            TraceDumpRequest::new("fuzz").with_max_traces(4).to_line(),
        ),
        ("trace_dump reply", random_reply(rng).to_line()),
    ]
}

/// Truncation totality: every strict prefix of every tracing wire line
/// must come back as a typed error.
#[test]
fn every_strict_prefix_of_a_trace_line_is_a_typed_error() {
    let mut rng = StdRng::seed_from_u64(0x7ace);
    for (name, line) in trace_corpus(&mut rng) {
        let full_request = RequestLine::from_line(&line).is_ok();
        let full_reply = TraceDumpReply::from_line(&line).is_ok();
        assert!(
            full_request || full_reply,
            "{name}: the full line must decode"
        );
        for end in 0..line.len() {
            if !line.is_char_boundary(end) {
                continue;
            }
            let prefix = &line[..end];
            assert!(
                RequestLine::from_line(prefix).is_err()
                    && TraceDumpReply::from_line(prefix).is_err(),
                "{name}: prefix of {end}/{} bytes decoded",
                line.len()
            );
        }
    }
}
