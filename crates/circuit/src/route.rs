//! SABRE-style qubit routing — the Tetris stand-in for Table IV's
//! architecture-aware compilation: map logical qubits onto a device's
//! coupling graph and insert SWAPs so every CNOT acts on adjacent
//! physical qubits.

use crate::arch::CouplingMap;
use crate::circuit::Circuit;
use crate::gate::Gate;

/// The outcome of routing a circuit onto a device.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingResult {
    /// The routed circuit on the device's physical qubits (SWAPs are
    /// already decomposed into CNOT triples).
    pub circuit: Circuit,
    /// `initial_layout[logical] = physical`.
    pub initial_layout: Vec<usize>,
    /// `final_layout[logical] = physical` after all inserted SWAPs.
    pub final_layout: Vec<usize>,
    /// Number of SWAPs inserted.
    pub swaps_inserted: usize,
}

/// Heuristic weights of the router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterOptions {
    /// Weight of the lookahead (extended) layer in the SWAP score.
    pub lookahead_weight: f64,
    /// Number of future 2-qubit gates in the extended layer.
    pub lookahead_depth: usize,
    /// Decay added to a qubit's score factor after it participates in a
    /// SWAP (discourages ping-ponging).
    pub decay: f64,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            lookahead_weight: 0.5,
            lookahead_depth: 20,
            decay: 0.02,
        }
    }
}

/// Routes `circuit` onto `arch` with a SABRE-style front-layer heuristic
/// and a trivial initial layout.
///
/// # Panics
///
/// Panics when the device has fewer qubits than the circuit, or if the
/// router fails to make progress (which would indicate a bug, not an
/// input property — every connected device admits a routing).
pub fn route_sabre(circuit: &Circuit, arch: &CouplingMap, opts: &RouterOptions) -> RoutingResult {
    let n_logical = circuit.n_qubits();
    assert!(
        arch.n_qubits() >= n_logical,
        "device has {} qubits, circuit needs {}",
        arch.n_qubits(),
        n_logical
    );

    // Layout: logical → physical, plus the inverse.
    let mut phys_of: Vec<usize> = (0..n_logical).collect();
    let mut logical_of: Vec<Option<usize>> = (0..arch.n_qubits())
        .map(|p| if p < n_logical { Some(p) } else { None })
        .collect();
    let initial_layout = phys_of.clone();

    // Dependency DAG over the gate list: a gate depends on the previous
    // gate touching each of its qubits.
    let gates = circuit.gates();
    let mut preds_left: Vec<usize> = vec![0; gates.len()];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); gates.len()];
    {
        let mut last_on: Vec<Option<usize>> = vec![None; n_logical];
        for (i, g) in gates.iter().enumerate() {
            for q in g.qubits() {
                if let Some(j) = last_on[q] {
                    succs[j].push(i);
                    preds_left[i] += 1;
                }
                last_on[q] = Some(i);
            }
        }
    }
    let mut front: Vec<usize> = (0..gates.len()).filter(|&i| preds_left[i] == 0).collect();
    let mut out = Circuit::new(arch.n_qubits());
    let mut swaps_inserted = 0usize;
    let mut decay = vec![1.0f64; arch.n_qubits()];
    let mut stall_rounds = 0usize;

    let remap = |g: &Gate, phys_of: &[usize]| -> Gate {
        match *g {
            Gate::H(q) => Gate::H(phys_of[q]),
            Gate::X(q) => Gate::X(phys_of[q]),
            Gate::Y(q) => Gate::Y(phys_of[q]),
            Gate::Z(q) => Gate::Z(phys_of[q]),
            Gate::S(q) => Gate::S(phys_of[q]),
            Gate::Sdg(q) => Gate::Sdg(phys_of[q]),
            Gate::Rz(q, a) => Gate::Rz(phys_of[q], a),
            Gate::Rx(q, a) => Gate::Rx(phys_of[q], a),
            Gate::Ry(q, a) => Gate::Ry(phys_of[q], a),
            Gate::U3 {
                q,
                theta,
                phi,
                lambda,
            } => Gate::U3 {
                q: phys_of[q],
                theta,
                phi,
                lambda,
            },
            Gate::Cnot { control, target } => Gate::Cnot {
                control: phys_of[control],
                target: phys_of[target],
            },
            Gate::Swap(a, b) => Gate::Swap(phys_of[a], phys_of[b]),
        }
    };

    while !front.is_empty() {
        // Execute everything executable.
        let mut executed_any = false;
        let mut next_front = Vec::new();
        for &i in &front {
            let g = &gates[i];
            let qs = g.qubits();
            let executable = !g.is_two_qubit() || arch.are_adjacent(phys_of[qs[0]], phys_of[qs[1]]);
            if executable {
                out.push(remap(g, &phys_of));
                executed_any = true;
                for &s in &succs[i] {
                    preds_left[s] -= 1;
                    if preds_left[s] == 0 {
                        next_front.push(s);
                    }
                }
            } else {
                next_front.push(i);
            }
        }
        front = next_front;
        front.sort_unstable();
        front.dedup();
        if front.is_empty() {
            break;
        }
        if executed_any {
            stall_rounds = 0;
            decay.iter_mut().for_each(|d| *d = 1.0);
            continue;
        }

        // Blocked: choose the best SWAP among edges touching front-layer
        // qubits.
        stall_rounds += 1;
        assert!(
            stall_rounds <= 4 * arch.n_qubits() * arch.n_qubits() + 64,
            "router failed to make progress"
        );
        let blocked: Vec<(usize, usize)> = front
            .iter()
            .filter(|&&i| gates[i].is_two_qubit())
            .map(|&i| {
                let qs = gates[i].qubits();
                (phys_of[qs[0]], phys_of[qs[1]])
            })
            .collect();
        let lookahead: Vec<(usize, usize)> =
            collect_lookahead(gates, &front, &succs, &preds_left, opts.lookahead_depth)
                .into_iter()
                .map(|(a, b)| (phys_of[a], phys_of[b]))
                .collect();

        let mut candidates: Vec<(usize, usize)> = Vec::new();
        if stall_rounds > 12 {
            // Escape valve: the greedy heuristic is oscillating. Force
            // guaranteed progress by marching the first blocked pair
            // together along a shortest path.
            let (pa, pb) = blocked[0];
            #[allow(clippy::expect_used)]
            let step = arch
                .neighbors(pa)
                .iter()
                .copied()
                .min_by_key(|&nb| arch.distance(nb, pb))
                // hatt-lint: allow(panic) -- CouplingMap::new validates connectivity, so every qubit has a neighbor
                .expect("connected graph");
            candidates.push((pa.min(step), pa.max(step)));
        } else {
            for &(pa, pb) in &blocked {
                for &p in [pa, pb].iter() {
                    for &nb in arch.neighbors(p) {
                        candidates.push((p.min(nb), p.max(nb)));
                    }
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
        }

        let score = |swap: (usize, usize)| -> f64 {
            let map = |p: usize| -> usize {
                if p == swap.0 {
                    swap.1
                } else if p == swap.1 {
                    swap.0
                } else {
                    p
                }
            };
            let front_cost: f64 = blocked
                .iter()
                .map(|&(a, b)| arch.distance(map(a), map(b)) as f64)
                .sum();
            let look_cost: f64 = lookahead
                .iter()
                .map(|&(a, b)| arch.distance(map(a), map(b)) as f64)
                .sum();
            let d = decay[swap.0].max(decay[swap.1]);
            d * (front_cost + opts.lookahead_weight * look_cost)
        };

        #[allow(clippy::expect_used)]
        let best = candidates
            .iter()
            .copied()
            .min_by(|&a, &b| score(a).total_cmp(&score(b)))
            // hatt-lint: allow(panic) -- `blocked` is non-empty here and each blocked qubit contributes neighbors
            .expect("blocked gates have swap candidates");

        // Apply the SWAP to the layout and the output circuit.
        out.push(Gate::Swap(best.0, best.1));
        swaps_inserted += 1;
        decay[best.0] += opts.decay;
        decay[best.1] += opts.decay;
        let (la, lb) = (logical_of[best.0], logical_of[best.1]);
        if let Some(l) = la {
            phys_of[l] = best.1;
        }
        if let Some(l) = lb {
            phys_of[l] = best.0;
        }
        logical_of.swap(best.0, best.1);
    }

    out.decompose_swaps();
    RoutingResult {
        circuit: out,
        initial_layout,
        final_layout: phys_of,
        swaps_inserted,
    }
}

/// Gathers the next `depth` two-qubit gates after the front layer (the
/// extended set of the SABRE heuristic), as logical qubit pairs.
///
/// The walk is budgeted: at most `16·depth` gates are visited so a stall
/// round costs O(depth) rather than O(total gates).
fn collect_lookahead(
    gates: &[Gate],
    front: &[usize],
    succs: &[Vec<usize>],
    preds_left: &[usize],
    depth: usize,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut queue: std::collections::VecDeque<usize> = front.iter().copied().collect();
    // BTree containers: the walk itself is queue-ordered, but keeping the
    // whole result path hash-free pins lookahead (and thus SWAP choice)
    // to the same sequence on every run and platform.
    let mut seen: std::collections::BTreeSet<usize> = front.iter().copied().collect();
    let mut decremented: std::collections::BTreeMap<usize, usize> =
        std::collections::BTreeMap::new();
    let mut budget = 16 * depth.max(1);
    while let Some(i) = queue.pop_front() {
        if out.len() >= depth || budget == 0 {
            break;
        }
        budget -= 1;
        let in_front = front.binary_search(&i).is_ok();
        if gates[i].is_two_qubit() && !in_front {
            let qs = gates[i].qubits();
            out.push((qs[0], qs[1]));
        }
        for &s in &succs[i] {
            let left = decremented
                .entry(s)
                .or_insert(preds_left[s])
                .saturating_sub(1);
            decremented.insert(s, left);
            if left == 0 && seen.insert(s) {
                queue.push_back(s);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routed_ok(c: &Circuit, arch: &CouplingMap) -> RoutingResult {
        let result = route_sabre(c, arch, &RouterOptions::default());
        // Every 2q gate in the output must act on adjacent qubits.
        for g in result.circuit.gates() {
            if g.is_two_qubit() {
                let qs = g.qubits();
                assert!(
                    arch.are_adjacent(qs[0], qs[1]),
                    "gate {g} not adjacent after routing"
                );
            }
        }
        result
    }

    #[test]
    fn adjacent_gates_route_without_swaps() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1).cnot(1, 2);
        let r = routed_ok(&c, &CouplingMap::line(3));
        assert_eq!(r.swaps_inserted, 0);
        assert_eq!(r.circuit.metrics().cnot, 2);
    }

    #[test]
    fn distant_gates_get_swaps() {
        let mut c = Circuit::new(4);
        c.cnot(0, 3);
        let r = routed_ok(&c, &CouplingMap::line(4));
        assert!(r.swaps_inserted >= 1);
        // 1 CNOT + 3 per swap.
        assert_eq!(r.circuit.metrics().cnot, 1 + 3 * r.swaps_inserted);
    }

    #[test]
    fn single_qubit_gates_always_execute() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cnot(0, 2);
        let r = routed_ok(&c, &CouplingMap::line(3));
        assert_eq!(r.circuit.metrics().single_qubit, 3);
    }

    #[test]
    fn routing_is_deterministic_across_repeated_runs() {
        // A congested instance: distant pairs on a line force swaps and
        // give the lookahead many candidates to rank. Any hash-ordered
        // container on the SWAP-choice path would let the tie-breaking
        // (and thus the output) drift between otherwise identical runs.
        let mut c = Circuit::new(6);
        for d in 1..6 {
            for a in 0..(6 - d) {
                c.cnot(a, a + d);
            }
        }
        let arch = CouplingMap::line(6);
        let first = routed_ok(&c, &arch);
        assert!(first.swaps_inserted > 0, "instance must exercise routing");
        for _ in 0..3 {
            let again = routed_ok(&c, &arch);
            assert_eq!(again.circuit.gates(), first.circuit.gates());
            assert_eq!(again.final_layout, first.final_layout);
            assert_eq!(again.swaps_inserted, first.swaps_inserted);
        }
    }

    #[test]
    fn all_to_all_needs_no_swaps() {
        let mut c = Circuit::new(5);
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    c.cnot(a, b);
                }
            }
        }
        let r = routed_ok(&c, &CouplingMap::all_to_all(5));
        assert_eq!(r.swaps_inserted, 0);
    }

    #[test]
    fn dependencies_are_preserved() {
        // cx(0,1) then cx(1,2): output order must keep the q1 dependency.
        let mut c = Circuit::new(3);
        c.cnot(0, 1).cnot(1, 2).h(1);
        let r = routed_ok(&c, &CouplingMap::line(3));
        let pos_cx01 = r
            .circuit
            .gates()
            .iter()
            .position(|g| {
                matches!(
                    g,
                    Gate::Cnot {
                        control: 0,
                        target: 1
                    }
                )
            })
            .unwrap();
        let pos_cx12 = r
            .circuit
            .gates()
            .iter()
            .position(|g| {
                matches!(
                    g,
                    Gate::Cnot {
                        control: 1,
                        target: 2
                    }
                )
            })
            .unwrap();
        assert!(pos_cx01 < pos_cx12);
    }

    #[test]
    fn heavy_hex_routing_succeeds() {
        let arch = CouplingMap::montreal27();
        let mut c = Circuit::new(10);
        for i in 0..10 {
            for j in (i + 1)..10 {
                c.cnot(i, j);
            }
        }
        let r = routed_ok(&c, &arch);
        assert!(r.swaps_inserted > 0);
        assert_eq!(r.initial_layout.len(), 10);
        assert_eq!(r.final_layout.len(), 10);
    }

    #[test]
    #[should_panic(expected = "device has")]
    fn small_device_rejected() {
        let mut c = Circuit::new(5);
        c.cnot(0, 4);
        let _ = route_sabre(&c, &CouplingMap::line(3), &RouterOptions::default());
    }
}
